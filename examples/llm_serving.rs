//! LLM attention serving on PIM: KV-cache allocation schemes compared
//! on throughput and time-per-output-token — the paper's case study #2.
//!
//! Run with: `cargo run --release --example llm_serving`

use pim_workloads::llm::{
    fixed_trace, max_batch_size, run_serving, sharegpt_like_trace, KvScheme, LlmConfig,
    ServingConfig,
};
use pim_workloads::AllocatorKind;

fn main() {
    let llm = LlmConfig::default();
    println!(
        "Llama-2-7B on {} DPUs: {} KB of KV per token model-wide, {} B/token/DPU",
        llm.n_dpus,
        llm.kv_bytes_per_token_total() >> 10,
        llm.kv_bytes_per_token_per_dpu()
    );

    // Figure 4(b): maximum batch under static vs dynamic KV allocation.
    let trace = sharegpt_like_trace(300, 10.0, llm.max_seq_len, 11);
    println!("\nmaximum batch size (ShareGPT-shaped lengths):");
    for scheme in [KvScheme::Static, KvScheme::Dynamic(AllocatorKind::Sw)] {
        let r = max_batch_size(scheme, &llm, &trace);
        println!("  {:20} {}", scheme.label(), r.max_batch);
    }

    // Figure 18: serving 100 requests at 10 req/s (128-in / 256-out).
    let cfg = ServingConfig::default();
    let trace = fixed_trace(100, 10.0);
    println!("\nserving 100 requests at 10 req/s:");
    println!(
        "  {:20} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "tokens/s", "TPOT p50 ms", "TPOT p99 ms", "peak batch"
    );
    for scheme in [
        KvScheme::Static,
        KvScheme::Dynamic(AllocatorKind::StrawMan),
        KvScheme::Dynamic(AllocatorKind::Sw),
        KvScheme::Dynamic(AllocatorKind::HwSw),
    ] {
        let r = run_serving(scheme, &cfg, &trace);
        println!(
            "  {:20} {:>10.0} {:>12.1} {:>12.1} {:>10}",
            scheme.label(),
            r.throughput_tokens_per_s,
            r.tpot_p50_ms,
            r.tpot_p99_ms,
            r.peak_batch
        );
    }
}
