//! Quickstart: bring up PIM-malloc on one simulated DPU, allocate and
//! free from several tasklets, and inspect the statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc};
use pim_sim::{DpuConfig, DpuSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One UPMEM-like DPU: 350 MHz, 16 tasklets, 64 MB MRAM, 64 KB WRAM.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));

    // PIM-malloc-SW with the paper's defaults: 32 MB heap, 16 B..2 KB
    // size classes, a 4 KB-block buddy backend behind a 2 KB software
    // metadata window.
    let mut alloc = PimMalloc::init(&mut dpu, AllocGeometry::sw(16).build())?;
    println!(
        "initAllocator finished at t = {:.1} us",
        alloc.init_end().as_micros(350)
    );

    // Every tasklet allocates a mix of sizes, then frees half of them.
    let mut live = Vec::new();
    for tid in 0..16 {
        for &size in &[24u32, 100, 500, 2000, 8192] {
            let mut ctx = dpu.ctx(tid);
            let addr = alloc.pim_malloc(&mut ctx, size)?;
            live.push((tid, addr));
        }
    }
    for &(tid, addr) in live.iter().step_by(2) {
        let mut ctx = dpu.ctx(tid);
        alloc.pim_free(&mut ctx, addr)?;
    }

    let stats = alloc.alloc_stats();
    println!("pim_malloc calls      : {}", stats.total_mallocs());
    println!(
        "frontend-serviced     : {:.1} %",
        100.0 * stats.frontend_service_fraction()
    );
    println!(
        "backend latency share : {:.1} %",
        100.0 * stats.backend_latency_fraction()
    );
    println!(
        "mean malloc latency   : {:.2} us",
        stats.malloc_latencies.mean().as_micros(350)
    );
    println!("fragmentation A/U     : {:.2}", alloc.frag().ratio());
    println!(
        "metadata DRAM traffic : {} B",
        alloc.metadata_stats().total_bytes()
    );
    println!(
        "virtual time elapsed  : {:.1} us",
        dpu.max_clock().as_micros(350)
    );
    Ok(())
}
