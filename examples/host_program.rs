//! The full co-processor flow of Figure 5(d): the host allocates a DPU
//! set, pushes per-DPU input data, launches an SPMD kernel that builds
//! dynamic data structures with `pim_malloc` inside each bank, and
//! pulls back a result summary — the PIM-Metadata/PIM-Executed design
//! point end to end.
//!
//! Run with: `cargo run --release --example host_program`

use pim_sim::{DpuConfig, DpuSet};
use pim_workloads::graph::linked::LinkedListGraph;
use pim_workloads::graph::{generate_power_law, Graph};
use pim_workloads::AllocatorKind;

const N_DPUS: usize = 8;
const N_TASKLETS: usize = 16;

fn main() {
    // Host side: generate and partition the input (Figure 5's
    // "careful data partitioning across DPUs and threads").
    let graph: Graph = generate_power_law(4096, 20_000, 42);
    let mut partitions: Vec<Vec<(u32, u32)>> = vec![Vec::new(); N_DPUS];
    for &(u, v) in &graph.edges {
        partitions[(u as usize) % N_DPUS].push((u / N_DPUS as u32, v));
    }

    let mut set = DpuSet::allocate(N_DPUS, DpuConfig::default().with_tasklets(N_TASKLETS));

    // pimMemcpy(HOST2PIM): ship each DPU its edge list as raw bytes.
    let max_edges = partitions.iter().map(Vec::len).max().unwrap_or(0);
    set.push((max_edges * 8) as u64, |idx, mram| {
        for (i, &(u, v)) in partitions[idx].iter().enumerate() {
            mram.write_u32(0x0040_0000 + (i as u32) * 8, u);
            mram.write_u32(0x0040_0000 + (i as u32) * 8 + 4, v);
        }
    });

    // pimLaunch: every DPU builds its linked-list graph with PIM-malloc
    // entirely inside its own bank.
    let mut edge_counts = [0u64; N_DPUS];
    set.launch(|idx, dpu| {
        let mut alloc = AllocatorKind::HwSw.build(dpu, N_TASKLETS, 32 << 20);
        let mut g = LinkedListGraph::new(4096 / N_DPUS as u32 + 1);
        for (i, &(u, v)) in partitions[idx].iter().enumerate() {
            let mut ctx = dpu.ctx(i % N_TASKLETS);
            g.insert(&mut ctx, alloc.as_mut(), u, v)
                .expect("heap sized");
        }
        // Leave a summary for the host at a well-known address.
        dpu.mram_mut().write_u64(0x0030_0000, g.edge_count());
        edge_counts[idx] = g.edge_count();
    });

    // pimMemcpy(PIM2HOST): retrieve the per-DPU summaries.
    let mut pulled = vec![0u64; N_DPUS];
    set.pull(8, |idx, mram| pulled[idx] = mram.read_u64(0x0030_0000));

    println!("per-DPU edges built: {pulled:?}");
    let total: u64 = pulled.iter().sum();
    println!(
        "total {total} edges (expected {}), host wall clock {:.2} ms, {} launches, {} B moved",
        graph.edges.len(),
        set.elapsed_secs() * 1e3,
        set.launches(),
        set.bytes_moved()
    );
    assert_eq!(total, graph.edges.len() as u64, "no edge lost in flight");
}
