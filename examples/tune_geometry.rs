//! Profile-guided geometry tuning, end to end on one scenario family:
//! record a live run through [`ProfileRecorder`], synthesize a custom
//! size-class table from the profile, then replay the same trace
//! under the paper geometry and the synthesized one and compare
//! measured fragmentation.
//!
//! Run with: `cargo run --release --example tune_geometry`

use pim_malloc_repro::{
    synthesize_table, AllocGeometry, PimMalloc, ProfileRecorder, SizeClassTable, SynthesisObjective,
};
use pim_profile::wram_bitmap_bytes;
use pim_sim::{DpuConfig, DpuSim};
use pim_trace::{replay, synthesize, AllocTrace, SizeLaw, SynthConfig, TemporalShape};

/// Replays `trace` under `table`, returning (A/U at peak, finish us).
fn replay_under(trace: &AllocTrace, table: &SizeClassTable) -> (f64, f64) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let geom = AllocGeometry::sw(trace.n_tasklets)
        .with_heap_size(trace.heap_size)
        .with_size_classes(table.clone());
    let mut alloc = PimMalloc::init(&mut dpu, geom.build()).expect("init");
    let result = replay(&mut dpu, &mut alloc, trace);
    (alloc.frag().peak_ratio(), result.finish.as_micros(350))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: the log-normal/phase-shift scenario family —
    //    size-diverse, so the fixed power-of-two table serves it
    //    poorly.
    let trace = synthesize(&SynthConfig {
        n_tasklets: 16,
        mallocs_per_tasklet: 96,
        size_law: SizeLaw::LogNormal {
            mu: 5.5,
            sigma: 1.0,
            min: 8,
            max: 8192,
        },
        shape: TemporalShape::PhaseShift {
            period: 32,
            compute: 200,
        },
        ..SynthConfig::default()
    });

    // 2. Record: replay once with a ProfileRecorder wrapped around
    //    the allocator. The recorder only reads the clock — the run
    //    is identical with and without it.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let geom = AllocGeometry::sw(trace.n_tasklets).with_heap_size(trace.heap_size);
    let inner = PimMalloc::init(&mut dpu, geom.build())?;
    let mut recorder = ProfileRecorder::new(inner, trace.name.clone(), trace.n_tasklets);
    replay(&mut dpu, &mut recorder, &trace);
    let (profile, _alloc) = recorder.into_profile();
    println!("profiled {}:", profile.name);
    println!("  mallocs            : {}", profile.mallocs);
    println!(
        "  distinct sizes     : {}",
        profile.histogram.distinct_sizes()
    );
    println!("  peak live          : {} B", profile.peak_live_bytes);
    println!(
        "  remote frees       : {:.1} %",
        100.0 * profile.remote_free_fraction()
    );

    // 3. Synthesize a table from the profile.
    let synthesis = synthesize_table(&profile, &SynthesisObjective::default())?;
    let report = &synthesis.report;
    println!("\nsynthesized classes  : {:?}", report.classes);
    println!(
        "modeled frag         : {} B vs paper {} B (ratio {:.3})",
        report.modeled_frag_bytes, report.modeled_frag_bytes_paper, report.predicted_frag_ratio
    );
    println!(
        "WRAM bitmap/tasklet  : {} B vs paper {} B",
        report.wram_bytes_per_tasklet, report.wram_bytes_per_tasklet_paper
    );

    // 4. Replay: same trace, paper vs synthesized geometry.
    let paper = SizeClassTable::paper_default();
    let (frag_paper, finish_paper) = replay_under(&trace, &paper);
    let (frag_tuned, finish_tuned) = replay_under(&trace, &synthesis.table);
    println!("\nreplay               :    paper    tuned");
    println!("  frag A/U at peak   : {frag_paper:8.2} {frag_tuned:8.2}");
    println!("  kernel finish us   : {finish_paper:8.1} {finish_tuned:8.1}");
    println!(
        "  WRAM bitmaps B     : {:8} {:8}",
        wram_bitmap_bytes(&paper),
        wram_bitmap_bytes(&synthesis.table)
    );
    assert!(
        frag_tuned <= frag_paper,
        "synthesized geometry must not worsen measured fragmentation"
    );
    Ok(())
}
