//! Dynamic graph update with PIM-malloc: build an edge delta through
//! the allocator, verify the MRAM image, and compare against the
//! static CSR baseline — the paper's case study #1 in miniature.
//!
//! Run with: `cargo run --release --example dynamic_graph`

use pim_sim::{DpuConfig, DpuSim};
use pim_workloads::graph::linked::LinkedListGraph;
use pim_workloads::graph::{
    generate_power_law, run_graph_update, split_for_update_count, GraphRepr, GraphUpdateConfig,
};
use pim_workloads::AllocatorKind;

fn main() {
    // Part 1: store a real edge delta in simulated MRAM and read it
    // back through the pointer structure.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
    let mut alloc = AllocatorKind::HwSw.build(&mut dpu, 16, 32 << 20);
    let graph = generate_power_law(512, 4000, 7);
    let w = split_for_update_count(graph, 1000, 9);
    let mut delta = LinkedListGraph::new(512);
    for &(u, v) in &w.new_edges {
        let mut ctx = dpu.ctx((u as usize) % 16);
        delta
            .insert(&mut ctx, alloc.as_mut(), u, v)
            .expect("heap sized for the delta");
    }
    let recovered = delta.read_back(dpu.mram());
    println!(
        "inserted {} edges; MRAM walk recovered {} ({}).",
        w.new_edges.len(),
        recovered.len(),
        if recovered.len() == w.new_edges.len() {
            "intact"
        } else {
            "CORRUPT"
        }
    );
    println!(
        "pim_malloc calls: {} ({:.0}% frontend-serviced)",
        alloc.alloc_stats().total_mallocs(),
        100.0 * alloc.alloc_stats().frontend_service_fraction()
    );

    // Part 2: the Figure 17 comparison at a small scale.
    let base = GraphUpdateConfig {
        n_dpus: 4,
        n_nodes: 2048,
        base_edges: 6400,
        new_edges: 3200,
        ..GraphUpdateConfig::default()
    };
    println!("\nupdate throughput (million edges/s):");
    let stat = run_graph_update(&GraphUpdateConfig {
        repr: GraphRepr::StaticCsr,
        ..base
    });
    println!("  {:44} {:>8.3}", "static CSR", stat.throughput_meps);
    for kind in AllocatorKind::HEADLINE {
        let r = run_graph_update(&GraphUpdateConfig {
            repr: GraphRepr::LinkedList,
            allocator: kind,
            ..base
        });
        println!(
            "  {:44} {:>8.3}  ({:.1}x vs static)",
            format!("linked-list delta + {}", kind.label()),
            r.throughput_meps,
            r.throughput_meps / stat.throughput_meps
        );
    }
}
