//! Design-space tour: where should allocator metadata live, and which
//! processor should run the algorithm? (Table I / Figure 6.)
//!
//! Run with: `cargo run --release --example design_space`

use pim_dse::{run_strategy, DseConfig, Strategy};

fn main() {
    println!("128 x 32 B allocations per PIM core, end-to-end seconds:\n");
    print!("{:32}", "strategy");
    let counts = [1usize, 16, 64, 256, 512];
    for n in counts {
        print!("{n:>10} DPUs");
    }
    println!();
    for strategy in Strategy::ALL {
        print!("{:32}", strategy.to_string());
        for n in counts {
            let r = run_strategy(strategy, &DseConfig::default().with_dpus(n));
            print!("{:>14.4}", r.total_secs);
        }
        println!();
    }
    println!(
        "\nThe paper's conclusion: PIM-Metadata/PIM-Executed is the only \
         strategy whose latency is flat in the number of PIM cores — \
         metadata stays bank-local and every core allocates in parallel."
    );
    let r = run_strategy(
        Strategy::PimMetaPimExec,
        &DseConfig::default().with_dpus(512),
    );
    println!(
        "At 512 cores it spends {:.1} ms total, {:.0}% of it in compute.",
        r.total_secs * 1e3,
        100.0 * (1.0 - r.transfer_fraction())
    );
}
