//! Chaos serving: run the open-loop frontend over a faulty fleet and
//! watch it self-heal.
//!
//! A `FaultPlan` marks DPUs dead on arrival, kills more mid-run, and
//! fails or straggles transfer shards; the frontend routes around the
//! dead, retries failed shards with backoff, and re-dispatches
//! stranded requests. The run is fully seeded — same plan, same fault
//! trace, byte for byte.
//!
//! Run with: `cargo run --release --example chaos_serving`

use pim_malloc_repro::{serve, ArrivalProcess, FaultPlan, RequestClass, ServeConfig, SimContext};
use pim_trace::{synthesize, SizeLaw, SynthConfig, TemporalShape};

fn main() {
    let class = RequestClass::new(
        "micro",
        synthesize(&SynthConfig {
            n_tasklets: 4,
            mallocs_per_tasklet: 8,
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 100 },
            heap_size: 1 << 20,
            ..SynthConfig::default()
        }),
        2048,
        1.0,
    );
    let build = |dpu: &mut pim_sim::DpuSim,
                 tasklets: usize,
                 heap: u32|
     -> Box<dyn pim_malloc::PimAllocator> {
        let cfg = pim_malloc::AllocGeometry::sw(tasklets)
            .with_heap_size(heap)
            .build();
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    };
    let base = ServeConfig {
        n_dpus: 64,
        n_requests: 20_000,
        // ~60% of this fleet's calibrated capacity: the fault-free
        // leg serves cleanly, so the chaos leg's damage is visible.
        arrival: ArrivalProcess::Poisson { rps: 13_000.0 },
        ctx: SimContext::sweep_default(),
        ..ServeConfig::default()
    };

    let classes = [class];
    let clean = serve(&base, &classes, &build);
    let chaotic = serve(
        &ServeConfig {
            ctx: base.ctx.with_faults(FaultPlan::chaos(7)),
            ..base
        },
        &classes,
        &build,
    );

    println!(
        "fleet of {} DPUs, {} requests",
        base.n_dpus, base.n_requests
    );
    for (name, r) in [("fault-free", &clean), ("chaos", &chaotic)] {
        println!(
            "{name:>10}: {} completed, {} dropped, p99 {:.2} ms, {} healthy at end",
            r.admitted,
            r.dropped,
            r.p99_ms(),
            r.faults.healthy_final
        );
    }
    let f = &chaotic.faults;
    println!(
        "self-healing: {} DoA + {} killed; {} retries, {} re-dispatched, \
         {} failed / {} straggled shards, {} fault drops",
        f.doa_dpus,
        f.killed_dpus,
        f.retries,
        f.redispatched,
        f.xfer_failed_shards,
        f.xfer_straggled_shards,
        f.fault_drops()
    );
    let goodput =
        |r: &pim_malloc_repro::ServeReport| r.admitted as f64 / (r.admitted + r.dropped) as f64;
    println!(
        "goodput ratio vs fault-free: {:.4}",
        goodput(&chaotic) / goodput(&clean)
    );
}
