//! Offline shim for `serde`.
//!
//! The container image has no network access to crates.io, so this
//! crate vendors the minimal subset of serde the workspace uses:
//! `#[derive(Serialize, Deserialize)]` as marker derives. Nothing in
//! the workspace performs actual serialization yet (`serde_json` is a
//! sibling stub); when real serialization lands, this shim is the seam
//! to swap for the upstream crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so derive bounds are always satisfiable.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for
/// all types so derive bounds are always satisfiable.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of serde's `de` module for code that imports from it.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of serde's `ser` module for code that imports from it.
pub mod ser {
    pub use crate::Serialize;
}
