//! Offline shim for `serde_json`.
//!
//! The container image has no network access to crates.io. This crate
//! provides a self-contained JSON value type and string writer so the
//! workspace can emit machine-readable reports without the upstream
//! crate. It does not implement serde-driven (de)serialization; build
//! [`Value`] trees explicitly instead.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value: the usual six variants, with object keys ordered for
/// deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (serialized via `f64`; non-finite maps to `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Render this value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) if n.is_finite() => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::Number(_) => out.push_str("null"),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), Value::from("pim\"malloc"));
        obj.insert(
            "xs".to_owned(),
            Value::Array(vec![Value::from(1.5), Value::Null, Value::from(true)]),
        );
        assert_eq!(
            Value::Object(obj).to_json(),
            r#"{"name":"pim\"malloc","xs":[1.5,null,true]}"#
        );
    }
}
