//! Offline shim for `serde_json`.
//!
//! The container image has no network access to crates.io. This crate
//! provides a self-contained JSON value type, string writer, and
//! parser ([`from_str`]) so the workspace can emit and round-trip
//! machine-readable reports without the upstream crate. It does not
//! implement serde-driven (de)serialization; build and inspect
//! [`Value`] trees explicitly instead.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value: the usual six variants, with object keys ordered for
/// deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (serialized via `f64`; non-finite maps to `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Render this value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) if n.is_finite() => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::Number(_) => out.push_str("null"),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`from_str`]: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub msg: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// Accepts exactly one top-level value (trailing whitespace allowed).
/// Numbers parse through `f64`, matching what [`Value::to_json`]
/// emits, so `to_json` → `from_str` round-trips losslessly for every
/// value this crate can produce.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => Err(self.err("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bare backslash"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.eat("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar, however many bytes long.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat("{")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), Value::from("pim\"malloc"));
        obj.insert(
            "xs".to_owned(),
            Value::Array(vec![Value::from(1.5), Value::Null, Value::from(true)]),
        );
        assert_eq!(
            Value::Object(obj).to_json(),
            r#"{"name":"pim\"malloc","xs":[1.5,null,true]}"#
        );
    }

    #[test]
    fn parses_what_it_writes() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), Value::from("pim\"malloc\n\\"));
        obj.insert("n".to_owned(), Value::from(-1.25e3));
        obj.insert(
            "xs".to_owned(),
            Value::Array(vec![Value::from(1.5), Value::Null, Value::from(false)]),
        );
        obj.insert("empty".to_owned(), Value::Object(BTreeMap::new()));
        let v = Value::Object(obj);
        assert_eq!(from_str(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = from_str(" { \"a\" : [ 1 , \"\\u00e9\\t\" ] }\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("é\t")
        );
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "nan",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            let e = from_str(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad} must fail");
        }
    }

    #[test]
    fn accessors_select_variants() {
        let v = from_str(r#"{"b":true,"n":2,"s":"x","a":[],"o":{}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("a").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("o").unwrap().as_object().unwrap().is_empty());
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Null.as_str(), None);
    }
}
