//! Offline shim for `parking_lot`.
//!
//! The container image has no network access to crates.io, so this
//! crate wraps `std::sync` primitives behind parking_lot's
//! poison-free API: `lock()` returns a guard directly rather than a
//! `Result`, recovering the inner value if a holder panicked.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutably borrow the guarded value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(1u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
