//! Offline shim for `serde_derive`.
//!
//! The container image has no network access to crates.io, so the
//! workspace vendors the minimal subset of the serde API it actually
//! uses. The companion `serde` shim provides blanket impls of
//! `Serialize`/`Deserialize` for every type, so these derives only need
//! to exist as names — they expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
