//! `any::<T>()` support: default whole-domain strategies per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}
