//! Collection strategies: `collection::vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.index(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
