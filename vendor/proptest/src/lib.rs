//! Offline shim for `proptest`.
//!
//! The container image has no network access to crates.io, so this
//! crate vendors the subset of the proptest API the workspace's
//! property tests use: the `proptest!` test macro, `prop_assert*`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, integer/float
//! range strategies, tuples, `prop_map`, and `collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways: case
//! generation is deterministic (seeded from the test name, so runs are
//! reproducible without a persistence file), and failing cases are
//! reported without shrinking.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// Each function in the block normally carries `#[test]`; the example
/// below omits it so the property can run as a doctest.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case}/{}: {msg}", config.cases);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Reject the current case (skip it without failing) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Choose among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::weighted($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::weighted(1u32, $strat)),+
        ])
    };
}
