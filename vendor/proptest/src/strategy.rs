//! Value-generation strategies: the core [`Strategy`] trait plus
//! combinators (`prop_map`, [`Just`], [`OneOf`]) and range/tuple
//! implementations.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking;
/// `sample` draws a single value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased sampler used by [`OneOf`].
pub type BoxedSampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Box a strategy with its selection weight; used by `prop_oneof!`.
pub fn weighted<S>(weight: u32, strategy: S) -> (u32, BoxedSampler<S::Value>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(move |rng| strategy.sample(rng)))
}

/// Weighted choice among strategies producing one value type.
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedSampler<V>)>,
    total_weight: u64,
}

impl<V> OneOf<V> {
    /// Build from `(weight, sampler)` arms; total weight must be
    /// nonzero.
    pub fn new(arms: Vec<(u32, BoxedSampler<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        OneOf { arms, total_weight }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, sampler) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return sampler(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted without selecting an arm")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
