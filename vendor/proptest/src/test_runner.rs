//! Configuration, RNG, and error types backing the `proptest!` macro.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case violated the property; the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// Deterministic SplitMix64 generator used to sample strategies.
///
/// Seeded from the property's name so every run of a given test is
/// reproducible without a regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `0..bound` (`bound` must be nonzero).
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be nonzero");
        (self.next_u64() % bound as u64) as usize
    }
}
