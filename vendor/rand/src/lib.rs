//! Offline shim for `rand`.
//!
//! The container image has no network access to crates.io, so this
//! crate vendors the subset of the rand 0.8 API the workspace uses:
//! `StdRng::seed_from_u64`, `gen_range` over half-open and inclusive
//! integer/float ranges, and `gen_bool`. The generator is SplitMix64 —
//! deterministic per seed, which is all the workloads require (they
//! document determinism per seed, not any particular stream).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Deterministic: equal seeds
    /// give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (next_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }
}
