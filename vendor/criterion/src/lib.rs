//! Offline shim for `criterion`.
//!
//! The container image has no network access to crates.io, so this
//! crate vendors the subset of the criterion API the workspace's
//! benches use: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple mean over a fixed
//! batch of iterations — enough for a smoke signal and for
//! `cargo bench --no-run` compile coverage, without upstream's
//! statistics.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (reporting is per-benchmark, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify by function name plus parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identify by parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed_ns: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / u128::from(bencher.iters.max(1));
    println!("bench {id}: {per_iter} ns/iter (mean of {sample_size})");
}

/// Collect bench functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Compatibility with `cargo bench`'s libtest-style flags: a
            // shim run ignores filters and option arguments entirely.
            $( $group(); )+
        }
    };
}
