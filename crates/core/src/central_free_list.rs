//! The central free list — PIM-malloc's third tier, between the
//! transfer cache and the buddy backend (tcmalloc's `CentralFreeList`
//! with span-based accounting).
//!
//! Objects arrive here when a transfer-cache ring overflows its cap
//! ([`CentralFreeList::demote`]): the oldest staged batch moves into
//! per-class, address-ordered central circulation, and each object is
//! charged to its block's [`crate::Span`]. Allocations that land on a
//! centrally-held address claim it back ([`CentralFreeList::take`]).
//! When the owning thread cache drains a block and hands it to the
//! buddy backend, the block's span is retired and its remaining
//! central objects are discarded ([`CentralFreeList::purge_block`]) —
//! this is how fully-free spans return to the buddy: the canonical
//! bitmap decides the block is free, and the central list's span
//! accounting follows it.
//!
//! Like the transfer cache, this tier is a routing/pricing overlay:
//! liveness stays canonical in the thread-cache bitmaps and frame
//! table, so enabling it never changes which addresses the allocator
//! returns.

use std::collections::BTreeSet;

use crate::geometry::SizeClassTable;
use crate::span::{block_base_of, Span, SpanRegistry};

/// Per-class central circulation plus span accounting.
#[derive(Debug, Clone)]
pub struct CentralFreeList {
    classes: Vec<BTreeSet<u32>>,
    spans: SpanRegistry,
}

impl CentralFreeList {
    /// Creates an empty central free list with one set per size class.
    pub fn new(classes: &SizeClassTable) -> Self {
        CentralFreeList {
            classes: vec![BTreeSet::new(); classes.len()],
            spans: SpanRegistry::new(),
        }
    }

    /// Accepts a batch demoted from the transfer cache into class
    /// `class_idx`'s circulation.
    pub fn demote(&mut self, class_idx: usize, batch: &[u32]) {
        for &addr in batch {
            let inserted = self.classes[class_idx].insert(addr);
            debug_assert!(inserted, "address {addr:#x} already central");
            self.spans.note_object(addr, class_idx);
        }
    }

    /// Claims `addr` from class `class_idx` if centrally held.
    pub fn take(&mut self, class_idx: usize, addr: u32) -> bool {
        if self.classes[class_idx].remove(&addr) {
            self.spans.release_object(addr);
            true
        } else {
            false
        }
    }

    /// Retires the span of the cache block at `base` (returned to the
    /// buddy backend), discarding its central objects. Returns the
    /// retired span, if one was live. Host-side bookkeeping; no
    /// simulated cost.
    pub fn purge_block(&mut self, base: u32) -> Option<Span> {
        let span = self.spans.retire(base)?;
        self.classes[span.class_idx].retain(|&a| block_base_of(a) != base);
        Some(span)
    }

    /// Centrally-held objects in class `class_idx`.
    pub fn objects_in_class(&self, class_idx: usize) -> usize {
        self.classes[class_idx].len()
    }

    /// Centrally-held objects across all classes.
    pub fn objects_total(&self) -> usize {
        self.classes.iter().map(BTreeSet::len).sum()
    }

    /// Live spans (blocks with central objects).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> CentralFreeList {
        CentralFreeList::new(&SizeClassTable::paper_default())
    }

    #[test]
    fn demote_take_roundtrip_with_span_accounting() {
        let mut c = list();
        c.demote(2, &[0x1040, 0x1080, 0x2040]);
        assert_eq!(c.objects_in_class(2), 3);
        assert_eq!(c.span_count(), 2);
        assert!(c.take(2, 0x1080));
        assert!(!c.take(2, 0x1080), "already claimed");
        assert!(!c.take(1, 0x1040), "wrong class");
        assert_eq!(c.objects_total(), 2);
        assert!(c.take(2, 0x1040));
        assert_eq!(c.span_count(), 1, "0x1000 span drained");
    }

    #[test]
    fn purge_retires_the_span_and_its_objects() {
        let mut c = list();
        c.demote(0, &[0x3010, 0x3020]);
        c.demote(0, &[0x4010]);
        let span = c.purge_block(0x3000).expect("span was live");
        assert_eq!(span.central_objects, 2);
        assert_eq!(c.objects_total(), 1);
        assert_eq!(c.span_count(), 1);
        assert!(c.purge_block(0x3000).is_none());
        assert!(c.purge_block(0x5000).is_none(), "never-seen block");
    }
}
