//! Memory-fragmentation accounting (Table III of the paper).
//!
//! Fragmentation is measured as **A/U** following Hoard (Berger et al.,
//! ASPLOS 2000): `A` is the memory the allocator has reserved from the
//! heap (4 KB thread-cache blocks — used or not — plus buddy-rounded
//! bypass blocks), and `U` is the memory the program actually
//! requested. A ratio above 1.0 means reserved-but-unused memory:
//! internal fragmentation from size-class rounding plus idle
//! pre-populated thread-cache blocks.

use serde::{Deserialize, Serialize};

/// Tracks live reserved (A) and requested (U) bytes, with peaks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragTracker {
    reserved_live: u64,
    requested_live: u64,
    peak_reserved: u64,
    peak_requested: u64,
}

impl FragTracker {
    /// Creates a tracker with nothing reserved or requested.
    pub fn new() -> Self {
        Self::default()
    }

    /// The allocator reserved `bytes` from the heap (a thread-cache
    /// block fetch or a bypass allocation).
    pub fn on_reserve(&mut self, bytes: u64) {
        self.reserved_live += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_live);
    }

    /// The allocator returned `bytes` to the heap.
    pub fn on_release(&mut self, bytes: u64) {
        debug_assert!(self.reserved_live >= bytes, "release exceeds reserve");
        self.reserved_live -= bytes;
    }

    /// The program requested `bytes` via `pim_malloc`.
    pub fn on_user_alloc(&mut self, bytes: u64) {
        self.requested_live += bytes;
        self.peak_requested = self.peak_requested.max(self.requested_live);
    }

    /// The program freed an allocation of `bytes` via `pim_free`.
    pub fn on_user_free(&mut self, bytes: u64) {
        debug_assert!(self.requested_live >= bytes, "free exceeds live");
        self.requested_live -= bytes;
    }

    /// Live reserved bytes (A).
    pub fn reserved_live(&self) -> u64 {
        self.reserved_live
    }

    /// Live requested bytes (U).
    pub fn requested_live(&self) -> u64 {
        self.requested_live
    }

    /// Current fragmentation A/U. Returns `f64::INFINITY` if memory is
    /// reserved while nothing is requested, and 1.0 if both are zero.
    pub fn ratio(&self) -> f64 {
        match (self.reserved_live, self.requested_live) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (a, u) => a as f64 / u as f64,
        }
    }

    /// Fragmentation at the memory-usage peak: peak A over peak U.
    pub fn peak_ratio(&self) -> f64 {
        match (self.peak_reserved, self.peak_requested) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (a, u) => a as f64 / u as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_reflects_reserved_over_requested() {
        let mut f = FragTracker::new();
        f.on_reserve(4096);
        f.on_user_alloc(2048);
        assert!((f.ratio() - 2.0).abs() < 1e-12);
        f.on_user_alloc(2048);
        assert!((f.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peaks_survive_frees() {
        let mut f = FragTracker::new();
        f.on_reserve(8192);
        f.on_user_alloc(1024);
        f.on_user_free(1024);
        f.on_release(8192);
        assert_eq!(f.reserved_live(), 0);
        assert_eq!(f.requested_live(), 0);
        assert!((f.peak_ratio() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_ratio_one() {
        assert_eq!(FragTracker::new().ratio(), 1.0);
        assert_eq!(FragTracker::new().peak_ratio(), 1.0);
    }

    #[test]
    fn reserved_without_requests_is_infinite() {
        let mut f = FragTracker::new();
        f.on_reserve(4096);
        assert!(f.ratio().is_infinite());
    }
}
