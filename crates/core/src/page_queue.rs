//! Sharded page queues: the `PageLocal` allocation frontend.
//!
//! [`PageLocal`] replaces the legacy bitmap-scan thread caches with
//! mimalloc's page/queue structure (its `page_queue.rs`): every
//! (tasklet, size class) pair owns one [`PageQueue`] of [`Page`]s, and
//! the common malloc/free touches only queue heads, page counters, and
//! the page's own free-slot words — no block scans, no word scans, no
//! `Vec` shuffles. The buddy backend is demoted to the segment/page
//! provider: it only ever hands out and takes back whole
//! [`CACHE_BLOCK_BYTES`] pages.
//!
//! Two intrusive lists thread through each queue's pages:
//!
//! * the **all-pages list**, most-recently-allocated-from first —
//!   exactly the MRU discipline of the legacy frontend's block `Vec`;
//! * the **available list**, the subsequence of pages with at least
//!   one free slot, *kept in all-list relative order*.
//!
//! Allocation pops the available head (the first non-full page in MRU
//! order — precisely the page the legacy scan would have found) and
//! moves it to the all-list front. A page that fills up leaves the
//! available list ("full migration"); a free that un-fills it
//! re-inserts it at its order-preserving position; a page whose last
//! sub-block is freed is released to the buddy backend unless it is
//! the queue's only page ("empty migration", with the same
//! keep-the-last-page hysteresis as the legacy pools). The invariant
//! that the available list is an order-preserving subsequence of the
//! all list is what makes the fast path **address-identical** to the
//! legacy frontend — property-tested in `tests/page_differential.rs`.
//!
//! Addresses are mapped back to pages in O(1) through a flat
//! frame→page table (the same indexing trick as
//! [`crate::region_map::RegionMap`]), so `free` never scans anything.
//!
//! [`CACHE_BLOCK_BYTES`]: crate::thread_cache::CACHE_BLOCK_BYTES

use pim_sim::TaskletCtx;
use serde::{Deserialize, Serialize};

use crate::geometry::SizeClassTable;
use crate::page::{Page, NIL};
use crate::thread_cache::{FreeOutcome, CACHE_BLOCK_BYTES};

/// Instructions of a page-path alloc hit: queue-head load, two
/// `trailing_zeros` (the DPU exposes a count-leading-zeros unit), bit
/// clear, counter bump, address multiply-add, and the MRU head relink.
const PAGE_ALLOC_INSTRS: u64 = 30;
/// Instructions to link a fresh page into a queue (mirrors the legacy
/// frontend's block-install cost).
const PAGE_LINK_INSTRS: u64 = 34;
/// Instructions of a page-path free: frame-table shift+load, slot
/// divide, bit set, counter drop, and the full/empty migration checks.
const PAGE_FREE_INSTRS: u64 = 36;
/// Instructions per full page stepped over when a formerly-full page
/// re-enters the available list at its order-preserving position.
const PAGE_REQUEUE_STEP_INSTRS: u64 = 4;

/// One (tasklet, size class) shard: intrusive list heads plus the
/// page population count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PageQueue {
    /// Head of the all-pages list (MRU first); `NIL` when empty.
    head_all: u32,
    /// Head of the available list; `NIL` when every page is full.
    head_avail: u32,
    /// Pages currently owned by this queue (full or not).
    pages: u32,
}

impl PageQueue {
    const EMPTY: PageQueue = PageQueue {
        head_all: NIL,
        head_avail: NIL,
        pages: 0,
    };

    /// Pages currently owned by this queue.
    pub fn page_count(&self) -> u32 {
        self.pages
    }
}

/// The page/queue allocation frontend for every tasklet of one DPU.
///
/// Pages live in one arena `Vec` and are addressed by index through
/// the intrusive links, so queue surgery is store-only and released
/// pages recycle their arena slot.
#[derive(Debug, Clone)]
pub struct PageLocal {
    /// Sub-block size per class (shared geometry).
    class_bytes: Vec<u32>,
    n_tasklets: usize,
    /// Page arena; `queues` and `frame_page` hold indices into it.
    arena: Vec<Page>,
    /// Recycled arena slots of released pages.
    spare: Vec<u32>,
    /// `tid * class_count + class_idx` → queue.
    queues: Vec<PageQueue>,
    /// `(base - heap_base) / CACHE_BLOCK_BYTES` → arena index.
    frame_page: Vec<u32>,
    heap_base: u32,
}

impl PageLocal {
    /// Creates an empty frontend over the shared size-class geometry
    /// for `n_tasklets` tasklets and the heap `[heap_base,
    /// heap_base + heap_size)`.
    pub fn new(
        classes: &SizeClassTable,
        n_tasklets: usize,
        heap_base: u32,
        heap_size: u32,
    ) -> Self {
        let frames = (heap_size / CACHE_BLOCK_BYTES) as usize;
        PageLocal {
            class_bytes: classes.classes().to_vec(),
            n_tasklets,
            arena: Vec::new(),
            spare: Vec::new(),
            queues: vec![PageQueue::EMPTY; n_tasklets * classes.len()],
            frame_page: vec![NIL; frames],
            heap_base,
        }
    }

    /// WRAM bytes of per-page free-slot metadata at steady state (one
    /// page per queue) — byte-for-byte the legacy frontend's bitmap
    /// budget, since a page's slot words *are* that bitmap.
    pub fn wram_bytes(&self) -> u32 {
        let per_tasklet: u32 = self
            .class_bytes
            .iter()
            .map(|&c| (CACHE_BLOCK_BYTES / c).div_ceil(8))
            .sum();
        per_tasklet * self.n_tasklets as u32
    }

    /// The queue of `(tid, class_idx)`.
    pub fn queue(&self, tid: usize, class_idx: usize) -> &PageQueue {
        &self.queues[tid * self.class_bytes.len() + class_idx]
    }

    /// Pages currently held across all queues.
    pub fn live_pages(&self) -> usize {
        self.arena.len() - self.spare.len()
    }

    /// Free sub-blocks across the queue's pages (test/introspection
    /// mirror of the legacy pool accessor).
    pub fn free_slots(&self, tid: usize, class_idx: usize) -> u32 {
        let mut total = 0;
        let mut pi = self.queues[tid * self.class_bytes.len() + class_idx].head_all;
        while pi != NIL {
            let p = &self.arena[pi as usize];
            total += p.capacity() - p.used();
            pi = p.next_all;
        }
        total
    }

    #[inline]
    fn frame_of(&self, addr: u32) -> usize {
        ((addr - self.heap_base) / CACHE_BLOCK_BYTES) as usize
    }

    #[inline]
    fn qi(&self, tid: usize, class_idx: usize) -> usize {
        tid * self.class_bytes.len() + class_idx
    }

    fn all_push_front(&mut self, qi: usize, pi: u32) {
        let head = self.queues[qi].head_all;
        self.arena[pi as usize].prev_all = NIL;
        self.arena[pi as usize].next_all = head;
        if head != NIL {
            self.arena[head as usize].prev_all = pi;
        }
        self.queues[qi].head_all = pi;
    }

    fn all_unlink(&mut self, qi: usize, pi: u32) {
        let (prev, next) = {
            let p = &self.arena[pi as usize];
            (p.prev_all, p.next_all)
        };
        if prev != NIL {
            self.arena[prev as usize].next_all = next;
        } else {
            self.queues[qi].head_all = next;
        }
        if next != NIL {
            self.arena[next as usize].prev_all = prev;
        }
    }

    fn avail_push_front(&mut self, qi: usize, pi: u32) {
        let head = self.queues[qi].head_avail;
        {
            let p = &mut self.arena[pi as usize];
            p.prev_avail = NIL;
            p.next_avail = head;
            p.in_avail = true;
        }
        if head != NIL {
            self.arena[head as usize].prev_avail = pi;
        }
        self.queues[qi].head_avail = pi;
    }

    fn avail_unlink(&mut self, qi: usize, pi: u32) {
        let (prev, next) = {
            let p = &mut self.arena[pi as usize];
            debug_assert!(p.in_avail);
            p.in_avail = false;
            (p.prev_avail, p.next_avail)
        };
        if prev != NIL {
            self.arena[prev as usize].next_avail = next;
        } else {
            self.queues[qi].head_avail = next;
        }
        if next != NIL {
            self.arena[next as usize].prev_avail = prev;
        }
    }

    /// Re-inserts a formerly-full page at the position that keeps the
    /// available list an order-preserving subsequence of the all list:
    /// after its nearest all-list predecessor that is itself
    /// available. Returns the full pages stepped over (the simulated
    /// cost of the charged variant; almost always zero, since full
    /// pages are rare outside adversarial interleavings).
    fn avail_insert_in_order(&mut self, qi: usize, pi: u32) -> u64 {
        let mut steps = 0u64;
        let mut cur = self.arena[pi as usize].prev_all;
        while cur != NIL && !self.arena[cur as usize].in_avail {
            cur = self.arena[cur as usize].prev_all;
            steps += 1;
        }
        if cur == NIL {
            self.avail_push_front(qi, pi);
            return steps;
        }
        // Insert `pi` right after `cur` in the available list.
        let next = self.arena[cur as usize].next_avail;
        {
            let p = &mut self.arena[pi as usize];
            p.prev_avail = cur;
            p.next_avail = next;
            p.in_avail = true;
        }
        self.arena[cur as usize].next_avail = pi;
        if next != NIL {
            self.arena[next as usize].prev_avail = pi;
        }
        steps
    }

    /// Attempts to allocate from `(tid, class_idx)`: pops the lowest
    /// free slot of the first available page and keeps that page at
    /// the MRU front. Returns `None` if every page is full (the caller
    /// should fetch a page from the backend and retry).
    pub fn alloc(&mut self, ctx: &mut TaskletCtx<'_>, tid: usize, class_idx: usize) -> Option<u32> {
        ctx.instrs(PAGE_ALLOC_INSTRS);
        let qi = self.qi(tid, class_idx);
        let pi = self.queues[qi].head_avail;
        if pi == NIL {
            return None;
        }
        let (addr, full) = {
            let page = &mut self.arena[pi as usize];
            (page.take_lowest(), page.is_full())
        };
        // MRU: the page we just served moves to the all-list front,
        // like the legacy block list. Its available-list position is
        // already the head, so only fullness can change that list.
        if self.queues[qi].head_all != pi {
            self.all_unlink(qi, pi);
            self.all_push_front(qi, pi);
        }
        if full {
            self.avail_unlink(qi, pi);
        }
        Some(addr)
    }

    /// Installs a fresh backend page into `(tid, class_idx)` at the
    /// front of both lists (it is the new MRU page and trivially
    /// available).
    pub fn add_page(&mut self, ctx: &mut TaskletCtx<'_>, tid: usize, class_idx: usize, base: u32) {
        ctx.instrs(PAGE_LINK_INSTRS);
        let page = Page::carve(base, self.class_bytes[class_idx]);
        let pi = match self.spare.pop() {
            Some(slot) => {
                self.arena[slot as usize] = page;
                slot
            }
            None => {
                self.arena.push(page);
                (self.arena.len() - 1) as u32
            }
        };
        let frame = self.frame_of(base);
        debug_assert_eq!(self.frame_page[frame], NIL, "frame already mapped");
        self.frame_page[frame] = pi;
        let qi = self.qi(tid, class_idx);
        self.all_push_front(qi, pi);
        self.avail_push_front(qi, pi);
        self.queues[qi].pages += 1;
    }

    /// Frees the sub-block at `addr` in `(tid, class_idx)`, charging
    /// the calling tasklet the constant page-path cost.
    ///
    /// If the page becomes entirely free **and** the queue holds
    /// another page, it is detached and returned for the caller to
    /// hand back to the backend; the queue always keeps its last page
    /// to avoid thrashing the buddy allocator on alloc/free ping-pong
    /// (the legacy pools' hysteresis, preserved exactly).
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not belong to any page of the queue or
    /// the sub-block is already free (double free) — both are program
    /// bugs the shadow bookkeeping in [`crate::PimMalloc`] rules out.
    pub fn free(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        tid: usize,
        class_idx: usize,
        addr: u32,
    ) -> FreeOutcome {
        let (outcome, steps) = self.free_at(tid, class_idx, addr);
        ctx.instrs(PAGE_FREE_INSTRS + steps * PAGE_REQUEUE_STEP_INSTRS);
        outcome
    }

    /// [`PageLocal::free`] without charging the caller's tasklet: the
    /// reconciliation step of a *remote* free routed through the
    /// transfer cache, priced by [`crate::PimMalloc`] as batched MRAM
    /// traffic instead.
    pub fn free_unpriced(&mut self, tid: usize, class_idx: usize, addr: u32) -> FreeOutcome {
        self.free_at(tid, class_idx, addr).0
    }

    fn free_at(&mut self, tid: usize, class_idx: usize, addr: u32) -> (FreeOutcome, u64) {
        let qi = self.qi(tid, class_idx);
        let frame = self.frame_of(addr);
        let pi = self.frame_page[frame];
        assert_ne!(pi, NIL, "freed address {addr:#x} belongs to this queue");
        let (was_full, now_unused, base) = {
            let page = &mut self.arena[pi as usize];
            let was_full = page.is_full();
            page.put_slot(addr);
            (was_full, page.is_unused(), page.base())
        };
        if now_unused && self.queues[qi].pages > 1 {
            // Empty migration: give the page back to the backend.
            // (`was_full && now_unused` would need capacity 1, which
            // the geometry rules out, so the page is on the available
            // list here.)
            self.all_unlink(qi, pi);
            self.avail_unlink(qi, pi);
            let page_frame = self.frame_of(base);
            self.frame_page[page_frame] = NIL;
            self.spare.push(pi);
            self.queues[qi].pages -= 1;
            return (FreeOutcome::BlockReleased { block_base: base }, 0);
        }
        let steps = if was_full {
            // Full→available migration, order-preserving.
            self.avail_insert_in_order(qi, pi)
        } else {
            0
        };
        (FreeOutcome::Cached, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(2))
    }

    fn frontend() -> PageLocal {
        PageLocal::new(&SizeClassTable::paper_default(), 2, 0x1000_0000, 1 << 20)
    }

    #[test]
    fn alloc_exhausts_a_page_exactly() {
        let mut d = dpu();
        let mut f = frontend();
        let mut ctx = d.ctx(0);
        f.add_page(&mut ctx, 0, 0, 0x1000_0000); // 16 B class: 256 slots
        let mut addrs = Vec::new();
        while let Some(a) = f.alloc(&mut ctx, 0, 0) {
            addrs.push(a);
        }
        assert_eq!(addrs.len(), 256);
        let expect: Vec<u32> = (0..256).map(|i| 0x1000_0000 + i * 16).collect();
        assert_eq!(addrs, expect, "address order, like the legacy scan");
        assert_eq!(f.queue(0, 0).page_count(), 1);
        assert_eq!(f.free_slots(0, 0), 0);
    }

    #[test]
    fn mru_page_serves_first_and_freed_lowest_slot_returns_first() {
        let mut d = dpu();
        let mut f = frontend();
        let mut ctx = d.ctx(0);
        f.add_page(&mut ctx, 0, 4, 0x1000_0000); // 256 B: 16 slots
        let a = f.alloc(&mut ctx, 0, 4).unwrap();
        let b = f.alloc(&mut ctx, 0, 4).unwrap();
        assert_eq!(f.free(&mut ctx, 0, 4, a), FreeOutcome::Cached);
        assert_eq!(f.alloc(&mut ctx, 0, 4), Some(a));
        // A second page becomes the MRU and serves before the first.
        f.add_page(&mut ctx, 0, 4, 0x1000_1000);
        assert_eq!(f.alloc(&mut ctx, 0, 4), Some(0x1000_1000));
        let _ = b;
    }

    #[test]
    fn fully_free_page_released_only_if_not_last() {
        let mut d = dpu();
        let mut f = frontend();
        let mut ctx = d.ctx(0);
        f.add_page(&mut ctx, 0, 7, 0x1000_0000); // 2 KB: 2 slots
        let a = f.alloc(&mut ctx, 0, 7).unwrap();
        assert_eq!(f.free(&mut ctx, 0, 7, a), FreeOutcome::Cached);
        assert_eq!(f.queue(0, 7).page_count(), 1, "last page is kept");
        f.add_page(&mut ctx, 0, 7, 0x1000_1000);
        let b = f.alloc(&mut ctx, 0, 7).unwrap();
        assert_eq!(b, 0x1000_1000, "MRU page serves first");
        match f.free(&mut ctx, 0, 7, b) {
            FreeOutcome::BlockReleased { block_base } => assert_eq!(block_base, 0x1000_1000),
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(f.queue(0, 7).page_count(), 1);
        assert_eq!(f.live_pages(), 1, "released page recycled its slot");
    }

    #[test]
    fn full_page_reenters_available_list_in_order() {
        let mut d = dpu();
        let mut f = frontend();
        let mut ctx = d.ctx(0);
        // Fill page A (2 KB class: 2 slots), then add page B in front.
        f.add_page(&mut ctx, 0, 7, 0x1000_0000);
        let a0 = f.alloc(&mut ctx, 0, 7).unwrap();
        let a1 = f.alloc(&mut ctx, 0, 7).unwrap();
        f.add_page(&mut ctx, 0, 7, 0x1000_1000);
        let b0 = f.alloc(&mut ctx, 0, 7).unwrap();
        // Free one slot of the full page A: it must re-enter the
        // available list *behind* B (its all-list position), so B's
        // second slot is served before A's, exactly like the legacy
        // MRU scan.
        f.free(&mut ctx, 0, 7, a0);
        assert_eq!(f.alloc(&mut ctx, 0, 7), Some(0x1000_1000 + 2048));
        assert_eq!(f.alloc(&mut ctx, 0, 7), Some(a0));
        assert_eq!(f.alloc(&mut ctx, 0, 7), None, "everything full");
        let _ = (a1, b0);
    }

    #[test]
    fn unpriced_free_mutates_identically_but_charges_nothing() {
        let mut d = dpu();
        let mut priced = frontend();
        let mut unpriced = priced.clone();
        let mut ctx = d.ctx(0);
        priced.add_page(&mut ctx, 0, 4, 0x1000_0000);
        unpriced.add_page(&mut ctx, 0, 4, 0x1000_0000);
        let a = priced.alloc(&mut ctx, 0, 4).unwrap();
        assert_eq!(unpriced.alloc(&mut ctx, 0, 4), Some(a));
        let before = ctx.now();
        assert_eq!(unpriced.free_unpriced(0, 4, a), FreeOutcome::Cached);
        assert_eq!(ctx.now(), before, "unpriced free charges no cycles");
        priced.free(&mut ctx, 0, 4, a);
        assert!(ctx.now() > before, "priced free does charge");
        assert_eq!(priced.alloc(&mut ctx, 0, 4), Some(a));
        assert_eq!(unpriced.alloc(&mut ctx, 0, 4), Some(a));
    }

    #[test]
    fn queues_are_private_per_tasklet_and_class() {
        let mut d = dpu();
        let mut f = frontend();
        let mut ctx = d.ctx(0);
        f.add_page(&mut ctx, 0, 0, 0x1000_0000);
        f.add_page(&mut ctx, 1, 0, 0x1000_1000);
        assert_eq!(f.alloc(&mut ctx, 0, 0), Some(0x1000_0000));
        assert_eq!(f.alloc(&mut ctx, 1, 0), Some(0x1000_1000));
        assert_eq!(f.alloc(&mut ctx, 0, 1), None, "class 1 has no pages");
        assert_eq!(f.live_pages(), 2);
    }

    #[test]
    fn wram_budget_matches_the_legacy_bitmap_budget() {
        let table = SizeClassTable::paper_default();
        let f = PageLocal::new(&table, 2, 0, 1 << 20);
        let legacy: u32 = crate::thread_cache::ThreadCache::new(&table).bitmap_wram_bytes();
        assert_eq!(f.wram_bytes(), legacy * 2);
    }

    #[test]
    fn constant_cost_alloc_and_free() {
        // The O(1) claim, priced: the 100th op costs exactly what the
        // 1st does — no dependence on allocation history.
        let mut d = dpu();
        let mut f = frontend();
        let mut ctx = d.ctx(0);
        f.add_page(&mut ctx, 0, 1, 0x1000_0000); // 32 B: 128 slots
        let t0 = ctx.now();
        let first = f.alloc(&mut ctx, 0, 1).unwrap();
        let first_cost = (ctx.now() - t0).0;
        let mut last_cost = 0;
        for _ in 0..100 {
            let t = ctx.now();
            f.alloc(&mut ctx, 0, 1).unwrap();
            last_cost = (ctx.now() - t).0;
        }
        assert_eq!(first_cost, last_cost, "page-path alloc is O(1)");
        let t = ctx.now();
        f.free(&mut ctx, 0, 1, first);
        let first_free_cost = (ctx.now() - t).0;
        let second = f.alloc(&mut ctx, 0, 1).unwrap();
        let t = ctx.now();
        f.free(&mut ctx, 0, 1, second);
        assert_eq!((ctx.now() - t).0, first_free_cost, "free is O(1)");
    }
}
