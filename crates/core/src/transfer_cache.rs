//! The per-size-class transfer cache — PIM-malloc's middle tier for
//! cross-tasklet frees (tcmalloc's `TransferCache`, adapted to the
//! PIM cost model).
//!
//! A tasklet freeing an object it does not own no longer walks the
//! owner's private cache under the global backend lock. Instead it
//! appends the pointer to the per-class transfer ring: a handful of
//! WRAM instructions per object, plus **one** simulated MRAM
//! round-trip per `batch` objects when the staged batch flushes. The
//! owning tasklet reclaims staged objects on its next allocations of
//! that class, again paying one batched MRAM read per `batch` objects
//! claimed.
//!
//! The ring is bounded per class; overflow evicts the oldest full
//! batch to the [`crate::CentralFreeList`]. The transfer cache is a
//! *routing and pricing* layer: object liveness stays canonical in the
//! thread-cache bitmaps and the frame table, so the two-tier and
//! three-tier paths produce identical addresses by construction
//! (property-tested in `tests/tier_differential.rs`), and a block
//! release purges any staged pointers into the released block
//! ([`TransferCache::purge_block`]).

use std::collections::VecDeque;

use crate::geometry::{SizeClassTable, TierConfig};
use crate::span::block_base_of;

/// What a [`TransferCache::push`] did beyond staging the pointer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushEffect {
    /// The staged batch reached `transfer_batch` objects and flushed:
    /// the caller owes one MRAM write of the batch.
    pub flushed: bool,
    /// The class ring exceeded its cap: these oldest objects were
    /// evicted for demotion to the central free list.
    pub demoted: Vec<u32>,
}

/// Per-class bounded FIFO of remote-freed object pointers.
#[derive(Debug, Clone)]
pub struct TransferCache {
    batch: u32,
    cap: u32,
    rings: Vec<VecDeque<u32>>,
    /// Pointers staged since the last flush charge, per class.
    staged: Vec<u32>,
    /// Pointers claimed since the last refill charge, per class.
    claimed: Vec<u32>,
}

impl TransferCache {
    /// Creates an empty transfer cache with one ring per size class.
    pub fn new(classes: &SizeClassTable, tier: TierConfig) -> Self {
        TransferCache {
            batch: tier.transfer_batch,
            cap: tier.transfer_cap,
            rings: vec![VecDeque::new(); classes.len()],
            staged: vec![0; classes.len()],
            claimed: vec![0; classes.len()],
        }
    }

    /// Objects moved per simulated MRAM round-trip.
    pub fn batch(&self) -> u32 {
        self.batch
    }

    /// Stages a remote-freed pointer in class `class_idx`'s ring and
    /// reports the pricing/demotion side effects.
    pub fn push(&mut self, class_idx: usize, addr: u32) -> PushEffect {
        let ring = &mut self.rings[class_idx];
        ring.push_back(addr);
        self.staged[class_idx] += 1;
        let flushed = self.staged[class_idx] >= self.batch;
        if flushed {
            self.staged[class_idx] = 0;
        }
        let mut demoted = Vec::new();
        if ring.len() > self.cap as usize {
            for _ in 0..self.batch.min(ring.len() as u32) {
                demoted.push(ring.pop_front().expect("ring nonempty"));
            }
        }
        PushEffect { flushed, demoted }
    }

    /// Claims the staged pointer `addr` from class `class_idx` if
    /// present. Returns whether it was staged, and — when it was —
    /// whether this claim completes a batch (the caller owes one MRAM
    /// read of the batch).
    pub fn take(&mut self, class_idx: usize, addr: u32) -> Option<bool> {
        let ring = &mut self.rings[class_idx];
        let pos = ring.iter().position(|&a| a == addr)?;
        ring.remove(pos);
        self.claimed[class_idx] += 1;
        let charge = self.claimed[class_idx] >= self.batch;
        if charge {
            self.claimed[class_idx] = 0;
        }
        Some(charge)
    }

    /// Discards every staged pointer into the cache block at `base`
    /// (the block returned to the buddy backend), returning how many
    /// were dropped. Host-side bookkeeping; no simulated cost.
    pub fn purge_block(&mut self, base: u32) -> u32 {
        let mut purged = 0;
        for ring in &mut self.rings {
            let before = ring.len();
            ring.retain(|&a| block_base_of(a) != base);
            purged += (before - ring.len()) as u32;
        }
        purged
    }

    /// Staged pointers in class `class_idx`.
    pub fn staged_in_class(&self, class_idx: usize) -> usize {
        self.rings[class_idx].len()
    }

    /// Staged pointers across all classes.
    pub fn staged_total(&self) -> usize {
        self.rings.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TierConfig;

    fn cache(batch: u32, cap: u32) -> TransferCache {
        TransferCache::new(
            &SizeClassTable::paper_default(),
            TierConfig {
                transfer_batch: batch,
                transfer_cap: cap,
                ..TierConfig::default()
            },
        )
    }

    #[test]
    fn every_batch_th_push_flushes() {
        let mut t = cache(4, 64);
        let mut flushes = 0;
        for i in 0..12 {
            let e = t.push(0, 0x1000 + i * 16);
            assert!(e.demoted.is_empty());
            if e.flushed {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 3, "12 pushes at batch 4");
        assert_eq!(t.staged_in_class(0), 12);
        assert_eq!(t.staged_total(), 12);
    }

    #[test]
    fn overflow_demotes_the_oldest_batch() {
        let mut t = cache(4, 8);
        for i in 0..8 {
            assert!(t.push(2, 0x2000 + i * 64).demoted.is_empty());
        }
        let e = t.push(2, 0x2000 + 8 * 64);
        assert_eq!(e.demoted, vec![0x2000, 0x2040, 0x2080, 0x20C0]);
        assert_eq!(t.staged_in_class(2), 5);
    }

    #[test]
    fn take_claims_specific_addresses_and_charges_per_batch() {
        let mut t = cache(2, 64);
        t.push(1, 0xA0);
        t.push(1, 0xC0);
        t.push(1, 0xE0);
        assert_eq!(t.take(1, 0xC0), Some(false), "first claim: staged");
        assert_eq!(
            t.take(1, 0xA0),
            Some(true),
            "second claim completes a batch"
        );
        assert_eq!(t.take(1, 0xC0), None, "already claimed");
        assert_eq!(t.take(0, 0xE0), None, "wrong class");
        assert_eq!(t.staged_in_class(1), 1);
    }

    #[test]
    fn purge_drops_only_the_released_block() {
        let mut t = cache(4, 64);
        t.push(0, 0x1010);
        t.push(0, 0x1020);
        t.push(3, 0x1080);
        t.push(3, 0x2080);
        assert_eq!(t.purge_block(0x1000), 3);
        assert_eq!(t.staged_total(), 1);
        assert_eq!(t.take(3, 0x2080), Some(false));
    }
}
