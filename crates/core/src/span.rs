//! Span accounting for the central free list.
//!
//! A *span* is one backend block (4 KB cache block) viewed from the
//! middle tier: the central free list tracks, per span, how many of
//! its objects currently sit in central circulation. Spans exist only
//! while the middle tier holds objects from their block; when the
//! owning thread cache drains the block and returns it to the buddy
//! backend, the span is retired ([`SpanRegistry::retire`]) and its
//! remaining middle-tier objects are discarded — the canonical
//! bitmap/frame-table state, not the overlay, decides when a block is
//! actually free.

use std::collections::BTreeMap;

use crate::thread_cache::CACHE_BLOCK_BYTES;

/// Middle-tier accounting for one backend block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Base address of the 4 KB block.
    pub base: u32,
    /// Size class its sub-blocks belong to.
    pub class_idx: usize,
    /// Objects of this span currently held by the central free list.
    pub central_objects: u32,
}

/// Deterministic (address-ordered) registry of live spans.
#[derive(Debug, Clone, Default)]
pub struct SpanRegistry {
    spans: BTreeMap<u32, Span>,
}

/// Base address of the cache block containing `addr`.
pub fn block_base_of(addr: u32) -> u32 {
    addr & !(CACHE_BLOCK_BYTES - 1)
}

impl SpanRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SpanRegistry::default()
    }

    /// Notes that one object of `addr`'s block entered central
    /// circulation, creating the span on first contact.
    pub fn note_object(&mut self, addr: u32, class_idx: usize) {
        let base = block_base_of(addr);
        let span = self.spans.entry(base).or_insert(Span {
            base,
            class_idx,
            central_objects: 0,
        });
        debug_assert_eq!(span.class_idx, class_idx, "span class is stable");
        span.central_objects += 1;
    }

    /// Notes that one object of `addr`'s block left central
    /// circulation (claimed by an allocation). The span is dropped
    /// once empty.
    pub fn release_object(&mut self, addr: u32) {
        let base = block_base_of(addr);
        let span = self.spans.get_mut(&base).expect("object has a span");
        span.central_objects -= 1;
        if span.central_objects == 0 {
            self.spans.remove(&base);
        }
    }

    /// Retires the span at `base` (its block returned to the buddy
    /// backend), returning it if it existed.
    pub fn retire(&mut self, base: u32) -> Option<Span> {
        self.spans.remove(&base)
    }

    /// Live spans (blocks with objects in central circulation).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no span is live.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span covering `addr`, if live.
    pub fn span_of(&self, addr: u32) -> Option<&Span> {
        self.spans.get(&block_base_of(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_base_masks_low_bits() {
        assert_eq!(block_base_of(0x1000), 0x1000);
        assert_eq!(block_base_of(0x1FFF), 0x1000);
        assert_eq!(block_base_of(0x2040), 0x2000);
    }

    #[test]
    fn spans_are_created_counted_and_dropped() {
        let mut r = SpanRegistry::new();
        r.note_object(0x1010, 2);
        r.note_object(0x1020, 2);
        r.note_object(0x2000, 5);
        assert_eq!(r.len(), 2);
        assert_eq!(r.span_of(0x1FFF).unwrap().central_objects, 2);
        r.release_object(0x1010);
        assert_eq!(r.span_of(0x1000).unwrap().central_objects, 1);
        r.release_object(0x1020);
        assert!(r.span_of(0x1000).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn retire_drops_the_whole_span() {
        let mut r = SpanRegistry::new();
        r.note_object(0x3008, 0);
        r.note_object(0x3010, 0);
        let s = r.retire(0x3000).expect("span existed");
        assert_eq!(s.central_objects, 2);
        assert_eq!(s.class_idx, 0);
        assert!(r.is_empty());
        assert!(r.retire(0x3000).is_none());
    }
}
