//! Allocator construction: the shared size-class table and the
//! [`AllocGeometry`] builder.
//!
//! Historically every call site built a [`PimMallocConfig`] by struct
//! literal (`PimMallocConfig { heap_size, ..PimMallocConfig::sw(n) }`)
//! and poked fields afterwards, and every layer — thread caches,
//! routing, tests — carried its own `&[u32]` copy of the size-class
//! geometry. This module replaces both:
//!
//! * [`SizeClassTable`] is the single validated owner of the
//!   size-class list. `class_for`/`class_bytes` live here; the thread
//!   caches, the transfer cache, and the central free list all consume
//!   one shared table instead of private slices.
//! * [`AllocGeometry`] is a fluent builder mirroring
//!   `pim_sim::SimContextBuilder`: start from a paper preset
//!   ([`AllocGeometry::sw`] / [`AllocGeometry::hw_sw`]), chain
//!   `with_*` overrides, and [`AllocGeometry::build`] the immutable
//!   [`PimMallocConfig`] that [`crate::PimMalloc::init`] consumes.
//!
//! ```
//! use pim_malloc::{AllocGeometry, SizeClassTable};
//!
//! let cfg = AllocGeometry::sw(16)
//!     .with_heap_size(1 << 20)
//!     .with_size_classes(SizeClassTable::new([32, 64, 256, 1024]))
//!     .with_transfer_batch(4)
//!     .with_quarantine(8)
//!     .build();
//! assert_eq!(cfg.heap_size(), 1 << 20);
//! assert_eq!(cfg.size_classes().max_bytes(), 1024);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::buddy::DescentPolicy;
use crate::pim_malloc::BackendKind;
use crate::thread_cache::{CACHE_BLOCK_BYTES, DEFAULT_SIZE_CLASSES};

/// Required alignment of every size class: sub-block addresses are
/// `base + slot * class_bytes`, and the DPU's MRAM interface moves
/// 8-byte-aligned words, so classes must be multiples of 8.
pub const SIZE_CLASS_ALIGN: u32 = 8;

/// Why a size-class list was rejected by [`SizeClassTable::try_new`].
///
/// Synthesized tables (`pim-profile`) make arbitrary class lists
/// reachable from data, so construction reports malformed geometry as
/// a typed error instead of silently accepting or panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// The class list is empty.
    Empty,
    /// A class of zero bytes (no sub-block can be zero-sized).
    ZeroSize,
    /// A class not aligned to [`SIZE_CLASS_ALIGN`] bytes.
    Misaligned {
        /// The offending class size.
        class: u32,
    },
    /// A class repeated in the list.
    Duplicate {
        /// The repeated class size.
        class: u32,
    },
    /// Classes out of ascending order.
    Unsorted {
        /// The class that precedes `class` in the list.
        prev: u32,
        /// The out-of-order class.
        class: u32,
    },
    /// A class larger than half a [`CACHE_BLOCK_BYTES`] block (it
    /// could never subdivide a cache block into at least two slots).
    TooLarge {
        /// The offending class size.
        class: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Empty => write!(f, "need at least one size class"),
            GeometryError::ZeroSize => write!(f, "size class of zero bytes"),
            GeometryError::Misaligned { class } => {
                write!(f, "size class {class} not aligned to {SIZE_CLASS_ALIGN} B")
            }
            GeometryError::Duplicate { class } => {
                write!(f, "duplicate size class {class}")
            }
            GeometryError::Unsorted { prev, class } => write!(
                f,
                "size classes must be strictly increasing ({class} after {prev})"
            ),
            GeometryError::TooLarge { class } => write!(
                f,
                "size class {class} too large for a {CACHE_BLOCK_BYTES} B block"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// The validated, shared size-class geometry of one allocator: a
/// strictly increasing list of 8-byte-aligned sub-block sizes, each at
/// most half a [`CACHE_BLOCK_BYTES`] block. The paper's default is
/// powers of two ([`SizeClassTable::paper_default`]); synthesized
/// tables (`pim-profile`) may use any aligned boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeClassTable {
    classes: Vec<u32>,
}

impl SizeClassTable {
    /// Builds a table from `classes`, validating the geometry.
    ///
    /// # Errors
    ///
    /// [`GeometryError`] naming the first violated invariant: empty,
    /// zero-sized, misaligned, duplicate, unsorted, or oversized class
    /// lists are all rejected.
    pub fn try_new(classes: impl Into<Vec<u32>>) -> Result<Self, GeometryError> {
        let classes = classes.into();
        if classes.is_empty() {
            return Err(GeometryError::Empty);
        }
        let mut prev = 0;
        for &c in &classes {
            if c == 0 {
                return Err(GeometryError::ZeroSize);
            }
            if c % SIZE_CLASS_ALIGN != 0 {
                return Err(GeometryError::Misaligned { class: c });
            }
            if c > CACHE_BLOCK_BYTES / 2 {
                return Err(GeometryError::TooLarge { class: c });
            }
            if c == prev {
                return Err(GeometryError::Duplicate { class: c });
            }
            if c < prev {
                return Err(GeometryError::Unsorted { prev, class: c });
            }
            prev = c;
        }
        Ok(SizeClassTable { classes })
    }

    /// Builds a table from `classes`.
    ///
    /// # Panics
    ///
    /// Panics on the invariants [`SizeClassTable::try_new`] reports as
    /// errors (empty, zero-size, misaligned, duplicate, unsorted, or
    /// oversized classes).
    pub fn new(classes: impl Into<Vec<u32>>) -> Self {
        match Self::try_new(classes) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// The paper's default geometry: powers of two from 16 B to 2 KB.
    pub fn paper_default() -> Self {
        SizeClassTable::new(DEFAULT_SIZE_CLASSES)
    }

    /// The class sizes, smallest first.
    pub fn classes(&self) -> &[u32] {
        &self.classes
    }

    /// Number of size classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Always false — the constructor rejects empty tables; provided
    /// for clippy's `len_without_is_empty` contract.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Index of the smallest class that fits `size`, or `None` if the
    /// request must bypass the caches.
    pub fn class_for(&self, size: u32) -> Option<usize> {
        if size == 0 {
            return None;
        }
        self.classes.iter().position(|&c| c >= size)
    }

    /// Sub-block size of class `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn class_bytes(&self, idx: usize) -> u32 {
        self.classes[idx]
    }

    /// Largest size the caches can serve; bigger requests bypass.
    pub fn max_bytes(&self) -> u32 {
        *self.classes.last().expect("nonempty")
    }
}

/// Which allocation frontend serves size-class requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrontendKind {
    /// The legacy per-tasklet thread caches: a `Vec` of blocks per
    /// (tasklet, class) pool, scanned block-by-block and word-by-word
    /// on every malloc/free. Default — every figure committed before
    /// the page path landed reproduces byte-identically on it.
    #[default]
    BitmapClasses,
    /// The mimalloc-style page/queue fast path
    /// ([`crate::page_queue::PageLocal`]): sharded per-(tasklet,
    /// class) page queues with intrusive free lists and O(1)
    /// frame-table free routing. Same addresses, errors, and frag
    /// accounting as [`FrontendKind::BitmapClasses`] (differentially
    /// property-tested), with constant-cost hot paths.
    PageLocal,
}

/// Which free-path hierarchy the allocator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierPolicy {
    /// Thread caches over the buddy backend only. Cross-tasklet frees
    /// mutate the owner's private cache under the global backend lock
    /// — the pre-middle-tier design, kept reachable for differential
    /// testing.
    TwoTier,
    /// Thread caches, per-size-class transfer cache, and central free
    /// list over the buddy backend. Cross-tasklet frees are staged in
    /// the transfer cache in batches (one MRAM round-trip per
    /// `transfer_batch` objects) instead of taking the global lock.
    ThreeTier,
}

/// Middle-tier configuration: policy plus the transfer-cache shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Two-tier (global-lock remote frees) or three-tier (default).
    pub policy: TierPolicy,
    /// Objects moved per simulated MRAM round-trip through the
    /// transfer cache.
    pub transfer_batch: u32,
    /// Per-class transfer-cache capacity in objects; overflow demotes
    /// the oldest batch to the central free list.
    pub transfer_cap: u32,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            policy: TierPolicy::ThreeTier,
            transfer_batch: 8,
            transfer_cap: 64,
        }
    }
}

/// Immutable configuration of a [`crate::PimMalloc`] instance (one per
/// DPU). Built by [`AllocGeometry`]; read through getters.
#[derive(Debug, Clone, PartialEq)]
pub struct PimMallocConfig {
    pub(crate) heap_base: u32,
    pub(crate) heap_size: u32,
    pub(crate) meta_base: u32,
    pub(crate) backend_min_block: u32,
    pub(crate) size_classes: SizeClassTable,
    pub(crate) n_tasklets: usize,
    pub(crate) backend: BackendKind,
    pub(crate) prepopulate: bool,
    pub(crate) descent: DescentPolicy,
    pub(crate) quarantine_after: Option<u32>,
    pub(crate) tier: TierConfig,
    pub(crate) frontend: FrontendKind,
}

impl PimMallocConfig {
    /// First address of the heap region in MRAM.
    pub fn heap_base(&self) -> u32 {
        self.heap_base
    }

    /// Heap capacity in bytes.
    pub fn heap_size(&self) -> u32 {
        self.heap_size
    }

    /// MRAM address of the backend's metadata array.
    pub fn meta_base(&self) -> u32 {
        self.meta_base
    }

    /// The shared size-class geometry.
    pub fn size_classes(&self) -> &SizeClassTable {
        &self.size_classes
    }

    /// Number of tasklets (thread caches) provisioned.
    pub fn n_tasklets(&self) -> usize {
        self.n_tasklets
    }

    /// Metadata store of the backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Whether init pre-populates every thread-cache pool.
    pub fn prepopulate(&self) -> bool {
        self.prepopulate
    }

    /// Invalid frees tolerated before self-quarantine.
    pub fn quarantine_after(&self) -> Option<u32> {
        self.quarantine_after
    }

    /// The middle-tier configuration.
    pub fn tier(&self) -> TierConfig {
        self.tier
    }

    /// The allocation frontend serving size-class requests.
    pub fn frontend(&self) -> FrontendKind {
        self.frontend
    }
}

/// Fluent builder for [`PimMallocConfig`], mirroring
/// `pim_sim::SimContextBuilder`: preset entry points, `with_*`
/// overrides, terminal [`AllocGeometry::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct AllocGeometry {
    cfg: PimMallocConfig,
}

impl AllocGeometry {
    /// The paper's PIM-malloc-SW preset for `n_tasklets`: 32 MB heap,
    /// coarse 2 KB software metadata window, eager pre-population,
    /// three-tier free path.
    pub fn sw(n_tasklets: usize) -> Self {
        AllocGeometry {
            cfg: PimMallocConfig {
                heap_base: 0x0200_0000,
                heap_size: 32 << 20,
                meta_base: 0x0100_0000,
                backend_min_block: CACHE_BLOCK_BYTES,
                size_classes: SizeClassTable::paper_default(),
                n_tasklets,
                backend: BackendKind::Coarse { buffer_bytes: 2048 },
                prepopulate: true,
                descent: DescentPolicy::FullMarks,
                quarantine_after: None,
                tier: TierConfig::default(),
                frontend: FrontendKind::default(),
            },
        }
    }

    /// The paper's PIM-malloc-HW/SW preset: as [`AllocGeometry::sw`]
    /// with the backend metadata served by the hardware buddy cache.
    pub fn hw_sw(n_tasklets: usize) -> Self {
        AllocGeometry::sw(n_tasklets).with_backend(BackendKind::HwCache {
            cache: pim_sim::BuddyCacheConfig::default(),
        })
    }

    /// Overrides the heap base address.
    pub fn with_heap_base(mut self, addr: u32) -> Self {
        self.cfg.heap_base = addr;
        self
    }

    /// Overrides the heap size.
    pub fn with_heap_size(mut self, bytes: u32) -> Self {
        self.cfg.heap_size = bytes;
        self
    }

    /// Overrides the backend metadata base address.
    pub fn with_meta_base(mut self, addr: u32) -> Self {
        self.cfg.meta_base = addr;
        self
    }

    /// Replaces the size-class table shared by the thread caches, the
    /// transfer cache, and the central free list.
    pub fn with_size_classes(mut self, table: SizeClassTable) -> Self {
        self.cfg.size_classes = table;
        self
    }

    /// Selects the backend metadata store.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Overrides the backend descent policy (ablation hook).
    pub fn with_descent(mut self, descent: DescentPolicy) -> Self {
        self.cfg.descent = descent;
        self
    }

    /// Disables thread-cache pre-population (PIM-malloc-lazy,
    /// Table III).
    pub fn lazy(mut self) -> Self {
        self.cfg.prepopulate = false;
        self
    }

    /// Quarantines the allocator after `n` invalid frees (fault
    /// hardening for hostile or corrupted callers).
    pub fn with_quarantine(mut self, n: u32) -> Self {
        self.cfg.quarantine_after = Some(n);
        self
    }

    /// Objects per simulated MRAM round-trip through the transfer
    /// cache (default 8).
    pub fn with_transfer_batch(mut self, objects: u32) -> Self {
        self.cfg.tier.transfer_batch = objects;
        self
    }

    /// Per-class transfer-cache capacity in objects (default 64);
    /// overflow demotes the oldest batch to the central free list.
    pub fn with_cache_caps(mut self, transfer_cap: u32) -> Self {
        self.cfg.tier.transfer_cap = transfer_cap;
        self
    }

    /// Selects the free-path hierarchy (default
    /// [`TierPolicy::ThreeTier`]).
    pub fn with_tiering(mut self, policy: TierPolicy) -> Self {
        self.cfg.tier.policy = policy;
        self
    }

    /// Shorthand for `with_tiering(TierPolicy::TwoTier)` — the
    /// pre-middle-tier free path, kept for differential testing.
    pub fn two_tier(self) -> Self {
        self.with_tiering(TierPolicy::TwoTier)
    }

    /// Selects the allocation frontend (default
    /// [`FrontendKind::BitmapClasses`]).
    pub fn with_frontend(mut self, frontend: FrontendKind) -> Self {
        self.cfg.frontend = frontend;
        self
    }

    /// Routes size-class requests through the mimalloc-style
    /// page/queue fast path — shorthand for
    /// `with_frontend(FrontendKind::PageLocal)`.
    pub fn page_local(self) -> Self {
        self.with_frontend(FrontendKind::PageLocal)
    }

    /// Routes size-class requests through the legacy bitmap-scan
    /// thread caches (the default) — shorthand for
    /// `with_frontend(FrontendKind::BitmapClasses)`.
    pub fn bitmap_classes(self) -> Self {
        self.with_frontend(FrontendKind::BitmapClasses)
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry: zero or non-power-of-two heap
    /// size, heap base not aligned to the cache block, a transfer
    /// batch of zero, or a transfer cap smaller than one batch.
    pub fn build(self) -> PimMallocConfig {
        let cfg = self.cfg;
        assert!(
            cfg.heap_size.is_power_of_two(),
            "heap size {} not a power of two",
            cfg.heap_size
        );
        assert_eq!(
            cfg.heap_base % CACHE_BLOCK_BYTES,
            0,
            "heap base must be cache-block aligned"
        );
        assert!(cfg.tier.transfer_batch >= 1, "transfer batch must be >= 1");
        assert!(
            cfg.tier.transfer_cap >= cfg.tier.transfer_batch,
            "transfer cap ({}) must hold at least one batch ({})",
            cfg.tier.transfer_cap,
            cfg.tier.transfer_batch
        );
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup_rounds_up() {
        let t = SizeClassTable::paper_default();
        assert_eq!(t.class_for(1), Some(0)); // 16 B
        assert_eq!(t.class_for(16), Some(0));
        assert_eq!(t.class_for(17), Some(1)); // 32 B
        assert_eq!(t.class_for(2048), Some(7));
        assert_eq!(t.class_for(2049), None); // bypass
        assert_eq!(t.class_for(0), None);
        assert_eq!(t.max_bytes(), 2048);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_classes_rejected() {
        SizeClassTable::new([32, 16]);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn class_larger_than_half_block_rejected() {
        SizeClassTable::new([4096]);
    }

    #[test]
    fn try_new_reports_each_rejection_as_a_typed_error() {
        assert_eq!(
            SizeClassTable::try_new(Vec::<u32>::new()),
            Err(GeometryError::Empty)
        );
        assert_eq!(
            SizeClassTable::try_new([16, 0, 64]),
            Err(GeometryError::ZeroSize)
        );
        assert_eq!(
            SizeClassTable::try_new([16, 28, 64]),
            Err(GeometryError::Misaligned { class: 28 })
        );
        assert_eq!(
            SizeClassTable::try_new([16, 64, 64]),
            Err(GeometryError::Duplicate { class: 64 })
        );
        assert_eq!(
            SizeClassTable::try_new([64, 16]),
            Err(GeometryError::Unsorted {
                prev: 64,
                class: 16
            })
        );
        assert_eq!(
            SizeClassTable::try_new([16, 4096]),
            Err(GeometryError::TooLarge { class: 4096 })
        );
        // Errors display the offending class for diagnostics.
        assert!(GeometryError::Misaligned { class: 28 }
            .to_string()
            .contains("28"));
    }

    #[test]
    fn aligned_non_power_of_two_classes_are_valid() {
        // Synthesized geometry: arbitrary 8-byte-aligned boundaries.
        let t = SizeClassTable::try_new([24, 72, 520, 2040]).unwrap();
        assert_eq!(t.class_for(25), Some(1)); // 72 B
        assert_eq!(t.class_for(2040), Some(3));
        assert_eq!(t.class_for(2041), None); // bypass
        assert_eq!(t.max_bytes(), 2040);
    }

    #[test]
    fn presets_match_the_paper() {
        let sw = AllocGeometry::sw(16).build();
        assert_eq!(sw.heap_size(), 32 << 20);
        assert_eq!(sw.n_tasklets(), 16);
        assert_eq!(sw.size_classes().classes(), DEFAULT_SIZE_CLASSES);
        assert!(sw.prepopulate());
        assert!(matches!(sw.backend(), BackendKind::Coarse { .. }));
        assert_eq!(sw.tier().policy, TierPolicy::ThreeTier);
        let hw = AllocGeometry::hw_sw(16).build();
        assert!(matches!(hw.backend(), BackendKind::HwCache { .. }));
    }

    #[test]
    fn builder_overrides_compose() {
        let cfg = AllocGeometry::sw(4)
            .with_heap_size(1 << 20)
            .with_heap_base(0x0040_0000)
            .with_meta_base(0x0030_0000)
            .with_size_classes(SizeClassTable::new([64, 512]))
            .with_transfer_batch(4)
            .with_cache_caps(16)
            .with_quarantine(3)
            .lazy()
            .build();
        assert_eq!(cfg.heap_size(), 1 << 20);
        assert_eq!(cfg.heap_base(), 0x0040_0000);
        assert_eq!(cfg.meta_base(), 0x0030_0000);
        assert_eq!(cfg.size_classes().classes(), [64, 512]);
        assert_eq!(cfg.tier().transfer_batch, 4);
        assert_eq!(cfg.tier().transfer_cap, 16);
        assert_eq!(cfg.quarantine_after(), Some(3));
        assert!(!cfg.prepopulate());
    }

    #[test]
    fn two_tier_is_config_reachable() {
        let cfg = AllocGeometry::sw(2).two_tier().build();
        assert_eq!(cfg.tier().policy, TierPolicy::TwoTier);
    }

    #[test]
    fn frontend_defaults_to_bitmap_and_toggles_both_ways() {
        assert_eq!(
            AllocGeometry::sw(2).build().frontend(),
            FrontendKind::BitmapClasses
        );
        assert_eq!(
            AllocGeometry::sw(2).page_local().build().frontend(),
            FrontendKind::PageLocal
        );
        assert_eq!(
            AllocGeometry::sw(2)
                .page_local()
                .bitmap_classes()
                .build()
                .frontend(),
            FrontendKind::BitmapClasses
        );
    }

    #[test]
    #[should_panic(expected = "must hold at least one batch")]
    fn cap_below_batch_rejected() {
        AllocGeometry::sw(1)
            .with_transfer_batch(16)
            .with_cache_caps(8)
            .build();
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_heap_rejected() {
        AllocGeometry::sw(1)
            .with_heap_size((1 << 20) + 4096)
            .build();
    }
}
