//! Metadata store backed by the hardware buddy cache (PIM-malloc-HW/SW).
//!
//! Each buddy-cache entry holds one 4-byte metadata *word* — sixteen
//! 2-bit node states — keyed by its MRAM address. The runtime follows
//! Figure 13(b) of the paper: `lookup_bc`; on a hit, `read_bc`; on a
//! miss, fetch *only the requested word* from DRAM (one minimum-size
//! DMA beat), evict the LRU entry (writing it back if dirty), and
//! install the word with `write_bc`. Every cache operation costs a
//! single instruction, reflecting the 1-cycle CAM access.

use pim_sim::{BuddyCache, BuddyCacheConfig, BuddyCacheStats, LookupResult, TaskletCtx};

use super::{BitArray, MetaStats, MetadataStore, NodeState};

/// Minimum DMA transfer size on UPMEM hardware.
const DMA_GRANULE: u32 = 8;
/// Instructions of miss-path bookkeeping besides the DMA and cache ops.
const MISS_INSTRS: u64 = 40;

/// Hardware-buddy-cache-backed metadata store.
#[derive(Debug, Clone)]
pub struct HwCacheStore {
    bits: BitArray,
    meta_base: u32,
    cache: BuddyCache,
    stats: MetaStats,
}

impl HwCacheStore {
    /// Creates a store for `nodes` nodes backed by MRAM at `meta_base`,
    /// with the given buddy-cache configuration.
    pub fn new(nodes: u32, meta_base: u32, cache_config: BuddyCacheConfig) -> Self {
        HwCacheStore {
            bits: BitArray::new(nodes),
            meta_base,
            cache: BuddyCache::new(cache_config),
            stats: MetaStats::default(),
        }
    }

    /// Statistics of the underlying hardware cache.
    pub fn cache_stats(&self) -> BuddyCacheStats {
        self.cache.stats()
    }

    /// MRAM address of the 4-byte word holding node `idx`.
    fn word_addr(&self, idx: u32) -> u32 {
        self.meta_base + (BitArray::byte_of(idx) & !3)
    }

    /// Reads the authoritative 4-byte word containing node `idx`.
    fn word_value(&self, idx: u32) -> u32 {
        // Node states live in `bits`; assemble the containing word.
        let first_node = (idx / 16) * 16;
        let mut word = 0u32;
        for k in 0..16 {
            let n = first_node + k;
            if n >= 1 && n <= self.bits_len() {
                word |= u32::from(self.bits.get(n).to_bits()) << (2 * k);
            }
        }
        word
    }

    fn bits_len(&self) -> u32 {
        self.bits.nodes()
    }

    /// Ensures node `idx`'s word is cached; charges lookup and, on a
    /// miss, the fill path (DMA + eviction write-back + `write_bc`).
    fn ensure(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> usize {
        let addr = self.word_addr(idx);
        // The getMetadata wrapper's call and index math overhead is
        // common with the SW path; only the buffer search is hardware.
        ctx.instrs(15); // call + index math + lookup_bc
        match self.cache.lookup(addr) {
            LookupResult::Hit(slot) => {
                self.stats.hits += 1;
                slot
            }
            LookupResult::Miss => {
                self.stats.misses += 1;
                ctx.instrs(MISS_INSTRS);
                // Fetch only the requested word (one minimum DMA beat).
                ctx.mram_read(addr, DMA_GRANULE);
                self.stats.bytes_read += u64::from(DMA_GRANULE);
                let value = self.word_value(idx);
                ctx.instrs(1); // write_bc
                if let Some(victim) = self.cache.fill(addr, value) {
                    if victim.dirty {
                        ctx.mram_write(victim.addr, DMA_GRANULE);
                        self.stats.bytes_written += u64::from(DMA_GRANULE);
                    }
                }
                match self.cache.lookup(addr) {
                    LookupResult::Hit(slot) => slot,
                    LookupResult::Miss => unreachable!("just filled"),
                }
            }
        }
    }
}

impl MetadataStore for HwCacheStore {
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState {
        let slot = self.ensure(ctx, idx);
        ctx.instrs(10); // read_bc + 2-bit extract
        let word = self.cache.read(slot);
        NodeState::from_bits(((word >> (2 * (idx % 16))) & 0b11) as u8)
    }

    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState) {
        let slot = self.ensure(ctx, idx);
        ctx.instrs(10); // write_bc (update in place, marks dirty)
        self.bits.set(idx, state);
        let word = self.word_value(idx);
        self.cache.update(slot, word);
    }

    fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        // Zero the MRAM metadata and init_bc the cache.
        let len = self.bits.len_bytes();
        let mut off = 0;
        while off < len {
            let chunk = 2048.min(len - off);
            ctx.mram_write(self.meta_base + off, chunk);
            off += chunk;
        }
        ctx.instrs(1); // init_bc
        self.bits.clear();
        self.cache.init();
        self.stats = MetaStats::default();
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }

    fn peek(&self, idx: u32) -> NodeState {
        self.bits.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    fn store(nodes: u32) -> HwCacheStore {
        HwCacheStore::new(nodes, 0x0800_0000, BuddyCacheConfig::default())
    }

    #[test]
    fn sixteen_nodes_share_one_cached_word() {
        let mut d = dpu();
        let mut s = store(1 << 12);
        let mut ctx = d.ctx(0);
        let _ = s.get(&mut ctx, 16); // cold miss fetches word for nodes 16..31
        for idx in 17..32 {
            let _ = s.get(&mut ctx, idx);
        }
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().hits, 15);
        assert_eq!(s.stats().bytes_read, 8, "only one beat fetched");
    }

    #[test]
    fn set_then_get_roundtrips_through_the_cam() {
        let mut d = dpu();
        let mut s = store(1 << 12);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 100, NodeState::SplitFull);
        assert_eq!(s.get(&mut ctx, 100), NodeState::SplitFull);
        assert_eq!(s.peek(100), NodeState::SplitFull);
        // Neighbors in the same word are unaffected.
        assert_eq!(s.get(&mut ctx, 101), NodeState::Free);
    }

    #[test]
    fn dirty_eviction_writes_back_one_beat() {
        let mut d = dpu();
        // One-entry cache: every new word evicts the previous one.
        let mut s = HwCacheStore::new(
            1 << 16,
            0,
            BuddyCacheConfig {
                entries: 1,
                bytes_per_entry: 4,
            },
        );
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 1, NodeState::Split); // word 0, dirty
        let _ = s.get(&mut ctx, 64); // word 4 → evicts dirty word 0
        assert_eq!(s.stats().bytes_written, 8);
        assert_eq!(
            s.peek(1),
            NodeState::Split,
            "write-back preserved the value"
        );
    }

    #[test]
    fn misses_transfer_far_less_than_a_coarse_window() {
        let mut d = dpu();
        let mut s = store(1 << 20);
        let mut ctx = d.ctx(0);
        // Walk a root-to-leaf path: 20 scattered words.
        let mut idx = 1u32;
        while idx < (1 << 20) {
            let _ = s.get(&mut ctx, idx);
            idx *= 2;
        }
        // 8 B per miss vs the 2048 B a coarse window would move.
        assert!(s.stats().bytes_read <= 8 * 20);
    }

    #[test]
    fn repeated_path_traversal_hits_after_warmup() {
        let mut d = dpu();
        let mut s = store(1 << 12);
        let mut ctx = d.ctx(0);
        let path: Vec<u32> = (0..8).map(|l| 1u32 << l).collect();
        for &n in &path {
            let _ = s.get(&mut ctx, n);
        }
        let cold_misses = s.stats().misses;
        for _ in 0..10 {
            for &n in &path {
                let _ = s.get(&mut ctx, n);
            }
        }
        assert_eq!(
            s.stats().misses,
            cold_misses,
            "upper-tree words must stay resident (temporal locality)"
        );
        assert!(s.cache_stats().hit_rate() > 0.8);
    }

    #[test]
    fn reset_initializes_cache_and_metadata() {
        let mut d = dpu();
        let mut s = store(1 << 12);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 5, NodeState::Allocated);
        s.reset(&mut ctx);
        assert_eq!(s.peek(5), NodeState::Free);
        assert_eq!(s.stats(), MetaStats::default());
        assert_eq!(s.cache_stats().hits, 0);
    }
}
