//! The all-software fine-grained LRU metadata buffer (§IV-B ablation).
//!
//! Before adding hardware, the paper tried managing the WRAM metadata
//! buffer at a fine granularity with a software LRU policy. It *does*
//! cut DRAM transfers, but tag search and LRU maintenance are ordinary
//! DPU instructions, and that per-access software overhead swamps the
//! savings — a 29% regression on the 16-thread 4 KB microbenchmark.
//! This store reproduces that trade-off.

use pim_sim::TaskletCtx;

use super::{BitArray, MetaStats, MetadataStore, NodeState};

/// Instructions per tag-compare step of the software lookup loop.
const SCAN_INSTRS_PER_ENTRY: u64 = 4;
/// Instructions to maintain the software LRU list on every access: a
/// doubly-linked list splice in WRAM (six pointer loads/stores plus
/// head/tail updates and branches) on an ISA with no indexed
/// addressing modes.
const LRU_UPDATE_INSTRS: u64 = 80;
/// Instructions of miss handling besides the DMA itself.
const MISS_INSTRS: u64 = 30;

/// Fine-grained software-LRU metadata buffer: `entries` granules of
/// `granule_bytes` each, fully associative, true LRU.
#[derive(Debug, Clone)]
pub struct FineLruStore {
    bits: BitArray,
    meta_base: u32,
    granule_bytes: u32,
    /// Cached granule base byte offsets, most-recently-used first.
    resident: Vec<(u32, bool)>, // (granule start byte, dirty)
    capacity: usize,
    stats: MetaStats,
}

impl FineLruStore {
    /// Creates a store with `entries` granules of `granule_bytes`,
    /// backed by MRAM at `meta_base`.
    ///
    /// # Panics
    ///
    /// Panics if `granule_bytes` is not a power of two ≥ 8, or
    /// `entries` is zero.
    pub fn new(nodes: u32, meta_base: u32, entries: usize, granule_bytes: u32) -> Self {
        assert!(entries > 0, "need at least one entry");
        assert!(
            granule_bytes.is_power_of_two() && granule_bytes >= 8,
            "granule must be a power of two of at least 8 bytes"
        );
        FineLruStore {
            bits: BitArray::new(nodes),
            meta_base,
            granule_bytes,
            resident: Vec::with_capacity(entries),
            capacity: entries,
            stats: MetaStats::default(),
        }
    }

    fn ensure(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, write: bool) {
        let granule = BitArray::byte_of(idx) & !(self.granule_bytes - 1);
        // Software tag scan: cost grows with the position searched.
        let pos = self.resident.iter().position(|&(g, _)| g == granule);
        let scanned = pos.map(|p| p + 1).unwrap_or(self.resident.len()).max(1);
        ctx.instrs(scanned as u64 * SCAN_INSTRS_PER_ENTRY + LRU_UPDATE_INSTRS);
        match pos {
            Some(p) => {
                self.stats.hits += 1;
                let mut entry = self.resident.remove(p);
                entry.1 |= write;
                self.resident.insert(0, entry);
            }
            None => {
                self.stats.misses += 1;
                ctx.instrs(MISS_INSTRS);
                // At capacity, the LRU entry is written back if dirty;
                // a zero-capacity store simply has nothing to evict.
                if self.resident.len() == self.capacity {
                    if let Some((victim, dirty)) = self.resident.pop() {
                        if dirty {
                            ctx.mram_write(self.meta_base + victim, self.granule_bytes);
                            self.stats.bytes_written += u64::from(self.granule_bytes);
                        }
                    }
                }
                ctx.mram_read(self.meta_base + granule, self.granule_bytes);
                self.stats.bytes_read += u64::from(self.granule_bytes);
                self.resident.insert(0, (granule, write));
            }
        }
    }
}

impl MetadataStore for FineLruStore {
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState {
        self.ensure(ctx, idx, false);
        self.bits.get(idx)
    }

    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState) {
        self.ensure(ctx, idx, true);
        self.bits.set(idx, state);
    }

    fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        let len = self.bits.len_bytes();
        let mut off = 0;
        while off < len {
            let chunk = 2048.min(len - off);
            ctx.mram_write(self.meta_base + off, chunk);
            off += chunk;
        }
        self.bits.clear();
        self.resident.clear();
        self.stats = MetaStats::default();
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }

    fn peek(&self, idx: u32) -> NodeState {
        self.bits.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Cycles, DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    #[test]
    fn hits_avoid_dram_but_cost_instructions() {
        let mut d = dpu();
        let mut s = FineLruStore::new(1 << 16, 0, 8, 8);
        let mut ctx = d.ctx(0);
        let _ = s.get(&mut ctx, 1); // cold miss
        let read_after_miss = s.stats().bytes_read;
        let t0 = ctx.now();
        let _ = s.get(&mut ctx, 1); // hit
        let hit_cost = ctx.now() - t0;
        assert_eq!(s.stats().bytes_read, read_after_miss);
        assert!(hit_cost > Cycles::ZERO, "software lookup is never free");
    }

    #[test]
    fn lru_evicts_oldest_and_writes_back_dirty() {
        let mut d = dpu();
        // 2 entries of 8 bytes: granule k covers bytes [8k, 8k+8).
        let mut s = FineLruStore::new(1 << 16, 0, 2, 8);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 1, NodeState::Split); // granule 0, dirty
        let _ = s.get(&mut ctx, 8 * 4); // granule 1
        let _ = s.get(&mut ctx, 16 * 4); // granule 2 → evicts granule 0 (dirty)
        assert_eq!(s.stats().bytes_written, 8);
        // Value is preserved in the authoritative array.
        assert_eq!(s.peek(1), NodeState::Split);
    }

    #[test]
    fn transfers_fewer_bytes_than_coarse_on_scattered_access() {
        use super::super::CoarseBufferStore;
        let nodes = 1 << 20;
        let mut d1 = dpu();
        let mut fine = FineLruStore::new(nodes, 0, 64, 8);
        let mut d2 = dpu();
        let mut coarse = CoarseBufferStore::new(nodes, 0, 2048);
        // Ping-pong between two far-apart regions: coarse thrashes its
        // single window, fine keeps both resident.
        for round in 0..50u32 {
            for &base in &[1u32, 1 << 18] {
                let idx = base + (round % 4);
                let mut c1 = d1.ctx(0);
                let _ = fine.get(&mut c1, idx);
                let mut c2 = d2.ctx(0);
                let _ = coarse.get(&mut c2, idx);
            }
        }
        assert!(
            fine.stats().total_bytes() < coarse.stats().total_bytes() / 10,
            "fine {} vs coarse {}",
            fine.stats().total_bytes(),
            coarse.stats().total_bytes()
        );
    }

    #[test]
    fn per_access_instruction_overhead_exceeds_coarse_hit() {
        // A realistic traversal touches many granules; the software tag
        // scan then pays for its position in the LRU list, while a
        // coarse-window hit is a constant-cost range check.
        use super::super::CoarseBufferStore;
        let nodes = 1 << 16;
        let mut d1 = dpu();
        let mut fine = FineLruStore::new(nodes, 0, 64, 8);
        let granule_nodes = 8 * 4; // one 8 B granule covers 32 nodes
        let working_set: Vec<u32> = (0..32u32).map(|g| 1 + g * granule_nodes).collect();
        // Warm all granules.
        let mut c1 = d1.ctx(0);
        for &idx in &working_set {
            let _ = fine.get(&mut c1, idx);
        }
        let t0 = c1.now();
        for &idx in &working_set {
            let _ = fine.get(&mut c1, idx);
        }
        let fine_hit = Cycles((c1.now() - t0).0 / working_set.len() as u64);

        let mut d2 = dpu();
        let mut coarse = CoarseBufferStore::new(nodes, 0, 2048);
        let mut c2 = d2.ctx(0);
        let _ = coarse.get(&mut c2, 1);
        let t0 = c2.now();
        let _ = coarse.get(&mut c2, 2);
        let coarse_hit = c2.now() - t0;
        assert!(
            fine_hit.0 > coarse_hit.0 * 2,
            "software LRU access ({fine_hit}) must be much costlier than a window hit ({coarse_hit})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        FineLruStore::new(16, 0, 0, 8);
    }
}
