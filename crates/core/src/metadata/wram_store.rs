//! Metadata resident entirely in the WRAM scratchpad.
//!
//! This is how UPMEM's stock `buddy_alloc()` works: the heap is small
//! enough (≤64 KB) that the whole 2-bit tree fits in scratchpad, and
//! every metadata access is an ordinary load/store instruction.

use pim_sim::TaskletCtx;

use super::{BitArray, MetaStats, MetadataStore, NodeState};

/// Instructions per metadata access (index arithmetic + load/store +
/// bit extraction on the DPU).
const ACCESS_INSTRS: u64 = 3;

/// Buddy-tree metadata stored wholly in WRAM.
#[derive(Debug, Clone)]
pub struct WramStore {
    bits: BitArray,
    stats: MetaStats,
}

impl WramStore {
    /// Creates a store for a tree of `nodes` nodes (1-based indices).
    pub fn new(nodes: u32) -> Self {
        WramStore {
            bits: BitArray::new(nodes),
            stats: MetaStats::default(),
        }
    }

    /// Bytes of WRAM this store occupies.
    pub fn wram_bytes(&self) -> u32 {
        self.bits.len_bytes()
    }
}

impl MetadataStore for WramStore {
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState {
        ctx.instrs(ACCESS_INSTRS);
        self.stats.hits += 1;
        self.bits.get(idx)
    }

    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState) {
        ctx.instrs(ACCESS_INSTRS);
        self.stats.hits += 1;
        self.bits.set(idx, state);
    }

    fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        // memset of the tree in WRAM: ~1 instruction per 8 bytes.
        ctx.instrs(u64::from(self.bits.len_bytes() / 8 + 1));
        self.bits.clear();
        self.stats = MetaStats::default();
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }

    fn peek(&self, idx: u32) -> NodeState {
        self.bits.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    #[test]
    fn get_set_roundtrip_and_cost() {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let mut store = WramStore::new(31);
        let mut ctx = dpu.ctx(0);
        store.set(&mut ctx, 5, NodeState::Allocated);
        assert_eq!(store.get(&mut ctx, 5), NodeState::Allocated);
        assert_eq!(store.peek(5), NodeState::Allocated);
        // Two accesses, ACCESS_INSTRS each.
        assert_eq!(dpu.total_stats().instrs, 2 * ACCESS_INSTRS);
        assert_eq!(
            dpu.traffic().total_bytes(),
            0,
            "WRAM store never touches DRAM"
        );
    }

    #[test]
    fn reset_clears_and_recounts() {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let mut store = WramStore::new(31);
        let mut ctx = dpu.ctx(0);
        store.set(&mut ctx, 3, NodeState::Split);
        store.reset(&mut ctx);
        assert_eq!(store.peek(3), NodeState::Free);
        assert_eq!(store.stats(), MetaStats::default());
    }

    #[test]
    fn wram_footprint_matches_geometry() {
        // UPMEM's 32 KB scratchpad heap with 32 B min blocks: depth 10,
        // 2^11 nodes, ~512 B of metadata (§III-C).
        let store = WramStore::new((1 << 11) - 1);
        assert!(store.wram_bytes() <= 513);
    }
}
