//! The software-managed, coarse-grained metadata buffer.
//!
//! The straw-man `buddy_alloc_PIM_DRAM` and PIM-malloc-SW keep the
//! buddy tree in MRAM and cache a single **contiguous window** of it in
//! WRAM. A hit is an ordinary scratchpad access. On a miss the whole
//! window is flushed (one DMA write if dirty) and a new window around
//! the requested byte is loaded (one DMA read) — the "flush all, reload"
//! policy of Figure 13(a). The paper measures this scheme transferring
//! ~2 KB per `pimMalloc` at a 73% hit rate in the 4 KB-allocation
//! microbenchmark, which is what motivates the hardware buddy cache.

use pim_sim::TaskletCtx;

use super::{BitArray, MetaStats, MetadataStore, NodeState};

/// Instructions for a buffered (hit) access: `getMetadata` is a real
/// function call whose index→byte/shift math uses `%` and `/` — the
/// DPU has no hardware divider, so generic code pays a soft-div loop
/// on every access.
const HIT_INSTRS: u64 = 40;
/// Instructions of bookkeeping around a miss: window address math
/// needs several 32-bit divisions/modulos, which the DPU lacks a
/// hardware divider for (each is a ~40-instruction soft-div loop),
/// plus flush bookkeeping and DMA programming. The DMA transfer
/// itself is charged separately.
const MISS_INSTRS: u64 = 250;

/// Coarse-grained software metadata buffer over MRAM-resident metadata.
#[derive(Debug, Clone)]
pub struct CoarseBufferStore {
    bits: BitArray,
    /// MRAM base address of the metadata array.
    meta_base: u32,
    /// WRAM window size in bytes.
    buffer_bytes: u32,
    /// Effective window length: `buffer_bytes` clamped to the metadata
    /// size. Cached because the hit check runs on every node access.
    window_len: u32,
    /// First metadata byte currently buffered, aligned to the window.
    window_start: u32,
    window_valid: bool,
    dirty: bool,
    stats: MetaStats,
}

impl CoarseBufferStore {
    /// Creates a store for `nodes` nodes with a WRAM window of
    /// `buffer_bytes`, backed by MRAM at `meta_base`.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_bytes` is not a positive power of two (window
    /// alignment relies on it).
    pub fn new(nodes: u32, meta_base: u32, buffer_bytes: u32) -> Self {
        assert!(
            buffer_bytes.is_power_of_two() && buffer_bytes >= 8,
            "buffer size must be a power of two of at least 8 bytes"
        );
        let bits = BitArray::new(nodes);
        let window_len = buffer_bytes.min(bits.len_bytes().next_power_of_two());
        CoarseBufferStore {
            bits,
            meta_base,
            buffer_bytes,
            window_len,
            window_start: 0,
            window_valid: false,
            dirty: false,
            stats: MetaStats::default(),
        }
    }

    /// The WRAM window size in bytes.
    pub fn buffer_bytes(&self) -> u32 {
        self.buffer_bytes
    }

    fn window_len(&self) -> u32 {
        self.window_len
    }

    /// Ensures the metadata byte holding `idx` is buffered, charging
    /// flush + reload DMA on a miss.
    ///
    /// The hit check is the hot path (every buddy node visit lands
    /// here), so it stays small and inlinable; the flush-and-reload
    /// miss path is split out as a cold function.
    #[inline]
    fn ensure(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) {
        let byte = BitArray::byte_of(idx);
        if self.window_valid && byte.wrapping_sub(self.window_start) < self.window_len {
            self.stats.hits += 1;
            return;
        }
        self.refill(ctx, byte);
    }

    /// The miss path of [`Self::ensure`]: flush the dirty window and
    /// reload it starting at the requested byte.
    ///
    /// On a miss the window is refilled **starting at the requested
    /// byte** (`fillBuddyMetadata(metadataIdx)` in Figure 13(a)), so it
    /// covers the requested entry and its forward neighbours — in a
    /// shallow tree one window then spans a parent-level scan region
    /// *and* its children, while in the deep straw-man tree each level
    /// change below the window still misses.
    #[cold]
    fn refill(&mut self, ctx: &mut TaskletCtx<'_>, byte: u32) {
        let len = self.window_len;
        self.stats.misses += 1;
        ctx.instrs(MISS_INSTRS);
        if self.window_valid && self.dirty {
            // Flush the whole window back to MRAM.
            ctx.mram_write(self.meta_base + self.window_start, len);
            self.stats.bytes_written += u64::from(len);
        }
        // Fill starting at the requested byte, clamped so the window
        // stays within the metadata array.
        let max_start = self.bits.len_bytes().saturating_sub(len);
        let target_start = byte.min(max_start);
        ctx.mram_read(self.meta_base + target_start, len);
        self.stats.bytes_read += u64::from(len);
        self.window_start = target_start;
        self.window_valid = true;
        self.dirty = false;
    }
}

impl MetadataStore for CoarseBufferStore {
    #[inline]
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState {
        self.ensure(ctx, idx);
        ctx.instrs(HIT_INSTRS);
        self.bits.get(idx)
    }

    #[inline]
    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState) {
        self.ensure(ctx, idx);
        ctx.instrs(HIT_INSTRS);
        self.dirty = true;
        self.bits.set(idx, state);
    }

    fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        // initAllocator zeroes the MRAM-resident metadata with streaming
        // DMA writes from a zeroed WRAM window.
        let len = self.bits.len_bytes();
        let window = self.window_len();
        let mut off = 0;
        while off < len {
            let chunk = window.min(len - off);
            ctx.mram_write(self.meta_base + off, chunk);
            off += chunk;
        }
        self.bits.clear();
        self.window_valid = false;
        self.dirty = false;
        self.stats = MetaStats::default();
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }

    fn peek(&self, idx: u32) -> NodeState {
        self.bits.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    #[test]
    fn first_access_misses_then_neighbors_hit() {
        let mut d = dpu();
        let mut s = CoarseBufferStore::new(1 << 16, 0x1000, 2048);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 1, NodeState::Split);
        assert_eq!(s.stats().misses, 1);
        // Nodes 2..1000 live within the same 2 KB window.
        for idx in 2..1000 {
            let _ = s.get(&mut ctx, idx);
        }
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().hits, 998);
    }

    #[test]
    fn miss_far_away_flushes_dirty_window() {
        let mut d = dpu();
        let mut s = CoarseBufferStore::new(1 << 20, 0, 2048);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 1, NodeState::Split); // miss + dirty
        let far = 2048 * 4 * 8; // a node well past the first window
        let _ = s.get(&mut ctx, far); // miss: flush 2 KB + load 2 KB
        assert_eq!(s.stats().bytes_written, 2048);
        assert_eq!(s.stats().bytes_read, 2 * 2048);
        // Value survives the round trip through the authoritative array.
        let _ = s.get(&mut ctx, 1); // miss again (window moved)
        assert_eq!(s.peek(1), NodeState::Split);
    }

    #[test]
    fn clean_miss_does_not_write_back() {
        let mut d = dpu();
        let mut s = CoarseBufferStore::new(1 << 20, 0, 2048);
        let mut ctx = d.ctx(0);
        let _ = s.get(&mut ctx, 1); // miss, clean
        let _ = s.get(&mut ctx, 2048 * 4 * 8); // miss, no flush needed
        assert_eq!(s.stats().bytes_written, 0);
        assert_eq!(s.stats().bytes_read, 2 * 2048);
    }

    #[test]
    fn misses_cost_dma_time() {
        let mut d = dpu();
        let mut s = CoarseBufferStore::new(1 << 20, 0, 2048);
        let mut ctx = d.ctx(0);
        let _ = s.get(&mut ctx, 1);
        let hit_start = ctx.now();
        let _ = s.get(&mut ctx, 2);
        let hit_cost = ctx.now() - hit_start;
        let miss_start = ctx.now();
        let _ = s.get(&mut ctx, 2048 * 4 * 8);
        let miss_cost = ctx.now() - miss_start;
        assert!(
            miss_cost.0 > hit_cost.0 * 5,
            "miss ({miss_cost}) must dwarf hit ({hit_cost})"
        );
    }

    #[test]
    fn window_smaller_than_metadata_is_clamped() {
        // Tiny tree (16 nodes, 5 bytes) with a large buffer: the window
        // covers everything, so there is exactly one cold miss.
        let mut d = dpu();
        let mut s = CoarseBufferStore::new(16, 0, 4096);
        let mut ctx = d.ctx(0);
        for idx in 1..=16 {
            let _ = s.get(&mut ctx, idx);
        }
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn reset_streams_whole_metadata() {
        let mut d = dpu();
        let nodes = 1 << 14; // 4 KB of metadata
        let mut s = CoarseBufferStore::new(nodes, 0, 2048);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 1, NodeState::Allocated);
        s.reset(&mut ctx);
        assert_eq!(s.peek(1), NodeState::Free);
        // Reset wrote at least the metadata size to MRAM.
        assert!(d.traffic().bytes_written >= u64::from(nodes / 4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_buffer_size_rejected() {
        CoarseBufferStore::new(16, 0, 100);
    }
}
