//! Buddy-tree metadata storage backends.
//!
//! The buddy allocator reads and writes 2-bit node states during tree
//! traversal. *Where* those bits live and *how* they are cached is the
//! crux of the paper's design space:
//!
//! * [`WramStore`] — the whole tree resides in scratchpad, as in
//!   UPMEM's stock 64 KB `buddy_alloc()`. Only feasible for tiny heaps.
//! * [`CoarseBufferStore`] — the tree resides in MRAM, with a
//!   software-managed WRAM buffer that caches one contiguous window and
//!   is flushed-and-reloaded wholesale on a miss (straw-man and
//!   PIM-malloc-SW).
//! * [`FineLruStore`] — a software LRU over small granules; fewer DRAM
//!   transfers but heavy per-access instruction overhead (the §IV-B
//!   ablation that regressed 29%).
//! * [`HwCacheStore`] — the paper's hardware buddy cache: a 16-entry
//!   CAM of 4-byte metadata words with single-cycle access
//!   (PIM-malloc-HW/SW).
//!
//! All stores implement [`MetadataStore`], charging their access costs
//! to the calling tasklet's [`TaskletCtx`].

mod coarse;
mod fine_lru;
mod hw_cache;
mod line_cache;
mod wram_store;

pub use coarse::CoarseBufferStore;
pub use fine_lru::FineLruStore;
pub use hw_cache::HwCacheStore;
pub use line_cache::LineCacheStore;
pub use wram_store::WramStore;

use pim_sim::TaskletCtx;
use serde::{Deserialize, Serialize};

/// The 2-bit state of one buddy-tree node.
///
/// The paper describes three logical states (unallocated / partially
/// allocated / fully allocated); we use the fourth 2-bit codepoint to
/// distinguish "allocated *as a unit*" from "split and full below",
/// which `pim_free` needs to find a block's level from its address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum NodeState {
    /// The block is entirely free (and not split).
    Free = 0,
    /// The block is split; at least one descendant is free.
    Split = 1,
    /// The block is allocated as a unit.
    Allocated = 2,
    /// The block is split and has no free capacity below.
    SplitFull = 3,
}

impl NodeState {
    /// Decodes a 2-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> NodeState {
        match bits {
            0 => NodeState::Free,
            1 => NodeState::Split,
            2 => NodeState::Allocated,
            3 => NodeState::SplitFull,
            _ => panic!("invalid node state bits {bits}"),
        }
    }

    /// Encodes to a 2-bit value.
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// True if the subtree rooted here has no free capacity.
    pub fn is_full(self) -> bool {
        matches!(self, NodeState::Allocated | NodeState::SplitFull)
    }
}

/// Transfer and hit-rate statistics of a metadata store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaStats {
    /// Accesses served from on-chip storage.
    pub hits: u64,
    /// Accesses that required a DRAM fetch.
    pub misses: u64,
    /// Metadata bytes read from DRAM.
    pub bytes_read: u64,
    /// Metadata bytes written back to DRAM.
    pub bytes_written: u64,
}

impl MetaStats {
    /// Hit rate in `[0, 1]`; zero if no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total metadata bytes moved to/from DRAM.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Storage backend for 2-bit buddy-tree node states.
///
/// Implementations charge their access latency (WRAM instructions, DMA
/// transfers, buddy-cache operations) to the provided context.
pub trait MetadataStore {
    /// Reads the state of node `idx`.
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState;

    /// Writes the state of node `idx`.
    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState);

    /// Resets every node to [`NodeState::Free`] and clears caches.
    /// Called by `initAllocator`; costs are charged to `ctx`.
    fn reset(&mut self, ctx: &mut TaskletCtx<'_>);

    /// Transfer/hit statistics since construction or the last reset.
    fn stats(&self) -> MetaStats;

    /// Reads a node state *without* charging any simulation cost.
    ///
    /// For invariant checks and tests only — a real DPU has no free
    /// metadata reads.
    fn peek(&self, idx: u32) -> NodeState;
}

/// A flat 2-bit-per-node array: the shared authoritative storage used
/// by every store implementation.
#[derive(Debug, Clone)]
pub(crate) struct BitArray {
    words: Vec<u8>,
    nodes: u32,
}

impl BitArray {
    pub(crate) fn new(nodes: u32) -> Self {
        BitArray {
            words: vec![0u8; ((nodes as usize) + 4) / 4],
            nodes,
        }
    }

    #[inline]
    pub(crate) fn get(&self, idx: u32) -> NodeState {
        debug_assert!(idx >= 1 && idx <= self.nodes, "node {idx} out of range");
        let byte = self.words[(idx / 4) as usize];
        NodeState::from_bits((byte >> ((idx % 4) * 2)) & 0b11)
    }

    #[inline]
    pub(crate) fn set(&mut self, idx: u32, state: NodeState) {
        debug_assert!(idx >= 1 && idx <= self.nodes, "node {idx} out of range");
        let slot = (idx / 4) as usize;
        let shift = (idx % 4) * 2;
        self.words[slot] = (self.words[slot] & !(0b11 << shift)) | (state.to_bits() << shift);
    }

    pub(crate) fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Byte offset of the metadata byte holding node `idx`.
    #[inline]
    pub(crate) fn byte_of(idx: u32) -> u32 {
        idx / 4
    }

    pub(crate) fn len_bytes(&self) -> u32 {
        self.words.len() as u32
    }

    /// Highest valid node index.
    pub(crate) fn nodes(&self) -> u32 {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_state_bits_roundtrip() {
        for s in [
            NodeState::Free,
            NodeState::Split,
            NodeState::Allocated,
            NodeState::SplitFull,
        ] {
            assert_eq!(NodeState::from_bits(s.to_bits()), s);
        }
    }

    #[test]
    #[should_panic(expected = "invalid node state")]
    fn bad_bits_panic() {
        NodeState::from_bits(4);
    }

    #[test]
    fn fullness_classification() {
        assert!(!NodeState::Free.is_full());
        assert!(!NodeState::Split.is_full());
        assert!(NodeState::Allocated.is_full());
        assert!(NodeState::SplitFull.is_full());
    }

    #[test]
    fn bitarray_packs_four_nodes_per_byte() {
        let mut a = BitArray::new(16);
        a.set(1, NodeState::Split);
        a.set(2, NodeState::Allocated);
        a.set(3, NodeState::SplitFull);
        a.set(4, NodeState::Allocated);
        assert_eq!(a.get(1), NodeState::Split);
        assert_eq!(a.get(2), NodeState::Allocated);
        assert_eq!(a.get(3), NodeState::SplitFull);
        assert_eq!(a.get(4), NodeState::Allocated);
        // Neighbors unaffected.
        assert_eq!(a.get(5), NodeState::Free);
        a.clear();
        assert_eq!(a.get(3), NodeState::Free);
    }

    #[test]
    fn bitarray_byte_mapping() {
        assert_eq!(BitArray::byte_of(1), 0);
        assert_eq!(BitArray::byte_of(4), 1);
        assert_eq!(BitArray::byte_of(7), 1);
        assert_eq!(BitArray::byte_of(8), 2);
    }

    #[test]
    fn meta_stats_hit_rate() {
        let s = MetaStats {
            hits: 3,
            misses: 1,
            bytes_read: 10,
            bytes_written: 2,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.total_bytes(), 12);
        assert_eq!(MetaStats::default().hit_rate(), 0.0);
    }
}
