//! A general-purpose, cache-line-granular metadata cache — the §VII
//! counterfactual.
//!
//! The paper's Discussion argues that even a cache-enabled future PIM
//! core would still want the dedicated buddy cache, because a
//! general-purpose data cache "operates on coarse-grained cache lines
//! (e.g., 64 bytes), which is inefficient for managing the fine-grained
//! metadata used by a buddy allocator". This store models exactly that
//! design point: a fully-associative LRU cache of `line_bytes`-sized
//! lines over the MRAM-resident buddy tree, with hardware (1-cycle)
//! lookups like the buddy cache but line-sized fills and write-backs.
//!
//! At equal *capacity*, wider lines mean fewer entries: a 64-byte-line
//! cache holding 1 KB has 16 entries covering 16 tree regions, where
//! the 8-byte-granule buddy cache holds 128 independent regions — and
//! buddy traversal touches many small, scattered regions.

use pim_sim::{BuddyCache, BuddyCacheConfig, BuddyCacheStats, LookupResult, TaskletCtx};

use super::{BitArray, MetaStats, MetadataStore, NodeState};

/// Instructions of miss-path bookkeeping besides the DMA and cache ops.
const MISS_INSTRS: u64 = 40;

/// A line-granular hardware metadata cache (general-purpose-cache
/// stand-in).
#[derive(Debug, Clone)]
pub struct LineCacheStore {
    bits: BitArray,
    meta_base: u32,
    line_bytes: u32,
    cache: BuddyCache,
    stats: MetaStats,
}

impl LineCacheStore {
    /// Creates a store whose cache holds `capacity_bytes / line_bytes`
    /// lines of `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 8 and
    /// `capacity_bytes` is a positive multiple of `line_bytes`.
    pub fn new(nodes: u32, meta_base: u32, capacity_bytes: u32, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two of at least 8 bytes"
        );
        assert!(
            capacity_bytes >= line_bytes && capacity_bytes.is_multiple_of(line_bytes),
            "capacity must be a positive multiple of the line size"
        );
        LineCacheStore {
            bits: BitArray::new(nodes),
            meta_base,
            line_bytes,
            cache: BuddyCache::new(BuddyCacheConfig {
                entries: (capacity_bytes / line_bytes) as usize,
                bytes_per_entry: line_bytes,
            }),
            stats: MetaStats::default(),
        }
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Statistics of the underlying cache.
    pub fn cache_stats(&self) -> BuddyCacheStats {
        self.cache.stats()
    }

    fn line_addr(&self, idx: u32) -> u32 {
        self.meta_base + (BitArray::byte_of(idx) & !(self.line_bytes - 1))
    }

    /// Ensures node `idx`'s line is cached; returns its slot.
    fn ensure(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> usize {
        let addr = self.line_addr(idx);
        ctx.instrs(15); // call + index math + tag lookup
        match self.cache.lookup(addr) {
            LookupResult::Hit(slot) => {
                self.stats.hits += 1;
                slot
            }
            LookupResult::Miss => {
                self.stats.misses += 1;
                ctx.instrs(MISS_INSTRS);
                ctx.mram_read(addr, self.line_bytes);
                self.stats.bytes_read += u64::from(self.line_bytes);
                // The authoritative 2-bit states live in `bits`; the CAM
                // entry only tracks tag/dirty state for the whole line.
                ctx.instrs(1);
                if let Some(victim) = self.cache.fill(addr, 0) {
                    if victim.dirty {
                        ctx.mram_write(victim.addr, self.line_bytes);
                        self.stats.bytes_written += u64::from(self.line_bytes);
                    }
                }
                match self.cache.lookup(addr) {
                    LookupResult::Hit(slot) => slot,
                    LookupResult::Miss => unreachable!("just filled"),
                }
            }
        }
    }
}

impl MetadataStore for LineCacheStore {
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState {
        let _slot = self.ensure(ctx, idx);
        ctx.instrs(10); // read + 2-bit extract
        self.bits.get(idx)
    }

    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState) {
        let slot = self.ensure(ctx, idx);
        ctx.instrs(10); // read-modify-write of the cached word
        self.bits.set(idx, state);
        self.cache.update(slot, 0); // mark the line dirty
    }

    fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        let len = self.bits.len_bytes();
        let mut off = 0;
        while off < len {
            let chunk = 2048.min(len - off);
            ctx.mram_write(self.meta_base + off, chunk);
            off += chunk;
        }
        ctx.instrs(1);
        self.bits.clear();
        self.cache.init();
        self.stats = MetaStats::default();
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }

    fn peek(&self, idx: u32) -> NodeState {
        self.bits.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    #[test]
    fn one_line_covers_its_nodes() {
        let mut d = dpu();
        // 64 B lines: 256 nodes per line.
        let mut s = LineCacheStore::new(1 << 12, 0, 1024, 64);
        let mut ctx = d.ctx(0);
        let _ = s.get(&mut ctx, 1);
        for idx in 2..256 {
            let _ = s.get(&mut ctx, idx);
        }
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().bytes_read, 64, "one line fill");
    }

    #[test]
    fn set_roundtrips_and_dirty_lines_write_back_whole_lines() {
        let mut d = dpu();
        // One-entry cache of 64 B lines.
        let mut s = LineCacheStore::new(1 << 16, 0, 64, 64);
        let mut ctx = d.ctx(0);
        s.set(&mut ctx, 1, NodeState::Split);
        assert_eq!(s.get(&mut ctx, 1), NodeState::Split);
        // Touch a far line: the dirty 64 B line is written back whole.
        let far = 64 * 4 * 8;
        let _ = s.get(&mut ctx, far);
        assert_eq!(s.stats().bytes_written, 64);
        assert_eq!(s.peek(1), NodeState::Split);
    }

    #[test]
    fn equal_capacity_wider_lines_hit_less_on_scattered_paths() {
        // The §VII granularity-mismatch argument: walk root-to-leaf
        // paths (scattered across levels) with equal-capacity caches.
        let nodes = 1 << 20;
        let run = |line: u32| {
            let mut d = dpu();
            let mut s = LineCacheStore::new(nodes, 0, 512, line);
            let mut ctx = d.ctx(0);
            for start in 0..64u32 {
                let mut idx = 1 + start;
                while idx < nodes {
                    let _ = s.get(&mut ctx, idx);
                    idx *= 2;
                }
            }
            (s.stats().hit_rate(), s.stats().total_bytes())
        };
        let (fine_hits, fine_bytes) = run(8);
        let (coarse_hits, coarse_bytes) = run(64);
        assert!(
            fine_hits >= coarse_hits,
            "fine granularity must hit at least as often: {fine_hits} vs {coarse_hits}"
        );
        assert!(
            fine_bytes < coarse_bytes,
            "fine granularity must move fewer bytes: {fine_bytes} vs {coarse_bytes}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the line size")]
    fn bad_capacity_rejected() {
        LineCacheStore::new(16, 0, 96, 64);
    }
}
