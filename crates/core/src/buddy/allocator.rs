//! The buddy allocation algorithm over a [`MetadataStore`].
//!
//! Allocation descends from the root looking for a free block of the
//! target level, splitting free blocks on the way down and marking
//! full subtrees on the way back up. Deallocation locates the
//! allocated node covering an address by following split marks from
//! the root, frees it, and merges buddies upward — the classic
//! Knowlton algorithm, with every metadata touch charged to the
//! calling tasklet through the store.

use pim_sim::{BuddyCacheConfig, TaskletCtx};

use crate::error::AllocError;
use crate::metadata::{
    CoarseBufferStore, FineLruStore, HwCacheStore, LineCacheStore, MetaStats, MetadataStore,
    NodeState, WramStore,
};

use super::geometry::BuddyGeometry;

/// Instructions of per-node traversal logic (state decode, branch,
/// child index arithmetic) besides the metadata access itself.
const NODE_VISIT_INSTRS: u64 = 25;
/// Instructions of fixed request overhead (size rounding, level
/// computation, call/return).
const REQUEST_INSTRS: u64 = 30;

/// The metadata storage backends a [`BuddyAllocator`] can run on.
///
/// This enum mirrors the paper's design points; see the
/// [`crate::metadata`] module docs for what each one models.
#[derive(Debug)]
pub enum MetadataBackend {
    /// Whole tree in scratchpad (UPMEM's stock `buddy_alloc()`).
    Wram(WramStore),
    /// MRAM-resident tree + coarse software window (straw-man & SW).
    Coarse(CoarseBufferStore),
    /// MRAM-resident tree + fine-grained software LRU (§IV-B ablation).
    FineLru(FineLruStore),
    /// MRAM-resident tree + hardware buddy cache (HW/SW).
    HwCache(HwCacheStore),
    /// MRAM-resident tree + line-granular general-purpose cache (the
    /// §VII counterfactual).
    LineCache(LineCacheStore),
}

impl MetadataBackend {
    /// A coarse-buffer backend with the given WRAM window size.
    pub fn coarse(geometry: &BuddyGeometry, meta_base: u32, buffer_bytes: u32) -> Self {
        MetadataBackend::Coarse(CoarseBufferStore::new(
            geometry.node_count(),
            meta_base,
            buffer_bytes,
        ))
    }

    /// A WRAM-resident backend (only for scratchpad-sized heaps).
    pub fn wram(geometry: &BuddyGeometry) -> Self {
        MetadataBackend::Wram(WramStore::new(geometry.node_count()))
    }

    /// A hardware-buddy-cache backend.
    pub fn hw_cache(geometry: &BuddyGeometry, meta_base: u32, cache: BuddyCacheConfig) -> Self {
        MetadataBackend::HwCache(HwCacheStore::new(geometry.node_count(), meta_base, cache))
    }

    /// A line-granular general-purpose-cache backend (§VII).
    pub fn line_cache(
        geometry: &BuddyGeometry,
        meta_base: u32,
        capacity_bytes: u32,
        line_bytes: u32,
    ) -> Self {
        MetadataBackend::LineCache(LineCacheStore::new(
            geometry.node_count(),
            meta_base,
            capacity_bytes,
            line_bytes,
        ))
    }

    /// A fine-grained software-LRU backend.
    pub fn fine_lru(
        geometry: &BuddyGeometry,
        meta_base: u32,
        entries: usize,
        granule_bytes: u32,
    ) -> Self {
        MetadataBackend::FineLru(FineLruStore::new(
            geometry.node_count(),
            meta_base,
            entries,
            granule_bytes,
        ))
    }
}

impl MetadataStore for MetadataBackend {
    fn get(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32) -> NodeState {
        match self {
            MetadataBackend::Wram(s) => s.get(ctx, idx),
            MetadataBackend::Coarse(s) => s.get(ctx, idx),
            MetadataBackend::FineLru(s) => s.get(ctx, idx),
            MetadataBackend::HwCache(s) => s.get(ctx, idx),
            MetadataBackend::LineCache(s) => s.get(ctx, idx),
        }
    }

    fn set(&mut self, ctx: &mut TaskletCtx<'_>, idx: u32, state: NodeState) {
        match self {
            MetadataBackend::Wram(s) => s.set(ctx, idx, state),
            MetadataBackend::Coarse(s) => s.set(ctx, idx, state),
            MetadataBackend::FineLru(s) => s.set(ctx, idx, state),
            MetadataBackend::HwCache(s) => s.set(ctx, idx, state),
            MetadataBackend::LineCache(s) => s.set(ctx, idx, state),
        }
    }

    fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        match self {
            MetadataBackend::Wram(s) => s.reset(ctx),
            MetadataBackend::Coarse(s) => s.reset(ctx),
            MetadataBackend::FineLru(s) => s.reset(ctx),
            MetadataBackend::HwCache(s) => s.reset(ctx),
            MetadataBackend::LineCache(s) => s.reset(ctx),
        }
    }

    fn stats(&self) -> MetaStats {
        match self {
            MetadataBackend::Wram(s) => s.stats(),
            MetadataBackend::Coarse(s) => s.stats(),
            MetadataBackend::FineLru(s) => s.stats(),
            MetadataBackend::HwCache(s) => s.stats(),
            MetadataBackend::LineCache(s) => s.stats(),
        }
    }

    fn peek(&self, idx: u32) -> NodeState {
        match self {
            MetadataBackend::Wram(s) => s.peek(idx),
            MetadataBackend::Coarse(s) => s.peek(idx),
            MetadataBackend::FineLru(s) => s.peek(idx),
            MetadataBackend::HwCache(s) => s.peek(idx),
            MetadataBackend::LineCache(s) => s.peek(idx),
        }
    }
}

/// A buddy allocator over one DPU heap.
///
/// Not thread-safe by itself: callers serialize access with a DPU
/// mutex, exactly as the paper's implementation does.
#[derive(Debug)]
pub struct BuddyAllocator {
    geometry: BuddyGeometry,
    store: MetadataBackend,
    free_bytes: u64,
    live_blocks: u64,
    policy: DescentPolicy,
}

/// How the allocation descent handles split subtrees.
///
/// The paper's 2-bit metadata tracks *fully allocated / partially
/// allocated / unallocated*, and its measured single-thread latency is
/// flat across an allocation sequence (Figure 8(a)) — an O(depth)
/// descent that prunes full subtrees. [`DescentPolicy::FullMarks`]
/// models that: the fourth 2-bit codepoint distinguishes "allocated as
/// a unit" from "split and full below" so both pruning and
/// address-only `free` work. [`DescentPolicy::ThreeState`] is the
/// naive variant without full marks, whose descent must explore split
/// subtrees and therefore degrades with heap occupancy; it is kept as
/// an ablation of this design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DescentPolicy {
    /// Four-state metadata: full subtrees are marked and skipped
    /// (paper behaviour; default).
    #[default]
    FullMarks,
    /// Three-state metadata: no pruning; descent cost grows with the
    /// number of live blocks (ablation).
    ThreeState,
}

impl BuddyAllocator {
    /// Creates an allocator with all memory free, using
    /// [`DescentPolicy::FullMarks`].
    ///
    /// The metadata store is assumed to be freshly zeroed; call
    /// [`BuddyAllocator::reset`] to (re)initialize with cost accounting.
    pub fn new(geometry: BuddyGeometry, store: MetadataBackend) -> Self {
        BuddyAllocator {
            free_bytes: u64::from(geometry.heap_size()),
            geometry,
            store,
            live_blocks: 0,
            policy: DescentPolicy::default(),
        }
    }

    /// Switches the descent policy (ablation hook).
    pub fn with_policy(mut self, policy: DescentPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The descent policy in use.
    pub fn policy(&self) -> DescentPolicy {
        self.policy
    }

    /// The heap geometry.
    pub fn geometry(&self) -> &BuddyGeometry {
        &self.geometry
    }

    /// The metadata store (for statistics inspection).
    pub fn store(&self) -> &MetadataBackend {
        &self.store
    }

    /// Bytes currently free (in buddy-rounded terms).
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> u64 {
        self.live_blocks
    }

    /// Re-initializes the heap: all memory free, metadata zeroed.
    pub fn reset(&mut self, ctx: &mut TaskletCtx<'_>) {
        self.store.reset(ctx);
        self.free_bytes = u64::from(self.geometry.heap_size());
        self.live_blocks = 0;
    }

    /// Allocates a block of at least `size` bytes, returning its heap
    /// address. The block actually reserved is `size` rounded up to a
    /// power of two (≥ the minimum block).
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidSize`] if `size` is zero or larger than the
    /// heap; [`AllocError::OutOfMemory`] if no suitable block is free.
    pub fn alloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        ctx.instrs(REQUEST_INSTRS);
        let block = self
            .geometry
            .block_for_size(size)
            .ok_or(AllocError::InvalidSize { requested: size })?;
        let target_level = self.geometry.level_for_block(block);
        match self.descend(ctx, 1, 0, target_level) {
            Some(node) => {
                if self.policy == DescentPolicy::FullMarks {
                    self.mark_full_upward(ctx, node);
                }
                self.free_bytes -= u64::from(block);
                self.live_blocks += 1;
                Ok(self.geometry.addr_of(node))
            }
            None => Err(AllocError::OutOfMemory { requested: size }),
        }
    }

    /// Recursive first-fit descent to a free node at `target_level`.
    fn descend(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        node: u32,
        level: u32,
        target_level: u32,
    ) -> Option<u32> {
        ctx.instrs(NODE_VISIT_INSTRS);
        let state = self.store.get(ctx, node);
        if level == target_level {
            return if state == NodeState::Free {
                self.store.set(ctx, node, NodeState::Allocated);
                Some(node)
            } else {
                None
            };
        }
        match state {
            NodeState::Free => {
                // Split and take the left child; the subtree is empty,
                // so the descent cannot fail.
                self.store.set(ctx, node, NodeState::Split);
                self.descend(ctx, 2 * node, level + 1, target_level)
            }
            NodeState::Split => {
                // Peek both children to choose the branch (the paper's
                // implementation reads child metadata before
                // descending), then recurse — the child is re-read at
                // entry, as `getMetadata`-per-node code does.
                let left = self.store.get(ctx, 2 * node);
                let took = if self.prunes(left) {
                    None
                } else {
                    self.descend(ctx, 2 * node, level + 1, target_level)
                };
                took.or_else(|| {
                    let right = self.store.get(ctx, 2 * node + 1);
                    if self.prunes(right) {
                        None
                    } else {
                        self.descend(ctx, 2 * node + 1, level + 1, target_level)
                    }
                })
            }
            NodeState::Allocated | NodeState::SplitFull => None,
        }
    }

    /// Whether the descent may skip a child in `state` without
    /// exploring it.
    fn prunes(&self, state: NodeState) -> bool {
        match self.policy {
            DescentPolicy::FullMarks => state.is_full(),
            DescentPolicy::ThreeState => state == NodeState::Allocated,
        }
    }

    /// After allocating `node`, marks ancestors `SplitFull` while both
    /// children are full.
    fn mark_full_upward(&mut self, ctx: &mut TaskletCtx<'_>, node: u32) {
        let mut n = node;
        while n > 1 {
            ctx.instrs(NODE_VISIT_INSTRS);
            let buddy = n ^ 1;
            if !self.store.get(ctx, buddy).is_full() {
                break;
            }
            let parent = n / 2;
            self.store.set(ctx, parent, NodeState::SplitFull);
            n = parent;
        }
    }

    /// Frees the block at `addr`, returning the size of the freed
    /// block in bytes.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `addr` is not the base address of
    /// a live allocation.
    pub fn free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<u32, AllocError> {
        ctx.instrs(REQUEST_INSTRS);
        if !self.geometry.contains(addr) {
            return Err(AllocError::InvalidFree { addr });
        }
        // Locate the allocated node covering `addr` by following split
        // marks down from the root.
        let mut node = 1u32;
        let mut level = 0u32;
        loop {
            ctx.instrs(NODE_VISIT_INSTRS);
            match self.store.get(ctx, node) {
                NodeState::Allocated => break,
                NodeState::Split | NodeState::SplitFull => {
                    if level == self.geometry.depth() {
                        return Err(AllocError::InvalidFree { addr });
                    }
                    level += 1;
                    node = self.geometry.node_at(level, addr);
                }
                NodeState::Free => return Err(AllocError::InvalidFree { addr }),
            }
        }
        // The address must be the block's base, not an interior byte.
        if self.geometry.addr_of(node) != addr {
            return Err(AllocError::InvalidFree { addr });
        }
        let block = self.geometry.block_size_at(level);
        self.store.set(ctx, node, NodeState::Free);
        self.merge_upward(ctx, node);
        self.free_bytes += u64::from(block);
        self.live_blocks -= 1;
        Ok(block)
    }

    /// After freeing below, merges free buddies and downgrades
    /// `SplitFull` ancestors until the tree is consistent.
    fn merge_upward(&mut self, ctx: &mut TaskletCtx<'_>, node: u32) {
        let mut n = node;
        while n > 1 {
            ctx.instrs(NODE_VISIT_INSTRS);
            let parent = n / 2;
            let buddy = n ^ 1;
            let n_free = self.store.get(ctx, n) == NodeState::Free;
            let buddy_free = self.store.get(ctx, buddy) == NodeState::Free;
            let new_state = if n_free && buddy_free {
                NodeState::Free // merge the buddies back together
            } else {
                NodeState::Split // free capacity now exists below
            };
            if self.store.get(ctx, parent) == new_state {
                break;
            }
            self.store.set(ctx, parent, new_state);
            n = parent;
        }
    }

    /// Checks the structural invariants of the whole tree (test/debug
    /// helper; does not charge simulation cost).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let g = &self.geometry;
        for idx in 1..=g.node_count() {
            let state = self.store.peek(idx);
            let level = g.level_of(idx);
            if level < g.depth() {
                let (l, r) = (self.store.peek(2 * idx), self.store.peek(2 * idx + 1));
                match state {
                    NodeState::Free | NodeState::Allocated => {
                        assert_eq!(
                            (l, r),
                            (NodeState::Free, NodeState::Free),
                            "node {idx} ({state:?}) must have free children"
                        );
                    }
                    NodeState::Split => {
                        assert!(
                            !(l == NodeState::Free && r == NodeState::Free),
                            "split node {idx} has two free children (missed merge)"
                        );
                        if self.policy == DescentPolicy::FullMarks {
                            assert!(
                                !(l.is_full() && r.is_full()),
                                "split node {idx} has two full children (missed full mark)"
                            );
                        }
                    }
                    NodeState::SplitFull => {
                        assert!(
                            l.is_full() && r.is_full(),
                            "split-full node {idx} has a non-full child"
                        );
                    }
                }
            } else if state == NodeState::Split || state == NodeState::SplitFull {
                panic!("leaf node {idx} cannot be split");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    fn small_alloc() -> BuddyAllocator {
        // 1 KB heap, 32 B min blocks: depth 5, 63 nodes.
        let g = BuddyGeometry::new(0, 1024, 32);
        BuddyAllocator::new(g, MetadataBackend::wram(&g))
    }

    #[test]
    fn paper_figure2_workflow() {
        // Figure 2: a 4 KB request against a 16 KB pool splits twice
        // and returns the leftmost 4 KB block.
        let g = BuddyGeometry::new(0, 16 << 10, 4 << 10);
        let mut a = BuddyAllocator::new(g, MetadataBackend::wram(&g));
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        let addr = a.alloc(&mut ctx, 4 << 10).unwrap();
        assert_eq!(addr, 0);
        assert_eq!(a.store().peek(1), NodeState::Split);
        assert_eq!(a.store().peek(2), NodeState::Split);
        assert_eq!(a.store().peek(4), NodeState::Allocated);
        a.check_invariants();
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        let mut got = Vec::new();
        while let Ok(addr) = a.alloc(&mut ctx, 64) {
            assert_eq!(addr % 64, 0, "block must be size-aligned");
            got.push(addr);
        }
        assert_eq!(got.len(), 16, "1 KB / 64 B = 16 blocks");
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 16, "no duplicates");
        a.check_invariants();
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        let x = a.alloc(&mut ctx, 512).unwrap();
        let y = a.alloc(&mut ctx, 512).unwrap();
        assert!(a.alloc(&mut ctx, 512).is_err());
        assert_eq!(a.free(&mut ctx, x).unwrap(), 512);
        let z = a.alloc(&mut ctx, 512).unwrap();
        assert_eq!(x, z);
        assert_eq!(a.free(&mut ctx, y).unwrap(), 512);
        assert_eq!(a.free(&mut ctx, z).unwrap(), 512);
        // Fully merged: a whole-heap allocation succeeds.
        let w = a.alloc(&mut ctx, 1024).unwrap();
        assert_eq!(w, 0);
        a.check_invariants();
    }

    #[test]
    fn coalescing_restores_large_blocks() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        let addrs: Vec<u32> = (0..32).map(|_| a.alloc(&mut ctx, 32).unwrap()).collect();
        assert_eq!(a.free_bytes(), 0);
        for addr in addrs {
            a.free(&mut ctx, addr).unwrap();
        }
        assert_eq!(a.free_bytes(), 1024);
        assert_eq!(a.live_blocks(), 0);
        assert!(a.alloc(&mut ctx, 1024).is_ok());
        a.check_invariants();
    }

    #[test]
    fn mixed_sizes_round_up_to_powers_of_two() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        let addr = a.alloc(&mut ctx, 100).unwrap(); // rounds to 128
        assert_eq!(addr % 128, 0);
        assert_eq!(a.free(&mut ctx, addr).unwrap(), 128);
        let addr = a.alloc(&mut ctx, 1).unwrap(); // rounds to min block 32
        assert_eq!(a.free(&mut ctx, addr).unwrap(), 32);
    }

    #[test]
    fn fragmentation_can_defeat_large_requests() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        // Allocate all 32 B blocks, free every other one: 512 B free
        // but no 64 B block available.
        let addrs: Vec<u32> = (0..32).map(|_| a.alloc(&mut ctx, 32).unwrap()).collect();
        for addr in addrs.iter().step_by(2) {
            a.free(&mut ctx, *addr).unwrap();
        }
        assert_eq!(a.free_bytes(), 512);
        assert!(matches!(
            a.alloc(&mut ctx, 64),
            Err(AllocError::OutOfMemory { requested: 64 })
        ));
        // A 32 B request still succeeds.
        assert!(a.alloc(&mut ctx, 32).is_ok());
        a.check_invariants();
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        assert!(matches!(
            a.alloc(&mut ctx, 0),
            Err(AllocError::InvalidSize { .. })
        ));
        assert!(matches!(
            a.alloc(&mut ctx, 2048),
            Err(AllocError::InvalidSize { .. })
        ));
    }

    #[test]
    fn invalid_frees_are_rejected() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        // Free of never-allocated address.
        assert!(matches!(
            a.free(&mut ctx, 0),
            Err(AllocError::InvalidFree { .. })
        ));
        let addr = a.alloc(&mut ctx, 64).unwrap();
        // Interior pointer.
        assert!(matches!(
            a.free(&mut ctx, addr + 32),
            Err(AllocError::InvalidFree { .. })
        ));
        // Out of heap.
        assert!(matches!(
            a.free(&mut ctx, 4096),
            Err(AllocError::InvalidFree { .. })
        ));
        // Double free.
        a.free(&mut ctx, addr).unwrap();
        assert!(matches!(
            a.free(&mut ctx, addr),
            Err(AllocError::InvalidFree { .. })
        ));
    }

    #[test]
    fn deeper_trees_cost_more_cycles() {
        // The Figure 7 effect: same allocation size, bigger heap →
        // deeper traversal → higher latency.
        let mut costs = Vec::new();
        for heap in [32u32 << 10, 1 << 20, 32 << 20] {
            let g = BuddyGeometry::new(0, heap, 32);
            let mut a = BuddyAllocator::new(g, MetadataBackend::coarse(&g, 0, 2048));
            let mut d = dpu();
            let mut ctx = d.ctx(0);
            let t0 = ctx.now();
            a.alloc(&mut ctx, 32).unwrap();
            costs.push((ctx.now() - t0).0);
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
    }

    #[test]
    fn reset_restores_full_capacity() {
        let mut a = small_alloc();
        let mut d = dpu();
        let mut ctx = d.ctx(0);
        a.alloc(&mut ctx, 512).unwrap();
        a.reset(&mut ctx);
        assert_eq!(a.free_bytes(), 1024);
        assert!(a.alloc(&mut ctx, 1024).is_ok());
    }
}
