//! Geometry of a buddy heap: the mapping between tree nodes, levels,
//! block sizes, and heap addresses.
//!
//! The buddy tree is stored as an implicit binary heap: node `1` is the
//! root covering the whole heap, node `i` has children `2i` and `2i+1`,
//! and its buddy is `i ^ 1`. A node at level `ℓ` (root = level 0)
//! covers a block of `heap_size >> ℓ` bytes. The deepest level `depth`
//! covers blocks of `min_block` bytes, so
//! `depth = log2(heap_size / min_block)` — the paper's "20-level tree"
//! for a 32 MB heap with 32 B minimum blocks.

use serde::{Deserialize, Serialize};

/// Shape of a buddy heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuddyGeometry {
    heap_base: u32,
    heap_size: u32,
    min_block: u32,
    depth: u32,
}

impl BuddyGeometry {
    /// Creates a geometry for a heap of `heap_size` bytes starting at
    /// `heap_base`, with minimum block size `min_block`.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two with
    /// `min_block <= heap_size`.
    pub fn new(heap_base: u32, heap_size: u32, min_block: u32) -> Self {
        assert!(
            heap_size.is_power_of_two(),
            "heap size must be a power of two"
        );
        assert!(
            min_block.is_power_of_two(),
            "min block must be a power of two"
        );
        assert!(min_block <= heap_size, "min block exceeds heap size");
        assert!(min_block >= 4, "min block must be at least 4 bytes");
        let depth = (heap_size / min_block).trailing_zeros();
        BuddyGeometry {
            heap_base,
            heap_size,
            min_block,
            depth,
        }
    }

    /// First address of the heap region.
    pub fn heap_base(&self) -> u32 {
        self.heap_base
    }

    /// Heap capacity in bytes.
    pub fn heap_size(&self) -> u32 {
        self.heap_size
    }

    /// Smallest allocatable block in bytes.
    pub fn min_block(&self) -> u32 {
        self.min_block
    }

    /// Tree depth: `log2(heap_size / min_block)`. A 32 MB / 32 B heap
    /// has depth 20 (the paper's straw-man); 32 MB / 4 KB has depth 13.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total number of tree nodes (`2^(depth+1) − 1`), using 1-based
    /// implicit-heap indices `1..=node_count`.
    pub fn node_count(&self) -> u32 {
        (1u32 << (self.depth + 1)) - 1
    }

    /// Bytes of metadata at 2 bits per node, including the unused
    /// index-0 slot (this is what a DPU must reserve in MRAM).
    pub fn metadata_bytes(&self) -> u32 {
        // 2 bits per node, 4 nodes per byte, counting slot 0.
        (self.node_count() + 1).div_ceil(4)
    }

    /// The tree level whose blocks are exactly `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two in
    /// `[min_block, heap_size]`.
    pub fn level_for_block(&self, block_size: u32) -> u32 {
        assert!(
            block_size.is_power_of_two()
                && block_size >= self.min_block
                && block_size <= self.heap_size,
            "block size {block_size} outside heap geometry"
        );
        (self.heap_size / block_size).trailing_zeros()
    }

    /// Smallest power-of-two block (≥ `min_block`) that fits `size`
    /// bytes, or `None` if `size` is zero or exceeds the heap.
    pub fn block_for_size(&self, size: u32) -> Option<u32> {
        if size == 0 || size > self.heap_size {
            return None;
        }
        Some(size.next_power_of_two().max(self.min_block))
    }

    /// Level of node `idx` (root = level 0).
    pub fn level_of(&self, idx: u32) -> u32 {
        debug_assert!(idx >= 1 && idx <= self.node_count());
        31 - idx.leading_zeros()
    }

    /// Block size covered by nodes at `level`.
    pub fn block_size_at(&self, level: u32) -> u32 {
        debug_assert!(level <= self.depth);
        self.heap_size >> level
    }

    /// Heap address of the block covered by node `idx`.
    pub fn addr_of(&self, idx: u32) -> u32 {
        let level = self.level_of(idx);
        let first = 1u32 << level;
        self.heap_base + (idx - first) * self.block_size_at(level)
    }

    /// The node at `level` whose block contains heap address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the heap.
    pub fn node_at(&self, level: u32, addr: u32) -> u32 {
        assert!(
            addr >= self.heap_base && addr - self.heap_base < self.heap_size,
            "address {addr:#x} outside heap"
        );
        let off = addr - self.heap_base;
        (1u32 << level) + off / self.block_size_at(level)
    }

    /// True if `addr` could be the base of a block at some level
    /// (i.e. it is `min_block`-aligned and inside the heap).
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.heap_base && (addr - self.heap_base) < self.heap_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_straw_man() -> BuddyGeometry {
        BuddyGeometry::new(0, 32 << 20, 32)
    }

    fn paper_backend() -> BuddyGeometry {
        BuddyGeometry::new(0, 32 << 20, 4096)
    }

    #[test]
    fn paper_depths_match() {
        // §III-B: log2(32 MB / 32 B) = 20; §IV-A: log2(32 MB / 4 KB) = 13.
        assert_eq!(paper_straw_man().depth(), 20);
        assert_eq!(paper_backend().depth(), 13);
    }

    #[test]
    fn straw_man_metadata_is_512kb() {
        // §II-B: vanilla buddy over 32 MB needs 512 KB of metadata.
        let bytes = paper_straw_man().metadata_bytes();
        assert!(
            (512 << 10..=(512 << 10) + 4).contains(&bytes),
            "got {bytes}"
        );
    }

    #[test]
    fn backend_metadata_is_4kb() {
        // §VI-E: hierarchical design shrinks metadata to ~4 KB per bank.
        let bytes = paper_backend().metadata_bytes();
        assert!((4 << 10..=(4 << 10) + 4).contains(&bytes), "got {bytes}");
    }

    #[test]
    fn level_and_block_size_roundtrip() {
        let g = BuddyGeometry::new(0, 1 << 20, 32);
        for level in 0..=g.depth() {
            let bs = g.block_size_at(level);
            assert_eq!(g.level_for_block(bs), level);
        }
    }

    #[test]
    fn addr_node_roundtrip_all_levels() {
        let g = BuddyGeometry::new(0x1000, 4096, 64);
        for level in 0..=g.depth() {
            let first = 1u32 << level;
            for idx in first..(first << 1) {
                let addr = g.addr_of(idx);
                assert_eq!(g.node_at(level, addr), idx);
                assert_eq!(g.level_of(idx), level);
            }
        }
    }

    #[test]
    fn block_for_size_rounds_up() {
        let g = BuddyGeometry::new(0, 1 << 20, 32);
        assert_eq!(g.block_for_size(1), Some(32));
        assert_eq!(g.block_for_size(32), Some(32));
        assert_eq!(g.block_for_size(33), Some(64));
        assert_eq!(g.block_for_size(4097), Some(8192));
        assert_eq!(g.block_for_size(0), None);
        assert_eq!(g.block_for_size((1 << 20) + 1), None);
        assert_eq!(g.block_for_size(1 << 20), Some(1 << 20));
    }

    #[test]
    fn node_count_matches_depth() {
        let g = BuddyGeometry::new(0, 256, 32);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.node_count(), 15);
    }

    #[test]
    fn children_and_buddy_arithmetic() {
        let g = BuddyGeometry::new(0, 256, 32);
        // Node 2's children cover the two halves of node 2's block.
        assert_eq!(g.addr_of(4), g.addr_of(2));
        assert_eq!(g.addr_of(5), g.addr_of(2) + g.block_size_at(2));
        // Buddies differ in the lowest bit.
        assert_eq!(g.addr_of(4 ^ 1), g.addr_of(5));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_heap_rejected() {
        BuddyGeometry::new(0, 1000, 32);
    }

    #[test]
    #[should_panic(expected = "outside heap")]
    fn node_at_out_of_heap_panics() {
        paper_backend().node_at(0, 64 << 20);
    }

    #[test]
    fn contains_checks_bounds() {
        let g = BuddyGeometry::new(0x100, 256, 32);
        assert!(g.contains(0x100));
        assert!(g.contains(0x1ff));
        assert!(!g.contains(0x200));
        assert!(!g.contains(0xff));
    }
}
