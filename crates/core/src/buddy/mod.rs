//! The buddy allocator: tree traversal over a pluggable metadata store.

mod allocator;
mod geometry;

pub use allocator::{BuddyAllocator, DescentPolicy, MetadataBackend};
pub use geometry::BuddyGeometry;
