//! # pim-malloc — fast and scalable dynamic memory allocation for PIM
//!
//! A faithful Rust reproduction of the allocators from *"PIM-malloc: A
//! Fast and Scalable Dynamic Memory Allocator for Processing-In-Memory
//! (PIM) Architectures"* (HPCA 2026), running on the [`pim_sim`]
//! UPMEM-like simulator substrate:
//!
//! * [`StrawManAllocator`] — the paper's `buddy_alloc_PIM_DRAM`
//!   straw-man: one deep (20-level) mutex-protected buddy tree over the
//!   whole 32 MB bank heap.
//! * [`PimMalloc`] with [`BackendKind::Coarse`] — **PIM-malloc-SW**:
//!   per-tasklet thread caches in front of a truncated (13-level) buddy
//!   backend whose metadata sits behind a coarse software-managed
//!   WRAM buffer.
//! * [`PimMalloc`] with [`BackendKind::HwCache`] —
//!   **PIM-malloc-HW/SW**: the same hierarchy with the backend's
//!   metadata served by a per-core hardware buddy cache (a 16-entry
//!   CAM with LRU replacement and 1-cycle access).
//!
//! ## Three tiers
//!
//! By default [`PimMalloc`] runs three tiers: cross-tasklet frees are
//! staged per size class in the [`TransferCache`] (one simulated MRAM
//! round-trip per batch of pointers), overflow demotes to the
//! span-accounted [`CentralFreeList`], and fully-free spans return to
//! the buddy backend. The legacy two-tier hierarchy — remote frees walk
//! the owner's cache under the global backend lock — stays reachable
//! via [`AllocGeometry::two_tier`].
//!
//! ## Frontends
//!
//! Size-class requests are served by one of two frontends (see
//! [`FrontendKind`]): the legacy bitmap-scan thread caches (default),
//! or the mimalloc-style [`PageLocal`] page/queue fast path
//! ([`AllocGeometry::page_local`]) — sharded per-(tasklet, class)
//! queues of fixed-size pages with intrusive free lists and O(1)
//! frame-table free routing. Both produce byte-identical addresses,
//! errors, and fragmentation accounting (differentially
//! property-tested in `tests/page_differential.rs`); only the
//! simulated cycle pricing differs, with the page path's hot paths at
//! constant cost.
//!
//! ## Error paths and quarantine
//!
//! Every hostile operation — zero/oversized sizes, frees of addresses
//! the [`RegionMap`] never issued, double frees — returns an
//! [`AllocError`] instead of panicking or corrupting the frame table
//! (property-tested in `tests/alloc_error_paths.rs`). An
//! [`AllocGeometry::with_quarantine`] budget hardens this further:
//! past `n` invalid frees the allocator *seals itself* and refuses
//! all subsequent operations with [`AllocError::Quarantined`], on the
//! theory that a caller issuing garbage frees can no longer be
//! trusted not to have corrupted its own heap view.
//!
//! ## Quick example
//!
//! Allocator geometry is described with the [`AllocGeometry`] builder
//! (`sw`/`hw_sw` presets plus `with_*` refinements):
//!
//! ```
//! use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc};
//! use pim_sim::{DpuConfig, DpuSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
//! let mut alloc = PimMalloc::init(&mut dpu, AllocGeometry::sw(16).build())?;
//! let mut ctx = dpu.ctx(0);
//! let ptr = alloc.pim_malloc(&mut ctx, 256)?;
//! alloc.pim_free(&mut ctx, ptr)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod api;
pub mod buddy;
pub mod central_free_list;
pub mod error;
pub mod frag;
pub mod geometry;
pub mod metadata;
pub mod page;
pub mod page_queue;
pub mod pim_malloc;
pub mod region_map;
pub mod span;
pub mod stats;
pub mod straw_man;
pub mod thread_cache;
pub mod transfer_cache;

pub use api::PimAllocator;
pub use buddy::{BuddyAllocator, BuddyGeometry, DescentPolicy, MetadataBackend};
pub use central_free_list::CentralFreeList;
pub use error::{AllocError, InitError};
pub use frag::FragTracker;
pub use geometry::{
    AllocGeometry, FrontendKind, GeometryError, PimMallocConfig, SizeClassTable, TierConfig,
    TierPolicy, SIZE_CLASS_ALIGN,
};
pub use metadata::{MetaStats, MetadataStore, NodeState};
pub use page::Page;
pub use page_queue::{PageLocal, PageQueue};
pub use pim_malloc::{BackendKind, PimMalloc};
pub use region_map::{FreeRoute, RegionMap};
pub use span::{Span, SpanRegistry};
pub use stats::{AllocStats, ServiceSite};
pub use straw_man::{StrawManAllocator, StrawManConfig};
pub use thread_cache::{FreeOutcome, ThreadCache, CACHE_BLOCK_BYTES, DEFAULT_SIZE_CLASSES};
pub use transfer_cache::{PushEffect, TransferCache};
