//! Fixed-size pages: the unit of the `PageLocal` fast path.
//!
//! A [`Page`] is one [`CACHE_BLOCK_BYTES`] block carved out of the
//! buddy backend and subdivided into equal sub-blocks of one size
//! class — the same memory layout as the legacy thread-cache block,
//! re-metadata'd for O(1) operation. Following mimalloc's `page.rs`,
//! each page carries its own free-slot structure and `used`/`capacity`
//! counters so the common malloc/free is a handful of loads and
//! stores:
//!
//! * The per-page free list is kept in *address order* as a two-level
//!   bitmap — one word per 64 slots plus a one-word summary whose bit
//!   `i` says "word `i` has a free slot". Popping the lowest free slot
//!   is two `trailing_zeros` and two stores; pushing a freed slot is
//!   two OR-stores. Address order (rather than mimalloc's LIFO
//!   intrusive list) is deliberate: it makes the page path produce
//!   **byte-identical addresses** to the legacy bitmap-scan frontend,
//!   which the `page_differential` proptests pin.
//! * `used`/`capacity` make "page became full" and "page became empty"
//!   O(1) queries for the page queues' migration logic
//!   (see [`crate::page_queue`]).
//! * The intrusive queue links (`prev`/`next` in both the all-pages
//!   list and the available-pages list) live inside the page itself,
//!   so queue surgery never allocates.
//!
//! [`CACHE_BLOCK_BYTES`]: crate::thread_cache::CACHE_BLOCK_BYTES

use serde::{Deserialize, Serialize};

use crate::geometry::SIZE_CLASS_ALIGN;
use crate::thread_cache::CACHE_BLOCK_BYTES;

/// Words of slot bitmap a page can ever need: the smallest legal size
/// class ([`SIZE_CLASS_ALIGN`] bytes) subdivides a page into
/// `CACHE_BLOCK_BYTES / SIZE_CLASS_ALIGN` slots, 64 per word.
pub const PAGE_WORDS: usize = (CACHE_BLOCK_BYTES / SIZE_CLASS_ALIGN / 64) as usize;

/// Null link in the intrusive page lists.
pub const NIL: u32 = u32::MAX;

/// Marks the first `slots` positions free (bit = 1) and every padding
/// bit beyond them busy (bit = 0).
///
/// This is the single shared initializer for per-block free bitmaps
/// (legacy thread cache and page path alike). The historical inline
/// version computed the last word as `(1u64 << tail) - 1`, which is
/// only safe when `tail` is already reduced mod 64 — derive the tail
/// as "slots remaining in the last word" (a count in `1..=64`, the
/// other natural formulation) and `1u64 << 64` overflows: a debug
/// panic or, in release, a wrapped shift that marks an exactly-full
/// tail word (64-, 128-, 192-slot classes…) entirely *busy*. This
/// version computes each word's population without any shift that can
/// reach 64.
pub(crate) fn init_free_mask(slots: u32, words: &mut [u64]) {
    debug_assert!(
        slots as usize <= words.len() * 64,
        "{slots} slots exceed {} bitmap words",
        words.len()
    );
    for (wi, word) in words.iter_mut().enumerate() {
        let below = wi as u32 * 64;
        *word = match slots.saturating_sub(below).min(64) {
            0 => 0,
            64 => u64::MAX,
            in_word => (1u64 << in_word) - 1,
        };
    }
}

/// One fixed-size page: a backend block subdivided into `capacity`
/// sub-blocks of `class_bytes`, with O(1) free-slot pop/push and
/// intrusive links for the page queues.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Page {
    base: u32,
    class_bytes: u32,
    /// Sub-blocks currently handed out.
    used: u32,
    /// Total sub-blocks in the page.
    capacity: u32,
    /// Free-slot bitmap, 1 = free, in address order.
    words: [u64; PAGE_WORDS],
    /// Bit `i` set ⇔ `words[i]` has at least one free slot.
    summary: u32,
    /// Intrusive links in the queue's all-pages list (MRU order).
    pub(crate) prev_all: u32,
    /// See `prev_all`.
    pub(crate) next_all: u32,
    /// Intrusive links in the queue's available-pages list.
    pub(crate) prev_avail: u32,
    /// See `prev_avail`.
    pub(crate) next_avail: u32,
    /// True while the page is linked into the available list.
    pub(crate) in_avail: bool,
}

impl Page {
    /// Carves a fresh page over the block at `base`, all slots free.
    pub fn carve(base: u32, class_bytes: u32) -> Self {
        debug_assert!((SIZE_CLASS_ALIGN..=CACHE_BLOCK_BYTES / 2).contains(&class_bytes));
        let capacity = CACHE_BLOCK_BYTES / class_bytes;
        let mut words = [0u64; PAGE_WORDS];
        init_free_mask(capacity, &mut words);
        let summary = words
            .iter()
            .enumerate()
            .fold(0u32, |s, (wi, &w)| s | (u32::from(w != 0) << wi));
        Page {
            base,
            class_bytes,
            used: 0,
            capacity,
            words,
            summary,
            prev_all: NIL,
            next_all: NIL,
            prev_avail: NIL,
            next_avail: NIL,
            in_avail: false,
        }
    }

    /// Base address of the underlying backend block.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Sub-block size of the page's class.
    pub fn class_bytes(&self) -> u32 {
        self.class_bytes
    }

    /// Sub-blocks currently handed out.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Total sub-blocks in the page.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// True if no slot is free.
    pub fn is_full(&self) -> bool {
        self.used == self.capacity
    }

    /// True if every slot is free.
    pub fn is_unused(&self) -> bool {
        self.used == 0
    }

    /// Pops the lowest free slot and returns its address: two
    /// `trailing_zeros`, one bit clear, one counter bump.
    ///
    /// # Panics
    ///
    /// Debug-asserts the page is not full (the available list never
    /// contains full pages).
    pub fn take_lowest(&mut self) -> u32 {
        debug_assert!(!self.is_full(), "alloc from a full page");
        let wi = self.summary.trailing_zeros() as usize;
        let bit = self.words[wi].trailing_zeros();
        self.words[wi] &= !(1u64 << bit);
        if self.words[wi] == 0 {
            self.summary &= !(1u32 << wi);
        }
        self.used += 1;
        self.base + (wi as u32 * 64 + bit) * self.class_bytes
    }

    /// Pushes the slot holding `addr` back onto the page free list.
    ///
    /// # Panics
    ///
    /// Panics on a double free — the shadow bookkeeping in
    /// [`crate::PimMalloc`]'s frame table rules this out for any free
    /// that reaches the page layer.
    pub fn put_slot(&mut self, addr: u32) {
        let slot = (addr - self.base) / self.class_bytes;
        let (wi, bit) = ((slot / 64) as usize, slot % 64);
        assert_eq!(
            self.words[wi] & (1u64 << bit),
            0,
            "double free of {addr:#x} in class {}",
            self.class_bytes
        );
        self.words[wi] |= 1u64 << bit;
        self.summary |= 1u32 << wi;
        self.used -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the tail-word initialization: slot counts that
    /// are an exact multiple of 64 must leave the last word fully
    /// free, not wrapped to all-busy. 64 slots = the 64 B class,
    /// 128 = the 32 B class, 192 = a three-word page (reachable with
    /// non-power-of-two page geometry).
    #[test]
    fn exact_word_multiples_keep_every_slot_free() {
        for slots in [64u32, 128, 192] {
            let words = (slots as usize).div_ceil(64);
            let mut bitmap = vec![0u64; words];
            init_free_mask(slots, &mut bitmap);
            assert!(
                bitmap.iter().all(|&w| w == u64::MAX),
                "{slots} slots: every word must be all-free, got {bitmap:#x?}"
            );
            assert_eq!(
                bitmap.iter().map(|w| w.count_ones()).sum::<u32>(),
                slots,
                "{slots} slots"
            );
        }
    }

    #[test]
    fn partial_tail_words_mask_padding_bits() {
        for slots in [1u32, 2, 63, 65, 100, 130, 250] {
            let words = (slots as usize).div_ceil(64);
            let mut bitmap = vec![u64::MAX; words]; // stale garbage
            init_free_mask(slots, &mut bitmap);
            assert_eq!(
                bitmap.iter().map(|w| w.count_ones()).sum::<u32>(),
                slots,
                "{slots} slots"
            );
            // Free bits are exactly the lowest `slots` positions.
            for s in 0..(words * 64) as u32 {
                let set = bitmap[(s / 64) as usize] & (1u64 << (s % 64)) != 0;
                assert_eq!(set, s < slots, "slot {s} of {slots}");
            }
        }
    }

    #[test]
    fn carve_pop_push_roundtrip_in_address_order() {
        let mut p = Page::carve(0x8000, 256); // 16 slots
        assert_eq!(p.capacity(), 16);
        let addrs: Vec<u32> = (0..16).map(|_| p.take_lowest()).collect();
        assert!(p.is_full());
        let expect: Vec<u32> = (0..16).map(|i| 0x8000 + i * 256).collect();
        assert_eq!(addrs, expect, "lowest-slot-first, like the legacy scan");
        p.put_slot(0x8000 + 5 * 256);
        p.put_slot(0x8000 + 2 * 256);
        assert_eq!(p.used(), 14);
        // The *lowest* freed slot comes back first, regardless of the
        // order the frees arrived in.
        assert_eq!(p.take_lowest(), 0x8000 + 2 * 256);
        assert_eq!(p.take_lowest(), 0x8000 + 5 * 256);
    }

    #[test]
    fn smallest_class_fills_every_bitmap_word() {
        let mut p = Page::carve(0, SIZE_CLASS_ALIGN); // 512 slots, 8 words
        assert_eq!(p.capacity(), CACHE_BLOCK_BYTES / SIZE_CLASS_ALIGN);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..p.capacity() {
            assert!(seen.insert(p.take_lowest()));
        }
        assert!(p.is_full());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_put_panics() {
        let mut p = Page::carve(0, 512);
        let a = p.take_lowest();
        p.put_slot(a);
        p.put_slot(a);
    }
}
