//! The host-side frame table: O(1) ownership routing for `pim_free`.
//!
//! The paper's `pim_free` resolves an address to its owner — a
//! tasklet's size-class pool or the backend buddy allocator — with a
//! constant-time block-header lookup. [`RegionMap`] is the simulator's
//! bookkeeping equivalent: a flat `Vec` indexed by frame number
//! `(addr - heap_base) / frame_bytes` whose entries record each frame's
//! owner, replacing the `BTreeMap` free oracle the reproduction used to
//! carry (O(log n) per op, memory unbounded in live allocations).
//!
//! Both allocators share the type, differing only in granularity:
//! [`crate::PimMalloc`] maps 4 KB frames (its backend's minimum block),
//! while [`crate::StrawManAllocator`] maps `min_block`-sized frames
//! (32 B in the paper's configuration) so that every buddy allocation
//! starts on a frame boundary. Frame entries also carry the requested
//! byte count of each live allocation, which is what
//! [`crate::FragTracker`]'s `U` accounting consumes on free.
//!
//! The map is *host-side* state standing in for the on-DPU block
//! header; it charges no simulated cycles itself. The simulated cost of
//! the lookup is charged by the caller (one MRAM header read in
//! [`crate::PimMalloc::pim_free`]).

use crate::error::AllocError;

/// A thread-cache-owned frame: one 4 KB block subdivided into
/// fixed-size sub-blocks of one size class.
#[derive(Debug, Clone)]
struct CacheFrame {
    /// Owning tasklet.
    tid: u32,
    /// Size-class index within the owner's pools.
    class_idx: u32,
    /// Sub-block size in bytes.
    class_bytes: u32,
    /// Requested bytes per sub-block slot; 0 = slot free.
    requested: Box<[u32]>,
}

/// Who owns one frame of the heap.
#[derive(Debug, Clone, Default)]
enum FrameEntry {
    /// Not handed out by the backend (or returned to it).
    #[default]
    Free,
    /// Owned by a thread cache's size-class pool.
    Cache(Box<CacheFrame>),
    /// First frame of a block handed out directly by the backend.
    BackendHead {
        /// Bytes the program asked for.
        requested: u32,
        /// Frames the (buddy-rounded) block spans, including this one.
        frames: u32,
    },
    /// Interior frame of a multi-frame backend block; frees here are
    /// interior-pointer errors.
    BackendBody,
}

/// Where a freed address routes, derived in O(1) from the frame table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeRoute {
    /// A sub-block owned by tasklet `tid`'s pool for class `class_idx`.
    Cache {
        /// Tasklet whose cache owns the containing frame.
        tid: usize,
        /// Size-class index within that cache.
        class_idx: usize,
        /// Bytes the program originally requested.
        requested: u32,
    },
    /// A block handed out directly by the backend buddy allocator.
    Backend {
        /// Bytes the program originally requested.
        requested: u32,
    },
}

/// Flat frame-ownership table over one DPU heap.
#[derive(Debug)]
pub struct RegionMap {
    heap_base: u32,
    frame_bytes: u32,
    /// `frame_bytes.trailing_zeros()`: frame arithmetic runs on every
    /// malloc and free, so divisions become shifts.
    frame_shift: u32,
    frames: Vec<FrameEntry>,
    live: usize,
}

impl RegionMap {
    /// Creates a table of `heap_size / frame_bytes` free frames.
    ///
    /// # Panics
    ///
    /// Panics unless `frame_bytes` is a power of two that divides both
    /// `heap_size` and `heap_base`.
    pub fn new(heap_base: u32, heap_size: u32, frame_bytes: u32) -> Self {
        assert!(
            frame_bytes.is_power_of_two(),
            "frame size must be a power of two"
        );
        assert_eq!(heap_size % frame_bytes, 0, "frames must tile the heap");
        assert_eq!(
            heap_base % frame_bytes,
            0,
            "heap base must be frame-aligned"
        );
        RegionMap {
            heap_base,
            frame_bytes,
            frame_shift: frame_bytes.trailing_zeros(),
            frames: vec![FrameEntry::Free; (heap_size / frame_bytes) as usize],
            live: 0,
        }
    }

    /// Number of live user allocations recorded in the table.
    pub fn live_allocations(&self) -> usize {
        self.live
    }

    /// Frame granularity in bytes.
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// Frame index of `addr`, or `None` outside the heap.
    #[inline]
    fn frame_index(&self, addr: u32) -> Option<usize> {
        let offset = addr.checked_sub(self.heap_base)?;
        let idx = (offset >> self.frame_shift) as usize;
        (idx < self.frames.len()).then_some(idx)
    }

    /// Base address of frame `idx`.
    #[inline]
    fn frame_base(&self, idx: usize) -> u32 {
        self.heap_base + ((idx as u32) << self.frame_shift)
    }

    /// Records that the thread cache of tasklet `tid` fetched the frame
    /// at `base` from the backend for size class `class_idx`
    /// (`class_bytes`-byte sub-blocks).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a free, frame-aligned heap address —
    /// those would be allocator bugs, not program errors.
    pub fn note_cache_block(&mut self, base: u32, tid: usize, class_idx: usize, class_bytes: u32) {
        let idx = self.frame_index(base).expect("cache block inside heap");
        assert_eq!(base, self.frame_base(idx), "cache block frame-aligned");
        assert!(
            matches!(self.frames[idx], FrameEntry::Free),
            "cache block {base:#x} lands on an occupied frame"
        );
        let slots = (self.frame_bytes / class_bytes) as usize;
        self.frames[idx] = FrameEntry::Cache(Box::new(CacheFrame {
            tid: tid as u32,
            class_idx: class_idx as u32,
            class_bytes,
            requested: vec![0; slots].into_boxed_slice(),
        }));
    }

    /// Records a sub-block allocation of `requested` bytes at `addr`
    /// inside a previously noted cache frame.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not name an empty, aligned slot of a cache
    /// frame (allocator bug).
    pub fn note_cache_alloc(&mut self, addr: u32, requested: u32) {
        assert!(requested > 0, "zero-size allocations are rejected earlier");
        let idx = self.frame_index(addr).expect("cache alloc inside heap");
        let base = self.frame_base(idx);
        let FrameEntry::Cache(frame) = &mut self.frames[idx] else {
            panic!("cache alloc {addr:#x} outside a cache frame");
        };
        let offset = addr - base;
        assert_eq!(offset % frame.class_bytes, 0, "sub-block aligned");
        let slot = (offset / frame.class_bytes) as usize;
        assert_eq!(frame.requested[slot], 0, "slot {addr:#x} double-filled");
        frame.requested[slot] = requested;
        self.live += 1;
    }

    /// Records a backend (bypass) allocation: `reserved` buddy-rounded
    /// bytes at `base`, of which the program asked for `requested`.
    ///
    /// # Panics
    ///
    /// Panics if the spanned frames are not free and aligned
    /// (allocator bug).
    pub fn note_backend_alloc(&mut self, base: u32, reserved: u32, requested: u32) {
        let idx = self.frame_index(base).expect("backend block inside heap");
        assert_eq!(base, self.frame_base(idx), "backend block frame-aligned");
        let span = (reserved / self.frame_bytes).max(1) as usize;
        for body in &self.frames[idx..idx + span] {
            assert!(
                matches!(body, FrameEntry::Free),
                "backend block {base:#x} overlaps an occupied frame"
            );
        }
        self.frames[idx] = FrameEntry::BackendHead {
            requested,
            frames: span as u32,
        };
        for body in &mut self.frames[idx + 1..idx + span] {
            *body = FrameEntry::BackendBody;
        }
        self.live += 1;
    }

    /// Resolves `addr` to its owner and removes the allocation record —
    /// the O(1) routing step of `pim_free`.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `addr` is outside the heap, not
    /// the base of a live allocation (interior or misaligned pointer),
    /// or already free (double free).
    pub fn take_route(&mut self, addr: u32) -> Result<FreeRoute, AllocError> {
        let invalid = AllocError::InvalidFree { addr };
        let idx = self.frame_index(addr).ok_or(invalid)?;
        let base = self.frame_base(idx);
        match &mut self.frames[idx] {
            FrameEntry::Free | FrameEntry::BackendBody => Err(invalid),
            FrameEntry::Cache(frame) => {
                let offset = addr - base;
                if !offset.is_multiple_of(frame.class_bytes) {
                    return Err(invalid);
                }
                let slot = (offset / frame.class_bytes) as usize;
                if frame.requested[slot] == 0 {
                    return Err(invalid);
                }
                let requested = std::mem::take(&mut frame.requested[slot]);
                self.live -= 1;
                Ok(FreeRoute::Cache {
                    tid: frame.tid as usize,
                    class_idx: frame.class_idx as usize,
                    requested,
                })
            }
            &mut FrameEntry::BackendHead { requested, frames } => {
                if addr != base {
                    return Err(invalid);
                }
                for entry in &mut self.frames[idx..idx + frames as usize] {
                    *entry = FrameEntry::Free;
                }
                self.live -= 1;
                Ok(FreeRoute::Backend { requested })
            }
        }
    }

    /// Marks a drained cache frame free again (the thread cache
    /// released the block at `base` back to the backend).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not a cache frame with every slot free
    /// (allocator bug).
    pub fn release_cache_block(&mut self, base: u32) {
        let idx = self.frame_index(base).expect("released block inside heap");
        let FrameEntry::Cache(frame) = &self.frames[idx] else {
            panic!("released block {base:#x} is not a cache frame");
        };
        assert!(
            frame.requested.iter().all(|&r| r == 0),
            "released block {base:#x} still has live sub-blocks"
        );
        self.frames[idx] = FrameEntry::Free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> RegionMap {
        RegionMap::new(0x1000, 64 << 10, 4096)
    }

    #[test]
    fn cache_slots_route_back_to_their_pool() {
        let mut m = map();
        m.note_cache_block(0x1000, 3, 2, 256);
        m.note_cache_alloc(0x1000 + 512, 100);
        assert_eq!(m.live_allocations(), 1);
        assert_eq!(
            m.take_route(0x1000 + 512),
            Ok(FreeRoute::Cache {
                tid: 3,
                class_idx: 2,
                requested: 100
            })
        );
        assert_eq!(m.live_allocations(), 0);
        // Double free of the now-empty slot.
        assert_eq!(
            m.take_route(0x1000 + 512),
            Err(AllocError::InvalidFree { addr: 0x1000 + 512 })
        );
    }

    #[test]
    fn backend_blocks_span_frames_and_reject_interior_frees() {
        let mut m = map();
        m.note_backend_alloc(0x2000, 8192, 5000);
        // Interior frame and interior byte are both invalid.
        assert!(m.take_route(0x3000).is_err());
        assert!(m.take_route(0x2008).is_err());
        assert_eq!(
            m.take_route(0x2000),
            Ok(FreeRoute::Backend { requested: 5000 })
        );
        // Both frames are free again.
        m.note_backend_alloc(0x3000, 4096, 4096);
        assert_eq!(m.live_allocations(), 1);
    }

    #[test]
    fn out_of_heap_addresses_are_invalid() {
        let mut m = map();
        assert!(m.take_route(0).is_err()); // below heap_base
        assert!(m.take_route(0x1000 + (64 << 10)).is_err()); // past end
        assert!(m.take_route(u32::MAX).is_err());
    }

    #[test]
    fn misaligned_cache_frees_are_invalid() {
        let mut m = map();
        m.note_cache_block(0x1000, 0, 0, 256);
        m.note_cache_alloc(0x1000, 200);
        assert!(m.take_route(0x1000 + 3).is_err());
        assert!(m.take_route(0x1000).is_ok());
    }

    #[test]
    fn release_requires_a_drained_frame() {
        let mut m = map();
        m.note_cache_block(0x1000, 0, 0, 2048);
        m.note_cache_alloc(0x1000, 2000);
        m.note_cache_alloc(0x1800, 1500);
        assert!(m.take_route(0x1000).is_ok());
        assert!(m.take_route(0x1800).is_ok());
        m.release_cache_block(0x1000);
        // The frame can be handed out by the backend again.
        m.note_backend_alloc(0x1000, 4096, 4096);
    }

    #[test]
    #[should_panic(expected = "still has live sub-blocks")]
    fn releasing_a_live_frame_panics() {
        let mut m = map();
        m.note_cache_block(0x1000, 0, 0, 2048);
        m.note_cache_alloc(0x1000, 1);
        m.release_cache_block(0x1000);
    }

    #[test]
    #[should_panic(expected = "occupied frame")]
    fn overlapping_backend_blocks_panic() {
        let mut m = map();
        m.note_backend_alloc(0x2000, 8192, 8192);
        m.note_backend_alloc(0x3000, 4096, 4096);
    }

    #[test]
    fn straw_man_granularity_works_at_min_block() {
        // The straw-man shares the type at 32 B frames.
        let mut m = RegionMap::new(0, 1 << 10, 32);
        m.note_backend_alloc(64, 128, 100);
        assert!(m.take_route(96).is_err(), "interior frame");
        assert_eq!(m.take_route(64), Ok(FreeRoute::Backend { requested: 100 }));
    }
}
