//! Error types of the PIM-malloc core library.

use std::error::Error;
use std::fmt;

/// Errors returned by allocator operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block of the requested size exists in the heap (either
    /// genuinely exhausted or too fragmented to satisfy the request).
    OutOfMemory {
        /// The rejected request size in bytes.
        requested: u32,
    },
    /// The requested size is zero or exceeds the heap's largest block.
    InvalidSize {
        /// The rejected request size in bytes.
        requested: u32,
    },
    /// A `pim_free` was issued for an address that does not correspond
    /// to a live allocation.
    InvalidFree {
        /// The offending address.
        addr: u32,
    },
    /// The allocator quarantined itself after observing too many
    /// invalid frees (`PimMallocConfig::quarantine_after`): heap
    /// metadata can no longer be trusted, so every subsequent
    /// operation is refused instead of risking silent corruption.
    Quarantined {
        /// Invalid frees observed before the allocator sealed itself.
        invalid_frees: u32,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} bytes")
            }
            AllocError::InvalidSize { requested } => {
                write!(f, "invalid allocation size {requested}")
            }
            AllocError::InvalidFree { addr } => {
                write!(f, "invalid free of address {addr:#x}")
            }
            AllocError::Quarantined { invalid_frees } => {
                write!(
                    f,
                    "allocator quarantined after {invalid_frees} invalid frees"
                )
            }
        }
    }
}

impl Error for AllocError {}

/// Errors returned by allocator initialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitError {
    /// A WRAM reservation (metadata buffer, bitmaps) did not fit.
    Wram(pim_sim::wram::WramOverflow),
    /// Pre-population exhausted the heap.
    Alloc(AllocError),
}

impl fmt::Display for InitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitError::Wram(e) => write!(f, "allocator init failed: {e}"),
            InitError::Alloc(e) => write!(f, "allocator init failed: {e}"),
        }
    }
}

impl Error for InitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InitError::Wram(e) => Some(e),
            InitError::Alloc(e) => Some(e),
        }
    }
}

impl From<pim_sim::wram::WramOverflow> for InitError {
    fn from(e: pim_sim::wram::WramOverflow) -> Self {
        InitError::Wram(e)
    }
}

impl From<AllocError> for InitError {
    fn from(e: AllocError) -> Self {
        InitError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(AllocError::OutOfMemory { requested: 64 }
            .to_string()
            .contains("64"));
        assert!(AllocError::InvalidSize { requested: 0 }
            .to_string()
            .contains("invalid"));
        assert!(AllocError::InvalidFree { addr: 0x100 }
            .to_string()
            .contains("0x100"));
        let q = AllocError::Quarantined { invalid_frees: 8 };
        assert!(q.to_string().contains("quarantined"));
        assert!(q.to_string().contains('8'));
    }

    #[test]
    fn quarantine_propagates_through_question_mark() {
        // The ergonomic contract: callers `?`-propagate instead of
        // matching or unwrapping, including the quarantine variant.
        fn free_like() -> Result<(), AllocError> {
            Err(AllocError::Quarantined { invalid_frees: 3 })?;
            Ok(())
        }
        fn boxed() -> Result<(), Box<dyn Error>> {
            free_like()?;
            Ok(())
        }
        let err = boxed().unwrap_err();
        assert!(err.to_string().contains("quarantined"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(AllocError::OutOfMemory { requested: 1 });
    }
}
