//! The straw-man `buddy_alloc_PIM_DRAM` allocator (§III-B).
//!
//! A single mutex-protected buddy allocator manages the whole 32 MB
//! heap down to 32 B blocks — a 20-level tree whose 512 KB of metadata
//! lives in MRAM behind the coarse software-managed buffer. Every
//! request, small or large, traverses the deep tree under the lock,
//! which is exactly what makes it slow (Figure 7) and
//! contention-prone (Figure 8).

use pim_sim::{DpuSim, MutexId, TaskletCtx};

use crate::api::PimAllocator;
use crate::buddy::{BuddyAllocator, BuddyGeometry, DescentPolicy, MetadataBackend};
use crate::error::{AllocError, InitError};
use crate::region_map::{FreeRoute, RegionMap};
use crate::stats::{AllocStats, ServiceSite};

/// Configuration of the straw-man allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrawManConfig {
    /// First address of the heap region in MRAM.
    pub heap_base: u32,
    /// Heap capacity (power of two; paper: 32 MB).
    pub heap_size: u32,
    /// Minimum allocation size (paper: 32 B → a 20-level tree).
    pub min_block: u32,
    /// MRAM address of the metadata array.
    pub meta_base: u32,
    /// WRAM window of the software-managed metadata buffer.
    pub buffer_bytes: u32,
    /// Keep the metadata in WRAM instead of MRAM — models UPMEM's
    /// stock scratchpad `buddy_alloc()` for small heaps (Figure 7's
    /// 32 KB point).
    pub metadata_in_wram: bool,
    /// Descent policy (ablation hook).
    pub descent: DescentPolicy,
}

impl Default for StrawManConfig {
    /// The paper's straw-man: 32 MB heap, 32 B min block, 2 KB buffer.
    fn default() -> Self {
        StrawManConfig {
            heap_base: 0x0200_0000,
            heap_size: 32 << 20,
            min_block: 32,
            meta_base: 0x0100_0000,
            buffer_bytes: 2048,
            metadata_in_wram: false,
            descent: DescentPolicy::FullMarks,
        }
    }
}

/// The mutex-protected, single-level straw-man buddy allocator.
#[derive(Debug)]
pub struct StrawManAllocator {
    buddy: BuddyAllocator,
    mutex: MutexId,
    stats: AllocStats,
    /// O(1) host-side free validation, shared with [`crate::PimMalloc`]
    /// (frame granularity = `min_block`, so every buddy allocation
    /// starts on a frame boundary).
    region: RegionMap,
}

impl StrawManAllocator {
    /// Initializes the allocator on a DPU (metadata zeroing runs on
    /// tasklet 0).
    ///
    /// # Errors
    ///
    /// [`InitError::Wram`] if the metadata (with `metadata_in_wram`)
    /// or the software-managed buffer does not fit the scratchpad —
    /// reachable from data (DSE sweeps explore tree depths whose
    /// metadata exceeds 64 KB), so it is reported, not panicked.
    ///
    /// # Panics
    ///
    /// Panics on malformed geometry (non-power-of-two sizes).
    pub fn init(dpu: &mut DpuSim, config: StrawManConfig) -> Result<Self, InitError> {
        let geometry = BuddyGeometry::new(config.heap_base, config.heap_size, config.min_block);
        let store = if config.metadata_in_wram {
            dpu.wram_mut()
                .reserve("straw-man metadata (WRAM)", geometry.metadata_bytes())?;
            MetadataBackend::wram(&geometry)
        } else {
            dpu.wram_mut()
                .reserve("straw-man metadata buffer", config.buffer_bytes)?;
            MetadataBackend::coarse(&geometry, config.meta_base, config.buffer_bytes)
        };
        let mut buddy = BuddyAllocator::new(geometry, store).with_policy(config.descent);
        let mutex = dpu.alloc_mutex();
        {
            let mut ctx = dpu.ctx(0);
            buddy.reset(&mut ctx);
        }
        Ok(StrawManAllocator {
            region: RegionMap::new(config.heap_base, config.heap_size, config.min_block),
            buddy,
            mutex,
            stats: AllocStats::default(),
        })
    }

    /// The underlying buddy allocator.
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Number of live user allocations.
    pub fn live_allocations(&self) -> usize {
        self.region.live_allocations()
    }
}

impl PimAllocator for StrawManAllocator {
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        let start = ctx.now();
        ctx.mutex_lock(self.mutex);
        let result = self.buddy.alloc(ctx, size);
        ctx.mutex_unlock(self.mutex);
        let addr = result?;
        let reserved = self
            .buddy
            .geometry()
            .block_for_size(size)
            .ok_or(AllocError::InvalidSize { requested: size })?;
        self.region.note_backend_alloc(addr, reserved, size);
        self.stats
            .record_malloc(ServiceSite::Bypass, ctx.now() - start);
        Ok(addr)
    }

    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError> {
        // Validate through the same O(1) frame table PIM-malloc uses;
        // an invalid or double free is rejected before any simulated
        // descent. The straw-man has one owner only, so the route is
        // always the backend.
        let route = self.region.take_route(addr)?;
        debug_assert!(matches!(route, FreeRoute::Backend { .. }));
        ctx.mutex_lock(self.mutex);
        let result = self.buddy.free(ctx, addr);
        ctx.mutex_unlock(self.mutex);
        result?;
        self.stats.record_free(true);
        Ok(())
    }

    fn alloc_stats(&self) -> &AllocStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Cycles, DpuConfig};

    fn dpu(tasklets: usize) -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(tasklets))
    }

    #[test]
    fn default_config_is_a_20_level_tree() {
        let mut d = dpu(1);
        let a = StrawManAllocator::init(&mut d, StrawManConfig::default()).unwrap();
        assert_eq!(a.buddy().geometry().depth(), 20);
        assert_eq!(a.buddy().geometry().metadata_bytes(), 512 << 10);
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut d = dpu(1);
        let cfg = StrawManConfig {
            heap_size: 1 << 20,
            ..StrawManConfig::default()
        };
        let mut a = StrawManAllocator::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        let x = a.pim_malloc(&mut ctx, 32).unwrap();
        let y = a.pim_malloc(&mut ctx, 32).unwrap();
        assert_ne!(x, y);
        a.pim_free(&mut ctx, x).unwrap();
        a.pim_free(&mut ctx, y).unwrap();
        assert_eq!(a.alloc_stats().total_mallocs(), 2);
        a.buddy().check_invariants();
    }

    #[test]
    fn contention_produces_busy_wait() {
        // Figure 8: 16 tasklets hammering the single mutex spend most
        // of their time busy-waiting.
        let mut d = dpu(16);
        let cfg = StrawManConfig {
            heap_size: 1 << 20,
            ..StrawManConfig::default()
        };
        let mut a = StrawManAllocator::init(&mut d, cfg).unwrap();
        for _ in 0..8 {
            for tid in 0..16 {
                let mut ctx = d.ctx(tid);
                a.pim_malloc(&mut ctx, 32).unwrap();
            }
        }
        let s = d.total_stats();
        assert!(
            s.busy_wait > Cycles::ZERO,
            "16 contending tasklets must busy-wait"
        );
        // Contention dominates: busy-wait exceeds run time (Figure 8(b)).
        assert!(
            s.busy_wait > s.run,
            "busy-wait {} run {}",
            s.busy_wait,
            s.run
        );
    }

    #[test]
    fn wram_variant_for_scratchpad_heap() {
        let mut d = dpu(1);
        let cfg = StrawManConfig {
            heap_base: 0,
            heap_size: 32 << 10,
            min_block: 32,
            metadata_in_wram: true,
            ..StrawManConfig::default()
        };
        let mut a = StrawManAllocator::init(&mut d, cfg).unwrap();
        assert_eq!(a.buddy().geometry().depth(), 10);
        let mut ctx = d.ctx(0);
        let addr = a.pim_malloc(&mut ctx, 2048).unwrap();
        a.pim_free(&mut ctx, addr).unwrap();
        // No DRAM traffic: metadata lives in scratchpad.
        assert_eq!(d.traffic().total_bytes(), 0);
    }

    #[test]
    fn small_allocs_in_big_heap_are_slow() {
        // The Figure 7 diagonal: 32 B allocation in a 32 MB heap is
        // far slower than 2 KB in a 32 KB heap.
        let mut d1 = dpu(1);
        let small = StrawManConfig {
            heap_base: 0,
            heap_size: 32 << 10,
            min_block: 32,
            metadata_in_wram: true,
            ..StrawManConfig::default()
        };
        let mut a1 = StrawManAllocator::init(&mut d1, small).unwrap();
        let mut ctx = d1.ctx(0);
        let t0 = ctx.now();
        a1.pim_malloc(&mut ctx, 2048).unwrap();
        let fast = (ctx.now() - t0).0;

        let mut d2 = dpu(1);
        let mut a2 = StrawManAllocator::init(&mut d2, StrawManConfig::default()).unwrap();
        let mut ctx = d2.ctx(0);
        let t0 = ctx.now();
        a2.pim_malloc(&mut ctx, 32).unwrap();
        let slow = (ctx.now() - t0).0;
        assert!(slow > fast * 3, "expected ≥3x gap, got {fast} vs {slow}");
    }
}
