//! The common allocator interface (Table II of the paper).
//!
//! Workloads are written against [`PimAllocator`] so the same driver
//! can run on the straw-man buddy allocator, PIM-malloc-SW, or
//! PIM-malloc-HW/SW — exactly how the paper swaps allocators under its
//! benchmarks.

use std::any::Any;

use pim_sim::TaskletCtx;

use crate::error::AllocError;
use crate::stats::AllocStats;

/// A DPU-resident dynamic memory allocator.
///
/// Mirrors the paper's C API: `pimMalloc(size)` / `pimFree(ptr)`
/// (Table II), with the simulator context threaded explicitly.
pub trait PimAllocator {
    /// Allocates `size` bytes, returning the block's MRAM address.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidSize`] for zero or over-heap sizes;
    /// [`AllocError::OutOfMemory`] when no suitable block is free.
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError>;

    /// Deallocates the block at `addr`.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] if `addr` is not a live allocation.
    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError>;

    /// Allocation statistics accumulated so far.
    fn alloc_stats(&self) -> &AllocStats;

    /// Upcast for implementation-specific statistics (metadata
    /// traffic, buddy-cache hit rates) behind a `dyn PimAllocator`.
    fn as_any(&self) -> &dyn Any;
}

/// Boxed allocators are allocators, so adapters that are generic over
/// `A: PimAllocator` (e.g. a trace recorder) can wrap the
/// `Box<dyn PimAllocator>` the workload builders hand out.
impl<A: PimAllocator + ?Sized> PimAllocator for Box<A> {
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        (**self).pim_malloc(ctx, size)
    }

    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError> {
        (**self).pim_free(ctx, addr)
    }

    fn alloc_stats(&self) -> &AllocStats {
        (**self).alloc_stats()
    }

    fn as_any(&self) -> &dyn Any {
        (**self).as_any()
    }
}
