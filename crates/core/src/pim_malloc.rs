//! PIM-malloc: the hierarchical allocator (§IV of the paper).
//!
//! [`PimMalloc`] combines per-tasklet [`ThreadCache`] frontends with a
//! mutex-protected backend [`BuddyAllocator`] whose tree is truncated
//! at 4 KB blocks (depth 13 for a 32 MB heap instead of the straw-man's
//! depth 20). Requests up to the largest size class (2 KB) are served
//! lock-free from the calling tasklet's cache; larger requests bypass
//! to the backend (Figure 10).
//!
//! The backend's metadata store selects between the paper's variants:
//! a coarse software buffer (**PIM-malloc-SW**), the hardware buddy
//! cache (**PIM-malloc-HW/SW**), or the fine-grained software LRU
//! ablation.

use pim_sim::{BuddyCacheConfig, BuddyCacheStats, DpuSim, MutexId, TaskletCtx};

use crate::api::PimAllocator;
use crate::buddy::{BuddyAllocator, BuddyGeometry, DescentPolicy, MetadataBackend};
use crate::error::{AllocError, InitError};
use crate::frag::FragTracker;
use crate::metadata::{MetaStats, MetadataStore};
use crate::region_map::{FreeRoute, RegionMap};
use crate::stats::{AllocStats, ServiceSite};
use crate::thread_cache::{FreeOutcome, ThreadCache, CACHE_BLOCK_BYTES, DEFAULT_SIZE_CLASSES};

/// Fixed instructions of `pim_malloc` entry (argument checks, size
/// classification).
const MALLOC_ENTRY_INSTRS: u64 = 15;
/// Fixed instructions of `pim_free` entry (argument checks and routing
/// off the block header; the header itself costs one MRAM read).
const FREE_ENTRY_INSTRS: u64 = 20;
/// Bytes of the per-block header `pim_free` reads to learn the owning
/// route (thread-cache class vs backend level) — one 8 B DMA beat.
const BLOCK_HEADER_BYTES: u32 = 8;

/// Which metadata store the backend buddy allocator runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendKind {
    /// Coarse software-managed WRAM window — **PIM-malloc-SW**.
    Coarse {
        /// WRAM window size in bytes (paper: 2 KB).
        buffer_bytes: u32,
    },
    /// Fine-grained software LRU — the §IV-B ablation.
    FineLru {
        /// Number of cached granules.
        entries: usize,
        /// Granule size in bytes.
        granule_bytes: u32,
    },
    /// Hardware buddy cache — **PIM-malloc-HW/SW**.
    HwCache {
        /// CAM configuration (paper default: 16 × 4 B).
        cache: BuddyCacheConfig,
    },
    /// Line-granular general-purpose metadata cache — the §VII
    /// cache-enabled-PIM counterfactual.
    LineCache {
        /// Total cache capacity in bytes.
        capacity_bytes: u32,
        /// Cache line size in bytes (e.g. 64).
        line_bytes: u32,
    },
}

/// Configuration of a [`PimMalloc`] instance (one per DPU).
#[derive(Debug, Clone, PartialEq)]
pub struct PimMallocConfig {
    /// First address of the heap region in MRAM.
    pub heap_base: u32,
    /// Heap capacity in bytes (power of two; paper: 32 MB).
    pub heap_size: u32,
    /// MRAM address of the backend's metadata array.
    pub meta_base: u32,
    /// Backend block size = minimum buddy block (paper: 4 KB).
    pub backend_min_block: u32,
    /// Thread-cache size classes (paper: 16 B … 2 KB, powers of two).
    pub size_classes: Vec<u32>,
    /// Number of tasklets (thread caches) to provision.
    pub n_tasklets: usize,
    /// Metadata store of the backend.
    pub backend: BackendKind,
    /// Pre-populate every thread-cache pool with one free 4 KB block
    /// during init (the paper's default; `false` = PIM-malloc-lazy).
    pub prepopulate: bool,
    /// Backend descent policy (ablation hook; paper default prunes
    /// full subtrees).
    pub descent: DescentPolicy,
    /// Invalid frees tolerated before the allocator quarantines
    /// itself: after this many rejected frees, heap metadata is
    /// presumed corrupted and every subsequent operation returns
    /// [`AllocError::Quarantined`] instead of risking silent damage.
    /// `None` (the default) never quarantines — each invalid free is
    /// rejected individually, as before.
    pub quarantine_after: Option<u32>,
}

impl PimMallocConfig {
    /// The paper's PIM-malloc-SW configuration for `n_tasklets`.
    pub fn sw(n_tasklets: usize) -> Self {
        PimMallocConfig {
            heap_base: 0x0200_0000,
            heap_size: 32 << 20,
            meta_base: 0x0100_0000,
            backend_min_block: CACHE_BLOCK_BYTES,
            size_classes: DEFAULT_SIZE_CLASSES.to_vec(),
            n_tasklets,
            backend: BackendKind::Coarse { buffer_bytes: 2048 },
            prepopulate: true,
            descent: DescentPolicy::FullMarks,
            quarantine_after: None,
        }
    }

    /// The paper's PIM-malloc-HW/SW configuration for `n_tasklets`.
    pub fn hw_sw(n_tasklets: usize) -> Self {
        PimMallocConfig {
            backend: BackendKind::HwCache {
                cache: BuddyCacheConfig::default(),
            },
            ..Self::sw(n_tasklets)
        }
    }

    /// Disables thread-cache pre-population (PIM-malloc-lazy,
    /// Table III).
    pub fn lazy(mut self) -> Self {
        self.prepopulate = false;
        self
    }

    /// Overrides the heap size.
    pub fn with_heap_size(mut self, bytes: u32) -> Self {
        self.heap_size = bytes;
        self
    }

    /// Quarantines the allocator after `n` invalid frees (fault
    /// hardening for hostile or corrupted callers).
    pub fn with_quarantine(mut self, n: u32) -> Self {
        self.quarantine_after = Some(n);
        self
    }
}

/// The hierarchical PIM-malloc allocator for one DPU.
#[derive(Debug)]
pub struct PimMalloc {
    caches: Vec<ThreadCache>,
    backend: BuddyAllocator,
    backend_mutex: MutexId,
    /// O(1) frame-table routing for `pim_free` (see [`RegionMap`]).
    region: RegionMap,
    stats: AllocStats,
    frag: FragTracker,
    init_end: pim_sim::Cycles,
    /// Invalid frees observed so far (each one was rejected).
    invalid_frees: u32,
    /// Invalid frees tolerated before sealing; `None` never seals.
    quarantine_after: Option<u32>,
    /// Once set, every operation returns [`AllocError::Quarantined`].
    quarantined: bool,
}

impl PimMalloc {
    /// Initializes the allocator on a DPU: reserves WRAM for the
    /// metadata buffer and thread-cache bitmaps, zeroes the backend
    /// metadata, and (optionally) pre-populates the thread caches.
    ///
    /// Initialization runs on tasklet 0, as in the paper (`initAllocator`
    /// is executed by the designated thread).
    ///
    /// # Errors
    ///
    /// [`InitError::Wram`] if the WRAM budget is exceeded;
    /// [`InitError::Alloc`] if pre-population exhausts the heap.
    ///
    /// # Panics
    ///
    /// Panics on malformed configuration (non-power-of-two sizes,
    /// empty/invalid size-class list, tasklet count outside 1..=24).
    pub fn init(dpu: &mut DpuSim, config: PimMallocConfig) -> Result<Self, InitError> {
        assert!(
            config.n_tasklets >= 1 && config.n_tasklets <= 24,
            "tasklet count {} outside 1..=24",
            config.n_tasklets
        );
        assert_eq!(
            config.backend_min_block, CACHE_BLOCK_BYTES,
            "the frame table maps one backend block per frame, so the \
             backend's minimum block must equal the thread-cache block"
        );
        let geometry =
            BuddyGeometry::new(config.heap_base, config.heap_size, config.backend_min_block);
        let caches: Vec<ThreadCache> = (0..config.n_tasklets)
            .map(|_| ThreadCache::new(&config.size_classes))
            .collect();

        // WRAM budget: backend metadata buffer + per-tasklet bitmaps.
        match config.backend {
            BackendKind::Coarse { buffer_bytes } => {
                dpu.wram_mut()
                    .reserve("buddy metadata buffer", buffer_bytes)?;
            }
            BackendKind::FineLru {
                entries,
                granule_bytes,
            } => {
                dpu.wram_mut()
                    .reserve("fine-lru metadata buffer", entries as u32 * granule_bytes)?;
            }
            BackendKind::HwCache { .. } => {
                // The buddy cache is dedicated hardware; only a staging
                // beat in WRAM is needed for miss handling.
                dpu.wram_mut().reserve("buddy cache staging", 8)?;
            }
            BackendKind::LineCache { line_bytes, .. } => {
                dpu.wram_mut().reserve("line cache staging", line_bytes)?;
            }
        }
        let bitmap_bytes: u32 = caches.iter().map(ThreadCache::bitmap_wram_bytes).sum();
        dpu.wram_mut()
            .reserve("thread cache bitmaps", bitmap_bytes)?;

        let store = match config.backend {
            BackendKind::Coarse { buffer_bytes } => {
                MetadataBackend::coarse(&geometry, config.meta_base, buffer_bytes)
            }
            BackendKind::FineLru {
                entries,
                granule_bytes,
            } => MetadataBackend::fine_lru(&geometry, config.meta_base, entries, granule_bytes),
            BackendKind::HwCache { cache } => {
                MetadataBackend::hw_cache(&geometry, config.meta_base, cache)
            }
            BackendKind::LineCache {
                capacity_bytes,
                line_bytes,
            } => {
                MetadataBackend::line_cache(&geometry, config.meta_base, capacity_bytes, line_bytes)
            }
        };
        let mut backend = BuddyAllocator::new(geometry, store).with_policy(config.descent);
        let backend_mutex = dpu.alloc_mutex();

        let mut this = {
            let mut ctx = dpu.ctx(0);
            backend.reset(&mut ctx);
            PimMalloc {
                caches,
                backend,
                backend_mutex,
                region: RegionMap::new(config.heap_base, config.heap_size, CACHE_BLOCK_BYTES),
                stats: AllocStats::default(),
                frag: FragTracker::new(),
                init_end: pim_sim::Cycles::ZERO,
                invalid_frees: 0,
                quarantine_after: config.quarantine_after,
                quarantined: false,
            }
        };

        if config.prepopulate {
            let n_classes = config.size_classes.len();
            for tid in 0..config.n_tasklets {
                for class_idx in 0..n_classes {
                    let mut ctx = dpu.ctx(0);
                    let base = this.backend.alloc(&mut ctx, CACHE_BLOCK_BYTES)?;
                    this.frag.on_reserve(u64::from(CACHE_BLOCK_BYTES));
                    this.region.note_cache_block(
                        base,
                        tid,
                        class_idx,
                        config.size_classes[class_idx],
                    );
                    this.caches[tid].add_block(&mut ctx, class_idx, base);
                }
            }
        }
        this.init_end = dpu.clock(0);
        Ok(this)
    }

    /// Allocation statistics (service sites, latency attribution).
    pub fn alloc_stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Fragmentation tracker (A/U accounting, Table III).
    pub fn frag(&self) -> &FragTracker {
        &self.frag
    }

    /// Metadata-store transfer statistics of the backend.
    pub fn metadata_stats(&self) -> MetaStats {
        self.backend.store().stats()
    }

    /// Hardware buddy-cache statistics, if this instance runs
    /// PIM-malloc-HW/SW.
    pub fn buddy_cache_stats(&self) -> Option<BuddyCacheStats> {
        match self.backend.store() {
            MetadataBackend::HwCache(s) => Some(s.cache_stats()),
            _ => None,
        }
    }

    /// The backend buddy allocator (read-only).
    pub fn backend(&self) -> &BuddyAllocator {
        &self.backend
    }

    /// The thread caches, indexed by tasklet id.
    pub fn caches(&self) -> &[ThreadCache] {
        &self.caches
    }

    /// Tasklet-0 time when `init` finished (initialization cost).
    pub fn init_end(&self) -> pim_sim::Cycles {
        self.init_end
    }

    /// Number of live user allocations.
    pub fn live_allocations(&self) -> usize {
        self.region.live_allocations()
    }

    /// Invalid frees observed (and rejected) so far.
    pub fn invalid_frees(&self) -> u32 {
        self.invalid_frees
    }

    /// True once the allocator has sealed itself after exceeding its
    /// invalid-free budget (`PimMallocConfig::quarantine_after`).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    fn backend_alloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        ctx.mutex_lock(self.backend_mutex);
        let result = self.backend.alloc(ctx, size);
        ctx.mutex_unlock(self.backend_mutex);
        result
    }

    fn backend_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<u32, AllocError> {
        ctx.mutex_lock(self.backend_mutex);
        let result = self.backend.free(ctx, addr);
        ctx.mutex_unlock(self.backend_mutex);
        result
    }
}

impl PimAllocator for PimMalloc {
    /// Allocates `size` bytes for the calling tasklet (Figure 10).
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        let start = ctx.now();
        ctx.instrs(MALLOC_ENTRY_INSTRS);
        if self.quarantined {
            return Err(AllocError::Quarantined {
                invalid_frees: self.invalid_frees,
            });
        }
        if size == 0 {
            return Err(AllocError::InvalidSize { requested: size });
        }
        let tid = ctx.tid();
        let (addr, site) = match self.caches[tid].class_for(size) {
            Some(class_idx) => {
                let (addr, site) = match self.caches[tid].alloc(ctx, class_idx) {
                    // Case 1: thread cache hit.
                    Some(addr) => (addr, ServiceSite::FrontendHit),
                    // Case 2: thread cache miss — refill from the backend.
                    None => {
                        let base = self.backend_alloc(ctx, CACHE_BLOCK_BYTES)?;
                        self.frag.on_reserve(u64::from(CACHE_BLOCK_BYTES));
                        let class_bytes = self.caches[tid].pools()[class_idx].class_bytes();
                        self.region
                            .note_cache_block(base, tid, class_idx, class_bytes);
                        self.caches[tid].add_block(ctx, class_idx, base);
                        let addr = self.caches[tid]
                            .alloc(ctx, class_idx)
                            .expect("fresh block has free sub-blocks");
                        (addr, ServiceSite::FrontendRefill)
                    }
                };
                self.region.note_cache_alloc(addr, size);
                (addr, site)
            }
            // Case 3: thread cache bypass.
            None => {
                let addr = self.backend_alloc(ctx, size)?;
                let reserved = self
                    .backend
                    .geometry()
                    .block_for_size(size)
                    .expect("validated by backend");
                self.frag.on_reserve(u64::from(reserved));
                self.region.note_backend_alloc(addr, reserved, size);
                (addr, ServiceSite::Bypass)
            }
        };
        self.frag.on_user_alloc(u64::from(size));
        self.stats.record_malloc(site, ctx.now() - start);
        Ok(addr)
    }

    /// Frees the allocation at `addr`.
    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError> {
        ctx.instrs(FREE_ENTRY_INSTRS);
        if self.quarantined {
            return Err(AllocError::Quarantined {
                invalid_frees: self.invalid_frees,
            });
        }
        // O(1) host-side routing off the frame table; the simulated
        // cost is the block-header read charged below. A failed route
        // is a corrupted free: reject it, count it, and seal the
        // allocator once the quarantine budget is exhausted.
        let route = match self.region.take_route(addr) {
            Ok(route) => route,
            Err(err) => {
                self.invalid_frees = self.invalid_frees.saturating_add(1);
                if let Some(budget) = self.quarantine_after {
                    if self.invalid_frees > budget {
                        self.quarantined = true;
                        return Err(AllocError::Quarantined {
                            invalid_frees: self.invalid_frees,
                        });
                    }
                }
                return Err(err);
            }
        };
        ctx.mram_read(addr, BLOCK_HEADER_BYTES);
        match route {
            FreeRoute::Cache {
                tid,
                class_idx,
                requested,
            } => {
                match self.caches[tid].free(ctx, class_idx, addr) {
                    FreeOutcome::Cached => self.stats.record_free(false),
                    FreeOutcome::BlockReleased { block_base } => {
                        self.region.release_cache_block(block_base);
                        self.backend_free(ctx, block_base)?;
                        self.frag.on_release(u64::from(CACHE_BLOCK_BYTES));
                        self.stats.record_free(true);
                    }
                }
                self.frag.on_user_free(u64::from(requested));
            }
            FreeRoute::Backend { requested } => {
                let freed = self.backend_free(ctx, addr)?;
                self.frag.on_release(u64::from(freed));
                self.frag.on_user_free(u64::from(requested));
                self.stats.record_free(true);
            }
        }
        Ok(())
    }

    fn alloc_stats(&self) -> &AllocStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::DpuConfig;

    fn dpu(tasklets: usize) -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(tasklets))
    }

    fn small_sw(tasklets: usize) -> PimMallocConfig {
        // A 1 MB heap keeps tests fast while preserving structure.
        PimMallocConfig {
            heap_size: 1 << 20,
            ..PimMallocConfig::sw(tasklets)
        }
    }

    #[test]
    fn init_prepopulates_every_pool() {
        let mut d = dpu(4);
        let pm = PimMalloc::init(&mut d, small_sw(4)).unwrap();
        for cache in pm.caches() {
            for pool in cache.pools() {
                assert_eq!(pool.block_count(), 1);
            }
        }
        // 4 tasklets × 8 classes × 4 KB reserved, nothing requested yet.
        assert_eq!(pm.frag().reserved_live(), 4 * 8 * 4096);
        assert!(pm.init_end() > pim_sim::Cycles::ZERO);
    }

    #[test]
    fn lazy_init_reserves_nothing() {
        let mut d = dpu(4);
        let pm = PimMalloc::init(&mut d, small_sw(4).lazy()).unwrap();
        assert_eq!(pm.frag().reserved_live(), 0);
        for cache in pm.caches() {
            assert!(cache.pools().iter().all(|p| p.block_count() == 0));
        }
    }

    #[test]
    fn small_allocation_hits_thread_cache() {
        let mut d = dpu(2);
        let mut pm = PimMalloc::init(&mut d, small_sw(2)).unwrap();
        let mut ctx = d.ctx(1);
        let addr = pm.pim_malloc(&mut ctx, 128).unwrap();
        assert_eq!(pm.alloc_stats().frontend_hits, 1);
        assert_eq!(pm.live_allocations(), 1);
        pm.pim_free(&mut ctx, addr).unwrap();
        assert_eq!(pm.alloc_stats().frees_frontend, 1);
        assert_eq!(pm.live_allocations(), 0);
    }

    #[test]
    fn cache_exhaustion_triggers_refill() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1)).unwrap();
        let mut ctx = d.ctx(0);
        // 2 KB class holds 2 sub-blocks per 4 KB block; the third
        // allocation forces a backend refill.
        let a = pm.pim_malloc(&mut ctx, 2048).unwrap();
        let b = pm.pim_malloc(&mut ctx, 2048).unwrap();
        let c = pm.pim_malloc(&mut ctx, 2048).unwrap();
        assert_eq!(pm.alloc_stats().frontend_hits, 2);
        assert_eq!(pm.alloc_stats().frontend_refills, 1);
        for x in [a, b, c] {
            pm.pim_free(&mut ctx, x).unwrap();
        }
    }

    #[test]
    fn big_allocation_bypasses_cache() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1)).unwrap();
        let mut ctx = d.ctx(0);
        let addr = pm.pim_malloc(&mut ctx, 8192).unwrap();
        assert_eq!(pm.alloc_stats().bypass, 1);
        assert_eq!(addr % 8192, pm.backend().geometry().heap_base() % 8192);
        pm.pim_free(&mut ctx, addr).unwrap();
        assert_eq!(pm.alloc_stats().frees_backend, 1);
    }

    #[test]
    fn frontend_hit_is_much_faster_than_refill_or_bypass() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1)).unwrap();
        let mut ctx = d.ctx(0);
        let t0 = ctx.now();
        pm.pim_malloc(&mut ctx, 64).unwrap();
        let hit = (ctx.now() - t0).0;
        let t0 = ctx.now();
        pm.pim_malloc(&mut ctx, 4096).unwrap();
        let bypass = (ctx.now() - t0).0;
        assert!(
            bypass > hit * 3,
            "bypass ({bypass}) must dwarf a cache hit ({hit})"
        );
    }

    #[test]
    fn distinct_tasklets_get_distinct_memory_without_contention() {
        let mut d = dpu(16);
        let mut pm = PimMalloc::init(&mut d, small_sw(16)).unwrap();
        let mut addrs = Vec::new();
        for tid in 0..16 {
            let mut ctx = d.ctx(tid);
            for _ in 0..4 {
                addrs.push(pm.pim_malloc(&mut ctx, 256).unwrap());
            }
        }
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 64, "no overlap across tasklets");
        // All served by private caches: the backend mutex was never
        // contended.
        let total = d.total_stats();
        assert_eq!(total.busy_wait, pim_sim::Cycles::ZERO);
        assert_eq!(pm.alloc_stats().frontend_hits, 64);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1)).unwrap();
        let mut ctx = d.ctx(0);
        assert!(matches!(
            pm.pim_malloc(&mut ctx, 0),
            Err(AllocError::InvalidSize { .. })
        ));
        assert!(matches!(
            pm.pim_free(&mut ctx, 0x1234),
            Err(AllocError::InvalidFree { .. })
        ));
        // Without a quarantine budget, invalid frees are counted but
        // never seal the allocator.
        assert_eq!(pm.invalid_frees(), 1);
        assert!(!pm.is_quarantined());
        let addr = pm.pim_malloc(&mut ctx, 64).unwrap();
        pm.pim_free(&mut ctx, addr).unwrap();
    }

    #[test]
    fn quarantine_seals_after_the_invalid_free_budget() {
        let mut d = dpu(1);
        let cfg = small_sw(1).with_quarantine(2);
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        let live = pm.pim_malloc(&mut ctx, 64).unwrap();

        // The first two corrupted frees are rejected individually.
        for i in 0..2u32 {
            assert!(matches!(
                pm.pim_free(&mut ctx, 0xDEAD_0000 + i),
                Err(AllocError::InvalidFree { .. })
            ));
            assert!(!pm.is_quarantined());
        }
        // Valid operations still work while under budget.
        let second = pm.pim_malloc(&mut ctx, 64).unwrap();
        pm.pim_free(&mut ctx, second).unwrap();

        // The third corrupted free exceeds the budget and seals.
        assert!(matches!(
            pm.pim_free(&mut ctx, 0xDEAD_BEEF),
            Err(AllocError::Quarantined { invalid_frees: 3 })
        ));
        assert!(pm.is_quarantined());
        assert_eq!(pm.invalid_frees(), 3);

        // Every subsequent operation — even a valid free — is refused.
        assert!(matches!(
            pm.pim_malloc(&mut ctx, 64),
            Err(AllocError::Quarantined { .. })
        ));
        assert!(matches!(
            pm.pim_free(&mut ctx, live),
            Err(AllocError::Quarantined { .. })
        ));
        // The frame table was never corrupted by the garbage frees:
        // the live allocation is still accounted.
        assert_eq!(pm.live_allocations(), 1);
    }

    #[test]
    fn heap_exhaustion_reports_oom() {
        let mut d = dpu(1);
        let cfg = PimMallocConfig {
            heap_size: 64 << 10, // 16 backend blocks
            ..PimMallocConfig::sw(1)
        };
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        let mut count = 0;
        loop {
            match pm.pim_malloc(&mut ctx, 32 << 10) {
                Ok(_) => count += 1,
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // 8 blocks of 4 KB went to pre-population, leaving 32 KB.
        assert_eq!(count, 1);
    }

    #[test]
    fn hwsw_variant_reports_cache_stats() {
        let mut d = dpu(1);
        let cfg = PimMallocConfig {
            heap_size: 1 << 20,
            ..PimMallocConfig::hw_sw(1)
        };
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        for _ in 0..16 {
            pm.pim_malloc(&mut ctx, 4096).unwrap();
        }
        let stats = pm.buddy_cache_stats().expect("HW/SW has a buddy cache");
        assert!(stats.hits + stats.misses > 0);
        // The SW variant reports none.
        let mut d2 = dpu(1);
        let pm2 = PimMalloc::init(&mut d2, small_sw(1)).unwrap();
        assert!(pm2.buddy_cache_stats().is_none());
    }

    #[test]
    fn fragmentation_of_prepopulated_single_class_workload() {
        // Table III intuition: a workload that only ever touches one
        // size class leaves 7 of 8 pre-populated pools unused.
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1)).unwrap();
        let mut ctx = d.ctx(0);
        for _ in 0..16 {
            pm.pim_malloc(&mut ctx, 256).unwrap();
        }
        let eager = pm.frag().ratio();

        let mut d2 = dpu(1);
        let mut pm2 = PimMalloc::init(&mut d2, small_sw(1).lazy()).unwrap();
        let mut ctx2 = d2.ctx(0);
        for _ in 0..16 {
            pm2.pim_malloc(&mut ctx2, 256).unwrap();
        }
        let lazy = pm2.frag().ratio();
        assert!(
            eager > lazy,
            "pre-population must increase fragmentation ({eager} vs {lazy})"
        );
        assert!(lazy >= 1.0);
    }

    #[test]
    fn wram_budget_is_enforced() {
        let mut d = dpu(1);
        let cfg = PimMallocConfig {
            backend: BackendKind::Coarse {
                buffer_bytes: 128 << 10, // bigger than WRAM
            },
            ..small_sw(1)
        };
        assert!(matches!(
            PimMalloc::init(&mut d, cfg),
            Err(InitError::Wram(_))
        ));
    }

    #[test]
    fn alloc_free_cycle_preserves_backend_capacity() {
        let mut d = dpu(2);
        let mut pm = PimMalloc::init(&mut d, small_sw(2)).unwrap();
        let free0 = pm.backend().free_bytes();
        for round in 0..3 {
            let mut addrs = Vec::new();
            for tid in 0..2 {
                let mut ctx = d.ctx(tid);
                for i in 0..64 {
                    let size = [24, 100, 500, 1500][(i + round) % 4];
                    addrs.push((tid, pm.pim_malloc(&mut ctx, size).unwrap()));
                }
            }
            for (tid, addr) in addrs {
                let mut ctx = d.ctx(tid);
                pm.pim_free(&mut ctx, addr).unwrap();
            }
        }
        // All user memory returned; caches may retain one block per
        // touched pool beyond the pre-populated one... but never grow
        // without bound.
        assert!(pm.backend().free_bytes() <= free0);
        assert_eq!(pm.live_allocations(), 0);
        assert_eq!(pm.frag().requested_live(), 0);
        pm.backend().check_invariants();
    }
}
