//! PIM-malloc: the hierarchical allocator (§IV of the paper), grown
//! to three tiers.
//!
//! [`PimMalloc`] combines per-tasklet [`ThreadCache`] frontends with a
//! mutex-protected backend [`BuddyAllocator`] whose tree is truncated
//! at 4 KB blocks (depth 13 for a 32 MB heap instead of the straw-man's
//! depth 20). Requests up to the largest size class (2 KB) are served
//! lock-free from the calling tasklet's cache; larger requests bypass
//! to the backend (Figure 10).
//!
//! Between the thread caches and the buddy heap sits the middle tier
//! (default; see [`TierPolicy`]): cross-tasklet frees are staged in
//! the per-size-class [`TransferCache`] — one simulated MRAM
//! round-trip per batch of pointers instead of a global-lock walk of
//! the owner's cache — and overflow demotes to the span-accounted
//! [`CentralFreeList`], which follows the canonical bitmaps in
//! returning fully-free spans to the buddy backend. Freed blocks flow
//! `ThreadCache → TransferCache → CentralFreeList → buddy`.
//!
//! The backend's metadata store selects between the paper's variants:
//! a coarse software buffer (**PIM-malloc-SW**), the hardware buddy
//! cache (**PIM-malloc-HW/SW**), or the fine-grained software LRU
//! ablation.

use pim_sim::{BuddyCacheConfig, BuddyCacheStats, DpuSim, MutexId, TaskletCtx};

use crate::api::PimAllocator;
use crate::buddy::{BuddyAllocator, BuddyGeometry, MetadataBackend};
use crate::central_free_list::CentralFreeList;
use crate::error::{AllocError, InitError};
use crate::frag::FragTracker;
use crate::geometry::{FrontendKind, PimMallocConfig, SizeClassTable, TierPolicy};
use crate::metadata::{MetaStats, MetadataStore};
use crate::page_queue::PageLocal;
use crate::region_map::{FreeRoute, RegionMap};
use crate::stats::{AllocStats, ServiceSite};
use crate::thread_cache::{FreeOutcome, ThreadCache, CACHE_BLOCK_BYTES};
use crate::transfer_cache::TransferCache;

/// Fixed instructions of `pim_malloc` entry (argument checks, size
/// classification).
const MALLOC_ENTRY_INSTRS: u64 = 15;
/// Fixed instructions of `pim_free` entry (argument checks and routing
/// off the block header; the header itself costs one MRAM read).
const FREE_ENTRY_INSTRS: u64 = 20;
/// Bytes of the per-block header `pim_free` reads to learn the owning
/// route (thread-cache class vs backend level) — one 8 B DMA beat.
const BLOCK_HEADER_BYTES: u32 = 8;
/// Instructions to stage one remote-freed pointer in the transfer
/// ring (bounds check, tail append, index bump).
const TRANSFER_PUSH_INSTRS: u64 = 12;
/// Instructions to claim one staged pointer on the allocation side.
const TRANSFER_POP_INSTRS: u64 = 10;
/// Instructions to splice an overflowing batch out of the transfer
/// ring and into the central free list's span accounting.
const CENTRAL_DEMOTE_INSTRS: u64 = 40;
/// Instructions to claim an object resident in the central free list
/// (span lookup plus list unlink).
const CENTRAL_TAKE_INSTRS: u64 = 25;
/// Bytes per staged object pointer in a transfer batch.
const TRANSFER_SLOT_BYTES: u32 = 8;

/// Which metadata store the backend buddy allocator runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendKind {
    /// Coarse software-managed WRAM window — **PIM-malloc-SW**.
    Coarse {
        /// WRAM window size in bytes (paper: 2 KB).
        buffer_bytes: u32,
    },
    /// Fine-grained software LRU — the §IV-B ablation.
    FineLru {
        /// Number of cached granules.
        entries: usize,
        /// Granule size in bytes.
        granule_bytes: u32,
    },
    /// Hardware buddy cache — **PIM-malloc-HW/SW**.
    HwCache {
        /// CAM configuration (paper default: 16 × 4 B).
        cache: BuddyCacheConfig,
    },
    /// Line-granular general-purpose metadata cache — the §VII
    /// cache-enabled-PIM counterfactual.
    LineCache {
        /// Total cache capacity in bytes.
        capacity_bytes: u32,
        /// Cache line size in bytes (e.g. 64).
        line_bytes: u32,
    },
}

/// The allocation frontend actually instantiated: the legacy bitmap
/// thread caches or the page/queue fast path, selected by
/// [`FrontendKind`]. Both expose the same five operations with
/// identical *semantics* (addresses, outcomes, double-free panics) —
/// only the simulated cycle pricing differs, which is why the dispatch
/// lives behind one enum instead of a trait object: every call site
/// stays monomorphic and the differential tests can pin the pair.
#[derive(Debug)]
enum Frontend {
    Bitmap(Vec<ThreadCache>),
    Pages(PageLocal),
}

impl Frontend {
    fn alloc(&mut self, ctx: &mut TaskletCtx<'_>, tid: usize, class_idx: usize) -> Option<u32> {
        match self {
            Frontend::Bitmap(caches) => caches[tid].alloc(ctx, class_idx),
            Frontend::Pages(pages) => pages.alloc(ctx, tid, class_idx),
        }
    }

    fn add_block(&mut self, ctx: &mut TaskletCtx<'_>, tid: usize, class_idx: usize, base: u32) {
        match self {
            Frontend::Bitmap(caches) => caches[tid].add_block(ctx, class_idx, base),
            Frontend::Pages(pages) => pages.add_page(ctx, tid, class_idx, base),
        }
    }

    fn free(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        tid: usize,
        class_idx: usize,
        addr: u32,
    ) -> FreeOutcome {
        match self {
            Frontend::Bitmap(caches) => caches[tid].free(ctx, class_idx, addr),
            Frontend::Pages(pages) => pages.free(ctx, tid, class_idx, addr),
        }
    }

    fn free_unpriced(&mut self, tid: usize, class_idx: usize, addr: u32) -> FreeOutcome {
        match self {
            Frontend::Bitmap(caches) => caches[tid].free_unpriced(class_idx, addr),
            Frontend::Pages(pages) => pages.free_unpriced(tid, class_idx, addr),
        }
    }
}

/// The hierarchical PIM-malloc allocator for one DPU.
#[derive(Debug)]
pub struct PimMalloc {
    frontend: Frontend,
    backend: BuddyAllocator,
    backend_mutex: MutexId,
    /// O(1) frame-table routing for `pim_free` (see [`RegionMap`]).
    region: RegionMap,
    /// The shared size-class geometry (also baked into every cache's
    /// pools and both middle-tier structures).
    classes: SizeClassTable,
    /// Free-path hierarchy: two-tier (global-lock remote frees) or
    /// three-tier (transfer cache + central free list).
    tier: TierPolicy,
    /// Middle tier, stage 1: per-class batched staging of remote
    /// frees.
    transfer: TransferCache,
    /// Middle tier, stage 2: span-accounted central circulation.
    central: CentralFreeList,
    stats: AllocStats,
    frag: FragTracker,
    init_end: pim_sim::Cycles,
    /// Invalid frees observed so far (each one was rejected).
    invalid_frees: u32,
    /// Invalid frees tolerated before sealing; `None` never seals.
    quarantine_after: Option<u32>,
    /// Once set, every operation returns [`AllocError::Quarantined`].
    quarantined: bool,
}

impl PimMalloc {
    /// Initializes the allocator on a DPU: reserves WRAM for the
    /// metadata buffer and thread-cache bitmaps, zeroes the backend
    /// metadata, and (optionally) pre-populates the thread caches.
    ///
    /// Initialization runs on tasklet 0, as in the paper (`initAllocator`
    /// is executed by the designated thread).
    ///
    /// # Errors
    ///
    /// [`InitError::Wram`] if the WRAM budget is exceeded;
    /// [`InitError::Alloc`] if pre-population exhausts the heap.
    ///
    /// # Panics
    ///
    /// Panics on malformed configuration (non-power-of-two sizes,
    /// empty/invalid size-class list, tasklet count outside 1..=24).
    pub fn init(dpu: &mut DpuSim, config: PimMallocConfig) -> Result<Self, InitError> {
        assert!(
            config.n_tasklets >= 1 && config.n_tasklets <= 24,
            "tasklet count {} outside 1..=24",
            config.n_tasklets
        );
        assert_eq!(
            config.backend_min_block, CACHE_BLOCK_BYTES,
            "the frame table maps one backend block per frame, so the \
             backend's minimum block must equal the thread-cache block"
        );
        let geometry =
            BuddyGeometry::new(config.heap_base, config.heap_size, config.backend_min_block);
        let frontend = match config.frontend {
            FrontendKind::BitmapClasses => Frontend::Bitmap(
                (0..config.n_tasklets)
                    .map(|_| ThreadCache::new(&config.size_classes))
                    .collect(),
            ),
            FrontendKind::PageLocal => Frontend::Pages(PageLocal::new(
                &config.size_classes,
                config.n_tasklets,
                config.heap_base,
                config.heap_size,
            )),
        };

        // WRAM budget: backend metadata buffer + per-tasklet free-slot
        // metadata (bitmap words; the page path keeps the same layout,
        // so both frontends reserve the same byte count).
        match config.backend {
            BackendKind::Coarse { buffer_bytes } => {
                dpu.wram_mut()
                    .reserve("buddy metadata buffer", buffer_bytes)?;
            }
            BackendKind::FineLru {
                entries,
                granule_bytes,
            } => {
                dpu.wram_mut()
                    .reserve("fine-lru metadata buffer", entries as u32 * granule_bytes)?;
            }
            BackendKind::HwCache { .. } => {
                // The buddy cache is dedicated hardware; only a staging
                // beat in WRAM is needed for miss handling.
                dpu.wram_mut().reserve("buddy cache staging", 8)?;
            }
            BackendKind::LineCache { line_bytes, .. } => {
                dpu.wram_mut().reserve("line cache staging", line_bytes)?;
            }
        }
        match &frontend {
            Frontend::Bitmap(caches) => {
                let bitmap_bytes: u32 = caches.iter().map(ThreadCache::bitmap_wram_bytes).sum();
                dpu.wram_mut()
                    .reserve("thread cache bitmaps", bitmap_bytes)?;
            }
            Frontend::Pages(pages) => {
                dpu.wram_mut()
                    .reserve("page free lists", pages.wram_bytes())?;
            }
        }

        let store = match config.backend {
            BackendKind::Coarse { buffer_bytes } => {
                MetadataBackend::coarse(&geometry, config.meta_base, buffer_bytes)
            }
            BackendKind::FineLru {
                entries,
                granule_bytes,
            } => MetadataBackend::fine_lru(&geometry, config.meta_base, entries, granule_bytes),
            BackendKind::HwCache { cache } => {
                MetadataBackend::hw_cache(&geometry, config.meta_base, cache)
            }
            BackendKind::LineCache {
                capacity_bytes,
                line_bytes,
            } => {
                MetadataBackend::line_cache(&geometry, config.meta_base, capacity_bytes, line_bytes)
            }
        };
        let mut backend = BuddyAllocator::new(geometry, store).with_policy(config.descent);
        let backend_mutex = dpu.alloc_mutex();

        let mut this = {
            let mut ctx = dpu.ctx(0);
            backend.reset(&mut ctx);
            PimMalloc {
                frontend,
                backend,
                backend_mutex,
                region: RegionMap::new(config.heap_base, config.heap_size, CACHE_BLOCK_BYTES),
                classes: config.size_classes.clone(),
                tier: config.tier.policy,
                transfer: TransferCache::new(&config.size_classes, config.tier),
                central: CentralFreeList::new(&config.size_classes),
                stats: AllocStats::default(),
                frag: FragTracker::new(),
                init_end: pim_sim::Cycles::ZERO,
                invalid_frees: 0,
                quarantine_after: config.quarantine_after,
                quarantined: false,
            }
        };

        if config.prepopulate {
            let n_classes = config.size_classes.len();
            for tid in 0..config.n_tasklets {
                for class_idx in 0..n_classes {
                    let mut ctx = dpu.ctx(0);
                    let base = this.backend.alloc(&mut ctx, CACHE_BLOCK_BYTES)?;
                    this.frag.on_reserve(u64::from(CACHE_BLOCK_BYTES));
                    this.region.note_cache_block(
                        base,
                        tid,
                        class_idx,
                        config.size_classes.class_bytes(class_idx),
                    );
                    this.frontend.add_block(&mut ctx, tid, class_idx, base);
                }
            }
        }
        this.init_end = dpu.clock(0);
        Ok(this)
    }

    /// Allocation statistics (service sites, latency attribution).
    pub fn alloc_stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Fragmentation tracker (A/U accounting, Table III).
    pub fn frag(&self) -> &FragTracker {
        &self.frag
    }

    /// Metadata-store transfer statistics of the backend.
    pub fn metadata_stats(&self) -> MetaStats {
        self.backend.store().stats()
    }

    /// Hardware buddy-cache statistics, if this instance runs
    /// PIM-malloc-HW/SW.
    pub fn buddy_cache_stats(&self) -> Option<BuddyCacheStats> {
        match self.backend.store() {
            MetadataBackend::HwCache(s) => Some(s.cache_stats()),
            _ => None,
        }
    }

    /// The backend buddy allocator (read-only).
    pub fn backend(&self) -> &BuddyAllocator {
        &self.backend
    }

    /// The legacy bitmap thread caches, indexed by tasklet id. Empty
    /// when the instance runs the [`FrontendKind::PageLocal`] frontend
    /// — use [`PimMalloc::page_frontend`] there.
    pub fn caches(&self) -> &[ThreadCache] {
        match &self.frontend {
            Frontend::Bitmap(caches) => caches,
            Frontend::Pages(_) => &[],
        }
    }

    /// The page/queue frontend, if this instance runs
    /// [`FrontendKind::PageLocal`].
    pub fn page_frontend(&self) -> Option<&PageLocal> {
        match &self.frontend {
            Frontend::Bitmap(_) => None,
            Frontend::Pages(pages) => Some(pages),
        }
    }

    /// The shared size-class geometry.
    pub fn size_classes(&self) -> &SizeClassTable {
        &self.classes
    }

    /// The free-path hierarchy this instance runs.
    pub fn tier(&self) -> TierPolicy {
        self.tier
    }

    /// The middle tier's transfer cache (read-only).
    pub fn transfer_cache(&self) -> &TransferCache {
        &self.transfer
    }

    /// The middle tier's central free list (read-only).
    pub fn central_free_list(&self) -> &CentralFreeList {
        &self.central
    }

    /// Tasklet-0 time when `init` finished (initialization cost).
    pub fn init_end(&self) -> pim_sim::Cycles {
        self.init_end
    }

    /// Number of live user allocations.
    pub fn live_allocations(&self) -> usize {
        self.region.live_allocations()
    }

    /// Invalid frees observed (and rejected) so far.
    pub fn invalid_frees(&self) -> u32 {
        self.invalid_frees
    }

    /// True once the allocator has sealed itself after exceeding its
    /// invalid-free budget (`PimMallocConfig::quarantine_after`).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    fn backend_alloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        ctx.mutex_lock(self.backend_mutex);
        let result = self.backend.alloc(ctx, size);
        ctx.mutex_unlock(self.backend_mutex);
        result
    }

    fn backend_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<u32, AllocError> {
        ctx.mutex_lock(self.backend_mutex);
        let result = self.backend.free(ctx, addr);
        ctx.mutex_unlock(self.backend_mutex);
        result
    }

    /// Classifies a thread-cache hit at `addr`: if the sub-block was
    /// staged by a remote free, consume its middle-tier entry and
    /// charge the batched claim cost. Plain hits (the only kind in
    /// workloads without cross-tasklet frees) check the host-side
    /// overlay only and charge nothing extra.
    fn consume_staged(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        class_idx: usize,
        addr: u32,
    ) -> ServiceSite {
        if self.tier != TierPolicy::ThreeTier {
            return ServiceSite::FrontendHit;
        }
        if let Some(batch_boundary) = self.transfer.take(class_idx, addr) {
            ctx.instrs(TRANSFER_POP_INSTRS);
            if batch_boundary {
                // One MRAM read fetches the whole staged batch.
                ctx.mram_read(addr, TRANSFER_SLOT_BYTES * self.transfer.batch());
            }
            ServiceSite::TransferHit
        } else if self.central.take(class_idx, addr) {
            ctx.instrs(CENTRAL_TAKE_INSTRS);
            ctx.mram_read(addr, TRANSFER_SLOT_BYTES);
            ServiceSite::CentralHit
        } else {
            ServiceSite::FrontendHit
        }
    }

    /// Returns a drained cache block to the buddy backend, retiring
    /// any middle-tier state that still pointed into it. The purge is
    /// host-side bookkeeping (the canonical bitmap already proved the
    /// block free); the buddy return itself is priced as usual.
    fn release_block(
        &mut self,
        ctx: &mut TaskletCtx<'_>,
        block_base: u32,
    ) -> Result<(), AllocError> {
        self.transfer.purge_block(block_base);
        if self.central.purge_block(block_base).is_some() {
            self.stats.spans_returned += 1;
        }
        self.region.release_cache_block(block_base);
        self.backend_free(ctx, block_base)?;
        self.frag.on_release(u64::from(CACHE_BLOCK_BYTES));
        Ok(())
    }
}

impl PimAllocator for PimMalloc {
    /// Allocates `size` bytes for the calling tasklet (Figure 10).
    fn pim_malloc(&mut self, ctx: &mut TaskletCtx<'_>, size: u32) -> Result<u32, AllocError> {
        let start = ctx.now();
        ctx.instrs(MALLOC_ENTRY_INSTRS);
        if self.quarantined {
            return Err(AllocError::Quarantined {
                invalid_frees: self.invalid_frees,
            });
        }
        if size == 0 {
            return Err(AllocError::InvalidSize { requested: size });
        }
        let tid = ctx.tid();
        let (addr, site) = match self.classes.class_for(size) {
            Some(class_idx) => {
                let (addr, site) = match self.frontend.alloc(ctx, tid, class_idx) {
                    // Case 1: frontend hit. If the sub-block was
                    // staged by a remote free, the hit also consumes
                    // the middle-tier entry (priced per batch).
                    Some(addr) => (addr, self.consume_staged(ctx, class_idx, addr)),
                    // Case 2: frontend miss — refill from the backend.
                    None => {
                        let base = self.backend_alloc(ctx, CACHE_BLOCK_BYTES)?;
                        self.frag.on_reserve(u64::from(CACHE_BLOCK_BYTES));
                        let class_bytes = self.classes.class_bytes(class_idx);
                        self.region
                            .note_cache_block(base, tid, class_idx, class_bytes);
                        self.frontend.add_block(ctx, tid, class_idx, base);
                        let addr = self
                            .frontend
                            .alloc(ctx, tid, class_idx)
                            .expect("fresh block has free sub-blocks");
                        (addr, ServiceSite::FrontendRefill)
                    }
                };
                self.region.note_cache_alloc(addr, size);
                (addr, site)
            }
            // Case 3: frontend bypass straight to the backend.
            None => {
                let addr = self.backend_alloc(ctx, size)?;
                let reserved = self
                    .backend
                    .geometry()
                    .block_for_size(size)
                    .ok_or(AllocError::InvalidSize { requested: size })?;
                self.frag.on_reserve(u64::from(reserved));
                self.region.note_backend_alloc(addr, reserved, size);
                (addr, ServiceSite::Bypass)
            }
        };
        self.frag.on_user_alloc(u64::from(size));
        self.stats.record_malloc(site, ctx.now() - start);
        Ok(addr)
    }

    /// Frees the allocation at `addr`.
    fn pim_free(&mut self, ctx: &mut TaskletCtx<'_>, addr: u32) -> Result<(), AllocError> {
        ctx.instrs(FREE_ENTRY_INSTRS);
        if self.quarantined {
            return Err(AllocError::Quarantined {
                invalid_frees: self.invalid_frees,
            });
        }
        // O(1) host-side routing off the frame table; the simulated
        // cost is the block-header read charged below. A failed route
        // is a corrupted free: reject it, count it, and seal the
        // allocator once the quarantine budget is exhausted.
        let route = match self.region.take_route(addr) {
            Ok(route) => route,
            Err(err) => {
                self.invalid_frees = self.invalid_frees.saturating_add(1);
                if let Some(budget) = self.quarantine_after {
                    if self.invalid_frees > budget {
                        self.quarantined = true;
                        return Err(AllocError::Quarantined {
                            invalid_frees: self.invalid_frees,
                        });
                    }
                }
                return Err(err);
            }
        };
        ctx.mram_read(addr, BLOCK_HEADER_BYTES);
        match route {
            FreeRoute::Cache {
                tid,
                class_idx,
                requested,
            } => {
                let outcome = if tid != ctx.tid() {
                    match self.tier {
                        // Three-tier: update the owner's canonical
                        // bitmap host-side (unpriced) and stage the
                        // pointer in the transfer ring; the simulated
                        // cost is a few WRAM instructions plus one
                        // MRAM write per flushed batch.
                        TierPolicy::ThreeTier => {
                            let outcome = self.frontend.free_unpriced(tid, class_idx, addr);
                            ctx.instrs(TRANSFER_PUSH_INSTRS);
                            if !matches!(outcome, FreeOutcome::BlockReleased { .. }) {
                                let effect = self.transfer.push(class_idx, addr);
                                if effect.flushed {
                                    ctx.mram_write(
                                        addr,
                                        TRANSFER_SLOT_BYTES * self.transfer.batch(),
                                    );
                                    self.stats.transfer_flushes += 1;
                                }
                                if !effect.demoted.is_empty() {
                                    ctx.instrs(CENTRAL_DEMOTE_INSTRS);
                                    ctx.mram_write(
                                        effect.demoted[0],
                                        TRANSFER_SLOT_BYTES * effect.demoted.len() as u32,
                                    );
                                    self.central.demote(class_idx, &effect.demoted);
                                    self.stats.central_demotes += 1;
                                }
                            }
                            self.stats.frees_remote_transfer += 1;
                            outcome
                        }
                        // Two-tier: walk the owner's private cache
                        // under the global backend lock (the legacy
                        // cross-tasklet path the middle tier replaces).
                        TierPolicy::TwoTier => {
                            ctx.mutex_lock(self.backend_mutex);
                            let outcome = self.frontend.free(ctx, tid, class_idx, addr);
                            ctx.mutex_unlock(self.backend_mutex);
                            self.stats.frees_remote_global += 1;
                            outcome
                        }
                    }
                } else {
                    self.frontend.free(ctx, tid, class_idx, addr)
                };
                match outcome {
                    FreeOutcome::Cached => self.stats.record_free(false),
                    FreeOutcome::BlockReleased { block_base } => {
                        self.release_block(ctx, block_base)?;
                        self.stats.record_free(true);
                    }
                }
                self.frag.on_user_free(u64::from(requested));
            }
            FreeRoute::Backend { requested } => {
                let freed = self.backend_free(ctx, addr)?;
                self.frag.on_release(u64::from(freed));
                self.frag.on_user_free(u64::from(requested));
                self.stats.record_free(true);
            }
        }
        Ok(())
    }

    fn alloc_stats(&self) -> &AllocStats {
        &self.stats
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::AllocGeometry;
    use pim_sim::DpuConfig;

    fn dpu(tasklets: usize) -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(tasklets))
    }

    fn small_sw(tasklets: usize) -> AllocGeometry {
        // A 1 MB heap keeps tests fast while preserving structure.
        AllocGeometry::sw(tasklets).with_heap_size(1 << 20)
    }

    #[test]
    fn init_prepopulates_every_pool() {
        let mut d = dpu(4);
        let pm = PimMalloc::init(&mut d, small_sw(4).build()).unwrap();
        for cache in pm.caches() {
            for pool in cache.pools() {
                assert_eq!(pool.block_count(), 1);
            }
        }
        // 4 tasklets × 8 classes × 4 KB reserved, nothing requested yet.
        assert_eq!(pm.frag().reserved_live(), 4 * 8 * 4096);
        assert!(pm.init_end() > pim_sim::Cycles::ZERO);
    }

    #[test]
    fn lazy_init_reserves_nothing() {
        let mut d = dpu(4);
        let pm = PimMalloc::init(&mut d, small_sw(4).lazy().build()).unwrap();
        assert_eq!(pm.frag().reserved_live(), 0);
        for cache in pm.caches() {
            assert!(cache.pools().iter().all(|p| p.block_count() == 0));
        }
    }

    #[test]
    fn small_allocation_hits_thread_cache() {
        let mut d = dpu(2);
        let mut pm = PimMalloc::init(&mut d, small_sw(2).build()).unwrap();
        let mut ctx = d.ctx(1);
        let addr = pm.pim_malloc(&mut ctx, 128).unwrap();
        assert_eq!(pm.alloc_stats().frontend_hits, 1);
        assert_eq!(pm.live_allocations(), 1);
        pm.pim_free(&mut ctx, addr).unwrap();
        assert_eq!(pm.alloc_stats().frees_frontend, 1);
        assert_eq!(pm.live_allocations(), 0);
    }

    #[test]
    fn cache_exhaustion_triggers_refill() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1).build()).unwrap();
        let mut ctx = d.ctx(0);
        // 2 KB class holds 2 sub-blocks per 4 KB block; the third
        // allocation forces a backend refill.
        let a = pm.pim_malloc(&mut ctx, 2048).unwrap();
        let b = pm.pim_malloc(&mut ctx, 2048).unwrap();
        let c = pm.pim_malloc(&mut ctx, 2048).unwrap();
        assert_eq!(pm.alloc_stats().frontend_hits, 2);
        assert_eq!(pm.alloc_stats().frontend_refills, 1);
        for x in [a, b, c] {
            pm.pim_free(&mut ctx, x).unwrap();
        }
    }

    #[test]
    fn big_allocation_bypasses_cache() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1).build()).unwrap();
        let mut ctx = d.ctx(0);
        let addr = pm.pim_malloc(&mut ctx, 8192).unwrap();
        assert_eq!(pm.alloc_stats().bypass, 1);
        assert_eq!(addr % 8192, pm.backend().geometry().heap_base() % 8192);
        pm.pim_free(&mut ctx, addr).unwrap();
        assert_eq!(pm.alloc_stats().frees_backend, 1);
    }

    #[test]
    fn frontend_hit_is_much_faster_than_refill_or_bypass() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1).build()).unwrap();
        let mut ctx = d.ctx(0);
        let t0 = ctx.now();
        pm.pim_malloc(&mut ctx, 64).unwrap();
        let hit = (ctx.now() - t0).0;
        let t0 = ctx.now();
        pm.pim_malloc(&mut ctx, 4096).unwrap();
        let bypass = (ctx.now() - t0).0;
        assert!(
            bypass > hit * 3,
            "bypass ({bypass}) must dwarf a cache hit ({hit})"
        );
    }

    #[test]
    fn distinct_tasklets_get_distinct_memory_without_contention() {
        let mut d = dpu(16);
        let mut pm = PimMalloc::init(&mut d, small_sw(16).build()).unwrap();
        let mut addrs = Vec::new();
        for tid in 0..16 {
            let mut ctx = d.ctx(tid);
            for _ in 0..4 {
                addrs.push(pm.pim_malloc(&mut ctx, 256).unwrap());
            }
        }
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 64, "no overlap across tasklets");
        // All served by private caches: the backend mutex was never
        // contended.
        let total = d.total_stats();
        assert_eq!(total.busy_wait, pim_sim::Cycles::ZERO);
        assert_eq!(pm.alloc_stats().frontend_hits, 64);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1).build()).unwrap();
        let mut ctx = d.ctx(0);
        assert!(matches!(
            pm.pim_malloc(&mut ctx, 0),
            Err(AllocError::InvalidSize { .. })
        ));
        assert!(matches!(
            pm.pim_free(&mut ctx, 0x1234),
            Err(AllocError::InvalidFree { .. })
        ));
        // Without a quarantine budget, invalid frees are counted but
        // never seal the allocator.
        assert_eq!(pm.invalid_frees(), 1);
        assert!(!pm.is_quarantined());
        let addr = pm.pim_malloc(&mut ctx, 64).unwrap();
        pm.pim_free(&mut ctx, addr).unwrap();
    }

    #[test]
    fn quarantine_seals_after_the_invalid_free_budget() {
        let mut d = dpu(1);
        let cfg = small_sw(1).with_quarantine(2).build();
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        let live = pm.pim_malloc(&mut ctx, 64).unwrap();

        // The first two corrupted frees are rejected individually.
        for i in 0..2u32 {
            assert!(matches!(
                pm.pim_free(&mut ctx, 0xDEAD_0000 + i),
                Err(AllocError::InvalidFree { .. })
            ));
            assert!(!pm.is_quarantined());
        }
        // Valid operations still work while under budget.
        let second = pm.pim_malloc(&mut ctx, 64).unwrap();
        pm.pim_free(&mut ctx, second).unwrap();

        // The third corrupted free exceeds the budget and seals.
        assert!(matches!(
            pm.pim_free(&mut ctx, 0xDEAD_BEEF),
            Err(AllocError::Quarantined { invalid_frees: 3 })
        ));
        assert!(pm.is_quarantined());
        assert_eq!(pm.invalid_frees(), 3);

        // Every subsequent operation — even a valid free — is refused.
        assert!(matches!(
            pm.pim_malloc(&mut ctx, 64),
            Err(AllocError::Quarantined { .. })
        ));
        assert!(matches!(
            pm.pim_free(&mut ctx, live),
            Err(AllocError::Quarantined { .. })
        ));
        // The frame table was never corrupted by the garbage frees:
        // the live allocation is still accounted.
        assert_eq!(pm.live_allocations(), 1);
    }

    #[test]
    fn heap_exhaustion_reports_oom() {
        let mut d = dpu(1);
        // 64 KB heap: 16 backend blocks.
        let cfg = AllocGeometry::sw(1).with_heap_size(64 << 10).build();
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        let mut count = 0;
        loop {
            match pm.pim_malloc(&mut ctx, 32 << 10) {
                Ok(_) => count += 1,
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // 8 blocks of 4 KB went to pre-population, leaving 32 KB.
        assert_eq!(count, 1);
    }

    #[test]
    fn hwsw_variant_reports_cache_stats() {
        let mut d = dpu(1);
        let cfg = AllocGeometry::hw_sw(1).with_heap_size(1 << 20).build();
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let mut ctx = d.ctx(0);
        for _ in 0..16 {
            pm.pim_malloc(&mut ctx, 4096).unwrap();
        }
        let stats = pm.buddy_cache_stats().expect("HW/SW has a buddy cache");
        assert!(stats.hits + stats.misses > 0);
        // The SW variant reports none.
        let mut d2 = dpu(1);
        let pm2 = PimMalloc::init(&mut d2, small_sw(1).build()).unwrap();
        assert!(pm2.buddy_cache_stats().is_none());
    }

    #[test]
    fn fragmentation_of_prepopulated_single_class_workload() {
        // Table III intuition: a workload that only ever touches one
        // size class leaves 7 of 8 pre-populated pools unused.
        let mut d = dpu(1);
        let mut pm = PimMalloc::init(&mut d, small_sw(1).build()).unwrap();
        let mut ctx = d.ctx(0);
        for _ in 0..16 {
            pm.pim_malloc(&mut ctx, 256).unwrap();
        }
        let eager = pm.frag().ratio();

        let mut d2 = dpu(1);
        let mut pm2 = PimMalloc::init(&mut d2, small_sw(1).lazy().build()).unwrap();
        let mut ctx2 = d2.ctx(0);
        for _ in 0..16 {
            pm2.pim_malloc(&mut ctx2, 256).unwrap();
        }
        let lazy = pm2.frag().ratio();
        assert!(
            eager > lazy,
            "pre-population must increase fragmentation ({eager} vs {lazy})"
        );
        assert!(lazy >= 1.0);
    }

    #[test]
    fn wram_budget_is_enforced() {
        let mut d = dpu(1);
        let cfg = small_sw(1)
            .with_backend(BackendKind::Coarse {
                buffer_bytes: 128 << 10, // bigger than WRAM
            })
            .build();
        assert!(matches!(
            PimMalloc::init(&mut d, cfg),
            Err(InitError::Wram(_))
        ));
    }

    #[test]
    fn alloc_free_cycle_preserves_backend_capacity() {
        let mut d = dpu(2);
        let mut pm = PimMalloc::init(&mut d, small_sw(2).build()).unwrap();
        let free0 = pm.backend().free_bytes();
        for round in 0..3 {
            let mut addrs = Vec::new();
            for tid in 0..2 {
                let mut ctx = d.ctx(tid);
                for i in 0..64 {
                    let size = [24, 100, 500, 1500][(i + round) % 4];
                    addrs.push((tid, pm.pim_malloc(&mut ctx, size).unwrap()));
                }
            }
            for (tid, addr) in addrs {
                let mut ctx = d.ctx(tid);
                pm.pim_free(&mut ctx, addr).unwrap();
            }
        }
        // All user memory returned; caches may retain one block per
        // touched pool beyond the pre-populated one... but never grow
        // without bound.
        assert!(pm.backend().free_bytes() <= free0);
        assert_eq!(pm.live_allocations(), 0);
        assert_eq!(pm.frag().requested_live(), 0);
        pm.backend().check_invariants();
    }

    #[test]
    fn remote_free_stages_in_the_transfer_cache() {
        let mut d = dpu(2);
        let mut pm = PimMalloc::init(&mut d, small_sw(2).build()).unwrap();
        let addr = {
            let mut ctx = d.ctx(0);
            pm.pim_malloc(&mut ctx, 256).unwrap()
        };
        {
            let mut ctx = d.ctx(1);
            pm.pim_free(&mut ctx, addr).unwrap();
        }
        assert_eq!(pm.alloc_stats().frees_remote_transfer, 1);
        assert_eq!(pm.alloc_stats().frees_remote_global, 0);
        assert_eq!(pm.transfer_cache().staged_total(), 1);
        // The owner's next allocation of that class reclaims the
        // staged address through the transfer cache.
        let mut ctx = d.ctx(0);
        let again = pm.pim_malloc(&mut ctx, 256).unwrap();
        assert_eq!(again, addr);
        assert_eq!(pm.alloc_stats().transfer_hits, 1);
        assert_eq!(pm.transfer_cache().staged_total(), 0);
    }

    #[test]
    fn transfer_overflow_demotes_to_the_central_free_list() {
        let mut d = dpu(2);
        let cfg = small_sw(2)
            .with_transfer_batch(2)
            .with_cache_caps(2)
            .build();
        let mut pm = PimMalloc::init(&mut d, cfg).unwrap();
        let addrs: Vec<u32> = {
            let mut ctx = d.ctx(0);
            (0..3)
                .map(|_| pm.pim_malloc(&mut ctx, 256).unwrap())
                .collect()
        };
        {
            let mut ctx = d.ctx(1);
            for &a in &addrs {
                pm.pim_free(&mut ctx, a).unwrap();
            }
        }
        // Cap 2: the third staged pointer overflowed the ring,
        // demoting the oldest batch of 2 into central circulation.
        assert_eq!(pm.alloc_stats().central_demotes, 1);
        assert_eq!(pm.central_free_list().objects_total(), 2);
        assert_eq!(pm.central_free_list().span_count(), 1);
        // Reclaiming a demoted address is a central hit.
        let mut ctx = d.ctx(0);
        let again = pm.pim_malloc(&mut ctx, 256).unwrap();
        assert_eq!(again, addrs[0]);
        assert_eq!(pm.alloc_stats().central_hits, 1);
    }

    #[test]
    fn page_frontend_reproduces_bitmap_addresses() {
        // The real guarantee lives in tests/page_differential.rs; this
        // is the smoke version: both frontends hand out the same
        // addresses through hit, refill, free, and remote-free.
        let mut d_bm = dpu(2);
        let mut d_pg = dpu(2);
        let mut bm = PimMalloc::init(&mut d_bm, small_sw(2).build()).unwrap();
        let mut pg = PimMalloc::init(&mut d_pg, small_sw(2).page_local().build()).unwrap();
        assert!(bm.page_frontend().is_none());
        assert!(pg.page_frontend().is_some());
        assert!(pg.caches().is_empty(), "page frontend has no thread caches");

        let mut held = Vec::new();
        for i in 0..24u32 {
            let size = [16, 100, 700, 2048][i as usize % 4];
            let a = {
                let mut c = d_bm.ctx(0);
                bm.pim_malloc(&mut c, size).unwrap()
            };
            let b = {
                let mut c = d_pg.ctx(0);
                pg.pim_malloc(&mut c, size).unwrap()
            };
            assert_eq!(a, b, "op {i}: same address from both frontends");
            held.push(a);
            if i % 3 == 2 {
                // Free the oldest held pointer from the *other*
                // tasklet: the remote path must reconcile identically.
                let victim = held.remove(0);
                let mut c = d_bm.ctx(1);
                bm.pim_free(&mut c, victim).unwrap();
                let mut c = d_pg.ctx(1);
                pg.pim_free(&mut c, victim).unwrap();
            }
        }
        for victim in held {
            let mut c = d_bm.ctx(0);
            bm.pim_free(&mut c, victim).unwrap();
            let mut c = d_pg.ctx(0);
            pg.pim_free(&mut c, victim).unwrap();
        }
        assert_eq!(bm.live_allocations(), 0);
        assert_eq!(pg.live_allocations(), 0);
        assert_eq!(
            bm.frag().reserved_live(),
            pg.frag().reserved_live(),
            "block reserve/release parity"
        );
    }

    #[test]
    fn page_frontend_hot_path_is_cheaper_than_bitmap() {
        // The entire point of the tentpole: a page-path hit costs
        // fewer simulated cycles than a bitmap-scan hit once pools
        // hold a few blocks.
        let cost_of = |geo: AllocGeometry| {
            let mut d = dpu(1);
            let mut pm = PimMalloc::init(&mut d, geo.build()).unwrap();
            let mut ctx = d.ctx(0);
            // Deepen the pool so the legacy path has blocks to scan.
            let held: Vec<u32> = (0..96)
                .map(|_| pm.pim_malloc(&mut ctx, 64).unwrap())
                .collect();
            let t0 = ctx.now();
            let a = pm.pim_malloc(&mut ctx, 64).unwrap();
            let alloc_cost = (ctx.now() - t0).0;
            let t0 = ctx.now();
            pm.pim_free(&mut ctx, a).unwrap();
            let free_cost = (ctx.now() - t0).0;
            drop(held);
            (alloc_cost, free_cost)
        };
        let (bm_alloc, bm_free) = cost_of(small_sw(1));
        let (pg_alloc, pg_free) = cost_of(small_sw(1).page_local());
        assert!(
            pg_alloc <= bm_alloc && pg_free < bm_free,
            "page path must not cost more: alloc {pg_alloc} vs {bm_alloc}, \
             free {pg_free} vs {bm_free}"
        );
    }

    #[test]
    fn two_tier_remote_frees_take_the_global_lock_path() {
        let mut d = dpu(2);
        let mut pm = PimMalloc::init(&mut d, small_sw(2).two_tier().build()).unwrap();
        let addr = {
            let mut ctx = d.ctx(0);
            pm.pim_malloc(&mut ctx, 256).unwrap()
        };
        let mut ctx = d.ctx(1);
        pm.pim_free(&mut ctx, addr).unwrap();
        assert_eq!(pm.alloc_stats().frees_remote_global, 1);
        assert_eq!(pm.alloc_stats().frees_remote_transfer, 0);
        assert_eq!(pm.transfer_cache().staged_total(), 0);
    }
}
