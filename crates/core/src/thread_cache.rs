//! The per-tasklet thread cache — PIM-malloc's frontend (§IV-A).
//!
//! Each tasklet owns one [`ThreadCache`] with eight size-class pools
//! (16 B … 2 KB by default). Each pool holds 4 KB blocks obtained from
//! the backend buddy allocator, subdivided into fixed-size sub-blocks
//! whose availability is tracked by a per-block bitmap (bit = 1 means
//! free, as in Figure 9(b) of the paper). Because the cache is private
//! to its tasklet, no mutex is needed: small allocations are O(1) and
//! contention-free.

use pim_sim::TaskletCtx;
use serde::{Deserialize, Serialize};

use crate::geometry::SizeClassTable;
use crate::page::init_free_mask;

/// The paper's default size classes: powers of two from 16 B to 2 KB.
pub const DEFAULT_SIZE_CLASSES: [u32; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];

/// Size of the blocks the frontend requests from the backend.
pub const CACHE_BLOCK_BYTES: u32 = 4096;

/// Fixed instructions of a frontend alloc/free attempt: size-class
/// lookup (a loop over classes on a core without a divider), list-head
/// load, and call overhead.
const REQUEST_INSTRS: u64 = 120;
/// Instructions per 4 KB block examined while scanning a class list.
const BLOCK_SCAN_INSTRS: u64 = 6;
/// Instructions per bitmap word examined.
const WORD_SCAN_INSTRS: u64 = 8;
/// Instructions to flip a bitmap bit and compute the sub-block address.
const BIT_OP_INSTRS: u64 = 30;

/// One 4 KB block subdivided into `class_bytes` sub-blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheBlock {
    base: u32,
    /// Bitmap of sub-blocks, 1 = free.
    bitmap: Vec<u64>,
    free_slots: u32,
    slots: u32,
}

impl CacheBlock {
    fn new(base: u32, class_bytes: u32) -> Self {
        let slots = CACHE_BLOCK_BYTES / class_bytes;
        let words = (slots as usize).div_ceil(64);
        let mut bitmap = vec![0u64; words];
        // Mark the first `slots` bits free and any padding busy. The
        // shared helper is overflow-proof for slot counts that land
        // exactly on a word boundary (see its doc comment — the old
        // inline `(1u64 << tail) - 1` was one refactor away from UB).
        init_free_mask(slots, &mut bitmap);
        CacheBlock {
            base,
            bitmap,
            free_slots: slots,
            slots,
        }
    }

    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.base + CACHE_BLOCK_BYTES
    }
}

/// One size-class pool: a list of 4 KB blocks plus their bitmaps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeClassPool {
    class_bytes: u32,
    blocks: Vec<CacheBlock>,
}

impl SizeClassPool {
    fn new(class_bytes: u32) -> Self {
        SizeClassPool {
            class_bytes,
            blocks: Vec::new(),
        }
    }

    /// Sub-block size of this pool.
    pub fn class_bytes(&self) -> u32 {
        self.class_bytes
    }

    /// Number of 4 KB blocks currently held.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Free sub-blocks across all blocks.
    pub fn free_slots(&self) -> u32 {
        self.blocks.iter().map(|b| b.free_slots).sum()
    }
}

/// Outcome of [`ThreadCache::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeOutcome {
    /// The sub-block was returned to its pool.
    Cached,
    /// The containing 4 KB block became fully free and was detached;
    /// the caller must return `block_base` to the backend.
    BlockReleased {
        /// Base address of the released 4 KB block.
        block_base: u32,
    },
}

/// A private, mutex-free allocation frontend for one tasklet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadCache {
    pools: Vec<SizeClassPool>,
}

impl ThreadCache {
    /// Creates an empty cache over the shared size-class geometry
    /// (class validation and `class_for` lookup live on
    /// [`SizeClassTable`]).
    pub fn new(size_classes: &SizeClassTable) -> Self {
        ThreadCache {
            pools: size_classes
                .classes()
                .iter()
                .map(|&c| SizeClassPool::new(c))
                .collect(),
        }
    }

    /// The pools, smallest class first.
    pub fn pools(&self) -> &[SizeClassPool] {
        &self.pools
    }

    /// WRAM bytes needed for one block's bitmap in every pool — the
    /// steady-state scratchpad footprint of this cache's metadata.
    pub fn bitmap_wram_bytes(&self) -> u32 {
        self.pools
            .iter()
            .map(|p| (CACHE_BLOCK_BYTES / p.class_bytes).div_ceil(8))
            .sum()
    }

    /// Attempts to allocate from the class pool `class_idx`.
    ///
    /// Returns the sub-block address, or `None` if every block in the
    /// pool is exhausted (the caller should fetch a block from the
    /// backend and retry).
    pub fn alloc(&mut self, ctx: &mut TaskletCtx<'_>, class_idx: usize) -> Option<u32> {
        ctx.instrs(REQUEST_INSTRS);
        let pool = &mut self.pools[class_idx];
        for (bi, block) in pool.blocks.iter_mut().enumerate() {
            ctx.instrs(BLOCK_SCAN_INSTRS);
            if block.free_slots == 0 {
                continue;
            }
            for (wi, word) in block.bitmap.iter_mut().enumerate() {
                ctx.instrs(WORD_SCAN_INSTRS);
                if *word != 0 {
                    let bit = word.trailing_zeros();
                    ctx.instrs(BIT_OP_INSTRS);
                    *word &= !(1u64 << bit);
                    block.free_slots -= 1;
                    let slot = wi as u32 * 64 + bit;
                    let addr = block.base + slot * pool.class_bytes;
                    // Keep the most recently used block at the front so
                    // the common case scans one block.
                    if bi != 0 {
                        let b = pool.blocks.remove(bi);
                        pool.blocks.insert(0, b);
                    }
                    return Some(addr);
                }
            }
            unreachable!("free_slots > 0 implies a set bit");
        }
        None
    }

    /// Installs a fresh 4 KB block (from the backend) into a pool.
    pub fn add_block(&mut self, ctx: &mut TaskletCtx<'_>, class_idx: usize, base: u32) {
        ctx.instrs(BIT_OP_INSTRS + 4); // link block, init bitmap head
        let class = self.pools[class_idx].class_bytes;
        self.pools[class_idx]
            .blocks
            .insert(0, CacheBlock::new(base, class));
    }

    /// Frees the sub-block at `addr` in pool `class_idx`.
    ///
    /// If the containing block becomes entirely free **and** the pool
    /// holds another block, the block is detached and returned for the
    /// caller to hand back to the backend; the pool always keeps its
    /// last block to avoid thrashing the buddy allocator on
    /// alloc/free ping-pong.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not belong to any block of the pool or the
    /// sub-block is already free (double free) — both are program bugs
    /// the shadow bookkeeping in [`crate::PimMalloc`] rules out.
    pub fn free(&mut self, ctx: &mut TaskletCtx<'_>, class_idx: usize, addr: u32) -> FreeOutcome {
        let (outcome, bi) = self.free_at(class_idx, addr);
        ctx.instrs(REQUEST_INSTRS + BLOCK_SCAN_INSTRS * (bi as u64 + 1) + BIT_OP_INSTRS);
        outcome
    }

    /// [`ThreadCache::free`] without charging the caller's tasklet:
    /// the reconciliation step of a *remote* free routed through the
    /// transfer cache, whose simulated cost is the batched MRAM
    /// traffic priced by [`crate::PimMalloc`] — the freeing tasklet
    /// never walks the owner's private structures.
    pub fn free_unpriced(&mut self, class_idx: usize, addr: u32) -> FreeOutcome {
        self.free_at(class_idx, addr).0
    }

    /// Shared mutation of both free variants; returns the outcome and
    /// the index of the containing block (the charged variant's
    /// scan-depth cost).
    fn free_at(&mut self, class_idx: usize, addr: u32) -> (FreeOutcome, usize) {
        let pool = &mut self.pools[class_idx];
        let bi = pool
            .blocks
            .iter()
            .position(|b| b.contains(addr))
            .expect("freed address belongs to this pool");
        let block = &mut pool.blocks[bi];
        let slot = (addr - block.base) / pool.class_bytes;
        let (wi, bit) = ((slot / 64) as usize, slot % 64);
        assert_eq!(
            block.bitmap[wi] & (1u64 << bit),
            0,
            "double free of {addr:#x} in class {}",
            pool.class_bytes
        );
        block.bitmap[wi] |= 1u64 << bit;
        block.free_slots += 1;
        let outcome = if block.free_slots == block.slots && pool.blocks.len() > 1 {
            let released = pool.blocks.remove(bi);
            FreeOutcome::BlockReleased {
                block_base: released.base,
            }
        } else {
            FreeOutcome::Cached
        };
        (outcome, bi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, DpuSim};

    fn dpu() -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(1))
    }

    fn cache() -> ThreadCache {
        ThreadCache::new(&SizeClassTable::paper_default())
    }

    #[test]
    fn pools_mirror_the_shared_table() {
        let c = cache();
        let table = SizeClassTable::paper_default();
        let pool_classes: Vec<u32> = c.pools().iter().map(SizeClassPool::class_bytes).collect();
        assert_eq!(pool_classes, table.classes());
    }

    #[test]
    fn alloc_exhausts_a_block_exactly() {
        let mut d = dpu();
        let mut c = cache();
        let mut ctx = d.ctx(0);
        c.add_block(&mut ctx, 0, 0x1000); // 16 B class: 256 slots
        let mut addrs = Vec::new();
        while let Some(a) = c.alloc(&mut ctx, 0) {
            addrs.push(a);
        }
        assert_eq!(addrs.len(), 256);
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 256, "sub-blocks must be distinct");
        assert!(addrs.iter().all(|a| (0x1000..0x2000).contains(a)));
        assert!(addrs.iter().all(|a| (a - 0x1000) % 16 == 0));
    }

    #[test]
    fn two_kb_class_splits_block_in_two() {
        let mut d = dpu();
        let mut c = cache();
        let mut ctx = d.ctx(0);
        c.add_block(&mut ctx, 7, 0x8000);
        assert_eq!(c.alloc(&mut ctx, 7), Some(0x8000));
        assert_eq!(c.alloc(&mut ctx, 7), Some(0x8800));
        assert_eq!(c.alloc(&mut ctx, 7), None);
    }

    #[test]
    fn free_makes_slot_reusable() {
        let mut d = dpu();
        let mut c = cache();
        let mut ctx = d.ctx(0);
        c.add_block(&mut ctx, 4, 0x1000); // 256 B: 16 slots
        let a = c.alloc(&mut ctx, 4).unwrap();
        let b = c.alloc(&mut ctx, 4).unwrap();
        assert_eq!(c.free(&mut ctx, 4, a), FreeOutcome::Cached);
        let again = c.alloc(&mut ctx, 4).unwrap();
        assert_eq!(again, a, "freed slot is the first free bit again");
        let _ = b;
    }

    #[test]
    fn fully_free_block_released_only_if_not_last() {
        let mut d = dpu();
        let mut c = cache();
        let mut ctx = d.ctx(0);
        c.add_block(&mut ctx, 7, 0x8000);
        let a = c.alloc(&mut ctx, 7).unwrap();
        // Last block in pool: kept even when fully free.
        assert_eq!(c.free(&mut ctx, 7, a), FreeOutcome::Cached);
        assert_eq!(c.pools()[7].block_count(), 1);
        // With a second block, a fully-free one is released.
        c.add_block(&mut ctx, 7, 0x9000);
        let b = c.alloc(&mut ctx, 7).unwrap();
        assert_eq!(b, 0x9000, "MRU block serves first");
        match c.free(&mut ctx, 7, b) {
            FreeOutcome::BlockReleased { block_base } => assert_eq!(block_base, 0x9000),
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(c.pools()[7].block_count(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = dpu();
        let mut c = cache();
        let mut ctx = d.ctx(0);
        c.add_block(&mut ctx, 0, 0x1000);
        let a = c.alloc(&mut ctx, 0).unwrap();
        c.free(&mut ctx, 0, a);
        c.free(&mut ctx, 0, a);
    }

    #[test]
    fn hit_cost_is_constant_ish_and_small() {
        // O(1) claim: the 1000th alloc from a pool costs about the same
        // as the 1st (no dependence on allocation history).
        let mut d = dpu();
        let mut c = cache();
        let mut ctx = d.ctx(0);
        c.add_block(&mut ctx, 1, 0x1000); // 32 B: 128 slots
        let t0 = ctx.now();
        c.alloc(&mut ctx, 1).unwrap();
        let first = (ctx.now() - t0).0;
        let mut last = 0;
        for _ in 0..100 {
            let t = ctx.now();
            if c.alloc(&mut ctx, 1).is_none() {
                c.add_block(&mut ctx, 1, 0x8000);
            }
            last = (ctx.now() - t).0;
        }
        assert!(last <= first * 3, "hit cost drifted: {first} -> {last}");
    }

    #[test]
    fn exact_64_multiple_slot_counts_initialize_fully_free() {
        // Regression: classes whose slot count is an exact multiple of
        // 64 (64 B class → 64 slots, 32 B → 128, 16 B → 256) must
        // start with *every* slot free. The old tail-word expression
        // `(1u64 << tail) - 1` overflows when the tail is derived as
        // "slots remaining in the last word" (64 at a word boundary).
        for (class_idx, class_bytes, slots) in [(2usize, 64u32, 64u32), (1, 32, 128), (0, 16, 256)]
        {
            let mut d = dpu();
            let mut c = cache();
            let mut ctx = d.ctx(0);
            c.add_block(&mut ctx, class_idx, 0x1000);
            assert_eq!(
                c.pools()[class_idx].free_slots(),
                slots,
                "{class_bytes} B class must start fully free"
            );
            // And every one of them is allocatable, in address order.
            for i in 0..slots {
                assert_eq!(
                    c.alloc(&mut ctx, class_idx),
                    Some(0x1000 + i * class_bytes),
                    "slot {i} of the {class_bytes} B class"
                );
            }
            assert_eq!(c.alloc(&mut ctx, class_idx), None);
        }
    }

    #[test]
    fn bitmap_wram_budget_is_small() {
        // §VI-E: thread-cache bitmap metadata is negligible. One block
        // per class: 256+128+64+32+16+8+4+2 bits = 510 bits ≈ 64 B.
        let c = cache();
        assert!(c.bitmap_wram_bytes() <= 70, "{}", c.bitmap_wram_bytes());
    }

    #[test]
    fn unpriced_free_mutates_identically_but_charges_nothing() {
        let mut d = dpu();
        let mut priced = cache();
        let mut unpriced = priced.clone();
        let mut ctx = d.ctx(0);
        priced.add_block(&mut ctx, 4, 0x1000);
        unpriced.add_block(&mut ctx, 4, 0x1000);
        let a = priced.alloc(&mut ctx, 4).unwrap();
        assert_eq!(unpriced.alloc(&mut ctx, 4), Some(a));
        let before = ctx.now();
        assert_eq!(unpriced.free_unpriced(4, a), FreeOutcome::Cached);
        assert_eq!(ctx.now(), before, "unpriced free charges no cycles");
        priced.free(&mut ctx, 4, a);
        assert!(ctx.now() > before, "priced free does charge");
        // Identical post-state: the freed slot is reissued first by
        // both variants.
        assert_eq!(priced.alloc(&mut ctx, 4), Some(a));
        assert_eq!(unpriced.alloc(&mut ctx, 4), Some(a));
    }
}
