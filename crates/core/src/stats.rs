//! Allocator-level statistics: where requests were serviced and how
//! much latency each service site contributed (Figure 11 of the paper).

use pim_sim::{Cycles, LatencyRecorder};
use serde::{Deserialize, Serialize};

/// Where a `pim_malloc` request was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceSite {
    /// Served from a free sub-block already in the thread cache.
    FrontendHit,
    /// The thread cache had to fetch a fresh 4 KB block from the
    /// backend buddy allocator first.
    FrontendRefill,
    /// The request exceeded the largest size class and went directly
    /// to the backend (thread-cache bypass).
    Bypass,
    /// Served from the thread cache via a sub-block staged in the
    /// transfer cache by a remote free (three-tier only).
    TransferHit,
    /// Served from the thread cache via a sub-block resident in the
    /// central free list (three-tier only).
    CentralHit,
}

impl ServiceSite {
    /// True if the backend buddy allocator was involved.
    pub fn touches_backend(self) -> bool {
        matches!(self, ServiceSite::FrontendRefill | ServiceSite::Bypass)
    }
}

/// Counters and latency attribution for one allocator instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AllocStats {
    /// `pim_malloc` calls served entirely by the thread cache.
    pub frontend_hits: u64,
    /// `pim_malloc` calls that triggered a backend refill.
    pub frontend_refills: u64,
    /// `pim_malloc` calls that bypassed the thread cache.
    pub bypass: u64,
    /// `pim_free` calls absorbed by the thread cache.
    pub frees_frontend: u64,
    /// `pim_free` calls that reached the backend.
    pub frees_backend: u64,
    /// Thread-cache hits that claimed a transfer-cache-staged address.
    pub transfer_hits: u64,
    /// Thread-cache hits that claimed a central-free-list address.
    pub central_hits: u64,
    /// Cross-tasklet frees staged in the transfer cache (three-tier).
    pub frees_remote_transfer: u64,
    /// Cross-tasklet frees that walked the owner's cache under the
    /// global backend lock (two-tier).
    pub frees_remote_global: u64,
    /// Transfer-cache batches flushed (one MRAM write each).
    pub transfer_flushes: u64,
    /// Batches demoted from the transfer cache to the central list.
    pub central_demotes: u64,
    /// Fully-free spans retired from the central list back to the
    /// buddy backend.
    pub spans_returned: u64,
    /// Total `pim_malloc` latency of frontend-hit requests.
    pub cycles_frontend: Cycles,
    /// Total `pim_malloc` latency of backend-involved requests.
    pub cycles_backend: Cycles,
    /// Every `pim_malloc` latency, in call order.
    pub malloc_latencies: LatencyRecorder,
}

impl AllocStats {
    /// Total `pim_malloc` calls.
    pub fn total_mallocs(&self) -> u64 {
        self.frontend_hits
            + self.frontend_refills
            + self.bypass
            + self.transfer_hits
            + self.central_hits
    }

    /// Fraction of `pim_malloc` calls serviced at the frontend without
    /// touching the backend (Figure 11(a)). Transfer- and central-hit
    /// requests count: they are thread-cache hits whose sub-block
    /// happened to be staged in the middle tier.
    pub fn frontend_service_fraction(&self) -> f64 {
        let total = self.total_mallocs();
        if total == 0 {
            return 0.0;
        }
        (self.frontend_hits + self.transfer_hits + self.central_hits) as f64 / total as f64
    }

    /// Fraction of *class-eligible* `pim_malloc` calls served without
    /// a backend refill: hits (plain, transfer-staged, or
    /// central-resident) over hits plus refills. Bypass requests are
    /// excluded — they never had a page/cache to hit. This is the
    /// `page_hit_rate` the bench report gates on: a healthy frontend
    /// absorbs ≥ 90% of class-eligible traffic.
    pub fn class_hit_rate(&self) -> f64 {
        let hits = self.frontend_hits + self.transfer_hits + self.central_hits;
        let eligible = hits + self.frontend_refills;
        if eligible == 0 {
            return 0.0;
        }
        hits as f64 / eligible as f64
    }

    /// Fraction of aggregate `pim_malloc` latency attributable to
    /// requests that involved the backend (Figure 11(b)).
    pub fn backend_latency_fraction(&self) -> f64 {
        let total = (self.cycles_frontend + self.cycles_backend).0;
        if total == 0 {
            return 0.0;
        }
        self.cycles_backend.0 as f64 / total as f64
    }

    /// Records one serviced `pim_malloc`.
    pub fn record_malloc(&mut self, site: ServiceSite, latency: Cycles) {
        match site {
            ServiceSite::FrontendHit => {
                self.frontend_hits += 1;
                self.cycles_frontend += latency;
            }
            ServiceSite::FrontendRefill => {
                self.frontend_refills += 1;
                self.cycles_backend += latency;
            }
            ServiceSite::Bypass => {
                self.bypass += 1;
                self.cycles_backend += latency;
            }
            ServiceSite::TransferHit => {
                self.transfer_hits += 1;
                self.cycles_frontend += latency;
            }
            ServiceSite::CentralHit => {
                self.central_hits += 1;
                self.cycles_frontend += latency;
            }
        }
        self.malloc_latencies.record(latency);
    }

    /// Records one serviced `pim_free`.
    pub fn record_free(&mut self, touched_backend: bool) {
        if touched_backend {
            self.frees_backend += 1;
        } else {
            self.frees_frontend += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_fractions() {
        let mut s = AllocStats::default();
        for _ in 0..93 {
            s.record_malloc(ServiceSite::FrontendHit, Cycles(10));
        }
        for _ in 0..5 {
            s.record_malloc(ServiceSite::FrontendRefill, Cycles(500));
        }
        for _ in 0..2 {
            s.record_malloc(ServiceSite::Bypass, Cycles(400));
        }
        assert_eq!(s.total_mallocs(), 100);
        assert!((s.frontend_service_fraction() - 0.93).abs() < 1e-12);
        // Backend latency share: (5*500 + 2*400) / (930 + 3300)
        let expect = 3300.0 / 4230.0;
        assert!((s.backend_latency_fraction() - expect).abs() < 1e-12);
        assert_eq!(s.malloc_latencies.len(), 100);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = AllocStats::default();
        assert_eq!(s.frontend_service_fraction(), 0.0);
        assert_eq!(s.backend_latency_fraction(), 0.0);
        assert_eq!(s.total_mallocs(), 0);
    }

    #[test]
    fn site_backend_classification() {
        assert!(!ServiceSite::FrontendHit.touches_backend());
        assert!(ServiceSite::FrontendRefill.touches_backend());
        assert!(ServiceSite::Bypass.touches_backend());
        assert!(!ServiceSite::TransferHit.touches_backend());
        assert!(!ServiceSite::CentralHit.touches_backend());
    }

    #[test]
    fn middle_tier_hits_count_as_frontend_service() {
        let mut s = AllocStats::default();
        s.record_malloc(ServiceSite::FrontendHit, Cycles(10));
        s.record_malloc(ServiceSite::TransferHit, Cycles(20));
        s.record_malloc(ServiceSite::CentralHit, Cycles(30));
        s.record_malloc(ServiceSite::Bypass, Cycles(400));
        assert_eq!(s.total_mallocs(), 4);
        assert_eq!(s.transfer_hits, 1);
        assert_eq!(s.central_hits, 1);
        assert!((s.frontend_service_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(s.cycles_frontend, Cycles(60));
    }

    #[test]
    fn class_hit_rate_excludes_bypass_and_counts_staged_hits() {
        let mut s = AllocStats::default();
        assert_eq!(s.class_hit_rate(), 0.0, "no traffic yet");
        for _ in 0..7 {
            s.record_malloc(ServiceSite::FrontendHit, Cycles(10));
        }
        s.record_malloc(ServiceSite::TransferHit, Cycles(20));
        s.record_malloc(ServiceSite::CentralHit, Cycles(30));
        s.record_malloc(ServiceSite::FrontendRefill, Cycles(500));
        // Bypass traffic must not dilute the rate.
        for _ in 0..10 {
            s.record_malloc(ServiceSite::Bypass, Cycles(400));
        }
        assert!((s.class_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn frees_are_counted_by_site() {
        let mut s = AllocStats::default();
        s.record_free(false);
        s.record_free(true);
        s.record_free(false);
        assert_eq!(s.frees_frontend, 2);
        assert_eq!(s.frees_backend, 1);
    }
}
