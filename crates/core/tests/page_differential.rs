//! Differential property coverage of the allocation frontends: the
//! page/queue fast path (`.page_local()`) must be a pure *pricing*
//! overlay over the legacy bitmap-scan thread caches. Under any
//! interleaving of allocations, local frees, and cross-tasklet remote
//! frees, both frontends must return identical addresses, identical
//! errors, identical service-site counters, and identical
//! fragmentation accounting — only the simulated cycle costs may
//! differ, since constant-cost hot paths are the whole point of the
//! page layer.

use pim_malloc::{AllocGeometry, FrontendKind, PimAllocator, PimMalloc, TierPolicy};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

const HEAP_SIZE: u32 = 1 << 20;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// `tid` allocates `size` bytes.
    Alloc { tid: usize, size: u32 },
    /// `tid` frees one of its own live allocations.
    LocalFree { tid: usize, victim: usize },
    /// `tid` frees one of `owner`'s live allocations (a remote free
    /// whenever `owner != tid`, exercising the unpriced reconcile).
    RemoteFree {
        tid: usize,
        owner: usize,
        victim: usize,
    },
}

fn op_strategy(n_tasklets: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..n_tasklets, 1u32..8192).prop_map(|(tid, size)| Op::Alloc { tid, size }),
        2 => (0..n_tasklets, any::<usize>())
            .prop_map(|(tid, victim)| Op::LocalFree { tid, victim }),
        2 => (0..n_tasklets, 0..n_tasklets, any::<usize>())
            .prop_map(|(tid, owner, victim)| Op::RemoteFree { tid, owner, victim }),
    ]
}

/// Everything a trial observes that must be frontend-invariant.
#[derive(Debug, PartialEq)]
struct Observed {
    /// Per-op outcome: allocated address, freed address, or the error.
    outcomes: Vec<Result<u32, String>>,
    live_allocations: usize,
    requested_live: u64,
    reserved_live: u64,
    backend_free_bytes: u64,
    /// ServiceSite counters: the page path must *route* requests
    /// identically, not just address them identically.
    frontend_hits: u64,
    frontend_refills: u64,
    bypass: u64,
    transfer_hits: u64,
    central_hits: u64,
    frees_frontend: u64,
    frees_backend: u64,
    frees_remote_transfer: u64,
    frees_remote_global: u64,
}

fn run(frontend: FrontendKind, tier: TierPolicy, n_tasklets: usize, ops: &[Op]) -> Observed {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let mut geom = AllocGeometry::sw(n_tasklets)
        .with_heap_size(HEAP_SIZE)
        .with_frontend(frontend);
    if tier == TierPolicy::TwoTier {
        geom = geom.two_tier();
    }
    let mut pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");

    // addr lists per owning tasklet, appended in allocation order, so
    // victim indices resolve identically across both runs as long as
    // the returned addresses match (which is the property under test).
    let mut live: Vec<Vec<u32>> = vec![Vec::new(); n_tasklets];
    let mut outcomes = Vec::with_capacity(ops.len());
    for op in ops {
        match *op {
            Op::Alloc { tid, size } => {
                let mut ctx = dpu.ctx(tid);
                match pm.pim_malloc(&mut ctx, size) {
                    Ok(addr) => {
                        live[tid].push(addr);
                        outcomes.push(Ok(addr));
                    }
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
            Op::LocalFree { tid, victim } => {
                if live[tid].is_empty() {
                    continue;
                }
                let idx = victim % live[tid].len();
                let addr = live[tid].swap_remove(idx);
                let mut ctx = dpu.ctx(tid);
                match pm.pim_free(&mut ctx, addr) {
                    Ok(()) => outcomes.push(Ok(addr)),
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
            Op::RemoteFree { tid, owner, victim } => {
                if live[owner].is_empty() {
                    continue;
                }
                let idx = victim % live[owner].len();
                let addr = live[owner].swap_remove(idx);
                let mut ctx = dpu.ctx(tid);
                match pm.pim_free(&mut ctx, addr) {
                    Ok(()) => outcomes.push(Ok(addr)),
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
        }
    }
    let s = pm.alloc_stats();
    let observed = Observed {
        live_allocations: pm.live_allocations(),
        requested_live: pm.frag().requested_live(),
        reserved_live: pm.frag().reserved_live(),
        backend_free_bytes: pm.backend().free_bytes(),
        frontend_hits: s.frontend_hits,
        frontend_refills: s.frontend_refills,
        bypass: s.bypass,
        transfer_hits: s.transfer_hits,
        central_hits: s.central_hits,
        frees_frontend: s.frees_frontend,
        frees_backend: s.frees_backend,
        frees_remote_transfer: s.frees_remote_transfer,
        frees_remote_global: s.frees_remote_global,
        outcomes,
    };
    pm.backend().check_invariants();
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Addresses, errors, routing counters, and fragmentation
    /// accounting are identical across the two frontends on the
    /// default three-tier free path.
    #[test]
    fn frontends_agree_on_everything_but_cycles(
        ops in proptest::collection::vec(op_strategy(4), 1..200)
    ) {
        let pages = run(FrontendKind::PageLocal, TierPolicy::ThreeTier, 4, &ops);
        let bitmap = run(FrontendKind::BitmapClasses, TierPolicy::ThreeTier, 4, &ops);
        prop_assert_eq!(&pages, &bitmap);
    }

    /// Same property under the two-tier free path, where remote frees
    /// walk the owner's frontend under the global lock (the *priced*
    /// free variant) instead of the unpriced transfer-cache reconcile.
    #[test]
    fn frontends_agree_under_two_tier_remote_frees(
        ops in proptest::collection::vec(op_strategy(4), 1..200)
    ) {
        let pages = run(FrontendKind::PageLocal, TierPolicy::TwoTier, 4, &ops);
        let bitmap = run(FrontendKind::BitmapClasses, TierPolicy::TwoTier, 4, &ops);
        prop_assert_eq!(&pages, &bitmap);
    }

    /// Same property at sixteen tasklets, where queues shard across
    /// many more (tasklet, class) pairs and full/empty page migration
    /// interleaves with remote traffic.
    #[test]
    fn frontends_agree_at_sixteen_tasklets(
        ops in proptest::collection::vec(op_strategy(16), 1..150)
    ) {
        let pages = run(FrontendKind::PageLocal, TierPolicy::ThreeTier, 16, &ops);
        let bitmap = run(FrontendKind::BitmapClasses, TierPolicy::ThreeTier, 16, &ops);
        prop_assert_eq!(&pages, &bitmap);
    }
}

/// A deterministic drain: heavy cross-tasklet churn, then free
/// everything — both frontends must end with an empty heap, matching
/// addresses, and matching backend capacity.
#[test]
fn full_drain_matches_across_frontends() {
    let run_drain = |frontend: FrontendKind| -> (Vec<u32>, u64) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
        let geom = AllocGeometry::sw(4)
            .with_heap_size(HEAP_SIZE)
            .with_frontend(frontend);
        let mut pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");
        let mut history = Vec::new();
        let mut addrs = Vec::new();
        for round in 0..4usize {
            for tid in 0..4 {
                let mut ctx = dpu.ctx(tid);
                for i in 0..32 {
                    let size = [16u32, 100, 700, 2048][(i + round) % 4];
                    let addr = pm.pim_malloc(&mut ctx, size).unwrap();
                    history.push(addr);
                    addrs.push(addr);
                }
            }
            // Each tasklet frees the previous tasklet's allocations.
            let drained = std::mem::take(&mut addrs);
            for (i, addr) in drained.iter().enumerate() {
                let mut ctx = dpu.ctx((i / 32 + 1) % 4);
                pm.pim_free(&mut ctx, *addr).unwrap();
            }
        }
        assert_eq!(pm.live_allocations(), 0);
        assert_eq!(pm.frag().requested_live(), 0);
        pm.backend().check_invariants();
        (history, pm.backend().free_bytes())
    };
    let (pages, free_pages) = run_drain(FrontendKind::PageLocal);
    let (bitmap, free_bitmap) = run_drain(FrontendKind::BitmapClasses);
    assert_eq!(pages, bitmap);
    assert_eq!(free_pages, free_bitmap);
}
