//! Property-based tests of the full hierarchical PIM-malloc allocator:
//! random multi-tasklet allocate/free traffic must never hand out
//! overlapping memory, must route frees correctly, and must return the
//! heap to a clean state when everything is freed.

use std::collections::BTreeMap;

use pim_malloc::{AllocError, AllocGeometry, PimAllocator, PimMalloc};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { tid: usize, size: u32 },
    Free { tid: usize, victim: usize },
}

fn op_strategy(n_tasklets: usize, max_size: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..n_tasklets, 1u32..max_size).prop_map(|(tid, size)| Op::Alloc { tid, size }),
        2 => (0..n_tasklets, any::<usize>()).prop_map(|(tid, victim)| Op::Free { tid, victim }),
    ]
}

fn config(n_tasklets: usize, prepopulate: bool) -> AllocGeometry {
    let base = AllocGeometry::sw(n_tasklets).with_heap_size(1 << 20);
    if prepopulate {
        base
    } else {
        base.lazy()
    }
}

fn run(n_tasklets: usize, prepopulate: bool, hw: bool, ops: &[Op]) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let mut geom = config(n_tasklets, prepopulate);
    if hw {
        geom = geom.with_backend(pim_malloc::BackendKind::HwCache {
            cache: pim_sim::BuddyCacheConfig::default(),
        });
    }
    let mut pm = PimMalloc::init(&mut dpu, geom.build()).unwrap();
    // Per-tasklet live allocations: addr -> occupied bytes (class size).
    let mut live: Vec<Vec<u32>> = vec![Vec::new(); n_tasklets];
    let mut spans: BTreeMap<u32, u32> = BTreeMap::new(); // addr -> occupied

    for op in ops {
        match op {
            Op::Alloc { tid, size } => {
                let mut ctx = dpu.ctx(*tid);
                match pm.pim_malloc(&mut ctx, *size) {
                    Ok(addr) => {
                        let occupied = size.next_power_of_two().max(16);
                        // No overlap with any live allocation.
                        if let Some((&prev_addr, &prev_len)) = spans.range(..=addr).next_back() {
                            assert!(
                                prev_addr + prev_len <= addr || prev_addr == addr,
                                "overlap: {prev_addr:#x}+{prev_len} vs {addr:#x}"
                            );
                            assert_ne!(prev_addr, addr, "address handed out twice");
                        }
                        if let Some((&next_addr, _)) = spans.range(addr + 1..).next() {
                            assert!(addr + occupied <= next_addr, "overlap with next span");
                        }
                        spans.insert(addr, occupied);
                        live[*tid].push(addr);
                    }
                    Err(AllocError::OutOfMemory { .. }) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            Op::Free { tid, victim } => {
                if live[*tid].is_empty() {
                    continue;
                }
                let idx = victim % live[*tid].len();
                let addr = live[*tid].swap_remove(idx);
                let mut ctx = dpu.ctx(*tid);
                pm.pim_free(&mut ctx, addr).expect("live allocation frees");
                spans.remove(&addr);
            }
        }
    }

    // Drain and verify the end state.
    for (tid, slots) in live.iter_mut().enumerate() {
        for addr in std::mem::take(slots) {
            let mut ctx = dpu.ctx(tid);
            pm.pim_free(&mut ctx, addr).unwrap();
        }
    }
    assert_eq!(pm.live_allocations(), 0);
    assert_eq!(pm.frag().requested_live(), 0);
    pm.backend().check_invariants();
    // Double frees are rejected.
    if let Some((&addr, _)) = spans.iter().next() {
        let mut ctx = dpu.ctx(0);
        assert!(matches!(
            pm.pim_free(&mut ctx, addr),
            Err(AllocError::InvalidFree { .. })
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sw_single_tasklet(ops in proptest::collection::vec(op_strategy(1, 4096), 1..100)) {
        run(1, true, false, &ops);
    }

    #[test]
    fn sw_sixteen_tasklets(ops in proptest::collection::vec(op_strategy(16, 8192), 1..150)) {
        run(16, true, false, &ops);
    }

    #[test]
    fn sw_lazy_init(ops in proptest::collection::vec(op_strategy(4, 4096), 1..100)) {
        run(4, false, false, &ops);
    }

    #[test]
    fn hwsw_sixteen_tasklets(ops in proptest::collection::vec(op_strategy(16, 8192), 1..120)) {
        run(16, true, true, &ops);
    }

    /// The HW/SW and SW variants are *functionally* identical: same
    /// request sequence → same success/failure pattern (timing differs,
    /// placement may differ, but feasibility must match).
    #[test]
    fn hw_and_sw_agree_on_feasibility(
        ops in proptest::collection::vec(op_strategy(4, 8192), 1..100)
    ) {
        let outcomes = |hw: bool| -> Vec<bool> {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
            let mut geom = config(4, true);
            if hw {
                geom = geom.with_backend(pim_malloc::BackendKind::HwCache {
                    cache: pim_sim::BuddyCacheConfig::default(),
                });
            }
            let mut pm = PimMalloc::init(&mut dpu, geom.build()).unwrap();
            let mut live: Vec<Vec<u32>> = vec![Vec::new(); 4];
            let mut out = Vec::new();
            for op in &ops {
                match op {
                    Op::Alloc { tid, size } => {
                        let mut ctx = dpu.ctx(*tid);
                        match pm.pim_malloc(&mut ctx, *size) {
                            Ok(a) => { live[*tid].push(a); out.push(true) }
                            Err(_) => out.push(false),
                        }
                    }
                    Op::Free { tid, victim } => {
                        if live[*tid].is_empty() { continue; }
                        let idx = victim % live[*tid].len();
                        let addr = live[*tid].swap_remove(idx);
                        let mut ctx = dpu.ctx(*tid);
                        pm.pim_free(&mut ctx, addr).unwrap();
                    }
                }
            }
            out
        };
        prop_assert_eq!(outcomes(false), outcomes(true));
    }
}
