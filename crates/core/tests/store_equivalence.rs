//! Differential property tests: all five metadata stores are
//! *functionally identical* — they differ only in cost and traffic.
//! Any sequence of get/set operations must return the same states from
//! each, and a buddy allocator running on each must produce identical
//! placements.

use pim_malloc::metadata::{
    CoarseBufferStore, FineLruStore, HwCacheStore, LineCacheStore, MetadataStore, NodeState,
    WramStore,
};
use pim_malloc::{BuddyAllocator, BuddyGeometry, MetadataBackend};
use pim_sim::{BuddyCacheConfig, DpuConfig, DpuSim};
use proptest::prelude::*;

const NODES: u32 = 1 << 12;

fn all_stores() -> Vec<(&'static str, Box<dyn MetadataStore>)> {
    vec![
        ("wram", Box::new(WramStore::new(NODES))),
        ("coarse", Box::new(CoarseBufferStore::new(NODES, 0, 256))),
        ("fine-lru", Box::new(FineLruStore::new(NODES, 0, 8, 8))),
        (
            "hw-cache",
            Box::new(HwCacheStore::new(NODES, 0, BuddyCacheConfig::default())),
        ),
        (
            "line-cache",
            Box::new(LineCacheStore::new(NODES, 0, 128, 64)),
        ),
    ]
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get { idx: u32 },
    Set { idx: u32, state: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=NODES).prop_map(|idx| Op::Get { idx }),
        (1u32..=NODES, 0u8..4).prop_map(|(idx, state)| Op::Set { idx, state }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every store returns identical states for identical op sequences,
    /// and `peek` always agrees with `get`.
    #[test]
    fn stores_agree_on_every_access(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut stores = all_stores();
        for op in &ops {
            let mut outcomes: Vec<(&str, NodeState)> = Vec::new();
            for (name, store) in &mut stores {
                let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
                let mut ctx = dpu.ctx(0);
                match *op {
                    Op::Get { idx } => {
                        let got = store.get(&mut ctx, idx);
                        prop_assert_eq!(got, store.peek(idx), "{}: get/peek mismatch", name);
                        outcomes.push((name, got));
                    }
                    Op::Set { idx, state } => {
                        let state = NodeState::from_bits(state);
                        store.set(&mut ctx, idx, state);
                        prop_assert_eq!(store.peek(idx), state, "{}: set lost", name);
                    }
                }
            }
            for w in outcomes.windows(2) {
                prop_assert_eq!(w[0].1, w[1].1, "{} vs {} diverged", w[0].0, w[1].0);
            }
        }
    }

    /// A buddy allocator over any backend makes identical placement
    /// decisions — backends are pure caches, never semantics.
    #[test]
    fn allocators_place_identically_on_every_backend(
        sizes in proptest::collection::vec(1u32..8192, 1..60)
    ) {
        let geometry = BuddyGeometry::new(0, 1 << 20, 32);
        let backends: Vec<(&str, MetadataBackend)> = vec![
            ("wram", MetadataBackend::wram(&geometry)),
            ("coarse", MetadataBackend::coarse(&geometry, 0, 2048)),
            ("fine-lru", MetadataBackend::fine_lru(&geometry, 0, 64, 8)),
            (
                "hw-cache",
                MetadataBackend::hw_cache(&geometry, 0, BuddyCacheConfig::default()),
            ),
            ("line-cache", MetadataBackend::line_cache(&geometry, 0, 1024, 64)),
        ];
        let mut results: Vec<(&str, Vec<Option<u32>>)> = Vec::new();
        for (name, backend) in backends {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
            let mut tree = BuddyAllocator::new(geometry, backend);
            {
                let mut ctx = dpu.ctx(0);
                tree.reset(&mut ctx);
            }
            let mut placed = Vec::new();
            for (i, &size) in sizes.iter().enumerate() {
                let mut ctx = dpu.ctx(0);
                let addr = tree.alloc(&mut ctx, size).ok();
                // Free every third allocation to exercise merge paths.
                if i % 3 == 0 {
                    if let Some(a) = addr {
                        tree.free(&mut ctx, a).unwrap();
                    }
                }
                placed.push(addr);
            }
            tree.check_invariants();
            results.push((name, placed));
        }
        for w in results.windows(2) {
            prop_assert_eq!(&w[0].1, &w[1].1, "{} vs {} placements diverged", w[0].0, w[1].0);
        }
    }
}

#[test]
fn traffic_profiles_differ_as_designed() {
    // Same access pattern, very different transfer profiles: that is
    // the entire design space. Walk scattered tree paths on each store
    // and rank their DRAM traffic.
    let mut traffic = std::collections::BTreeMap::new();
    for (name, mut store) in all_stores() {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let mut ctx = dpu.ctx(0);
        for start in 0..32u32 {
            let mut idx = 1 + start;
            while idx <= NODES {
                let _ = store.get(&mut ctx, idx);
                idx *= 2;
            }
        }
        traffic.insert(name, store.stats().total_bytes());
    }
    assert_eq!(traffic["wram"], 0, "WRAM store never touches DRAM");
    assert!(
        traffic["hw-cache"] < traffic["coarse"],
        "word fills must beat window reloads: {traffic:?}"
    );
    assert!(
        traffic["fine-lru"] < traffic["coarse"],
        "granule fills must beat window reloads: {traffic:?}"
    );
}
