//! Differential property test of the frame-table free routing.
//!
//! Random malloc/free interleavings drive a [`PimMalloc`] whose
//! `pim_free` routes through the O(1) `RegionMap`, while a test-side
//! reference oracle — `BTreeMap`s keyed by address, the bookkeeping the
//! production code used to carry — shadows every decision: which
//! service site each malloc must hit, which addresses are live, whether
//! a free is valid, whether it stays in the thread cache or releases a
//! block to the backend, and the exact A/U fragmentation counters. Any
//! divergence between the frame table and the oracle (addresses,
//! errors, `ServiceSite` stats, frag accounting) fails the property.

use std::collections::BTreeMap;

use pim_malloc::{
    AllocError, AllocGeometry, PimAllocator, PimMalloc, CACHE_BLOCK_BYTES, DEFAULT_SIZE_CLASSES,
};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

const HEAP_SIZE: u32 = 1 << 20;

#[derive(Debug, Clone)]
enum Op {
    Alloc { tid: usize, size: u32 },
    FreeLive { victim: usize },
    FreeJunk { addr: u32 },
}

fn op_strategy(n_tasklets: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..n_tasklets, 1u32..8192).prop_map(|(tid, size)| Op::Alloc { tid, size }),
        3 => any::<usize>().prop_map(|victim| Op::FreeLive { victim }),
        1 => any::<u32>().prop_map(|addr| Op::FreeJunk { addr }),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Class { tid: usize, class_idx: usize },
    Bypass,
}

/// The reference oracle: address-keyed BTreeMap bookkeeping of live
/// allocations and per-pool block occupancy.
#[derive(Debug, Default)]
struct Oracle {
    /// addr -> (requested bytes, route recorded at alloc time).
    live: BTreeMap<u32, (u32, Route)>,
    /// (tid, class) -> block base -> sub-blocks in use.
    pools: BTreeMap<(usize, usize), BTreeMap<u32, u32>>,
    /// (tid, class) -> pre-populated blocks not yet observed.
    unmaterialized: BTreeMap<(usize, usize), u32>,
    hits: u64,
    refills: u64,
    bypass: u64,
    frees_frontend: u64,
    frees_backend: u64,
    reserved: u64,
    requested: u64,
}

fn class_for(size: u32) -> Option<usize> {
    DEFAULT_SIZE_CLASSES.iter().position(|&c| c >= size)
}

fn slots_per_block(class_idx: usize) -> u32 {
    CACHE_BLOCK_BYTES / DEFAULT_SIZE_CLASSES[class_idx]
}

fn block_base(heap_base: u32, addr: u32) -> u32 {
    addr - ((addr - heap_base) % CACHE_BLOCK_BYTES)
}

impl Oracle {
    fn new(n_tasklets: usize, prepopulate: bool) -> Self {
        let mut o = Oracle::default();
        if prepopulate {
            for tid in 0..n_tasklets {
                for class_idx in 0..DEFAULT_SIZE_CLASSES.len() {
                    o.unmaterialized.insert((tid, class_idx), 1);
                    o.reserved += u64::from(CACHE_BLOCK_BYTES);
                }
            }
        }
        o
    }

    /// Free sub-block capacity of one pool, counting unseen
    /// pre-populated blocks.
    fn pool_free_slots(&self, tid: usize, class_idx: usize) -> u32 {
        let per_block = slots_per_block(class_idx);
        let hidden = self
            .unmaterialized
            .get(&(tid, class_idx))
            .copied()
            .unwrap_or(0);
        let known: u32 = self
            .pools
            .get(&(tid, class_idx))
            .map(|blocks| blocks.values().map(|used| per_block - used).sum())
            .unwrap_or(0);
        hidden * per_block + known
    }

    fn on_alloc_ok(
        &mut self,
        heap_base: u32,
        tid: usize,
        size: u32,
        addr: u32,
        predicted_hit: bool,
    ) {
        match class_for(size) {
            Some(class_idx) => {
                let base = block_base(heap_base, addr);
                let pool = self.pools.entry((tid, class_idx)).or_default();
                if let Some(used) = pool.get_mut(&base) {
                    *used += 1;
                } else {
                    // First touch of this block: either a pre-populated
                    // block just materialized (a frontend hit) or a
                    // fresh refill from the backend.
                    let hidden = self.unmaterialized.entry((tid, class_idx)).or_insert(0);
                    if predicted_hit {
                        assert!(*hidden > 0, "hit on an unknown block at {addr:#x}");
                        *hidden -= 1;
                    } else {
                        self.reserved += u64::from(CACHE_BLOCK_BYTES);
                    }
                    pool.insert(base, 1);
                }
                if predicted_hit {
                    self.hits += 1;
                } else {
                    self.refills += 1;
                }
                self.live
                    .insert(addr, (size, Route::Class { tid, class_idx }));
            }
            None => {
                self.bypass += 1;
                self.reserved += u64::from(size.next_power_of_two().max(CACHE_BLOCK_BYTES));
                self.live.insert(addr, (size, Route::Bypass));
            }
        }
        self.requested += u64::from(size);
    }

    fn on_free(&mut self, heap_base: u32, addr: u32) {
        let (size, route) = self.live.remove(&addr).expect("oracle frees live addrs");
        match route {
            Route::Class { tid, class_idx } => {
                let base = block_base(heap_base, addr);
                let pool = self.pools.get_mut(&(tid, class_idx)).expect("pool exists");
                let used = pool.get_mut(&base).expect("block exists");
                *used -= 1;
                let hidden = self
                    .unmaterialized
                    .get(&(tid, class_idx))
                    .copied()
                    .unwrap_or(0);
                if *used == 0 && pool.len() as u32 + hidden > 1 {
                    // Fully-free non-last block: released to the backend.
                    pool.remove(&base);
                    self.reserved -= u64::from(CACHE_BLOCK_BYTES);
                    self.frees_backend += 1;
                } else {
                    self.frees_frontend += 1;
                }
            }
            Route::Bypass => {
                self.reserved -= u64::from(size.next_power_of_two().max(CACHE_BLOCK_BYTES));
                self.frees_backend += 1;
            }
        }
        self.requested -= u64::from(size);
    }
}

fn run_differential(n_tasklets: usize, prepopulate: bool, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let base_geom = AllocGeometry::sw(n_tasklets).with_heap_size(HEAP_SIZE);
    let cfg = if prepopulate {
        base_geom.build()
    } else {
        base_geom.lazy().build()
    };
    let heap_base = cfg.heap_base();
    let mut pm = PimMalloc::init(&mut dpu, cfg).unwrap();
    let mut oracle = Oracle::new(n_tasklets, prepopulate);

    for op in ops {
        match op {
            Op::Alloc { tid, size } => {
                let predicted_hit = class_for(*size)
                    .map(|ci| oracle.pool_free_slots(*tid, ci) > 0)
                    .unwrap_or(false);
                let mut ctx = dpu.ctx(*tid);
                match pm.pim_malloc(&mut ctx, *size) {
                    Ok(addr) => {
                        prop_assert!(
                            !oracle.live.contains_key(&addr),
                            "address {addr:#x} handed out twice"
                        );
                        oracle.on_alloc_ok(heap_base, *tid, *size, addr, predicted_hit);
                    }
                    Err(AllocError::OutOfMemory { .. }) => {
                        prop_assert!(
                            !predicted_hit,
                            "a predicted frontend hit cannot run out of memory"
                        );
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            }
            Op::FreeLive { victim } => {
                if oracle.live.is_empty() {
                    continue;
                }
                let addr = *oracle
                    .live
                    .keys()
                    .nth(victim % oracle.live.len())
                    .expect("nonempty");
                let mut ctx = dpu.ctx(0);
                prop_assert_eq!(
                    pm.pim_free(&mut ctx, addr),
                    Ok(()),
                    "live free must succeed"
                );
                oracle.on_free(heap_base, addr);
            }
            Op::FreeJunk { addr } => {
                if oracle.live.contains_key(addr) {
                    continue; // landed on a live allocation by chance
                }
                let mut ctx = dpu.ctx(0);
                prop_assert_eq!(
                    pm.pim_free(&mut ctx, *addr),
                    Err(AllocError::InvalidFree { addr: *addr }),
                    "junk free must be rejected without state change"
                );
            }
        }
        // The frame table must agree with the oracle after every op.
        let s = pm.alloc_stats();
        // The middle tier re-classifies some cache hits as
        // transfer/central hits; the oracle tracks their union.
        prop_assert_eq!(
            s.frontend_hits + s.transfer_hits + s.central_hits,
            oracle.hits
        );
        prop_assert_eq!(s.frontend_refills, oracle.refills);
        prop_assert_eq!(s.bypass, oracle.bypass);
        prop_assert_eq!(s.frees_frontend, oracle.frees_frontend);
        prop_assert_eq!(s.frees_backend, oracle.frees_backend);
        prop_assert_eq!(pm.live_allocations(), oracle.live.len());
        prop_assert_eq!(pm.frag().requested_live(), oracle.requested);
        prop_assert_eq!(pm.frag().reserved_live(), oracle.reserved);
    }

    // Drain everything: every oracle-live address must free cleanly.
    let remaining: Vec<u32> = oracle.live.keys().copied().collect();
    for addr in remaining {
        let mut ctx = dpu.ctx(0);
        prop_assert_eq!(pm.pim_free(&mut ctx, addr), Ok(()));
        oracle.on_free(heap_base, addr);
    }
    prop_assert_eq!(pm.live_allocations(), 0);
    prop_assert_eq!(pm.frag().requested_live(), 0);
    pm.backend().check_invariants();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frame_routing_matches_oracle_eager(
        ops in proptest::collection::vec(op_strategy(4), 1..160)
    ) {
        run_differential(4, true, &ops)?;
    }

    #[test]
    fn frame_routing_matches_oracle_lazy(
        ops in proptest::collection::vec(op_strategy(2), 1..160)
    ) {
        run_differential(2, false, &ops)?;
    }

    #[test]
    fn frame_routing_matches_oracle_sixteen_tasklets(
        ops in proptest::collection::vec(op_strategy(16), 1..200)
    ) {
        run_differential(16, true, &ops)?;
    }
}
