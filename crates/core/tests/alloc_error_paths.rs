//! Property coverage of the allocator's *error* paths: hostile frees —
//! double frees, garbage addresses, out-of-region and interior
//! pointers — must always come back as `Err`, never as a panic, and
//! must never corrupt the frame table's accounting of the allocations
//! that are actually live. The same holds under the quarantine path:
//! once the invalid-free budget is exhausted the allocator seals
//! itself with [`AllocError::Quarantined`] instead of touching heap
//! metadata again.

use std::collections::BTreeSet;

use pim_malloc::{AllocError, AllocGeometry, PimAllocator, PimMalloc, RegionMap};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

const HEAP_BASE: u32 = 0x0200_0000;
const HEAP_SIZE: u32 = 1 << 20;

fn fresh(tasklets: usize, quarantine: Option<u32>) -> (DpuSim, PimMalloc) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
    let mut geom = AllocGeometry::sw(tasklets).with_heap_size(HEAP_SIZE);
    if let Some(budget) = quarantine {
        geom = geom.with_quarantine(budget);
    }
    let pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");
    (dpu, pm)
}

/// Addresses that must never route: outside the heap, misaligned,
/// interior to blocks, or plain garbage.
fn hostile_addr() -> impl Strategy<Value = u32> {
    prop_oneof![
        // Below the heap.
        0u32..HEAP_BASE,
        // Above the heap.
        (HEAP_BASE + HEAP_SIZE)..u32::MAX,
        // Inside the heap but odd (every real block is 8-aligned).
        (HEAP_BASE..HEAP_BASE + HEAP_SIZE).prop_map(|a| a | 1),
        // Anything at all.
        any::<u32>(),
    ]
}

proptest! {
    /// A bare [`RegionMap`] rejects every free of an address it was
    /// never told about — no panic, no phantom live allocation.
    #[test]
    fn region_map_rejects_unknown_addresses(addrs in proptest::collection::vec(hostile_addr(), 1..64)) {
        let mut map = RegionMap::new(HEAP_BASE, HEAP_SIZE, 4096);
        for addr in addrs {
            prop_assert_eq!(map.take_route(addr), Err(AllocError::InvalidFree { addr }));
        }
        prop_assert_eq!(map.live_allocations(), 0);
    }

    /// A [`RegionMap`] with live allocations still rejects hostile
    /// frees *and* keeps routing the real ones: the frame table is not
    /// corrupted by the garbage in between.
    #[test]
    fn region_map_survives_interleaved_garbage(
        garbage in proptest::collection::vec(any::<u32>(), 1..48),
        kill_order in any::<u64>(),
    ) {
        let mut map = RegionMap::new(HEAP_BASE, HEAP_SIZE, 4096);
        // Three real backend allocations on block boundaries.
        let live: Vec<u32> = (0..3).map(|i| HEAP_BASE + i * 8192).collect();
        for &addr in &live {
            map.note_backend_alloc(addr, 8192, 100);
        }
        let live_set: BTreeSet<u32> = live.iter().copied().collect();
        for addr in garbage {
            if live_set.contains(&addr) {
                continue;
            }
            prop_assert_eq!(map.take_route(addr), Err(AllocError::InvalidFree { addr }));
        }
        prop_assert_eq!(map.live_allocations(), 3);
        // Real frees still route, in an arbitrary order; a second free
        // of the same address is a caught double free.
        let mut order = live.clone();
        order.rotate_left((kill_order % 3) as usize);
        for &addr in &order {
            prop_assert!(map.take_route(addr).is_ok(), "live {addr:#x} must route");
            prop_assert_eq!(map.take_route(addr), Err(AllocError::InvalidFree { addr }));
        }
        prop_assert_eq!(map.live_allocations(), 0);
    }

    /// Full-allocator property: interleaving valid traffic with
    /// hostile frees only ever produces `Err` results — and the valid
    /// traffic is entirely unaffected by them.
    #[test]
    fn hostile_frees_never_panic_or_leak_into_live_state(
        sizes in proptest::collection::vec(1u32..4096, 4..24),
        junk in proptest::collection::vec(hostile_addr(), 4..24),
    ) {
        let (mut dpu, mut pm) = fresh(1, None);
        let mut ctx = dpu.ctx(0);
        let mut live: Vec<u32> = Vec::new();
        let mut junk_seen = 0u32;
        for (i, &size) in sizes.iter().enumerate() {
            live.push(pm.pim_malloc(&mut ctx, size).expect("light load cannot OOM"));
            if let Some(&addr) = junk.get(i) {
                // A junk address can collide with a live block base by
                // construction; skip those rare draws.
                if live.contains(&addr) {
                    continue;
                }
                let r = pm.pim_free(&mut ctx, addr);
                prop_assert_eq!(r, Err(AllocError::InvalidFree { addr }));
                junk_seen += 1;
            }
        }
        prop_assert_eq!(pm.live_allocations(), live.len());
        prop_assert_eq!(pm.invalid_frees(), junk_seen);
        prop_assert!(!pm.is_quarantined(), "no budget configured");
        // Every real allocation frees exactly once; the second attempt
        // is a caught double free.
        for &addr in &live {
            prop_assert!(pm.pim_free(&mut ctx, addr).is_ok());
            prop_assert_eq!(
                pm.pim_free(&mut ctx, addr),
                Err(AllocError::InvalidFree { addr })
            );
        }
        prop_assert_eq!(pm.live_allocations(), 0);
    }

    /// Quarantine property: with a budget of `n`, exactly the first
    /// `n` hostile frees are reported individually, the `n+1`-th seals
    /// the allocator, and everything after that — hostile or valid —
    /// returns [`AllocError::Quarantined`] without panicking.
    #[test]
    fn quarantine_seals_exactly_at_the_budget(
        budget in 0u32..6,
        extra in 1u32..5,
    ) {
        let (mut dpu, mut pm) = fresh(1, Some(budget));
        let mut ctx = dpu.ctx(0);
        let live = pm.pim_malloc(&mut ctx, 64).expect("alloc");
        for i in 0..budget {
            let addr = 0x0100_0000 + i; // below the heap: always invalid
            prop_assert_eq!(pm.pim_free(&mut ctx, addr), Err(AllocError::InvalidFree { addr }));
            prop_assert!(!pm.is_quarantined());
        }
        for i in 0..extra {
            let addr = 0x0110_0000 + i;
            let r = pm.pim_free(&mut ctx, addr);
            prop_assert!(
                matches!(r, Err(AllocError::Quarantined { .. })),
                "free past the budget must report quarantine, got {r:?}"
            );
            prop_assert!(pm.is_quarantined());
        }
        // Sealed: even valid operations are refused, and the frame
        // table still remembers the live allocation untouched.
        prop_assert!(matches!(
            pm.pim_malloc(&mut ctx, 64),
            Err(AllocError::Quarantined { .. })
        ));
        prop_assert!(matches!(
            pm.pim_free(&mut ctx, live),
            Err(AllocError::Quarantined { .. })
        ));
        prop_assert_eq!(pm.live_allocations(), 1);
    }
}
