//! Differential property coverage of the free-path hierarchy: the
//! three-tier allocator (transfer cache + central free list) must be a
//! pure *routing and pricing* overlay over the two-tier design. Under
//! any interleaving of allocations, local frees, and cross-tasklet
//! remote frees, both tiers must return identical addresses, identical
//! errors, and identical fragmentation accounting — only the simulated
//! cycle costs may differ, since that is the whole point of the middle
//! tier.

use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc, TierPolicy};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

const HEAP_SIZE: u32 = 1 << 20;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// `tid` allocates `size` bytes.
    Alloc { tid: usize, size: u32 },
    /// `tid` frees one of its own live allocations.
    LocalFree { tid: usize, victim: usize },
    /// `tid` frees one of `owner`'s live allocations (a remote free
    /// whenever `owner != tid` — the path the tiers disagree on).
    RemoteFree {
        tid: usize,
        owner: usize,
        victim: usize,
    },
}

fn op_strategy(n_tasklets: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..n_tasklets, 1u32..8192).prop_map(|(tid, size)| Op::Alloc { tid, size }),
        2 => (0..n_tasklets, any::<usize>())
            .prop_map(|(tid, victim)| Op::LocalFree { tid, victim }),
        2 => (0..n_tasklets, 0..n_tasklets, any::<usize>())
            .prop_map(|(tid, owner, victim)| Op::RemoteFree { tid, owner, victim }),
    ]
}

/// Everything a trial observes that must be tier-invariant.
#[derive(Debug, PartialEq)]
struct Observed {
    /// Per-op outcome: allocated address, freed address, or the error.
    outcomes: Vec<Result<u32, String>>,
    live_allocations: usize,
    requested_live: u64,
    reserved_live: u64,
    backend_free_bytes: u64,
}

fn run(policy: TierPolicy, n_tasklets: usize, ops: &[Op]) -> (Observed, u64, u64) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let mut geom = AllocGeometry::sw(n_tasklets).with_heap_size(HEAP_SIZE);
    if policy == TierPolicy::TwoTier {
        geom = geom.two_tier();
    }
    let mut pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");
    assert_eq!(pm.tier(), policy);

    // addr lists per owning tasklet, appended in allocation order, so
    // victim indices resolve identically across both runs as long as
    // the returned addresses match (which is the property under test).
    let mut live: Vec<Vec<u32>> = vec![Vec::new(); n_tasklets];
    let mut outcomes = Vec::with_capacity(ops.len());
    for op in ops {
        match *op {
            Op::Alloc { tid, size } => {
                let mut ctx = dpu.ctx(tid);
                match pm.pim_malloc(&mut ctx, size) {
                    Ok(addr) => {
                        live[tid].push(addr);
                        outcomes.push(Ok(addr));
                    }
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
            Op::LocalFree { tid, victim } => {
                if live[tid].is_empty() {
                    continue;
                }
                let idx = victim % live[tid].len();
                let addr = live[tid].swap_remove(idx);
                let mut ctx = dpu.ctx(tid);
                match pm.pim_free(&mut ctx, addr) {
                    Ok(()) => outcomes.push(Ok(addr)),
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
            Op::RemoteFree { tid, owner, victim } => {
                if live[owner].is_empty() {
                    continue;
                }
                let idx = victim % live[owner].len();
                let addr = live[owner].swap_remove(idx);
                let mut ctx = dpu.ctx(tid);
                match pm.pim_free(&mut ctx, addr) {
                    Ok(()) => outcomes.push(Ok(addr)),
                    Err(e) => outcomes.push(Err(e.to_string())),
                }
            }
        }
    }
    let remote_transfer = pm.alloc_stats().frees_remote_transfer;
    let remote_global = pm.alloc_stats().frees_remote_global;
    let observed = Observed {
        outcomes,
        live_allocations: pm.live_allocations(),
        requested_live: pm.frag().requested_live(),
        reserved_live: pm.frag().reserved_live(),
        backend_free_bytes: pm.backend().free_bytes(),
    };
    pm.backend().check_invariants();
    (observed, remote_transfer, remote_global)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Addresses, errors, and fragmentation accounting are identical
    /// across the two free-path hierarchies; remote frees route
    /// through the transfer cache on three-tier and the global lock on
    /// two-tier — never both.
    #[test]
    fn tiers_agree_on_everything_but_cycles(
        ops in proptest::collection::vec(op_strategy(4), 1..200)
    ) {
        let (three, t_remote_transfer, t_remote_global) =
            run(TierPolicy::ThreeTier, 4, &ops);
        let (two, s_remote_transfer, s_remote_global) =
            run(TierPolicy::TwoTier, 4, &ops);
        prop_assert_eq!(&three, &two);
        // Routing counters are exclusive per tier...
        prop_assert_eq!(t_remote_global, 0);
        prop_assert_eq!(s_remote_transfer, 0);
        // ...and agree on how many remote frees the run contained.
        prop_assert_eq!(t_remote_transfer, s_remote_global);
    }

    /// Same property at sixteen tasklets, where transfer rings see
    /// traffic from many distinct freers.
    #[test]
    fn tiers_agree_at_sixteen_tasklets(
        ops in proptest::collection::vec(op_strategy(16), 1..150)
    ) {
        let (three, ..) = run(TierPolicy::ThreeTier, 16, &ops);
        let (two, ..) = run(TierPolicy::TwoTier, 16, &ops);
        prop_assert_eq!(&three, &two);
    }
}

/// A deterministic drain: heavy cross-tasklet churn, then free
/// everything — both tiers must end with an empty heap and matching
/// backend capacity.
#[test]
fn full_drain_matches_across_tiers() {
    let run_drain = |policy: TierPolicy| -> (Vec<u32>, u64) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
        let mut geom = AllocGeometry::sw(4).with_heap_size(HEAP_SIZE);
        if policy == TierPolicy::TwoTier {
            geom = geom.two_tier();
        }
        let mut pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");
        let mut addrs = Vec::new();
        for round in 0..4usize {
            for tid in 0..4 {
                let mut ctx = dpu.ctx(tid);
                for i in 0..32 {
                    let size = [16u32, 100, 700, 2048][(i + round) % 4];
                    addrs.push(pm.pim_malloc(&mut ctx, size).unwrap());
                }
            }
            // Each tasklet frees the previous tasklet's allocations.
            let drained = std::mem::take(&mut addrs);
            for (i, addr) in drained.iter().enumerate() {
                let mut ctx = dpu.ctx((i / 32 + 1) % 4);
                pm.pim_free(&mut ctx, *addr).unwrap();
            }
        }
        assert_eq!(pm.live_allocations(), 0);
        assert_eq!(pm.frag().requested_live(), 0);
        pm.backend().check_invariants();
        (addrs, pm.backend().free_bytes())
    };
    let (a3, free3) = run_drain(TierPolicy::ThreeTier);
    let (a2, free2) = run_drain(TierPolicy::TwoTier);
    assert_eq!(a3, a2);
    assert_eq!(free3, free2);
}
