//! Property-based tests of the buddy allocator against a reference
//! free-list model.
//!
//! The reference implementation (`RefBuddy`) is the classic
//! free-list-per-level buddy allocator, configured with the *same
//! placement policy* as the tree traversal (leftmost eligible block —
//! buddy feasibility depends on placement history, so the policies
//! must match). With identical policies the two implementations must
//! return *identical addresses* and agree on every success/failure,
//! and the tree's structural invariants must hold after every
//! operation.

use std::collections::{BTreeMap, BTreeSet};

use pim_malloc::{AllocError, BuddyAllocator, BuddyGeometry, MetadataBackend};
use pim_sim::{DpuConfig, DpuSim};
use proptest::prelude::*;

/// Reference buddy allocator: free lists per level.
struct RefBuddy {
    geometry: BuddyGeometry,
    /// level -> set of free block addresses at that level.
    free: BTreeMap<u32, BTreeSet<u32>>,
    /// live addr -> level.
    live: BTreeMap<u32, u32>,
}

impl RefBuddy {
    fn new(geometry: BuddyGeometry) -> Self {
        let mut free = BTreeMap::new();
        free.insert(0, BTreeSet::from([geometry.heap_base()]));
        RefBuddy {
            geometry,
            free,
            live: BTreeMap::new(),
        }
    }

    fn alloc(&mut self, size: u32) -> Option<u32> {
        let block = self.geometry.block_for_size(size)?;
        let target = self.geometry.level_for_block(block);
        // Leftmost placement: among all free blocks at levels 0..=target,
        // take the one with the lowest base address (ties cannot occur —
        // free blocks are disjoint).
        let mut best: Option<(u32, u32)> = None; // (addr, level)
        for level in 0..=target {
            if let Some(&addr) = self.free.get(&level).and_then(|s| s.iter().next()) {
                if best.is_none_or(|(a, _)| addr < a) {
                    best = Some((addr, level));
                }
            }
        }
        let (addr, mut level) = best?;
        self.free.get_mut(&level).unwrap().remove(&addr);
        // Split down to the target level, pushing right halves.
        while level < target {
            level += 1;
            let half = self.geometry.block_size_at(level);
            self.free.entry(level).or_default().insert(addr + half);
        }
        self.live.insert(addr, target);
        Some(addr)
    }

    fn free_block(&mut self, addr: u32) -> bool {
        let Some(mut level) = self.live.remove(&addr) else {
            return false;
        };
        let mut addr = addr;
        // Merge with the buddy while it is free.
        loop {
            if level == 0 {
                break;
            }
            let size = self.geometry.block_size_at(level);
            let off = addr - self.geometry.heap_base();
            let buddy = self.geometry.heap_base() + (off ^ size);
            let set = self.free.entry(level).or_default();
            if set.remove(&buddy) {
                addr = addr.min(buddy);
                level -= 1;
            } else {
                break;
            }
        }
        self.free.entry(level).or_default().insert(addr);
        true
    }

    fn live_spans(&self) -> Vec<(u32, u32)> {
        self.live
            .iter()
            .map(|(&a, &l)| (a, self.geometry.block_size_at(l)))
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Alloc { size: u32 },
    Free { victim: usize },
}

fn op_strategy(max_size: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..max_size).prop_map(|size| Op::Alloc { size }),
        2 => any::<usize>().prop_map(|victim| Op::Free { victim }),
    ]
}

fn run_sequence(heap_size: u32, min_block: u32, ops: &[Op]) {
    let geometry = BuddyGeometry::new(0x1000, heap_size, min_block);
    let mut sys = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let mut tree = BuddyAllocator::new(geometry, MetadataBackend::coarse(&geometry, 0, 512));
    {
        let mut ctx = sys.ctx(0);
        tree.reset(&mut ctx);
    }
    let mut reference = RefBuddy::new(geometry);
    let mut live: Vec<u32> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc { size } => {
                let mut ctx = sys.ctx(0);
                let got = tree.alloc(&mut ctx, *size);
                let expect = reference.alloc(*size);
                match (got, expect) {
                    (Ok(addr), Some(ref_addr)) => {
                        assert_eq!(addr, ref_addr, "identical policies must place identically");
                        let block = geometry.block_for_size(*size).unwrap();
                        assert_eq!(
                            (addr - geometry.heap_base()) % block,
                            0,
                            "block at {addr:#x} not aligned to {block}"
                        );
                        assert!(geometry.contains(addr));
                        live.push(addr);
                    }
                    (Err(AllocError::OutOfMemory { .. }), None) => {}
                    (g, e) => panic!("feasibility mismatch: tree={g:?} reference={e:?}"),
                }
            }
            Op::Free { victim } => {
                if live.is_empty() {
                    continue;
                }
                let idx = victim % live.len();
                let addr = live.swap_remove(idx);
                let mut ctx = sys.ctx(0);
                tree.free(&mut ctx, addr).expect("live block frees cleanly");
                assert!(reference.free_block(addr), "reference lost a block");
            }
        }
        tree.check_invariants();
        // Disjointness of the reference's live spans (the tree allocator
        // chose possibly-different addresses but its invariant check
        // covers overlap structurally).
        let mut spans = reference.live_spans();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap in {spans:?}");
        }
        // Free-byte accounting agrees with the reference.
        let ref_live: u64 = spans.iter().map(|&(_, s)| u64::from(s)).sum();
        assert_eq!(tree.free_bytes(), u64::from(heap_size) - ref_live);
    }

    // Drain everything; the heap must coalesce back to one block.
    for addr in live.drain(..) {
        let mut ctx = sys.ctx(0);
        tree.free(&mut ctx, addr).unwrap();
        reference.free_block(addr);
    }
    tree.check_invariants();
    assert_eq!(tree.free_bytes(), u64::from(heap_size));
    let mut ctx = sys.ctx(0);
    let whole = tree.alloc(&mut ctx, heap_size);
    assert!(whole.is_ok(), "full coalescing must restore the root block");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_reference_feasibility_small_heap(
        ops in proptest::collection::vec(op_strategy(512), 1..120)
    ) {
        run_sequence(4096, 32, &ops);
    }

    #[test]
    fn tree_matches_reference_feasibility_medium_heap(
        ops in proptest::collection::vec(op_strategy(16 << 10), 1..80)
    ) {
        run_sequence(64 << 10, 64, &ops);
    }

    #[test]
    fn tree_matches_reference_with_tiny_min_block(
        ops in proptest::collection::vec(op_strategy(128), 1..100)
    ) {
        run_sequence(2048, 4, &ops);
    }
}

#[test]
fn exhaustive_pairs_of_sizes_roundtrip() {
    // Deterministic sweep: allocate two blocks of every size pair,
    // free in both orders, and require full coalescing each time.
    let geometry = BuddyGeometry::new(0, 8192, 32);
    for s1 in [32u32, 64, 100, 500, 2048, 4096] {
        for s2 in [32u32, 48, 1024, 4096] {
            for order in 0..2 {
                let mut sys = DpuSim::new(DpuConfig::default().with_tasklets(1));
                let mut tree =
                    BuddyAllocator::new(geometry, MetadataBackend::coarse(&geometry, 0, 512));
                let mut ctx = sys.ctx(0);
                tree.reset(&mut ctx);
                let a = tree.alloc(&mut ctx, s1).unwrap();
                let b = tree.alloc(&mut ctx, s2).unwrap();
                if order == 0 {
                    tree.free(&mut ctx, a).unwrap();
                    tree.free(&mut ctx, b).unwrap();
                } else {
                    tree.free(&mut ctx, b).unwrap();
                    tree.free(&mut ctx, a).unwrap();
                }
                assert_eq!(tree.free_bytes(), 8192, "sizes {s1}/{s2} order {order}");
                tree.check_invariants();
            }
        }
    }
}
