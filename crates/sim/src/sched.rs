//! Virtual-time scheduling over per-tasklet logical clocks.
//!
//! Workload drivers and trace replayers interleave per-tasklet streams
//! in **virtual-time order** — always advancing the tasklet with the
//! smallest logical clock — so mutex hand-offs and DMA queueing between
//! tasklets stay causally consistent. [`VirtualTimeQueue`] is that
//! scheduler; it lives in the simulator crate because both
//! `pim-workloads` (the request driver) and `pim-trace` (the trace
//! replayer) drive [`DpuSim`]s through it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::Cycles;
use crate::dpu::DpuSim;

/// A virtual-time scheduler over per-tasklet logical clocks.
///
/// Replaces the per-request `(0..n).min_by_key(clock)` linear scan with
/// a min-heap keyed on `(clock, tasklet id)`: selection is O(log n)
/// per request instead of O(n). Ties break on the smaller tasklet id,
/// exactly like the scan's first-minimum rule, so request interleavings
/// — and therefore every latency-ordering result — are byte-identical
/// to the scan's.
///
/// Usage: `pop` the next tasklet, execute one of its requests (which
/// advances only that tasklet's clock), then `push` it back while it
/// has requests left.
#[derive(Debug)]
pub struct VirtualTimeQueue {
    heap: BinaryHeap<Reverse<(Cycles, usize)>>,
}

impl VirtualTimeQueue {
    /// Creates a queue holding `tasklets`, each keyed at its current
    /// clock on `dpu`.
    pub fn new(dpu: &DpuSim, tasklets: impl IntoIterator<Item = usize>) -> Self {
        VirtualTimeQueue {
            heap: tasklets
                .into_iter()
                .map(|t| Reverse((dpu.clock(t), t)))
                .collect(),
        }
    }

    /// Removes and returns the queued tasklet with the smallest clock
    /// (smallest id on ties), or `None` when the queue is empty.
    ///
    /// Entries whose clock advanced since they were queued are lazily
    /// re-keyed at their current clock rather than trusted stale.
    pub fn pop(&mut self, dpu: &DpuSim) -> Option<usize> {
        while let Some(Reverse((queued_at, tid))) = self.heap.pop() {
            let now = dpu.clock(tid);
            if now == queued_at {
                return Some(tid);
            }
            self.heap.push(Reverse((now, tid)));
        }
        None
    }

    /// Re-queues `tid` at its current clock (call after executing one
    /// of its requests, while it has more).
    pub fn push(&mut self, dpu: &DpuSim, tid: usize) {
        self.heap.push(Reverse((dpu.clock(tid), tid)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::DpuConfig;

    #[test]
    fn queue_selection_is_identical_to_linear_scan() {
        // The heap scheduler must replicate the old
        // `(0..n).min_by_key(clock)` selection exactly, including
        // smallest-id tie-breaking, so latency orderings stay
        // byte-identical.
        let run = |use_queue: bool| -> Vec<usize> {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(6));
            // Uneven head start so clocks collide and diverge.
            dpu.ctx(4).instrs(2);
            let mut remaining = [3usize, 1, 4, 2, 3, 0];
            let mut order = Vec::new();
            if use_queue {
                let mut q = VirtualTimeQueue::new(&dpu, (0..6).filter(|&t| remaining[t] > 0));
                while let Some(tid) = q.pop(&dpu) {
                    order.push(tid);
                    dpu.ctx(tid).instrs((tid as u64 % 3) + 1);
                    remaining[tid] -= 1;
                    if remaining[tid] > 0 {
                        q.push(&dpu, tid);
                    }
                }
            } else {
                while let Some(tid) = (0..6)
                    .filter(|&t| remaining[t] > 0)
                    .min_by_key(|&t| dpu.clock(t))
                {
                    order.push(tid);
                    dpu.ctx(tid).instrs((tid as u64 % 3) + 1);
                    remaining[tid] -= 1;
                }
            }
            order
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn empty_queue_pops_none() {
        let dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let mut q = VirtualTimeQueue::new(&dpu, std::iter::empty());
        assert!(q.pop(&dpu).is_none());
    }
}
