//! Virtual-time scheduling over per-tasklet logical clocks.
//!
//! Workload drivers and trace replayers interleave per-tasklet streams
//! in **virtual-time order** — always advancing the tasklet with the
//! smallest logical clock — so mutex hand-offs and DMA queueing between
//! tasklets stay causally consistent. [`VirtualTimeQueue`] is that
//! scheduler; it lives in the simulator crate because both
//! `pim-workloads` (the request driver) and `pim-trace` (the trace
//! replayer) drive [`DpuSim`]s through it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::Cycles;
use crate::dpu::DpuSim;

/// A virtual-time scheduler over per-tasklet logical clocks.
///
/// Replaces the per-request `(0..n).min_by_key(clock)` linear scan with
/// a min-heap keyed on `(clock, tasklet id)`: selection is O(log n)
/// per request instead of O(n). Ties break on the smaller tasklet id,
/// exactly like the scan's first-minimum rule, so request interleavings
/// — and therefore every latency-ordering result — are byte-identical
/// to the scan's.
///
/// Usage: `pop` the next tasklet, execute one of its requests (which
/// advances only that tasklet's clock), then `push` it back while it
/// has requests left.
#[derive(Debug)]
pub struct VirtualTimeQueue {
    heap: BinaryHeap<Reverse<(Cycles, usize)>>,
}

impl VirtualTimeQueue {
    /// Creates a queue holding `tasklets`, each keyed at its current
    /// clock on `dpu`.
    pub fn new(dpu: &DpuSim, tasklets: impl IntoIterator<Item = usize>) -> Self {
        VirtualTimeQueue {
            heap: tasklets
                .into_iter()
                .map(|t| Reverse((dpu.clock(t), t)))
                .collect(),
        }
    }

    /// Removes and returns the queued tasklet with the smallest clock
    /// (smallest id on ties), or `None` when the queue is empty.
    ///
    /// Entries whose clock advanced since they were queued are lazily
    /// re-keyed at their current clock rather than trusted stale.
    pub fn pop(&mut self, dpu: &DpuSim) -> Option<usize> {
        while let Some(Reverse((queued_at, tid))) = self.heap.pop() {
            let now = dpu.clock(tid);
            if now == queued_at {
                return Some(tid);
            }
            self.heap.push(Reverse((now, tid)));
        }
        None
    }

    /// Re-queues `tid` at its current clock (call after executing one
    /// of its requests, while it has more).
    pub fn push(&mut self, dpu: &DpuSim, tid: usize) {
        self.heap.push(Reverse((dpu.clock(tid), tid)));
    }
}

/// A deterministic discrete-event queue over an arbitrary virtual
/// timeline: events pop in ascending time order, ties breaking on
/// insertion order (FIFO), so two runs that push the same events pop
/// them in the same order regardless of heap internals.
///
/// [`VirtualTimeQueue`] schedules *tasklets by their clocks*; this
/// queue schedules *arbitrary payloads at explicit times* — arrivals,
/// dispatches, and completions in the serving frontend's event loop.
///
/// ```
/// use pim_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(20, "late");
/// q.push(10, "early");
/// q.push(10, "early-tie");
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-tie")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Event<T> {
    at: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    /// Max-heap order inverted: the smallest `(at, seq)` is the
    /// greatest element, so `BinaryHeap::pop` yields earliest-first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `at`.
    pub fn push(&mut self, at: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    /// Removes and returns the earliest event as `(time, payload)`;
    /// equal times pop in insertion order.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The earliest scheduled time, if any event is pending.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::DpuConfig;

    #[test]
    fn queue_selection_is_identical_to_linear_scan() {
        // The heap scheduler must replicate the old
        // `(0..n).min_by_key(clock)` selection exactly, including
        // smallest-id tie-breaking, so latency orderings stay
        // byte-identical.
        let run = |use_queue: bool| -> Vec<usize> {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(6));
            // Uneven head start so clocks collide and diverge.
            dpu.ctx(4).instrs(2);
            let mut remaining = [3usize, 1, 4, 2, 3, 0];
            let mut order = Vec::new();
            if use_queue {
                let mut q = VirtualTimeQueue::new(&dpu, (0..6).filter(|&t| remaining[t] > 0));
                while let Some(tid) = q.pop(&dpu) {
                    order.push(tid);
                    dpu.ctx(tid).instrs((tid as u64 % 3) + 1);
                    remaining[tid] -= 1;
                    if remaining[tid] > 0 {
                        q.push(&dpu, tid);
                    }
                }
            } else {
                while let Some(tid) = (0..6)
                    .filter(|&t| remaining[t] > 0)
                    .min_by_key(|&t| dpu.clock(t))
                {
                    order.push(tid);
                    dpu.ctx(tid).instrs((tid as u64 % 3) + 1);
                    remaining[tid] -= 1;
                }
            }
            order
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn empty_queue_pops_none() {
        let dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let mut q = VirtualTimeQueue::new(&dpu, std::iter::empty());
        assert!(q.pop(&dpu).is_none());
    }

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(30, 'c');
        q.push(10, 'a');
        q.push(20, 'b');
        q.push(10, 'd'); // same time as 'a', inserted later
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((10, 'd')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn event_queue_interleaves_pushes_and_pops_deterministically() {
        let mut q = EventQueue::default();
        q.push(5, 0);
        q.push(1, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(3, 2);
        q.push(3, 3);
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 0)));
    }
}
