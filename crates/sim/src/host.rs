//! Analytic model of the host CPU and the host↔PIM data path.
//!
//! The design-space exploration of the paper (Table I / Figure 6) pits
//! *where metadata lives* against *which processor runs the allocator*.
//! Reproducing it needs three host-side cost terms:
//!
//! 1. **Parallel-for dispatch** — UPMEM's reference flow parallelizes
//!    per-DPU allocator work with `pthreads`; spawning and joining one
//!    worker per DPU costs microseconds *per worker, serially in the
//!    parent*, which is what makes "Host-Executed" strategies scale
//!    poorly beyond a few dozen DPUs.
//! 2. **Host compute** — the buddy traversal itself, dominated on the
//!    host by last-level-cache misses over thousands of distinct
//!    per-DPU metadata sets.
//! 3. **Host↔PIM transfers** — `dpu_push_xfer`-style batched copies.
//!    Ranks move data in parallel, but the shared memory channel caps
//!    aggregate bandwidth, so broadcasting distinct per-DPU buffers
//!    scales linearly in total bytes beyond a couple of ranks.
//!
//! All results are in **seconds** (host-side wall clock), unlike the
//! DPU model which works in cycles.

use serde::{Deserialize, Serialize};

/// Direction of a host↔PIM transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferDirection {
    /// Host DRAM → PIM MRAM (`dpu_push_xfer(..., DPU_XFER_TO_DPU)`).
    HostToPim,
    /// PIM MRAM → host DRAM (`dpu_push_xfer(..., DPU_XFER_FROM_DPU)`).
    PimToHost,
}

/// Bandwidth/latency model of the host↔PIM data path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed software overhead per transfer call, in microseconds
    /// (runtime entry, rank programming, cache maintenance).
    pub base_us_per_call: f64,
    /// Sustained bandwidth of one rank's data path, GB/s.
    pub rank_bw_gbps: f64,
    /// Aggregate bandwidth cap of the shared memory channel, GB/s.
    pub channel_bw_gbps: f64,
    /// DPUs per rank (64 on UPMEM DIMMs).
    pub dpus_per_rank: usize,
    /// Channel-arbitration overhead per *additional* concurrent rank
    /// shard, microseconds: every shard beyond the first interleaves
    /// its bursts with the others on the shared channel and pays
    /// re-arbitration for the privilege.
    pub channel_arb_us: f64,
    /// Host-side cost to migrate one DPU's simulation state across
    /// NUMA nodes, microseconds: the remote-socket cache refill a
    /// worker pays when it re-simulates a DPU whose `DpuSim` memory
    /// was last touched on the other node. Charged per cold start and
    /// per cross-node move by
    /// [`crate::exec::EpochReport::placement_penalty_secs`] — this is
    /// what makes placement quality observable in *simulated* results
    /// rather than only in wall clock.
    pub cross_node_us: f64,
}

impl TransferModel {
    /// Seconds to move `bytes_per_dpu` bytes to or from each of
    /// `n_dpus` DPUs in one batched transfer call.
    ///
    /// DPUs fill ranks in order; a rank's DPUs serialize on its data
    /// path while ranks proceed in parallel, all capped by the shared
    /// memory channel. The time is therefore the larger of the fullest
    /// rank's serial time and the channel-limited aggregate time.
    ///
    /// ```
    /// use pim_sim::TransferModel;
    /// let t = TransferModel::default();
    /// let one = t.transfer_secs(1, 4096);
    /// let many = t.transfer_secs(512, 4096);
    /// assert!(many > one * 10.0, "distinct per-DPU data scales with DPU count");
    /// ```
    pub fn transfer_secs(&self, n_dpus: usize, bytes_per_dpu: u64) -> f64 {
        if n_dpus == 0 || bytes_per_dpu == 0 {
            return 0.0;
        }
        let fullest_rank_dpus = n_dpus.min(self.dpus_per_rank) as u64;
        let rank_secs = (fullest_rank_dpus * bytes_per_dpu) as f64 / (self.rank_bw_gbps * 1e9);
        let total_bytes = n_dpus as u64 * bytes_per_dpu;
        let channel_secs = total_bytes as f64 / (self.channel_bw_gbps * 1e9);
        self.base_us_per_call * 1e-6 + rank_secs.max(channel_secs)
    }

    /// Seconds for a [`TransferPlan`] issued as **one call per DPU
    /// buffer**: each non-empty buffer pays the fixed per-call
    /// overhead, calls issue serially in the host thread, and only one
    /// rank data path is ever active (so the shared channel never
    /// binds — a single rank cannot saturate it).
    pub fn per_dpu_transfer_secs(&self, plan: &crate::xfer::TransferPlan) -> f64 {
        let mut secs = 0.0;
        for &(_, bytes) in plan.entries() {
            if bytes > 0 {
                secs += self.base_us_per_call * 1e-6 + bytes as f64 / (self.rank_bw_gbps * 1e9);
            }
        }
        secs
    }

    /// Number of distinct ranks a plan's non-empty buffers land on —
    /// the calls a rank-sharded schedule issues.
    pub fn shard_count(&self, plan: &crate::xfer::TransferPlan) -> usize {
        self.rank_loads(plan).len()
    }

    /// Seconds for a [`TransferPlan`] issued as **one batched call per
    /// occupied rank** (`dpu_push_xfer` style): the fixed per-call
    /// overhead is paid once per shard (serially, in the dispatching
    /// host thread), the rank data paths then proceed in parallel
    /// capped by the shared channel, and every shard beyond the first
    /// pays [`TransferModel::channel_arb_us`] of channel arbitration.
    ///
    /// This is the *raw* sharded price; [`crate::ShardedXfer`] compares
    /// it against [`TransferModel::per_dpu_transfer_secs`] and falls
    /// back when sharding cannot win.
    pub fn batched_transfer_secs(&self, plan: &crate::xfer::TransferPlan) -> f64 {
        self.batched_secs_from_loads(&self.rank_loads(plan))
    }

    /// [`TransferModel::batched_transfer_secs`] over already-grouped
    /// rank loads, so planners that need the loads anyway don't group
    /// twice.
    pub(crate) fn batched_secs_from_loads(&self, loads: &[(usize, u64)]) -> f64 {
        if loads.is_empty() {
            return 0.0;
        }
        let shards = loads.len() as f64;
        let fullest: u64 = loads.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let total: u64 = loads.iter().map(|&(_, b)| b).sum();
        let rank_secs = fullest as f64 / (self.rank_bw_gbps * 1e9);
        let channel_secs = total as f64 / (self.channel_bw_gbps * 1e9);
        let overhead =
            (shards * self.base_us_per_call + (shards - 1.0) * self.channel_arb_us) * 1e-6;
        overhead + rank_secs.max(channel_secs)
    }

    /// `(rank, bytes)` for every rank with a non-empty buffer, rank
    /// order.
    pub(crate) fn rank_loads(&self, plan: &crate::xfer::TransferPlan) -> Vec<(usize, u64)> {
        assert!(self.dpus_per_rank > 0, "a rank holds at least one DPU");
        let mut loads: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
        for &(dpu, bytes) in plan.entries() {
            if bytes > 0 {
                *loads.entry(dpu / self.dpus_per_rank).or_insert(0) += bytes;
            }
        }
        loads.into_iter().collect()
    }
}

impl Default for TransferModel {
    /// Calibrated against UPMEM transfer measurements (Lee et al., CAL
    /// 2024): ~0.8 GB/s per rank, ~2.5 GB/s channel cap, tens of
    /// microseconds of fixed overhead per batched call. The cross-node
    /// term is a few microseconds — the remote-socket cache refill of
    /// one DPU's working set on a two-socket Xeon host.
    fn default() -> Self {
        TransferModel {
            base_us_per_call: 25.0,
            rank_bw_gbps: 0.8,
            channel_bw_gbps: 2.5,
            dpus_per_rank: 64,
            channel_arb_us: 3.0,
            cross_node_us: 5.0,
        }
    }
}

/// Configuration of the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Hardware threads usable by a parallel-for (Xeon Gold 5222:
    /// 4 cores / 8 threads).
    pub threads: usize,
    /// Cost to spawn-and-join one pthread worker, microseconds,
    /// paid serially in the dispatching thread.
    pub thread_spawn_us: f64,
    /// Cost of one metadata access that misses to DRAM, nanoseconds.
    pub dram_access_ns: f64,
    /// Cost of one metadata access that hits in cache, nanoseconds.
    pub cached_access_ns: f64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            threads: 8,
            thread_spawn_us: 12.0,
            dram_access_ns: 90.0,
            cached_access_ns: 2.0,
        }
    }
}

/// The host CPU: executes allocator work on behalf of DPUs and issues
/// host↔PIM transfers, accumulating seconds of wall-clock time split
/// into compute and transfer.
#[derive(Debug, Clone)]
pub struct HostSim {
    config: HostConfig,
    transfer_model: TransferModel,
    compute_secs: f64,
    transfer_secs: f64,
    bytes_moved: u64,
    transfer_calls: u64,
}

impl HostSim {
    /// Creates a host with the given CPU and transfer models.
    pub fn new(config: HostConfig, transfer_model: TransferModel) -> Self {
        HostSim {
            config,
            transfer_model,
            compute_secs: 0.0,
            transfer_secs: 0.0,
            bytes_moved: 0,
            transfer_calls: 0,
        }
    }

    /// The host CPU configuration.
    pub fn config(&self) -> HostConfig {
        self.config
    }

    /// The transfer model in use.
    pub fn transfer_model(&self) -> TransferModel {
        self.transfer_model
    }

    /// Runs a parallel-for of `n_workers` independent tasks, each
    /// performing `accesses_per_worker` metadata accesses of which
    /// `miss_fraction` go to DRAM. Returns the elapsed seconds (also
    /// accumulated into [`HostSim::compute_secs`]).
    ///
    /// Model: spawning is serial in the parent
    /// (`n_workers × thread_spawn_us`); the work itself runs with
    /// `min(threads, n_workers)`-way parallelism.
    pub fn parallel_for(
        &mut self,
        n_workers: usize,
        accesses_per_worker: u64,
        miss_fraction: f64,
    ) -> f64 {
        assert!(
            (0.0..=1.0).contains(&miss_fraction),
            "miss fraction must be in [0, 1]"
        );
        if n_workers == 0 {
            return 0.0;
        }
        let spawn = n_workers as f64 * self.config.thread_spawn_us * 1e-6;
        let per_access_ns = miss_fraction * self.config.dram_access_ns
            + (1.0 - miss_fraction) * self.config.cached_access_ns;
        let per_worker = accesses_per_worker as f64 * per_access_ns * 1e-9;
        let lanes = self.config.threads.min(n_workers) as f64;
        let work = per_worker * (n_workers as f64 / lanes).ceil();
        let elapsed = spawn + work;
        self.compute_secs += elapsed;
        elapsed
    }

    /// Issues one batched transfer of `bytes_per_dpu` to/from each of
    /// `n_dpus` DPUs. Returns elapsed seconds.
    ///
    /// Legacy single-call accounting (the whole set in one ideal
    /// batched call); new call sites should describe their traffic as
    /// a [`crate::TransferPlan`] and use [`HostSim::transfer_plan`],
    /// which schedules it under a [`crate::HostBatching`] policy.
    pub fn transfer(
        &mut self,
        _direction: TransferDirection,
        n_dpus: usize,
        bytes_per_dpu: u64,
    ) -> f64 {
        let elapsed = self.transfer_model.transfer_secs(n_dpus, bytes_per_dpu);
        self.transfer_secs += elapsed;
        self.bytes_moved += n_dpus as u64 * bytes_per_dpu;
        self.transfer_calls += 1;
        elapsed
    }

    /// Executes a [`crate::TransferPlan`] under `policy`, accumulating
    /// the modeled seconds, bytes, and the *actual* number of transfer
    /// calls the chosen schedule issues (one per non-empty buffer for
    /// per-DPU, one per occupied rank for sharded). Returns the
    /// planner's estimate.
    pub fn transfer_plan(
        &mut self,
        plan: &crate::xfer::TransferPlan,
        policy: crate::xfer::HostBatching,
    ) -> crate::xfer::XferEstimate {
        let estimate = crate::xfer::ShardedXfer::new(self.transfer_model, policy).estimate(plan);
        self.transfer_secs += estimate.secs;
        self.bytes_moved += estimate.bytes;
        self.transfer_calls += estimate.calls;
        estimate
    }

    /// Seconds spent in host compute so far.
    pub fn compute_secs(&self) -> f64 {
        self.compute_secs
    }

    /// Seconds spent in host↔PIM transfers so far.
    pub fn transfer_secs(&self) -> f64 {
        self.transfer_secs
    }

    /// Total host-side wall clock (compute + transfer).
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.transfer_secs
    }

    /// Total bytes moved across the host↔PIM boundary.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfer calls issued.
    pub fn transfer_calls(&self) -> u64 {
        self.transfer_calls
    }

    /// Resets all accumulated time and traffic.
    pub fn reset(&mut self) {
        self.compute_secs = 0.0;
        self.transfer_secs = 0.0;
        self.bytes_moved = 0;
        self.transfer_calls = 0;
    }
}

impl Default for HostSim {
    fn default() -> Self {
        HostSim::new(HostConfig::default(), TransferModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_total_bytes_beyond_channel_cap() {
        let t = TransferModel::default();
        // 512 DPUs = 8 ranks, well past the channel cap, so doubling the
        // DPU count roughly doubles the time.
        let a = t.transfer_secs(256, 1 << 20);
        let b = t.transfer_secs(512, 1 << 20);
        assert!(b / a > 1.8 && b / a < 2.2, "ratio was {}", b / a);
    }

    #[test]
    fn single_rank_uses_rank_bandwidth() {
        let t = TransferModel::default();
        let secs = t.transfer_secs(1, 800_000_000);
        // 0.8 GB at 0.8 GB/s ≈ 1 s.
        assert!((secs - 1.0).abs() < 0.01, "secs = {secs}");
    }

    #[test]
    fn zero_transfer_is_free() {
        let t = TransferModel::default();
        assert_eq!(t.transfer_secs(0, 100), 0.0);
        assert_eq!(t.transfer_secs(10, 0), 0.0);
    }

    #[test]
    fn base_overhead_dominates_tiny_transfers() {
        let t = TransferModel::default();
        let secs = t.transfer_secs(1, 8);
        assert!(secs >= t.base_us_per_call * 1e-6);
        assert!(secs < t.base_us_per_call * 1e-6 * 1.5);
    }

    #[test]
    fn parallel_for_spawn_cost_is_serial() {
        let mut h = HostSim::default();
        let one = h.parallel_for(1, 0, 0.0);
        h.reset();
        let many = h.parallel_for(512, 0, 0.0);
        assert!((many / one - 512.0).abs() < 1.0, "ratio {}", many / one);
    }

    #[test]
    fn parallel_for_work_parallelizes_up_to_thread_count() {
        let cfg = HostConfig {
            thread_spawn_us: 0.0,
            ..HostConfig::default()
        };
        let mut h = HostSim::new(cfg, TransferModel::default());
        let t8 = h.parallel_for(8, 1_000_000, 1.0);
        h.reset();
        let t16 = h.parallel_for(16, 1_000_000, 1.0);
        // 16 workers on 8 threads take twice as long as 8 workers.
        assert!((t16 / t8 - 2.0).abs() < 0.01, "ratio {}", t16 / t8);
    }

    #[test]
    fn miss_fraction_interpolates_access_cost() {
        let cfg = HostConfig {
            thread_spawn_us: 0.0,
            ..HostConfig::default()
        };
        let mut h = HostSim::new(cfg, TransferModel::default());
        let hot = h.parallel_for(1, 1_000_000, 0.0);
        h.reset();
        let cold = h.parallel_for(1, 1_000_000, 1.0);
        assert!(
            cold > hot * 10.0,
            "DRAM misses must dominate: {cold} vs {hot}"
        );
    }

    #[test]
    #[should_panic(expected = "miss fraction")]
    fn bad_miss_fraction_panics() {
        HostSim::default().parallel_for(1, 1, 1.5);
    }

    #[test]
    fn transfer_plan_accounts_calls_by_schedule() {
        use crate::xfer::{HostBatching, TransferPlan};
        let plan = TransferPlan::uniform(TransferDirection::HostToPim, 128, 64);
        let mut h = HostSim::default();
        let e = h.transfer_plan(&plan, HostBatching::PerDpu);
        assert_eq!(e.calls, 128);
        assert_eq!(h.transfer_calls(), 128);
        assert_eq!(h.bytes_moved(), 128 * 64);
        h.reset();
        let e = h.transfer_plan(&plan, HostBatching::Sharded);
        assert_eq!(e.calls, 2, "128 DPUs = 2 ranks");
        assert_eq!(h.transfer_calls(), 2);
        assert!((h.transfer_secs() - e.secs).abs() < 1e-15);
    }

    #[test]
    fn accounting_accumulates_and_resets() {
        let mut h = HostSim::default();
        h.parallel_for(4, 100, 0.5);
        h.transfer(TransferDirection::HostToPim, 4, 1024);
        assert!(h.compute_secs() > 0.0);
        assert!(h.transfer_secs() > 0.0);
        assert_eq!(h.bytes_moved(), 4096);
        assert_eq!(h.transfer_calls(), 1);
        assert!((h.total_secs() - h.compute_secs() - h.transfer_secs()).abs() < 1e-15);
        h.reset();
        assert_eq!(h.total_secs(), 0.0);
        assert_eq!(h.bytes_moved(), 0);
    }
}
