//! The host-side co-processor programming model (Figure 5 of the
//! paper): allocate a set of DPUs, push data, launch SPMD kernels,
//! pull results — `dpu_alloc` / `pimMemcpy` / `pimLaunch` in UPMEM
//! terms, with every step's cost accounted on a host wall clock.
//!
//! ```
//! use pim_sim::{DpuConfig, DpuSet};
//!
//! let mut set = DpuSet::allocate(4, DpuConfig::default().with_tasklets(2));
//! set.push(64, |dpu_idx, mram| mram.write_u32(0, dpu_idx as u32));
//! set.launch(|_, dpu| {
//!     let mut ctx = dpu.ctx(0);
//!     ctx.instrs(100);
//! });
//! let mut results = vec![0u32; 4];
//! set.pull(4, |idx, mram| results[idx] = mram.read_u32(0));
//! assert_eq!(results, vec![0, 1, 2, 3]);
//! assert!(set.elapsed_secs() > 0.0);
//! ```

use crate::context::SimContext;
use crate::cost::Cycles;
use crate::dpu::{DpuConfig, DpuSim};
use crate::fault::FaultPlan;
use crate::host::{HostConfig, HostSim, TransferDirection, TransferModel};
use crate::xfer::{HostBatching, TransferPlan};

/// Fixed host-side overhead of one kernel launch, microseconds
/// (runtime entry + boot signal fan-out; UPMEM launches cost tens of
/// microseconds per rank).
const LAUNCH_US: f64 = 60.0;

/// A host-managed set of DPUs — the granularity at which UPMEM
/// programs transfer data and launch kernels.
#[derive(Debug)]
pub struct DpuSet {
    dpus: Vec<DpuSim>,
    host: HostSim,
    batching: HostBatching,
    faults: FaultPlan,
    elapsed_secs: f64,
    launches: u64,
}

impl DpuSet {
    /// Allocates `n` DPUs with identical configuration (`dpu_alloc`).
    /// Transfers default to rank-sharded batching
    /// ([`HostBatching::Sharded`]) — UPMEM's `dpu_push_xfer` path.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn allocate(n: usize, config: DpuConfig) -> Self {
        assert!(n > 0, "a DPU set needs at least one DPU");
        DpuSet {
            dpus: (0..n).map(|_| DpuSim::new(config.clone())).collect(),
            host: HostSim::new(HostConfig::default(), TransferModel::default()),
            batching: HostBatching::Sharded,
            faults: FaultPlan::none(),
            elapsed_secs: 0.0,
            launches: 0,
        }
    }

    /// Adopts a [`SimContext`]'s transfer model, batching policy, and
    /// fault schedule for subsequent pushes, pulls, and launches. With
    /// a fault plan set, dead DPUs are excluded from transfer plans
    /// and kernel launches ([`DpuSet::healthy`]).
    ///
    /// ```
    /// use pim_sim::{DpuConfig, DpuSet, HostBatching, SimContext};
    /// let ctx = SimContext::default().with_batching(HostBatching::PerDpu);
    /// let set = DpuSet::allocate(4, DpuConfig::default()).with_ctx(&ctx);
    /// assert_eq!(set.batching(), HostBatching::PerDpu);
    /// ```
    pub fn with_ctx(mut self, ctx: &SimContext) -> Self {
        self.batching = ctx.batching;
        self.host = HostSim::new(HostConfig::default(), ctx.transfer);
        self.faults = ctx.faults;
        self
    }

    /// The transfer scheduling policy in use.
    pub fn batching(&self) -> HostBatching {
        self.batching
    }

    /// The set's elapsed host clock in simulated nanoseconds — the
    /// timeline against which mid-run kills are evaluated.
    fn now_ns(&self) -> u64 {
        (self.elapsed_secs * 1e9) as u64
    }

    /// True if DPU `idx` is healthy right now under the set's fault
    /// plan (not dead on arrival, not yet killed). Always true without
    /// a fault plan.
    pub fn healthy(&self, idx: usize) -> bool {
        self.faults.healthy_at(idx, self.now_ns())
    }

    /// Number of currently healthy DPUs.
    pub fn healthy_count(&self) -> usize {
        let now = self.now_ns();
        (0..self.dpus.len())
            .filter(|&d| self.faults.healthy_at(d, now))
            .count()
    }

    /// Number of DPUs in the set.
    pub fn len(&self) -> usize {
        self.dpus.len()
    }

    /// True if the set is empty (never — `allocate` requires one).
    pub fn is_empty(&self) -> bool {
        self.dpus.is_empty()
    }

    /// Access one DPU (assertions, read-back).
    pub fn dpu(&self, idx: usize) -> &DpuSim {
        &self.dpus[idx]
    }

    /// Mutable access to one DPU.
    pub fn dpu_mut(&mut self, idx: usize) -> &mut DpuSim {
        &mut self.dpus[idx]
    }

    /// `pimMemcpy(HOST2PIM)`: writes `bytes_per_dpu` to every DPU's
    /// MRAM through `writer`, scheduled under the set's
    /// [`HostBatching`] policy (per-rank shards by default).
    /// Dead DPUs are excluded: their buffers never enter the plan and
    /// `writer` is not called for them.
    pub fn push(&mut self, bytes_per_dpu: u64, mut writer: impl FnMut(usize, &mut crate::Mram)) {
        let plan = self.uniform_plan(TransferDirection::HostToPim, bytes_per_dpu);
        self.elapsed_secs += self.host.transfer_plan(&plan, self.batching).secs;
        let now = self.now_ns();
        for (idx, dpu) in self.dpus.iter_mut().enumerate() {
            if self.faults.healthy_at(idx, now) {
                writer(idx, dpu.mram_mut());
            }
        }
    }

    /// `pimMemcpy(PIM2HOST)`: reads `bytes_per_dpu` from every DPU's
    /// MRAM through `reader`, scheduled under the set's
    /// [`HostBatching`] policy (per-rank shards by default).
    /// Dead DPUs are excluded: their buffers never enter the plan and
    /// `reader` is not called for them.
    pub fn pull(&mut self, bytes_per_dpu: u64, mut reader: impl FnMut(usize, &crate::Mram)) {
        let plan = self.uniform_plan(TransferDirection::PimToHost, bytes_per_dpu);
        self.elapsed_secs += self.host.transfer_plan(&plan, self.batching).secs;
        let now = self.now_ns();
        for (idx, dpu) in self.dpus.iter().enumerate() {
            if self.faults.healthy_at(idx, now) {
                reader(idx, dpu.mram());
            }
        }
    }

    /// A uniform plan over the currently healthy DPUs (all of them
    /// without a fault plan — byte-identical to the fault-free path).
    fn uniform_plan(&self, direction: TransferDirection, bytes_per_dpu: u64) -> TransferPlan {
        if !self.faults.enabled() {
            return TransferPlan::uniform(direction, self.dpus.len(), bytes_per_dpu);
        }
        let now = self.now_ns();
        let mut plan = TransferPlan::new(direction);
        for idx in 0..self.dpus.len() {
            if self.faults.healthy_at(idx, now) {
                plan.push(idx, bytes_per_dpu);
            }
        }
        plan
    }

    /// `pimLaunch`: runs `kernel` on every healthy DPU (SPMD) and waits
    /// for the slowest one. The host clock advances by the launch
    /// overhead plus the slowest DPU's virtual-time delta. Dead DPUs
    /// never boot, so the kernel is not invoked on them.
    pub fn launch(&mut self, mut kernel: impl FnMut(usize, &mut DpuSim)) {
        let mut slowest = Cycles::ZERO;
        let now = self.now_ns();
        for (idx, dpu) in self.dpus.iter_mut().enumerate() {
            if !self.faults.healthy_at(idx, now) {
                continue;
            }
            let before = dpu.max_clock();
            kernel(idx, dpu);
            slowest = slowest.max(dpu.max_clock() - before);
        }
        let mhz = self.dpus[0].config().cost.clock_mhz;
        self.elapsed_secs += LAUNCH_US * 1e-6 + slowest.as_secs(mhz);
        self.launches += 1;
    }

    /// Host wall-clock seconds accumulated across pushes, pulls, and
    /// launches.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total bytes moved across the host↔PIM boundary.
    pub fn bytes_moved(&self) -> u64 {
        self.host.bytes_moved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_launch_pull_roundtrip() {
        let mut set = DpuSet::allocate(8, DpuConfig::default().with_tasklets(2));
        set.push(8, |idx, mram| mram.write_u64(0, idx as u64 * 10));
        set.launch(|_, dpu| {
            let v = dpu.mram().read_u64(0);
            dpu.mram_mut().write_u64(8, v + 1);
            let mut ctx = dpu.ctx(0);
            ctx.instrs(50);
        });
        let mut out = vec![0u64; 8];
        set.pull(8, |idx, mram| out[idx] = mram.read_u64(8));
        assert_eq!(out, vec![1, 11, 21, 31, 41, 51, 61, 71]);
        assert_eq!(set.launches(), 1);
        assert_eq!(set.bytes_moved(), 2 * 8 * 8);
    }

    #[test]
    fn launch_waits_for_the_slowest_dpu() {
        let mut set = DpuSet::allocate(4, DpuConfig::default().with_tasklets(1));
        set.launch(|idx, dpu| {
            let mut ctx = dpu.ctx(0);
            ctx.instrs(100 * (idx as u64 + 1));
        });
        // 400 instructions at 11 cycles / 350 MHz dominates, plus the
        // launch overhead.
        let expected = 60.0e-6 + (400.0 * 11.0) / 350.0e6;
        assert!((set.elapsed_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn transfers_scale_with_set_size() {
        let mut small = DpuSet::allocate(1, DpuConfig::default());
        small.push(1 << 20, |_, _| {});
        let mut large = DpuSet::allocate(512, DpuConfig::default());
        large.push(1 << 20, |_, _| {});
        assert!(large.elapsed_secs() > small.elapsed_secs() * 10.0);
    }

    #[test]
    fn per_dpu_scheduling_pays_more_call_overhead() {
        let mut sharded = DpuSet::allocate(256, DpuConfig::default());
        sharded.push(8, |_, _| {});
        let ctx = SimContext::default().with_batching(HostBatching::PerDpu);
        let mut naive = DpuSet::allocate(256, DpuConfig::default()).with_ctx(&ctx);
        naive.push(8, |_, _| {});
        assert!(
            naive.elapsed_secs() > 10.0 * sharded.elapsed_secs(),
            "256 per-DPU base overheads vs 4 rank shards: {} vs {}",
            naive.elapsed_secs(),
            sharded.elapsed_secs()
        );
        assert_eq!(sharded.batching(), HostBatching::Sharded);
    }

    #[test]
    fn faulty_fleet_skips_dead_dpus() {
        let faults = FaultPlan {
            seed: 5,
            dead_frac: 0.25,
            ..FaultPlan::none()
        };
        let ctx = SimContext::default().with_faults(faults);
        let n = 64;
        let mut set = DpuSet::allocate(n, DpuConfig::default().with_tasklets(1)).with_ctx(&ctx);
        let dead: Vec<usize> = (0..n).filter(|&d| faults.dead_on_arrival(d)).collect();
        assert!(!dead.is_empty() && dead.len() < n);
        assert_eq!(set.healthy_count(), n - dead.len());

        let mut pushed = vec![false; n];
        set.push(8, |idx, mram| {
            pushed[idx] = true;
            mram.write_u64(0, 1);
        });
        let mut launched = vec![false; n];
        set.launch(|idx, dpu| {
            launched[idx] = true;
            let mut c = dpu.ctx(0);
            c.instrs(10);
        });
        let mut pulled = vec![false; n];
        set.pull(8, |idx, _| pulled[idx] = true);
        for d in 0..n {
            let alive = !faults.dead_on_arrival(d);
            assert_eq!(pushed[d], alive, "push visited dead DPU {d}");
            assert_eq!(launched[d], alive, "launch booted dead DPU {d}");
            assert_eq!(pulled[d], alive, "pull visited dead DPU {d}");
        }
        // Dead buffers left the transfer plan: fewer bytes moved.
        assert_eq!(set.bytes_moved(), 2 * 8 * (n - dead.len()) as u64);
    }

    #[test]
    fn fault_free_ctx_is_byte_identical_to_default() {
        let ctx = SimContext::default();
        let mut plain = DpuSet::allocate(16, DpuConfig::default());
        let mut faultless = DpuSet::allocate(16, DpuConfig::default()).with_ctx(&ctx);
        plain.push(128, |_, _| {});
        faultless.push(128, |_, _| {});
        assert_eq!(plain.elapsed_secs(), faultless.elapsed_secs());
        assert_eq!(plain.bytes_moved(), faultless.bytes_moved());
        assert_eq!(faultless.healthy_count(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one DPU")]
    fn empty_set_rejected() {
        DpuSet::allocate(0, DpuConfig::default());
    }
}
