//! The host-side co-processor programming model (Figure 5 of the
//! paper): allocate a set of DPUs, push data, launch SPMD kernels,
//! pull results — `dpu_alloc` / `pimMemcpy` / `pimLaunch` in UPMEM
//! terms, with every step's cost accounted on a host wall clock.
//!
//! ```
//! use pim_sim::{DpuConfig, DpuSet};
//!
//! let mut set = DpuSet::allocate(4, DpuConfig::default().with_tasklets(2));
//! set.push(64, |dpu_idx, mram| mram.write_u32(0, dpu_idx as u32));
//! set.launch(|_, dpu| {
//!     let mut ctx = dpu.ctx(0);
//!     ctx.instrs(100);
//! });
//! let mut results = vec![0u32; 4];
//! set.pull(4, |idx, mram| results[idx] = mram.read_u32(0));
//! assert_eq!(results, vec![0, 1, 2, 3]);
//! assert!(set.elapsed_secs() > 0.0);
//! ```

use crate::context::SimContext;
use crate::cost::Cycles;
use crate::dpu::{DpuConfig, DpuSim};
use crate::host::{HostConfig, HostSim, TransferDirection, TransferModel};
use crate::xfer::{HostBatching, TransferPlan};

/// Fixed host-side overhead of one kernel launch, microseconds
/// (runtime entry + boot signal fan-out; UPMEM launches cost tens of
/// microseconds per rank).
const LAUNCH_US: f64 = 60.0;

/// A host-managed set of DPUs — the granularity at which UPMEM
/// programs transfer data and launch kernels.
#[derive(Debug)]
pub struct DpuSet {
    dpus: Vec<DpuSim>,
    host: HostSim,
    batching: HostBatching,
    elapsed_secs: f64,
    launches: u64,
}

impl DpuSet {
    /// Allocates `n` DPUs with identical configuration (`dpu_alloc`).
    /// Transfers default to rank-sharded batching
    /// ([`HostBatching::Sharded`]) — UPMEM's `dpu_push_xfer` path.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn allocate(n: usize, config: DpuConfig) -> Self {
        assert!(n > 0, "a DPU set needs at least one DPU");
        DpuSet {
            dpus: (0..n).map(|_| DpuSim::new(config.clone())).collect(),
            host: HostSim::new(HostConfig::default(), TransferModel::default()),
            batching: HostBatching::Sharded,
            elapsed_secs: 0.0,
            launches: 0,
        }
    }

    /// Sets the transfer scheduling policy for subsequent pushes and
    /// pulls.
    #[deprecated(
        since = "0.6.0",
        note = "use `DpuSet::with_ctx(&SimContext)` — one context carries \
                the batching policy and the transfer model together"
    )]
    pub fn with_batching(mut self, batching: HostBatching) -> Self {
        self.batching = batching;
        self
    }

    /// Adopts a [`SimContext`]'s transfer model and batching policy for
    /// subsequent pushes and pulls.
    ///
    /// ```
    /// use pim_sim::{DpuConfig, DpuSet, HostBatching, SimContext};
    /// let ctx = SimContext::default().with_batching(HostBatching::PerDpu);
    /// let set = DpuSet::allocate(4, DpuConfig::default()).with_ctx(&ctx);
    /// assert_eq!(set.batching(), HostBatching::PerDpu);
    /// ```
    pub fn with_ctx(mut self, ctx: &SimContext) -> Self {
        self.batching = ctx.batching;
        self.host = HostSim::new(HostConfig::default(), ctx.transfer);
        self
    }

    /// The transfer scheduling policy in use.
    pub fn batching(&self) -> HostBatching {
        self.batching
    }

    /// Number of DPUs in the set.
    pub fn len(&self) -> usize {
        self.dpus.len()
    }

    /// True if the set is empty (never — `allocate` requires one).
    pub fn is_empty(&self) -> bool {
        self.dpus.is_empty()
    }

    /// Access one DPU (assertions, read-back).
    pub fn dpu(&self, idx: usize) -> &DpuSim {
        &self.dpus[idx]
    }

    /// Mutable access to one DPU.
    pub fn dpu_mut(&mut self, idx: usize) -> &mut DpuSim {
        &mut self.dpus[idx]
    }

    /// `pimMemcpy(HOST2PIM)`: writes `bytes_per_dpu` to every DPU's
    /// MRAM through `writer`, scheduled under the set's
    /// [`HostBatching`] policy (per-rank shards by default).
    pub fn push(&mut self, bytes_per_dpu: u64, mut writer: impl FnMut(usize, &mut crate::Mram)) {
        let plan =
            TransferPlan::uniform(TransferDirection::HostToPim, self.dpus.len(), bytes_per_dpu);
        self.elapsed_secs += self.host.transfer_plan(&plan, self.batching).secs;
        for (idx, dpu) in self.dpus.iter_mut().enumerate() {
            writer(idx, dpu.mram_mut());
        }
    }

    /// `pimMemcpy(PIM2HOST)`: reads `bytes_per_dpu` from every DPU's
    /// MRAM through `reader`, scheduled under the set's
    /// [`HostBatching`] policy (per-rank shards by default).
    pub fn pull(&mut self, bytes_per_dpu: u64, mut reader: impl FnMut(usize, &crate::Mram)) {
        let plan =
            TransferPlan::uniform(TransferDirection::PimToHost, self.dpus.len(), bytes_per_dpu);
        self.elapsed_secs += self.host.transfer_plan(&plan, self.batching).secs;
        for (idx, dpu) in self.dpus.iter().enumerate() {
            reader(idx, dpu.mram());
        }
    }

    /// `pimLaunch`: runs `kernel` on every DPU (SPMD) and waits for the
    /// slowest one. The host clock advances by the launch overhead plus
    /// the slowest DPU's virtual-time delta.
    pub fn launch(&mut self, mut kernel: impl FnMut(usize, &mut DpuSim)) {
        let mut slowest = Cycles::ZERO;
        for (idx, dpu) in self.dpus.iter_mut().enumerate() {
            let before = dpu.max_clock();
            kernel(idx, dpu);
            slowest = slowest.max(dpu.max_clock() - before);
        }
        let mhz = self.dpus[0].config().cost.clock_mhz;
        self.elapsed_secs += LAUNCH_US * 1e-6 + slowest.as_secs(mhz);
        self.launches += 1;
    }

    /// Host wall-clock seconds accumulated across pushes, pulls, and
    /// launches.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total bytes moved across the host↔PIM boundary.
    pub fn bytes_moved(&self) -> u64 {
        self.host.bytes_moved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_launch_pull_roundtrip() {
        let mut set = DpuSet::allocate(8, DpuConfig::default().with_tasklets(2));
        set.push(8, |idx, mram| mram.write_u64(0, idx as u64 * 10));
        set.launch(|_, dpu| {
            let v = dpu.mram().read_u64(0);
            dpu.mram_mut().write_u64(8, v + 1);
            let mut ctx = dpu.ctx(0);
            ctx.instrs(50);
        });
        let mut out = vec![0u64; 8];
        set.pull(8, |idx, mram| out[idx] = mram.read_u64(8));
        assert_eq!(out, vec![1, 11, 21, 31, 41, 51, 61, 71]);
        assert_eq!(set.launches(), 1);
        assert_eq!(set.bytes_moved(), 2 * 8 * 8);
    }

    #[test]
    fn launch_waits_for_the_slowest_dpu() {
        let mut set = DpuSet::allocate(4, DpuConfig::default().with_tasklets(1));
        set.launch(|idx, dpu| {
            let mut ctx = dpu.ctx(0);
            ctx.instrs(100 * (idx as u64 + 1));
        });
        // 400 instructions at 11 cycles / 350 MHz dominates, plus the
        // launch overhead.
        let expected = 60.0e-6 + (400.0 * 11.0) / 350.0e6;
        assert!((set.elapsed_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn transfers_scale_with_set_size() {
        let mut small = DpuSet::allocate(1, DpuConfig::default());
        small.push(1 << 20, |_, _| {});
        let mut large = DpuSet::allocate(512, DpuConfig::default());
        large.push(1 << 20, |_, _| {});
        assert!(large.elapsed_secs() > small.elapsed_secs() * 10.0);
    }

    #[test]
    fn per_dpu_scheduling_pays_more_call_overhead() {
        let mut sharded = DpuSet::allocate(256, DpuConfig::default());
        sharded.push(8, |_, _| {});
        let ctx = SimContext::default().with_batching(HostBatching::PerDpu);
        let mut naive = DpuSet::allocate(256, DpuConfig::default()).with_ctx(&ctx);
        naive.push(8, |_, _| {});
        assert!(
            naive.elapsed_secs() > 10.0 * sharded.elapsed_secs(),
            "256 per-DPU base overheads vs 4 rank shards: {} vs {}",
            naive.elapsed_secs(),
            sharded.elapsed_secs()
        );
        assert_eq!(sharded.batching(), HostBatching::Sharded);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_batching_matches_with_ctx() {
        let old = DpuSet::allocate(1, DpuConfig::default()).with_batching(HostBatching::PerDpu);
        let ctx = SimContext::default().with_batching(HostBatching::PerDpu);
        let new = DpuSet::allocate(1, DpuConfig::default()).with_ctx(&ctx);
        assert_eq!(old.batching(), new.batching());
    }

    #[test]
    #[should_panic(expected = "at least one DPU")]
    fn empty_set_rejected() {
        DpuSet::allocate(0, DpuConfig::default());
    }
}
