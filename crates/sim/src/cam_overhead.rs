//! Analytic area/power/timing model of the buddy cache CAM.
//!
//! The paper evaluates the buddy cache's implementation overhead with
//! CACTI 7.0 at a 32 nm logic node, then derates to a DRAM process
//! (≈10× less dense, ≈3× slower, per Devaux HotChips'19). CACTI itself
//! is a large C++ tool we cannot link; this module substitutes a
//! first-order analytic model with the standard technology-scaling
//! terms CACTI uses, calibrated to land in the same regime the paper
//! reports: ~0.02 mm², ~5 mW, sub-cycle access.

use serde::{Deserialize, Serialize};

use crate::buddy_cache::BuddyCacheConfig;

/// Technology and derating parameters for the CAM overhead model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CamOverheadModel {
    /// Logic process feature size in nanometres (paper: 32 nm).
    pub logic_node_nm: f64,
    /// Area of one CAM bit cell in square microns at the logic node.
    /// A CAM cell is roughly 2× a 6T SRAM cell (search transistors).
    pub cam_cell_um2: f64,
    /// Multiplier for peripheral circuitry (match lines, priority
    /// encoder, LRU state) over the raw bit-cell array.
    pub periphery_factor: f64,
    /// Density penalty of implementing logic on a DRAM process.
    pub dram_density_derate: f64,
    /// Speed penalty of implementing logic on a DRAM process.
    pub dram_speed_derate: f64,
    /// Dynamic energy per search, picojoules per bit at the logic node.
    pub search_pj_per_bit: f64,
    /// Static leakage per bit, microwatts.
    pub leakage_uw_per_bit: f64,
    /// Search latency of a small CAM at the logic node, nanoseconds.
    pub logic_search_ns: f64,
}

impl Default for CamOverheadModel {
    fn default() -> Self {
        CamOverheadModel {
            logic_node_nm: 32.0,
            cam_cell_um2: 0.75,
            periphery_factor: 2.4,
            dram_density_derate: 10.0,
            dram_speed_derate: 3.0,
            search_pj_per_bit: 0.015,
            leakage_uw_per_bit: 0.035,
            logic_search_ns: 0.25,
        }
    }
}

/// Computed overheads of one per-DPU buddy cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CamOverhead {
    /// Total storage bits (valid + tag + data per entry).
    pub bits: u64,
    /// Silicon area in mm², after DRAM-process derating.
    pub area_mm2: f64,
    /// Power at the given access rate, in milliwatts.
    pub power_mw: f64,
    /// Search access latency in nanoseconds, after derating.
    pub access_ns: f64,
    /// Access latency in DPU cycles at the given clock.
    pub access_cycles: f64,
}

impl CamOverheadModel {
    /// Bits stored per entry: 1 valid + 32 tag + 8·`bytes_per_entry` data,
    /// plus ⌈log₂ entries⌉ LRU state.
    fn bits_per_entry(&self, config: &BuddyCacheConfig) -> u64 {
        let lru_bits = (config.entries as f64).log2().ceil() as u64;
        1 + 32 + 8 * u64::from(config.bytes_per_entry) + lru_bits
    }

    /// Evaluates the model for a buddy cache configuration.
    ///
    /// `clock_mhz` is the DPU clock (350 MHz), `searches_per_cycle` the
    /// average activity factor used for dynamic power (1.0 = a search
    /// every cycle, the pessimistic bound).
    pub fn evaluate(
        &self,
        config: &BuddyCacheConfig,
        clock_mhz: u64,
        searches_per_cycle: f64,
    ) -> CamOverhead {
        let bits = config.entries as u64 * self.bits_per_entry(config);
        // Area: bit cells × periphery, scaled from the logic node to the
        // DRAM process.
        let cell_area_um2 = bits as f64 * self.cam_cell_um2 * self.periphery_factor;
        let area_mm2 = cell_area_um2 * 1e-6 * self.dram_density_derate;
        // Power: dynamic (search energy × rate) + leakage.
        let searches_per_sec = clock_mhz as f64 * 1e6 * searches_per_cycle;
        let dynamic_mw = bits as f64 * self.search_pj_per_bit * 1e-12 * searches_per_sec * 1e3;
        let leakage_mw = bits as f64 * self.leakage_uw_per_bit * 1e-3;
        // Latency: logic-node search latency × DRAM speed derate.
        let access_ns = self.logic_search_ns * self.dram_speed_derate;
        let cycle_ns = 1e3 / clock_mhz as f64;
        CamOverhead {
            bits,
            area_mm2,
            power_mw: dynamic_mw + leakage_mw,
            access_ns,
            access_cycles: access_ns / cycle_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_negligible_overhead() {
        // Paper (§VI-F): 0.019 mm², 5 mW, < 1 DPU cycle at 350 MHz.
        let o = CamOverheadModel::default().evaluate(&BuddyCacheConfig::default(), 350, 1.0);
        assert!(
            o.area_mm2 > 0.001 && o.area_mm2 < 0.05,
            "area {} mm2 out of the paper's regime",
            o.area_mm2
        );
        assert!(
            o.power_mw > 0.5 && o.power_mw < 20.0,
            "power {} mW out of the paper's regime",
            o.power_mw
        );
        assert!(
            o.access_cycles < 1.0,
            "access must fit in one 350 MHz cycle, got {} cycles",
            o.access_cycles
        );
    }

    #[test]
    fn area_scales_linearly_with_entries() {
        let m = CamOverheadModel::default();
        let small = m.evaluate(&BuddyCacheConfig::with_capacity_bytes(16), 350, 1.0);
        let large = m.evaluate(&BuddyCacheConfig::with_capacity_bytes(256), 350, 1.0);
        let ratio = large.area_mm2 / small.area_mm2;
        assert!(ratio > 10.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn bits_include_tag_valid_and_lru() {
        let m = CamOverheadModel::default();
        let o = m.evaluate(&BuddyCacheConfig::default(), 350, 1.0);
        // 16 entries × (1 + 32 + 32 + 4) = 16 × 69 = 1104 bits.
        assert_eq!(o.bits, 1104);
    }

    #[test]
    fn idle_cache_still_leaks() {
        let o = CamOverheadModel::default().evaluate(&BuddyCacheConfig::default(), 350, 0.0);
        assert!(o.power_mw > 0.0, "leakage must be nonzero");
    }

    #[test]
    fn dram_derates_apply() {
        let logic = CamOverheadModel {
            dram_density_derate: 1.0,
            dram_speed_derate: 1.0,
            ..CamOverheadModel::default()
        };
        let dram = CamOverheadModel::default();
        let c = BuddyCacheConfig::default();
        let lo = logic.evaluate(&c, 350, 1.0);
        let hi = dram.evaluate(&c, 350, 1.0);
        assert!((hi.area_mm2 / lo.area_mm2 - 10.0).abs() < 1e-9);
        assert!((hi.access_ns / lo.access_ns - 3.0).abs() < 1e-9);
    }
}
