//! A multi-DPU PIM system: N independent DPU banks plus a host.
//!
//! Bank-level PIM has no inter-DPU communication — each DPU owns its
//! bank and its own address space — so a [`PimSystem`] is simply a
//! collection of [`DpuSim`]s that run the same program on partitioned
//! data, plus a [`HostSim`] for orchestration and transfers. The
//! system-level finish time of a PIM kernel is the **max** over DPUs,
//! which is how all multi-DPU results in the paper are aggregated.
//!
//! ## Parallel execution
//!
//! Because DPUs share nothing, the host can simulate them on as many
//! OS threads as the machine offers without changing any result:
//! [`PimSystem::run_per_dpu_parallel`] fans the DPU vector out over the
//! topology-aware executor ([`crate::exec`]) and merges per-DPU outputs
//! back in DPU-index order, so runs are deterministic regardless of the
//! worker count, placement policy, or steal schedule.
//! [`crate::exec::parallel_indexed`] is the underlying facade for call
//! sites that construct their own per-index simulation state (e.g. one
//! `DpuSim` plus allocator per graph partition) instead of borrowing
//! the system's DPUs.

use std::sync::Mutex;

use crate::cost::Cycles;
use crate::dpu::{DpuConfig, DpuSim};
use crate::exec::{ExecPolicy, Executor};
use crate::host::HostSim;
use crate::stats::{DramTraffic, TaskletStats};

/// A host plus `n` identical DPUs.
#[derive(Debug)]
pub struct PimSystem {
    dpus: Vec<DpuSim>,
    host: HostSim,
}

impl PimSystem {
    /// Creates a system of `n_dpus` DPUs with identical configuration
    /// and a default host.
    ///
    /// # Panics
    ///
    /// Panics if `n_dpus` is zero.
    pub fn new(n_dpus: usize, config: DpuConfig) -> Self {
        assert!(n_dpus > 0, "a PIM system needs at least one DPU");
        PimSystem {
            dpus: (0..n_dpus).map(|_| DpuSim::new(config.clone())).collect(),
            host: HostSim::default(),
        }
    }

    /// Number of DPUs in the system.
    pub fn n_dpus(&self) -> usize {
        self.dpus.len()
    }

    /// Access one DPU.
    pub fn dpu(&self, idx: usize) -> &DpuSim {
        &self.dpus[idx]
    }

    /// Mutable access to one DPU.
    pub fn dpu_mut(&mut self, idx: usize) -> &mut DpuSim {
        &mut self.dpus[idx]
    }

    /// Iterates over the DPUs.
    pub fn dpus(&self) -> impl Iterator<Item = &DpuSim> {
        self.dpus.iter()
    }

    /// The host model.
    pub fn host(&self) -> &HostSim {
        &self.host
    }

    /// Mutable access to the host model.
    pub fn host_mut(&mut self) -> &mut HostSim {
        &mut self.host
    }

    /// Runs `f` once per DPU (the SPMD launch pattern). DPUs execute
    /// the same program on their private state; time advances
    /// independently per DPU.
    pub fn run_per_dpu(&mut self, mut f: impl FnMut(usize, &mut DpuSim)) {
        for (idx, dpu) in self.dpus.iter_mut().enumerate() {
            f(idx, dpu);
        }
    }

    /// Runs `f` once per DPU on the topology-aware executor, returning
    /// each DPU's output in DPU-index order.
    ///
    /// Each DPU is fully independent (`Send`) state, so the kernel may
    /// execute on any worker without affecting simulated results: the
    /// per-DPU clocks, stats, and traffic after this call are identical
    /// to a serial [`PimSystem::run_per_dpu`] of the same kernel, and
    /// the returned `Vec` is merged deterministically by DPU index.
    /// Host wall-clock drops by roughly the hardware thread count; the
    /// UPMEM-class systems the paper benchmarks run 2,000+ DPUs, which
    /// a serial loop cannot keep up with. Uses the default
    /// [`ExecPolicy`]; see [`PimSystem::run_per_dpu_parallel_with`].
    pub fn run_per_dpu_parallel<T, F>(&mut self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut DpuSim) -> T + Sync,
    {
        self.run_per_dpu_parallel_with(ExecPolicy::default(), f)
    }

    /// [`PimSystem::run_per_dpu_parallel`] under an explicit placement
    /// policy.
    ///
    /// Each DPU cell is wrapped in a [`Mutex`] only to hand its `&mut`
    /// across the worker crew — every index executes exactly once, so
    /// the locks are never contended and never poisoned outside a
    /// propagating `f` panic.
    pub fn run_per_dpu_parallel_with<T, F>(&mut self, policy: ExecPolicy, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut DpuSim) -> T + Sync,
    {
        let cells: Vec<Mutex<&mut DpuSim>> = self.dpus.iter_mut().map(Mutex::new).collect();
        Executor::for_domain("pim-system").run(cells.len(), policy, |i| {
            let mut dpu = cells[i]
                .lock()
                .expect("each DPU cell is locked exactly once");
            f(i, &mut dpu)
        })
    }

    /// System finish time of the PIM kernel: the slowest DPU's clock.
    pub fn kernel_finish(&self) -> Cycles {
        self.dpus
            .iter()
            .map(|d| d.max_clock())
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Sum of all tasklet stats across all DPUs.
    pub fn total_stats(&self) -> TaskletStats {
        self.dpus.iter().fold(TaskletStats::default(), |acc, d| {
            acc.merged(&d.total_stats())
        })
    }

    /// Aggregate MRAM↔WRAM traffic across all DPUs.
    pub fn total_traffic(&self) -> DramTraffic {
        self.dpus.iter().fold(DramTraffic::default(), |acc, d| {
            let t = d.traffic();
            DramTraffic {
                bytes_read: acc.bytes_read + t.bytes_read,
                bytes_written: acc.bytes_written + t.bytes_written,
                transfers: acc.transfers + t.transfers,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::parallel_indexed;

    #[test]
    fn per_dpu_execution_is_independent() {
        let mut sys = PimSystem::new(4, DpuConfig::default().with_tasklets(1));
        sys.run_per_dpu(|idx, dpu| {
            dpu.ctx(0).instrs(10 * (idx as u64 + 1));
        });
        assert_eq!(sys.dpu(0).max_clock(), Cycles(110));
        assert_eq!(sys.dpu(3).max_clock(), Cycles(440));
        assert_eq!(sys.kernel_finish(), Cycles(440));
    }

    #[test]
    fn totals_aggregate_over_dpus() {
        let mut sys = PimSystem::new(2, DpuConfig::default().with_tasklets(1));
        sys.run_per_dpu(|_, dpu| {
            let mut c = dpu.ctx(0);
            c.instrs(5);
            c.mram_read(0, 64);
        });
        assert_eq!(sys.total_stats().instrs, 10);
        assert_eq!(sys.total_traffic().bytes_read, 128);
        assert_eq!(sys.total_traffic().transfers, 2);
    }

    #[test]
    #[should_panic(expected = "at least one DPU")]
    fn zero_dpus_rejected() {
        PimSystem::new(0, DpuConfig::default());
    }

    #[test]
    fn parallel_execution_matches_serial() {
        // The same kernel run serially and in parallel must leave every
        // DPU in an identical simulated state.
        let kernel = |idx: usize, dpu: &mut DpuSim| {
            let mut c = dpu.ctx(0);
            c.instrs(7 * (idx as u64 + 1));
            c.mram_read(0, 64 * (idx as u32 + 1));
            dpu.clock(0)
        };
        let mut serial = PimSystem::new(9, DpuConfig::default().with_tasklets(2));
        let mut serial_out = Vec::new();
        serial.run_per_dpu(|idx, dpu| serial_out.push(kernel(idx, dpu)));
        let mut parallel = PimSystem::new(9, DpuConfig::default().with_tasklets(2));
        let parallel_out = parallel.run_per_dpu_parallel(kernel);
        assert_eq!(serial_out, parallel_out, "outputs merge in DPU order");
        for idx in 0..9 {
            assert_eq!(serial.dpu(idx).max_clock(), parallel.dpu(idx).max_clock());
            assert_eq!(
                serial.dpu(idx).traffic().total_bytes(),
                parallel.dpu(idx).traffic().total_bytes()
            );
        }
        assert_eq!(serial.kernel_finish(), parallel.kernel_finish());
        assert_eq!(serial.total_stats().instrs, parallel.total_stats().instrs);
    }

    #[test]
    fn every_placement_policy_simulates_identically() {
        let kernel = |idx: usize, dpu: &mut DpuSim| {
            dpu.ctx(0).instrs(3 * (idx as u64 + 1));
            dpu.clock(0)
        };
        let mut reference = PimSystem::new(13, DpuConfig::default().with_tasklets(1));
        let reference_out = reference.run_per_dpu_parallel_with(ExecPolicy::Serial, kernel);
        for policy in ExecPolicy::ALL {
            let mut sys = PimSystem::new(13, DpuConfig::default().with_tasklets(1));
            let out = sys.run_per_dpu_parallel_with(policy, kernel);
            assert_eq!(out, reference_out, "{policy:?}");
            assert_eq!(sys.kernel_finish(), reference.kernel_finish(), "{policy:?}");
        }
    }

    #[test]
    fn parallel_indexed_preserves_index_order() {
        let out = parallel_indexed(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        assert!(parallel_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_indexed_runs_independent_dpu_sims() {
        // The pattern used by multi-DPU workloads: one private DpuSim
        // per index, built and consumed inside the worker.
        let finishes = parallel_indexed(5, |idx| {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
            dpu.ctx(0).instrs(idx as u64 + 1);
            dpu.max_clock()
        });
        for (idx, finish) in finishes.iter().enumerate() {
            assert_eq!(*finish, Cycles((idx as u64 + 1) * 11));
        }
    }

    #[test]
    fn host_is_reachable() {
        let mut sys = PimSystem::new(1, DpuConfig::default());
        sys.host_mut()
            .transfer(crate::host::TransferDirection::HostToPim, 1, 1024);
        assert_eq!(sys.host().bytes_moved(), 1024);
    }
}
