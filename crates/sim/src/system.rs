//! A multi-DPU PIM system: N independent DPU banks plus a host.
//!
//! Bank-level PIM has no inter-DPU communication — each DPU owns its
//! bank and its own address space — so a [`PimSystem`] is simply a
//! collection of [`DpuSim`]s that run the same program on partitioned
//! data, plus a [`HostSim`] for orchestration and transfers. The
//! system-level finish time of a PIM kernel is the **max** over DPUs,
//! which is how all multi-DPU results in the paper are aggregated.

use crate::cost::Cycles;
use crate::dpu::{DpuConfig, DpuSim};
use crate::host::HostSim;
use crate::stats::{DramTraffic, TaskletStats};

/// A host plus `n` identical DPUs.
#[derive(Debug)]
pub struct PimSystem {
    dpus: Vec<DpuSim>,
    host: HostSim,
}

impl PimSystem {
    /// Creates a system of `n_dpus` DPUs with identical configuration
    /// and a default host.
    ///
    /// # Panics
    ///
    /// Panics if `n_dpus` is zero.
    pub fn new(n_dpus: usize, config: DpuConfig) -> Self {
        assert!(n_dpus > 0, "a PIM system needs at least one DPU");
        PimSystem {
            dpus: (0..n_dpus).map(|_| DpuSim::new(config.clone())).collect(),
            host: HostSim::default(),
        }
    }

    /// Number of DPUs in the system.
    pub fn n_dpus(&self) -> usize {
        self.dpus.len()
    }

    /// Access one DPU.
    pub fn dpu(&self, idx: usize) -> &DpuSim {
        &self.dpus[idx]
    }

    /// Mutable access to one DPU.
    pub fn dpu_mut(&mut self, idx: usize) -> &mut DpuSim {
        &mut self.dpus[idx]
    }

    /// Iterates over the DPUs.
    pub fn dpus(&self) -> impl Iterator<Item = &DpuSim> {
        self.dpus.iter()
    }

    /// The host model.
    pub fn host(&self) -> &HostSim {
        &self.host
    }

    /// Mutable access to the host model.
    pub fn host_mut(&mut self) -> &mut HostSim {
        &mut self.host
    }

    /// Runs `f` once per DPU (the SPMD launch pattern). DPUs execute
    /// the same program on their private state; time advances
    /// independently per DPU.
    pub fn run_per_dpu(&mut self, mut f: impl FnMut(usize, &mut DpuSim)) {
        for (idx, dpu) in self.dpus.iter_mut().enumerate() {
            f(idx, dpu);
        }
    }

    /// System finish time of the PIM kernel: the slowest DPU's clock.
    pub fn kernel_finish(&self) -> Cycles {
        self.dpus
            .iter()
            .map(|d| d.max_clock())
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Sum of all tasklet stats across all DPUs.
    pub fn total_stats(&self) -> TaskletStats {
        self.dpus.iter().fold(TaskletStats::default(), |acc, d| {
            acc.merged(&d.total_stats())
        })
    }

    /// Aggregate MRAM↔WRAM traffic across all DPUs.
    pub fn total_traffic(&self) -> DramTraffic {
        self.dpus.iter().fold(DramTraffic::default(), |acc, d| {
            let t = d.traffic();
            DramTraffic {
                bytes_read: acc.bytes_read + t.bytes_read,
                bytes_written: acc.bytes_written + t.bytes_written,
                transfers: acc.transfers + t.transfers,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_dpu_execution_is_independent() {
        let mut sys = PimSystem::new(4, DpuConfig::default().with_tasklets(1));
        sys.run_per_dpu(|idx, dpu| {
            dpu.ctx(0).instrs(10 * (idx as u64 + 1));
        });
        assert_eq!(sys.dpu(0).max_clock(), Cycles(110));
        assert_eq!(sys.dpu(3).max_clock(), Cycles(440));
        assert_eq!(sys.kernel_finish(), Cycles(440));
    }

    #[test]
    fn totals_aggregate_over_dpus() {
        let mut sys = PimSystem::new(2, DpuConfig::default().with_tasklets(1));
        sys.run_per_dpu(|_, dpu| {
            let mut c = dpu.ctx(0);
            c.instrs(5);
            c.mram_read(0, 64);
        });
        assert_eq!(sys.total_stats().instrs, 10);
        assert_eq!(sys.total_traffic().bytes_read, 128);
        assert_eq!(sys.total_traffic().transfers, 2);
    }

    #[test]
    #[should_panic(expected = "at least one DPU")]
    fn zero_dpus_rejected() {
        PimSystem::new(0, DpuConfig::default());
    }

    #[test]
    fn host_is_reachable() {
        let mut sys = PimSystem::new(1, DpuConfig::default());
        sys.host_mut()
            .transfer(crate::host::TransferDirection::HostToPim, 1, 1024);
        assert_eq!(sys.host().bytes_moved(), 1024);
    }
}
