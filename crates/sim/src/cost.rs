//! Cycle accounting primitives and the DPU cost model.
//!
//! All on-DPU time in this crate is expressed in [`Cycles`] of the DPU
//! clock (350 MHz on UPMEM hardware). The [`CostModel`] collects the
//! handful of constants that drive every latency the simulator reports:
//! the pipeline depth, the DMA transfer cost, and the clock frequency
//! used to convert cycles to wall-clock time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or point in virtual time, measured in DPU clock cycles.
///
/// `Cycles` is an ordinary additive quantity; subtracting a later time
/// from an earlier one panics in debug builds (it would wrap), so always
/// subtract in `later - earlier` order.
///
/// ```
/// use pim_sim::Cycles;
/// let a = Cycles(100) + Cycles(20);
/// assert_eq!(a, Cycles(120));
/// assert_eq!(a - Cycles(100), Cycles(20));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts this cycle count to microseconds at the given clock.
    ///
    /// ```
    /// use pim_sim::Cycles;
    /// assert!((Cycles(350).as_micros(350) - 1.0).abs() < 1e-9);
    /// ```
    pub fn as_micros(self, clock_mhz: u64) -> f64 {
        self.0 as f64 / clock_mhz as f64
    }

    /// Converts this cycle count to milliseconds at the given clock.
    pub fn as_millis(self, clock_mhz: u64) -> f64 {
        self.as_micros(clock_mhz) / 1_000.0
    }

    /// Converts this cycle count to seconds at the given clock.
    pub fn as_secs(self, clock_mhz: u64) -> f64 {
        self.as_micros(clock_mhz) / 1_000_000.0
    }

    /// Saturating subtraction, useful when comparing unordered timestamps.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two cycle counts.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Returns the smaller of two cycle counts.
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction would underflow");
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction would underflow");
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// The constants that drive every DPU-side latency in the simulator.
///
/// Defaults follow published UPMEM numbers: a 350 MHz clock, an
/// 11-stage "revolver" pipeline (a single tasklet retires at most one
/// instruction per 11 cycles), and a DMA engine whose MRAM↔WRAM
/// transfer latency is `setup + per_8b × ceil(bytes / 8)` cycles —
/// calibrated so that a 2 KB block transfer costs roughly 1 µs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// DPU clock frequency in MHz. UPMEM DPUs run at 350 MHz.
    pub clock_mhz: u64,
    /// Depth of the fine-grained multithreading pipeline. A tasklet can
    /// issue at most one instruction every `pipeline_depth` cycles.
    pub pipeline_depth: u64,
    /// Fixed setup cost of a DMA transfer between MRAM and WRAM.
    pub dma_setup_cycles: u64,
    /// Incremental cost per 8-byte beat of a DMA transfer.
    pub dma_cycles_per_8b: u64,
    /// Cycles per access of the hardware buddy cache (paper: 1 cycle).
    pub buddy_cache_access_cycles: u64,
}

impl CostModel {
    /// Cycles to move `bytes` between MRAM and WRAM in one DMA transfer.
    ///
    /// Transfers are rounded up to 8-byte beats, matching the UPMEM DMA
    /// engine's minimum granularity.
    ///
    /// ```
    /// use pim_sim::CostModel;
    /// let c = CostModel::default();
    /// assert_eq!(c.dma_cycles(0), 0);
    /// assert!(c.dma_cycles(2048) > c.dma_cycles(8));
    /// ```
    pub fn dma_cycles(&self, bytes: u32) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let beats = u64::from(bytes).div_ceil(8);
        self.dma_setup_cycles + beats * self.dma_cycles_per_8b
    }

    /// The interval, in cycles, between two retired instructions of one
    /// tasklet when `active_tasklets` tasklets are running.
    ///
    /// With fewer tasklets than pipeline stages the pipeline cannot be
    /// filled by a single tasklet, so the interval is the pipeline depth;
    /// beyond that, issue slots are shared round-robin.
    #[inline]
    pub fn issue_interval(&self, active_tasklets: usize) -> u64 {
        self.pipeline_depth.max(active_tasklets as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_mhz: 350,
            pipeline_depth: 11,
            dma_setup_cycles: 250,
            dma_cycles_per_8b: 3,
            buddy_cache_access_cycles: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic_behaves_like_u64() {
        let a = Cycles(5);
        let b = Cycles(7);
        assert_eq!(a + b, Cycles(12));
        assert_eq!(b - a, Cycles(2));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Cycles = [a, b].into_iter().sum();
        assert_eq!(total, Cycles(12));
    }

    #[test]
    fn cycles_to_wallclock_conversion() {
        // 350 cycles at 350 MHz is exactly one microsecond.
        assert!((Cycles(350).as_micros(350) - 1.0).abs() < 1e-12);
        assert!((Cycles(350_000).as_millis(350) - 1.0).abs() < 1e-12);
        assert!((Cycles(350_000_000).as_secs(350) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(10).saturating_sub(Cycles(3)), Cycles(7));
    }

    #[test]
    fn dma_cost_is_monotone_in_size() {
        let c = CostModel::default();
        let mut last = 0;
        for bytes in [1u32, 8, 9, 64, 512, 2048, 65536] {
            let cost = c.dma_cycles(bytes);
            assert!(cost >= last, "DMA cost must not decrease with size");
            last = cost;
        }
    }

    #[test]
    fn dma_2kb_is_about_one_microsecond() {
        // Calibration target from UPMEM measurements: a 2 KB MRAM read
        // costs on the order of 1 µs at 350 MHz.
        let c = CostModel::default();
        let us = Cycles(c.dma_cycles(2048)).as_micros(c.clock_mhz);
        assert!(us > 1.0 && us < 3.0, "2KB DMA was {us} us");
    }

    #[test]
    fn issue_interval_saturates_at_pipeline_depth() {
        let c = CostModel::default();
        assert_eq!(c.issue_interval(1), 11);
        assert_eq!(c.issue_interval(11), 11);
        assert_eq!(c.issue_interval(16), 16);
        assert_eq!(c.issue_interval(24), 24);
    }

    #[test]
    fn zero_byte_dma_is_free() {
        assert_eq!(CostModel::default().dma_cycles(0), 0);
    }
}
