//! Sparse byte-addressable model of a DPU's local DRAM bank (MRAM).
//!
//! UPMEM pairs every DPU with a 64 MB DRAM bank. Allocator experiments
//! only need latency accounting, but workload experiments (dynamic graph
//! update, KV-cache append) also store real data through the allocator,
//! so [`Mram`] backs the address space with 64 KB pages materialized on
//! first write. Reading unwritten memory returns zeroes, like DRAM after
//! initialization.

use std::collections::HashMap;

/// Size of one lazily-allocated backing page.
const PAGE_SHIFT: u32 = 16;
/// Page size in bytes (64 KB).
const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// A sparse model of one 64 MB MRAM bank.
///
/// Addresses are `u32` offsets from the start of the bank. Accesses must
/// stay within `size_bytes`; crossing the end of the bank panics, since
/// on real hardware that is a fault the allocator must never produce.
///
/// ```
/// use pim_sim::Mram;
/// let mut m = Mram::new(64 << 20);
/// m.write_u32(0x100, 0xdead_beef);
/// assert_eq!(m.read_u32(0x100), 0xdead_beef);
/// assert_eq!(m.read_u32(0x2000), 0); // untouched memory reads as zero
/// ```
#[derive(Debug, Clone)]
pub struct Mram {
    size_bytes: u32,
    pages: HashMap<u32, Box<[u8]>>,
}

impl Mram {
    /// Creates a bank of `size_bytes` bytes (64 MB on UPMEM hardware).
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32) -> Self {
        assert!(size_bytes > 0, "MRAM size must be non-zero");
        Mram {
            size_bytes,
            pages: HashMap::new(),
        }
    }

    /// Total capacity of the bank in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Number of 64 KB pages currently materialized.
    ///
    /// Useful in tests to confirm the store stays sparse.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn check_range(&self, addr: u32, len: usize) {
        let end = addr as u64 + len as u64;
        assert!(
            end <= u64::from(self.size_bytes),
            "MRAM access out of bounds: addr={addr:#x} len={len} size={:#x}",
            self.size_bytes
        );
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the bank.
    pub fn read(&self, addr: u32, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        let mut copied = 0usize;
        while copied < buf.len() {
            let cur = addr + copied as u32;
            let page = cur >> PAGE_SHIFT;
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - copied);
            match self.pages.get(&page) {
                Some(p) => buf[copied..copied + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[copied..copied + chunk].fill(0),
            }
            copied += chunk;
        }
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the bank.
    pub fn write(&mut self, addr: u32, data: &[u8]) {
        self.check_range(addr, data.len());
        let mut copied = 0usize;
        while copied < data.len() {
            let cur = addr + copied as u32;
            let page = cur >> PAGE_SHIFT;
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(data.len() - copied);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            p[off..off + chunk].copy_from_slice(&data[copied..copied + chunk]);
            copied += chunk;
        }
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u32) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Zeroes a byte range without materializing pages for it.
    pub fn clear(&mut self, addr: u32, len: u32) {
        self.check_range(addr, len as usize);
        // Drop whole pages where possible, zero partial edges.
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let page = cur >> PAGE_SHIFT;
            let page_start = page << PAGE_SHIFT;
            let page_end = page_start + PAGE_SIZE;
            if cur == page_start && end >= page_end {
                self.pages.remove(&page);
                cur = page_end;
            } else {
                let stop = end.min(page_end);
                if let Some(p) = self.pages.get_mut(&page) {
                    let a = (cur - page_start) as usize;
                    let b = (stop - page_start) as usize;
                    p[a..b].fill(0);
                }
                cur = stop;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Mram::new(1 << 20);
        let mut buf = [0xffu8; 16];
        m.read(0x1234, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_within_one_page() {
        let mut m = Mram::new(1 << 20);
        m.write(100, b"hello pim");
        let mut buf = [0u8; 9];
        m.read(100, &mut buf);
        assert_eq!(&buf, b"hello pim");
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn roundtrip_across_page_boundary() {
        let mut m = Mram::new(1 << 20);
        let addr = PAGE_SIZE - 4;
        let data: Vec<u8> = (0..16).collect();
        m.write(addr, &data);
        let mut buf = [0u8; 16];
        m.read(addr, &mut buf);
        assert_eq!(buf.as_slice(), data.as_slice());
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn integer_accessors_roundtrip() {
        let mut m = Mram::new(1 << 20);
        m.write_u32(8, 0x0102_0304);
        m.write_u64(16, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u32(8), 0x0102_0304);
        assert_eq!(m.read_u64(16), 0x1122_3344_5566_7788);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let m = Mram::new(1 << 20);
        let mut buf = [0u8; 8];
        m.read((1 << 20) - 4, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let mut m = Mram::new(64);
        m.write(60, &[0u8; 8]);
    }

    #[test]
    fn clear_releases_whole_pages_and_zeroes_edges() {
        let mut m = Mram::new(4 * PAGE_SIZE);
        for p in 0..4u32 {
            m.write(p * PAGE_SIZE, &[0xaa; 32]);
        }
        assert_eq!(m.resident_pages(), 4);
        // Clear from mid-page 0 to mid-page 2: page 1 dropped entirely.
        m.clear(PAGE_SIZE / 2, 2 * PAGE_SIZE);
        assert!(m.resident_pages() <= 3);
        let mut buf = [0u8; 32];
        m.read(PAGE_SIZE, &mut buf);
        assert_eq!(buf, [0u8; 32]);
        // Page 3 untouched.
        m.read(3 * PAGE_SIZE, &mut buf);
        assert_eq!(buf, [0xaa; 32]);
    }

    proptest! {
        /// Any sequence of writes followed by reads behaves like a flat
        /// byte array: the last write to an address wins.
        #[test]
        fn behaves_like_flat_array(
            ops in proptest::collection::vec(
                (0u32..(1 << 18) - 64, proptest::collection::vec(any::<u8>(), 1..64)),
                1..40,
            )
        ) {
            let mut m = Mram::new(1 << 18);
            let mut shadow = vec![0u8; 1 << 18];
            for (addr, data) in &ops {
                m.write(*addr, data);
                shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
            }
            for (addr, data) in &ops {
                let mut buf = vec![0u8; data.len()];
                m.read(*addr, &mut buf);
                prop_assert_eq!(&buf, &shadow[*addr as usize..*addr as usize + data.len()]);
            }
        }
    }
}
