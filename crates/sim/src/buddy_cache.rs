//! Functional model of the paper's per-DPU hardware *buddy cache*.
//!
//! The buddy cache (PIM-malloc-HW/SW, §IV-B of the paper) is a small
//! fully-associative cache built from a CAM, holding recently accessed
//! buddy-allocator metadata words. Each entry stores a valid bit, the
//! MRAM address of a 4-byte metadata word (the tag), and the word
//! itself. Replacement is true LRU. The PIM core reaches it through
//! four ISA extensions — `init_bc`, `lookup_bc`, `read_bc`, `write_bc` —
//! mirrored here as methods.
//!
//! The model is *functional + statistical*: it tracks exact contents,
//! hit/miss/eviction counts and dirty write-backs; timing (1 cycle per
//! operation) is charged by the caller through its
//! [`TaskletCtx`](crate::TaskletCtx).

use serde::{Deserialize, Serialize};

/// Configuration of the buddy cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuddyCacheConfig {
    /// Number of CAM entries (paper default: 16).
    pub entries: usize,
    /// Bytes of metadata per entry (paper default: 4).
    pub bytes_per_entry: u32,
}

impl BuddyCacheConfig {
    /// Total metadata capacity in bytes (paper default: 64 B).
    pub fn capacity_bytes(&self) -> u32 {
        self.entries as u32 * self.bytes_per_entry
    }

    /// A config with the given total capacity, keeping 4 B entries.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of 4.
    pub fn with_capacity_bytes(bytes: u32) -> Self {
        assert!(
            bytes >= 4 && bytes.is_multiple_of(4),
            "capacity must be a multiple of 4 B"
        );
        BuddyCacheConfig {
            entries: (bytes / 4) as usize,
            bytes_per_entry: 4,
        }
    }
}

impl Default for BuddyCacheConfig {
    fn default() -> Self {
        BuddyCacheConfig {
            entries: 16,
            bytes_per_entry: 4,
        }
    }
}

/// Hit/miss statistics of a buddy cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuddyCacheStats {
    /// `lookup_bc` operations that hit.
    pub hits: u64,
    /// `lookup_bc` operations that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Evicted entries that were dirty (required a DRAM write-back).
    pub writebacks: u64,
}

impl BuddyCacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups were performed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of a `lookup_bc` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Tag match; the slot index can be passed to `read_bc`/`write_bc`.
    Hit(usize),
    /// No entry holds the address.
    Miss,
}

/// Description of an entry evicted by `write_bc`, so the runtime can
/// write the victim back to DRAM if it was dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// MRAM address of the evicted metadata word.
    pub addr: u32,
    /// The evicted word's value.
    pub value: u32,
    /// Whether the word was modified since it was filled.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    addr: u32,
    value: u32,
    dirty: bool,
}

/// A fully-associative, LRU-replaced CAM of metadata words.
///
/// ```
/// use pim_sim::{BuddyCache, BuddyCacheConfig, LookupResult};
/// let mut bc = BuddyCache::new(BuddyCacheConfig::default());
/// assert_eq!(bc.lookup(0x0800_0000), LookupResult::Miss);
/// bc.fill(0x0800_0000, 0x1111_1111);
/// match bc.lookup(0x0800_0000) {
///     LookupResult::Hit(slot) => assert_eq!(bc.read(slot), 0x1111_1111),
///     LookupResult::Miss => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BuddyCache {
    config: BuddyCacheConfig,
    entries: Vec<Entry>,
    /// Slot indices ordered most-recently-used first.
    lru: Vec<usize>,
    stats: BuddyCacheStats,
}

impl BuddyCache {
    /// Creates an empty (all-invalid) buddy cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero entries.
    pub fn new(config: BuddyCacheConfig) -> Self {
        assert!(config.entries > 0, "buddy cache needs at least one entry");
        BuddyCache {
            entries: vec![Entry::default(); config.entries],
            lru: (0..config.entries).collect(),
            config,
            stats: BuddyCacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> BuddyCacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BuddyCacheStats {
        self.stats
    }

    /// `init_bc`: invalidates every entry and resets statistics.
    pub fn init(&mut self) {
        for e in &mut self.entries {
            *e = Entry::default();
        }
        self.lru = (0..self.config.entries).collect();
        self.stats = BuddyCacheStats::default();
    }

    fn touch(&mut self, slot: usize) {
        let pos = self
            .lru
            .iter()
            .position(|&s| s == slot)
            .expect("slot present in LRU order");
        self.lru.remove(pos);
        self.lru.insert(0, slot);
    }

    /// `lookup_bc`: CAM tag search for `addr`.
    ///
    /// A hit promotes the entry to most-recently-used.
    pub fn lookup(&mut self, addr: u32) -> LookupResult {
        for (i, e) in self.entries.iter().enumerate() {
            if e.valid && e.addr == addr {
                self.stats.hits += 1;
                self.touch(i);
                return LookupResult::Hit(i);
            }
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// `read_bc`: reads the metadata word in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid — the runtime must only read slots
    /// returned by a hit.
    pub fn read(&self, slot: usize) -> u32 {
        let e = &self.entries[slot];
        assert!(e.valid, "read_bc of invalid slot {slot}");
        e.value
    }

    /// Updates the metadata word in a *hit* slot, marking it dirty.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn update(&mut self, slot: usize, value: u32) {
        let e = &mut self.entries[slot];
        assert!(e.valid, "update of invalid slot {slot}");
        e.value = value;
        e.dirty = true;
        self.touch(slot);
    }

    /// `write_bc`: installs `addr → value` after a miss, evicting the
    /// LRU entry if no slot is free. Returns the victim (for DRAM
    /// write-back) if one was evicted.
    ///
    /// The newly installed entry is clean: the caller just fetched the
    /// value from DRAM (fill path). Use [`BuddyCache::update`] for
    /// stores that dirty the cached word.
    pub fn fill(&mut self, addr: u32, value: u32) -> Option<Eviction> {
        debug_assert!(
            !self.entries.iter().any(|e| e.valid && e.addr == addr),
            "fill of already-cached address {addr:#x}"
        );
        // Prefer an invalid slot; otherwise evict the LRU entry.
        let slot = match self.entries.iter().position(|e| !e.valid) {
            Some(s) => s,
            None => *self.lru.last().expect("nonempty lru"),
        };
        let victim = if self.entries[slot].valid {
            self.stats.evictions += 1;
            let v = self.entries[slot];
            if v.dirty {
                self.stats.writebacks += 1;
            }
            Some(Eviction {
                addr: v.addr,
                value: v.value,
                dirty: v.dirty,
            })
        } else {
            None
        };
        self.entries[slot] = Entry {
            valid: true,
            addr,
            value,
            dirty: false,
        };
        self.touch(slot);
        victim
    }

    /// Number of valid entries currently cached.
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cache(entries: usize) -> BuddyCache {
        BuddyCache::new(BuddyCacheConfig {
            entries,
            bytes_per_entry: 4,
        })
    }

    #[test]
    fn default_is_paper_configuration() {
        let c = BuddyCacheConfig::default();
        assert_eq!(c.entries, 16);
        assert_eq!(c.capacity_bytes(), 64);
    }

    #[test]
    fn with_capacity_bytes_derives_entries() {
        assert_eq!(BuddyCacheConfig::with_capacity_bytes(64).entries, 16);
        assert_eq!(BuddyCacheConfig::with_capacity_bytes(16).entries, 4);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_capacity_panics() {
        BuddyCacheConfig::with_capacity_bytes(6);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut bc = cache(2);
        assert_eq!(bc.lookup(100), LookupResult::Miss);
        assert_eq!(bc.fill(100, 7), None);
        match bc.lookup(100) {
            LookupResult::Hit(slot) => assert_eq!(bc.read(slot), 7),
            LookupResult::Miss => panic!("expected hit"),
        }
        assert_eq!(bc.stats().hits, 1);
        assert_eq!(bc.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut bc = cache(2);
        bc.fill(1, 10);
        bc.fill(2, 20);
        // Touch 1 so that 2 becomes LRU.
        assert!(matches!(bc.lookup(1), LookupResult::Hit(_)));
        let ev = bc.fill(3, 30).expect("cache full, must evict");
        assert_eq!(ev.addr, 2);
        assert_eq!(ev.value, 20);
        assert!(!ev.dirty);
        assert!(matches!(bc.lookup(1), LookupResult::Hit(_)));
        assert!(matches!(bc.lookup(3), LookupResult::Hit(_)));
        assert_eq!(bc.lookup(2), LookupResult::Miss);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut bc = cache(1);
        bc.fill(1, 10);
        if let LookupResult::Hit(slot) = bc.lookup(1) {
            bc.update(slot, 11);
        } else {
            panic!("expected hit");
        }
        let ev = bc.fill(2, 20).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.value, 11);
        assert_eq!(bc.stats().writebacks, 1);
        assert_eq!(bc.stats().evictions, 1);
    }

    #[test]
    fn init_clears_contents_and_stats() {
        let mut bc = cache(2);
        bc.fill(1, 10);
        bc.lookup(1);
        bc.init();
        assert_eq!(bc.valid_entries(), 0);
        assert_eq!(bc.stats(), BuddyCacheStats::default());
        assert_eq!(bc.lookup(1), LookupResult::Miss);
    }

    #[test]
    fn hit_rate_computation() {
        let mut bc = cache(4);
        bc.fill(1, 0);
        for _ in 0..9 {
            bc.lookup(1);
        }
        bc.lookup(2); // miss
                      // 9 hits, 2 misses (initial fill lookup was not performed here,
                      // only the explicit ones: 9 hits + 1 miss + ... recount below).
        let s = bc.stats();
        assert_eq!(s.hits, 9);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(BuddyCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid slot")]
    fn reading_invalid_slot_panics() {
        let bc = cache(2);
        bc.read(0);
    }

    proptest! {
        /// The cache never holds more valid entries than its capacity,
        /// never holds two entries for one address, and a lookup right
        /// after a fill always hits with the filled value.
        #[test]
        fn cam_invariants(ops in proptest::collection::vec((0u32..32, any::<u32>()), 1..200)) {
            let mut bc = cache(4);
            for (addr, value) in ops {
                match bc.lookup(addr) {
                    LookupResult::Hit(slot) => bc.update(slot, value),
                    LookupResult::Miss => { bc.fill(addr, value); }
                }
                // Immediately visible.
                match bc.lookup(addr) {
                    LookupResult::Hit(slot) => prop_assert_eq!(bc.read(slot), value),
                    LookupResult::Miss => prop_assert!(false, "fill must be visible"),
                }
                prop_assert!(bc.valid_entries() <= 4);
            }
        }

        /// With a working set no larger than the cache, after the
        /// initial cold misses every access hits (LRU retains the set).
        #[test]
        fn small_working_set_fully_hits(rounds in 1usize..20) {
            let mut bc = cache(4);
            for addr in 0u32..4 { bc.lookup(addr); bc.fill(addr, addr); }
            let before = bc.stats().misses;
            for _ in 0..rounds {
                for addr in 0u32..4 {
                    prop_assert!(matches!(bc.lookup(addr), LookupResult::Hit(_)));
                }
            }
            prop_assert_eq!(bc.stats().misses, before);
        }
    }
}
