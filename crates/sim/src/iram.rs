//! Instruction-memory (IRAM) budget model.
//!
//! UPMEM DPUs hold program text in a 24 KB IRAM (§II-A). The paper's
//! §IV-A argues this is why a TCMalloc-class allocator (~60 k C++
//! lines, four allocator layers) cannot be ported to PIM while
//! PIM-malloc (~1 k lines) fits comfortably. This module makes that
//! feasibility argument checkable: estimate a component's text size
//! from its source-line count and verify the budget.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Bytes of DPU machine code generated per source line — a coarse
/// compiler constant (UPMEM's LLVM backend emits 48-bit instructions;
/// several instructions per C line on average).
pub const BYTES_PER_SOURCE_LINE: u32 = 18;

/// Error returned when a program image exceeds IRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IramOverflow {
    /// Name of the component that did not fit.
    pub component: String,
    /// Estimated text bytes of the whole image.
    pub image_bytes: u32,
    /// IRAM capacity in bytes.
    pub capacity: u32,
}

impl fmt::Display for IramOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IRAM overflow adding `{}`: image {} B exceeds {} B",
            self.component, self.image_bytes, self.capacity
        )
    }
}

impl Error for IramOverflow {}

/// A 24 KB instruction-memory ledger: add program components by
/// estimated source-line count and catch images that cannot load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Iram {
    capacity: u32,
    used: u32,
    components: Vec<(String, u32)>,
}

impl Iram {
    /// Creates a ledger with `capacity` bytes (24 KB on UPMEM).
    pub fn new(capacity: u32) -> Self {
        Iram {
            capacity,
            used: 0,
            components: Vec::new(),
        }
    }

    /// Estimated text bytes for `source_lines` lines of DPU C code.
    pub fn text_bytes_for_lines(source_lines: u32) -> u32 {
        source_lines * BYTES_PER_SOURCE_LINE
    }

    /// Adds a component of `source_lines` lines.
    ///
    /// # Errors
    ///
    /// Returns [`IramOverflow`] if the image would exceed capacity; the
    /// ledger is unchanged in that case.
    pub fn add_component(&mut self, name: &str, source_lines: u32) -> Result<(), IramOverflow> {
        let bytes = Self::text_bytes_for_lines(source_lines);
        if self.used + bytes > self.capacity {
            return Err(IramOverflow {
                component: name.to_owned(),
                image_bytes: self.used + bytes,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.components.push((name.to_owned(), bytes));
        Ok(())
    }

    /// Bytes used by the image so far.
    pub fn used_bytes(&self) -> u32 {
        self.used
    }

    /// Remaining capacity in bytes.
    pub fn available_bytes(&self) -> u32 {
        self.capacity - self.used
    }
}

impl Default for Iram {
    /// UPMEM's 24 KB IRAM.
    fn default() -> Self {
        Iram::new(24 << 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_malloc_fits_next_to_a_kernel() {
        // §IV-A: PIM-malloc is ~1,000 lines — it must fit IRAM along
        // with a realistically sized application kernel.
        let mut iram = Iram::default();
        iram.add_component("application kernel", 250).unwrap();
        iram.add_component("PIM-malloc", 1000).unwrap();
        assert!(iram.available_bytes() > 0);
    }

    #[test]
    fn tcmalloc_cannot_load() {
        // §IV-A: TCMalloc is ~60,000 lines; even 5% of it overflows the
        // 24 KB IRAM.
        let mut iram = Iram::default();
        let err = iram.add_component("TCMalloc", 60_000).unwrap_err();
        assert!(err.image_bytes > iram.capacity);
        assert_eq!(iram.used_bytes(), 0, "failed add must not consume");
        assert!(err.to_string().contains("TCMalloc"));
        // Even a heavily stripped port does not fit.
        assert!(iram.add_component("TCMalloc (5%)", 3_000).is_err());
    }

    #[test]
    fn ledger_accumulates() {
        let mut iram = Iram::new(1000);
        iram.add_component("a", 10).unwrap(); // 180 B
        iram.add_component("b", 20).unwrap(); // 360 B
        assert_eq!(iram.used_bytes(), 540);
        assert_eq!(iram.available_bytes(), 460);
        assert!(iram.add_component("c", 30).is_err());
    }
}
