//! The DPU core model: per-tasklet logical clocks, instruction-issue
//! cost, DMA reservation, and mutexes with busy-wait accounting.
//!
//! A [`DpuSim`] represents one DPU (one DRAM bank's worth of compute).
//! Code "runs" on it by obtaining a [`TaskletCtx`] for a tasklet id and
//! charging costs through it. Workload drivers interleave tasklets by
//! always executing the next request of the tasklet returned by
//! [`DpuSim::next_tasklet`] (the one with the smallest logical clock),
//! which keeps mutex hand-offs and DMA queueing causally ordered.

use crate::cost::{CostModel, Cycles};
use crate::mram::Mram;
use crate::stats::{DramTraffic, TaskletStats};
use crate::trace::{TraceEvent, TraceRecorder};
use crate::wram::Wram;

/// Identifier of a DPU-local mutex allocated via [`DpuSim::alloc_mutex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MutexId(usize);

/// Configuration of one simulated DPU.
#[derive(Debug, Clone)]
pub struct DpuConfig {
    /// Number of tasklets launched (1..=24 on UPMEM hardware).
    pub n_tasklets: usize,
    /// Cycle cost model.
    pub cost: CostModel,
    /// MRAM bank capacity in bytes (64 MB on UPMEM hardware).
    pub mram_bytes: u32,
    /// WRAM scratchpad capacity in bytes (64 KB on UPMEM hardware).
    pub wram_bytes: u32,
}

impl DpuConfig {
    /// Returns the config with a different tasklet count.
    pub fn with_tasklets(mut self, n: usize) -> Self {
        assert!(
            (1..=24).contains(&n),
            "UPMEM DPUs support 1..=24 tasklets, got {n}"
        );
        self.n_tasklets = n;
        self
    }

    /// Returns the config with a different cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for DpuConfig {
    /// UPMEM defaults: 16 tasklets (the common operating point), 64 MB
    /// MRAM, 64 KB WRAM, 350 MHz.
    fn default() -> Self {
        DpuConfig {
            n_tasklets: 16,
            cost: CostModel::default(),
            mram_bytes: 64 << 20,
            wram_bytes: 64 << 10,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct MutexState {
    free_at: Cycles,
    locked_by: Option<usize>,
    acquisitions: u64,
    contended_acquisitions: u64,
}

/// One simulated DPU: clocks, stats, mutexes, DMA engine, MRAM, WRAM.
#[derive(Debug)]
pub struct DpuSim {
    config: DpuConfig,
    clocks: Vec<Cycles>,
    stats: Vec<TaskletStats>,
    mutexes: Vec<MutexState>,
    /// Outstanding DMA occupancy (cycles) not yet drained by elapsed
    /// time — a backlog queue model of the shared engine.
    dma_backlog: u64,
    /// Virtual time of the most recent DMA request.
    dma_last_req: Cycles,
    /// Instructions charged through a [`TaskletCtx`] but not yet
    /// folded into the owing tasklet's clock and stats. Instruction
    /// accounting is linear in the count (fixed issue interval per
    /// DPU), so adjacent `instrs` calls accumulate here and settle in
    /// one step at the next observation point — any DMA, mutex, wait,
    /// trace record, or the creation of the next context. The clock
    /// and stats accessors compensate for a still-pending batch, which
    /// makes the batching unobservable: every readable value equals
    /// what eager per-call accounting would produce.
    pending_instrs: u64,
    /// Tasklet owing `pending_instrs` (meaningful only when nonzero).
    pending_tid: usize,
    traffic: DramTraffic,
    trace: Option<TraceRecorder>,
    mram: Mram,
    wram: Wram,
}

impl DpuSim {
    /// Creates a DPU with all tasklet clocks at zero.
    pub fn new(config: DpuConfig) -> Self {
        let n = config.n_tasklets;
        DpuSim {
            mram: Mram::new(config.mram_bytes),
            wram: Wram::new(config.wram_bytes),
            config,
            clocks: vec![Cycles::ZERO; n],
            stats: vec![TaskletStats::default(); n],
            mutexes: Vec::new(),
            dma_backlog: 0,
            dma_last_req: Cycles::ZERO,
            pending_instrs: 0,
            pending_tid: 0,
            traffic: DramTraffic::default(),
            trace: None,
        }
    }

    /// Turns on per-tasklet event tracing (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceRecorder::new());
    }

    /// The event trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// The configuration this DPU was built with.
    pub fn config(&self) -> &DpuConfig {
        &self.config
    }

    /// Allocates a new DPU-local mutex (UPMEM exposes 56 hardware
    /// mutexes per DPU; we do not enforce that bound).
    pub fn alloc_mutex(&mut self) -> MutexId {
        self.mutexes.push(MutexState::default());
        MutexId(self.mutexes.len() - 1)
    }

    /// Obtains an execution context for tasklet `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not below the configured tasklet count.
    pub fn ctx(&mut self, tid: usize) -> TaskletCtx<'_> {
        assert!(tid < self.config.n_tasklets, "tasklet {tid} out of range");
        self.settle_instrs();
        TaskletCtx { dpu: self, tid }
    }

    /// Folds the pending instruction batch into the owing tasklet's
    /// clock and stats (see `pending_instrs`). Additive, so a settled
    /// batch is byte-identical to the same instructions charged one by
    /// one.
    fn settle_instrs(&mut self) {
        let n = self.pending_instrs;
        if n == 0 {
            return;
        }
        self.pending_instrs = 0;
        let cost = &self.config.cost;
        let interval = cost.issue_interval(self.config.n_tasklets);
        let run = n * cost.pipeline_depth;
        let s = &mut self.stats[self.pending_tid];
        s.run += Cycles(run);
        s.idle_etc += Cycles(n * interval - run);
        s.instrs += n;
        self.clocks[self.pending_tid] += Cycles(n * interval);
    }

    /// Clock adjustment tasklet `tid` is owed by the pending batch.
    fn pending_cycles(&self, tid: usize) -> Cycles {
        if self.pending_instrs == 0 || self.pending_tid != tid {
            return Cycles::ZERO;
        }
        let cost = &self.config.cost;
        Cycles(self.pending_instrs * cost.issue_interval(self.config.n_tasklets))
    }

    /// The tasklet with the smallest logical clock — the one whose next
    /// request should execute to keep virtual time causally ordered.
    pub fn next_tasklet(&self) -> usize {
        (0..self.clocks.len())
            .min_by_key(|&i| self.clock(i))
            .expect("DPU has at least one tasklet")
    }

    /// Current logical time of tasklet `tid`.
    pub fn clock(&self, tid: usize) -> Cycles {
        self.clocks[tid] + self.pending_cycles(tid)
    }

    /// The largest tasklet clock — the DPU-wide finish time.
    pub fn max_clock(&self) -> Cycles {
        (0..self.clocks.len())
            .map(|i| self.clock(i))
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Statistics of tasklet `tid`.
    pub fn tasklet_stats(&self, tid: usize) -> TaskletStats {
        let mut s = self.stats[tid];
        self.compensate(tid, &mut s);
        s
    }

    /// Sum of all tasklets' statistics.
    pub fn total_stats(&self) -> TaskletStats {
        let mut total = self
            .stats
            .iter()
            .fold(TaskletStats::default(), |acc, s| acc.merged(s));
        self.compensate(self.pending_tid, &mut total);
        total
    }

    /// Adds the pending batch's share to a stats copy for tasklet
    /// `tid` (no-op unless `tid` owes the batch).
    fn compensate(&self, tid: usize, s: &mut TaskletStats) {
        let n = self.pending_instrs;
        if n == 0 || self.pending_tid != tid {
            return;
        }
        let cost = &self.config.cost;
        let run = n * cost.pipeline_depth;
        s.run += Cycles(run);
        s.idle_etc += Cycles(n * cost.issue_interval(self.config.n_tasklets) - run);
        s.instrs += n;
    }

    /// Aggregate MRAM↔WRAM traffic since construction.
    pub fn traffic(&self) -> DramTraffic {
        self.traffic
    }

    /// Number of times a mutex was acquired, and how many of those
    /// acquisitions had to wait.
    pub fn mutex_stats(&self, m: MutexId) -> (u64, u64) {
        let s = &self.mutexes[m.0];
        (s.acquisitions, s.contended_acquisitions)
    }

    /// Shared read access to the MRAM bank.
    pub fn mram(&self) -> &Mram {
        &self.mram
    }

    /// Mutable access to the MRAM bank (host-side initialization).
    pub fn mram_mut(&mut self) -> &mut Mram {
        &mut self.mram
    }

    /// The WRAM capacity ledger.
    pub fn wram(&self) -> &Wram {
        &self.wram
    }

    /// Mutable access to the WRAM capacity ledger.
    pub fn wram_mut(&mut self) -> &mut Wram {
        &mut self.wram
    }
}

/// Execution context of one tasklet on one DPU.
///
/// All costs a PIM program would incur are charged through this handle:
/// instruction execution, DMA transfers, and mutex operations. The
/// context borrows the DPU mutably, so only one tasklet's request is in
/// flight at a time — the virtual-time model, not OS threads, provides
/// the interleaving.
#[derive(Debug)]
pub struct TaskletCtx<'a> {
    dpu: &'a mut DpuSim,
    tid: usize,
}

impl TaskletCtx<'_> {
    /// This context's tasklet id.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The tasklet's current logical time.
    #[inline]
    pub fn now(&self) -> Cycles {
        // Compensated for batched-but-unsettled instructions, so lazy
        // accumulation is unobservable (see `DpuSim::pending_instrs`).
        self.dpu.clocks[self.tid] + self.dpu.pending_cycles(self.tid)
    }

    /// The DPU cost model.
    pub fn cost(&self) -> CostModel {
        self.dpu.config.cost
    }

    /// Charges `n` instructions of compute.
    ///
    /// `n × pipeline_depth` cycles are accounted as *run*; any extra
    /// spacing from issue-slot sharing (when more tasklets than pipeline
    /// stages are active) is accounted as *idle (etc)*.
    #[inline]
    pub fn instrs(&mut self, n: u64) {
        if self.dpu.trace.is_none() {
            // Lazy batch: accounting is linear in `n`, so adjacent
            // charges accumulate and settle together (byte-identical;
            // see `DpuSim::pending_instrs`). Tracing needs one event
            // per charge, so it takes the eager path below.
            self.dpu.pending_tid = self.tid;
            self.dpu.pending_instrs += n;
            return;
        }
        let cost = &self.dpu.config.cost;
        let interval = cost.issue_interval(self.dpu.config.n_tasklets);
        let run = n * cost.pipeline_depth;
        let share = n * interval - run;
        let s = &mut self.dpu.stats[self.tid];
        s.run += Cycles(run);
        s.idle_etc += Cycles(share);
        s.instrs += n;
        self.dpu.clocks[self.tid] += Cycles(n * interval);
        if let Some(trace) = &mut self.dpu.trace {
            trace.record(
                self.tid,
                self.dpu.clocks[self.tid],
                TraceEvent::Instrs { count: n },
            );
        }
    }

    /// Charges `n` instructions of *busy-wait* compute (spin loops).
    ///
    /// Identical timing to [`TaskletCtx::instrs`], but the time is
    /// classified as busy-wait. Used by higher-level primitives; mutex
    /// waits already account this automatically.
    pub fn spin_instrs(&mut self, n: u64) {
        self.dpu.settle_instrs();
        let cost = &self.dpu.config.cost;
        let interval = cost.issue_interval(self.dpu.config.n_tasklets);
        let s = &mut self.dpu.stats[self.tid];
        s.busy_wait += Cycles(n * interval);
        s.instrs += n;
        self.dpu.clocks[self.tid] += Cycles(n * interval);
    }

    /// Blocks the tasklet until absolute time `t` (no-op if in the
    /// past), accounting the gap as *idle (etc)*.
    pub fn wait_until(&mut self, t: Cycles) {
        self.dpu.settle_instrs();
        let now = self.now();
        if t > now {
            self.dpu.stats[self.tid].idle_etc += t - now;
            self.dpu.clocks[self.tid] = t;
        }
    }

    #[inline]
    fn dma(&mut self, bytes: u32, is_read: bool) {
        self.dpu.settle_instrs();
        let now = self.now();
        // Backlog queue model of the shared DMA engine: each transfer
        // occupies the engine for its beat time; elapsed time since the
        // previous request drains the backlog. A requester waits out
        // the remaining backlog (queueing) plus its own transfer
        // latency (setup + beats). This keeps the engine a throughput
        // resource without serializing tasklets across the virtual-time
        // gaps the request-atomic scheduler creates.
        let drained = now.saturating_sub(self.dpu.dma_last_req);
        let backlog = self.dpu.dma_backlog.saturating_sub(drained.0);
        let beats = u64::from(bytes).div_ceil(8);
        let occupancy = beats * self.dpu.config.cost.dma_cycles_per_8b;
        let latency = Cycles(self.dpu.config.cost.dma_cycles(bytes));
        self.dpu.dma_backlog = backlog + occupancy;
        self.dpu.dma_last_req = now.max(self.dpu.dma_last_req);
        let end = now + Cycles(backlog) + latency;
        let s = &mut self.dpu.stats[self.tid];
        s.idle_mem += Cycles(backlog) + latency;
        self.dpu.clocks[self.tid] = end;
        if let Some(trace) = &mut self.dpu.trace {
            trace.record(
                self.tid,
                end,
                TraceEvent::Dma {
                    bytes,
                    queued: Cycles(backlog),
                    is_read,
                },
            );
        }
        self.dpu.traffic.transfers += 1;
        if is_read {
            self.dpu.traffic.bytes_read += u64::from(bytes);
        } else {
            self.dpu.traffic.bytes_written += u64::from(bytes);
        }
    }

    /// Charges a DMA read of `bytes` from MRAM to WRAM (latency only).
    #[inline]
    pub fn mram_read(&mut self, _addr: u32, bytes: u32) {
        self.dma(bytes, true);
    }

    /// Charges a DMA write of `bytes` from WRAM to MRAM (latency only).
    #[inline]
    pub fn mram_write(&mut self, _addr: u32, bytes: u32) {
        self.dma(bytes, false);
    }

    /// DMA read that also copies bytes out of the MRAM byte store.
    pub fn mram_read_bytes(&mut self, addr: u32, buf: &mut [u8]) {
        self.dma(buf.len() as u32, true);
        self.dpu.mram.read(addr, buf);
    }

    /// DMA write that also copies bytes into the MRAM byte store.
    pub fn mram_write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.dma(data.len() as u32, false);
        self.dpu.mram.write(addr, data);
    }

    /// Acquires a mutex, spinning (virtually) until it is free.
    ///
    /// The gap between the request and the grant is accounted as
    /// busy-wait, matching UPMEM's `mutex_lock` spin loop.
    ///
    /// # Panics
    ///
    /// Panics if this tasklet already holds the mutex (self-deadlock).
    pub fn mutex_lock(&mut self, m: MutexId) {
        self.dpu.settle_instrs();
        let now = self.now();
        let state = &mut self.dpu.mutexes[m.0];
        assert_ne!(
            state.locked_by,
            Some(self.tid),
            "tasklet {} self-deadlocked on mutex {:?}",
            self.tid,
            m
        );
        let grant = now.max(state.free_at);
        state.acquisitions += 1;
        if grant > now {
            state.contended_acquisitions += 1;
            self.dpu.stats[self.tid].busy_wait += grant - now;
        }
        state.locked_by = Some(self.tid);
        self.dpu.clocks[self.tid] = grant;
        let waited = grant - now;
        if let Some(trace) = &mut self.dpu.trace {
            trace.record(self.tid, grant, TraceEvent::MutexAcquired { waited });
        }
    }

    /// Releases a mutex previously acquired by this tasklet.
    ///
    /// # Panics
    ///
    /// Panics if the mutex is not held by this tasklet.
    pub fn mutex_unlock(&mut self, m: MutexId) {
        self.dpu.settle_instrs();
        let now = self.now();
        let state = &mut self.dpu.mutexes[m.0];
        assert_eq!(
            state.locked_by,
            Some(self.tid),
            "tasklet {} released mutex {:?} it does not hold",
            self.tid,
            m
        );
        state.locked_by = None;
        state.free_at = now;
        if let Some(trace) = &mut self.dpu.trace {
            trace.record(self.tid, now, TraceEvent::MutexReleased);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpu(tasklets: usize) -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(tasklets))
    }

    #[test]
    fn single_tasklet_instr_cost_is_pipeline_depth() {
        let mut d = dpu(1);
        d.ctx(0).instrs(10);
        assert_eq!(d.clock(0), Cycles(110));
        assert_eq!(d.tasklet_stats(0).run, Cycles(110));
        assert_eq!(d.tasklet_stats(0).idle_etc, Cycles::ZERO);
        assert_eq!(d.tasklet_stats(0).instrs, 10);
    }

    #[test]
    fn sixteen_tasklets_share_issue_slots() {
        let mut d = dpu(16);
        d.ctx(0).instrs(10);
        // interval = max(11, 16) = 16 cycles per instruction.
        assert_eq!(d.clock(0), Cycles(160));
        assert_eq!(d.tasklet_stats(0).run, Cycles(110));
        assert_eq!(d.tasklet_stats(0).idle_etc, Cycles(50));
    }

    #[test]
    fn mutex_grants_serialize_and_account_busy_wait() {
        let mut d = dpu(2);
        let m = d.alloc_mutex();
        {
            let mut c = d.ctx(0);
            c.mutex_lock(m);
            c.instrs(100); // critical section: 1100 cycles
            c.mutex_unlock(m);
        }
        {
            let mut c = d.ctx(1);
            c.mutex_lock(m); // requested at t=0, granted at t=1100
            c.mutex_unlock(m);
        }
        assert_eq!(d.tasklet_stats(1).busy_wait, Cycles(1100));
        assert_eq!(d.clock(1), Cycles(1100));
        let (acq, contended) = d.mutex_stats(m);
        assert_eq!((acq, contended), (2, 1));
    }

    #[test]
    fn uncontended_mutex_is_free() {
        let mut d = dpu(2);
        let m = d.alloc_mutex();
        let mut c = d.ctx(0);
        c.mutex_lock(m);
        c.mutex_unlock(m);
        assert_eq!(d.tasklet_stats(0).busy_wait, Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "self-deadlock")]
    fn relocking_held_mutex_panics() {
        let mut d = dpu(1);
        let m = d.alloc_mutex();
        let mut c = d.ctx(0);
        c.mutex_lock(m);
        c.mutex_lock(m);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unlocking_foreign_mutex_panics() {
        let mut d = dpu(2);
        let m = d.alloc_mutex();
        d.ctx(0).mutex_lock(m);
        d.ctx(1).mutex_unlock(m);
    }

    #[test]
    fn dma_queueing_accounts_idle_memory() {
        let mut d = dpu(2);
        d.ctx(0).mram_read(0, 2048); // occupies the DMA engine
        let busy_until = d.clock(0);
        d.ctx(1).mram_read(0, 8); // must queue behind tasklet 0
        let s1 = d.tasklet_stats(1);
        assert!(s1.idle_mem >= busy_until - Cycles::ZERO);
        assert!(d.clock(1) > busy_until);
    }

    #[test]
    fn dma_traffic_is_counted_by_direction() {
        let mut d = dpu(1);
        d.ctx(0).mram_read(0, 100);
        d.ctx(0).mram_write(0, 50);
        let t = d.traffic();
        assert_eq!(t.bytes_read, 100);
        assert_eq!(t.bytes_written, 50);
        assert_eq!(t.transfers, 2);
    }

    #[test]
    fn mram_data_moves_through_dma_helpers() {
        let mut d = dpu(1);
        d.ctx(0).mram_write_bytes(64, b"abcd");
        let mut buf = [0u8; 4];
        d.ctx(0).mram_read_bytes(64, &mut buf);
        assert_eq!(&buf, b"abcd");
        assert!(d.traffic().total_bytes() == 8);
    }

    #[test]
    fn next_tasklet_returns_laggard() {
        let mut d = dpu(3);
        d.ctx(0).instrs(10);
        d.ctx(1).instrs(5);
        assert_eq!(d.next_tasklet(), 2); // clock 0
        d.ctx(2).instrs(20);
        assert_eq!(d.next_tasklet(), 1); // smallest nonzero clock
    }

    #[test]
    fn wait_until_accounts_idle_etc() {
        let mut d = dpu(1);
        d.ctx(0).wait_until(Cycles(500));
        assert_eq!(d.clock(0), Cycles(500));
        assert_eq!(d.tasklet_stats(0).idle_etc, Cycles(500));
        // Waiting for the past is a no-op.
        d.ctx(0).wait_until(Cycles(100));
        assert_eq!(d.clock(0), Cycles(500));
    }

    #[test]
    fn spin_instrs_classify_as_busy_wait() {
        let mut d = dpu(1);
        d.ctx(0).spin_instrs(10);
        assert_eq!(d.tasklet_stats(0).busy_wait, Cycles(110));
        assert_eq!(d.tasklet_stats(0).run, Cycles::ZERO);
    }

    #[test]
    fn total_stats_merges_tasklets() {
        let mut d = dpu(2);
        d.ctx(0).instrs(10);
        d.ctx(1).instrs(20);
        assert_eq!(d.total_stats().instrs, 30);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ctx_out_of_range_panics() {
        let mut d = dpu(1);
        let _ = d.ctx(1);
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn too_many_tasklets_rejected() {
        let _ = DpuConfig::default().with_tasklets(25);
    }
}
