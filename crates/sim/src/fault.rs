//! Deterministic, seeded fault injection for the simulated fleet.
//!
//! Real PIM deployments do not ship perfect hardware: the PrIM
//! benchmarking effort reports UPMEM systems with faulty or disabled
//! DPUs straight from the factory (e.g. 2,524 usable of 2,560), ranks
//! that drop transfers, and long-tail stragglers. Every engine in this
//! workspace used to assume 100% healthy capacity; [`FaultPlan`] is the
//! first-class fault model that lets them stop.
//!
//! The plan is *declarative and stateless*: a handful of plain scalars
//! (probabilities, a seed, a horizon) from which every fault decision
//! is derived by hashing the fault's identity — a DPU index, a
//! transfer-window ordinal, a shard index. Two consequences fall out:
//!
//! 1. **Determinism by construction.** A decision is a pure function
//!    of `(plan, identity)`, never of wall clock, thread schedule, or
//!    iteration order. The same plan produces byte-identical fault
//!    traces across [`crate::ExecPolicy`] values and worker counts,
//!    which is the workspace's standing contract.
//! 2. **Zero-cost opt-out.** [`FaultPlan::none`] (the default) has
//!    every probability at zero; engines check [`FaultPlan::enabled`]
//!    once and skip the fault paths entirely, so fault-free runs stay
//!    byte-identical to a build without the subsystem.
//!
//! Fault classes modeled:
//!
//! * **Dead on arrival** ([`FaultPlan::dead_frac`]) — the faulty-part
//!   model: a seeded subset of DPUs never worked.
//! * **Mid-run kills** ([`FaultPlan::kill_frac`]) — a DPU dies at a
//!   seeded simulated timestamp inside
//!   [`FaultPlan::kill_horizon_ns`]; in-flight work must be
//!   re-dispatched by whoever routed it there.
//! * **Transfer faults** ([`FaultPlan::xfer_fail_prob`],
//!   [`FaultPlan::xfer_straggle_prob`]) — an individual rank shard of
//!   a [`crate::TransferPlan`] fails outright (its payload never
//!   lands) or straggles by [`FaultPlan::straggle_factor`]× its data
//!   time, priced through [`crate::ShardedXfer::estimate_with_faults`].
//! * **Allocator faults** ([`FaultPlan::corrupt_free_prob`],
//!   [`FaultPlan::oom_pressure_frac`]) — corrupted-free attempts that
//!   the allocator's frame-table validation must catch and quarantine
//!   (never panic), and heap-exhaustion pressure that forces the
//!   out-of-memory paths to be exercised.
//!
//! ```
//! use pim_sim::FaultPlan;
//!
//! let plan = FaultPlan::chaos(7);
//! let dead: Vec<usize> = (0..2560).filter(|&d| plan.dead_on_arrival(d)).collect();
//! // Seeded and deterministic: the same plan names the same DPUs.
//! assert_eq!(dead, (0..2560).filter(|&d| plan.dead_on_arrival(d)).collect::<Vec<_>>());
//! // ~5% of the fleet, like the PrIM-reported faulty parts.
//! assert!(dead.len() > 2560 / 40 && dead.len() < 2560 / 10);
//! // The default plan is a no-op.
//! assert!(!FaultPlan::none().enabled());
//! assert!((0..2560).all(|d| !FaultPlan::none().dead_on_arrival(d)));
//! ```

// The fault layer exists so failure handling never panics; hold it to
// that standard at compile time (tests may still unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use serde::{Deserialize, Serialize};

/// Stream salt separating dead-on-arrival decisions.
const STREAM_DOA: u64 = 0xFA11_0001_D0A0_0001;
/// Stream salt separating which-DPU-gets-killed decisions.
const STREAM_KILL: u64 = 0xFA11_0002_0000_0002;
/// Stream salt separating when-a-DPU-dies decisions.
const STREAM_KILL_AT: u64 = 0xFA11_0003_0000_0003;
/// Stream salt separating transfer-shard outcomes.
const STREAM_XFER: u64 = 0xFA11_0004_0000_0004;
/// Stream salt separating corrupted-free injection.
const STREAM_CORRUPT: u64 = 0xFA11_0005_0000_0005;

/// Finalizer of splitmix64: a stateless 64-bit mixer with full
/// avalanche, the workhorse behind every seeded fault decision.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Outcome of one rank shard of a transfer under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardFault {
    /// The shard transfers normally.
    None,
    /// The shard fails outright: its payload never lands and the
    /// sender must retry or drop.
    Fail,
    /// The shard completes but straggles by
    /// [`FaultPlan::straggle_factor`]× its data time.
    Straggle,
}

/// A declarative, seeded fault schedule — plain `Copy` data, so it
/// rides inside [`crate::SimContext`] like every other knob.
///
/// All probabilities are in `[0, 1]`; [`FaultPlan::none`] (the
/// `Default`) disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault streams (independent of the workload seed, so
    /// the same traffic can be replayed under different fault draws).
    pub seed: u64,
    /// Fraction of DPUs dead on arrival (faulty-part model).
    pub dead_frac: f64,
    /// Fraction of (initially healthy) DPUs killed mid-run.
    pub kill_frac: f64,
    /// Kill timestamps draw uniformly from `[0, kill_horizon_ns)`;
    /// zero disables kills even when [`FaultPlan::kill_frac`] is set.
    pub kill_horizon_ns: u64,
    /// Probability an individual rank shard of a transfer fails.
    pub xfer_fail_prob: f64,
    /// Probability an individual rank shard straggles.
    pub xfer_straggle_prob: f64,
    /// Straggling shards take `(1 + straggle_factor)`× their data time.
    pub straggle_factor: f64,
    /// Probability per opportunity that a corrupted free is injected
    /// against the allocator (caught by frame-table validation).
    pub corrupt_free_prob: f64,
    /// Fraction of the heap pre-stolen to apply exhaustion pressure
    /// (exercises the out-of-memory paths instead of assuming an
    /// infinite heap).
    pub oom_pressure_frac: f64,
}

impl FaultPlan {
    /// The no-fault plan: every probability zero. Engines treat it as
    /// "subsystem off" and skip the fault paths entirely.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            dead_frac: 0.0,
            kill_frac: 0.0,
            kill_horizon_ns: 0,
            xfer_fail_prob: 0.0,
            xfer_straggle_prob: 0.0,
            straggle_factor: 0.0,
            corrupt_free_prob: 0.0,
            oom_pressure_frac: 0.0,
        }
    }

    /// The standard chaos preset used by the `repro chaos` experiment
    /// and the resilience CI gates: 5% dead DPUs (the PrIM-reported
    /// faulty-part rate), 2% mid-run kills over a 50 ms horizon, 1% of
    /// shards failing, 2% straggling at 4× — a fleet that is unhealthy
    /// enough to matter and healthy enough that a self-healing
    /// frontend should still clear 90% goodput.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            dead_frac: 0.05,
            kill_frac: 0.02,
            kill_horizon_ns: 50_000_000,
            xfer_fail_prob: 0.01,
            xfer_straggle_prob: 0.02,
            straggle_factor: 4.0,
            corrupt_free_prob: 0.05,
            oom_pressure_frac: 0.0,
        }
    }

    /// This plan with a different fault seed.
    pub fn with_seed(self, seed: u64) -> Self {
        FaultPlan { seed, ..self }
    }

    /// True if any fault class can fire. Engines use this as the
    /// single opt-out check guarding their fault paths.
    pub fn enabled(&self) -> bool {
        self.dead_frac > 0.0
            || (self.kill_frac > 0.0 && self.kill_horizon_ns > 0)
            || self.xfer_enabled()
            || self.corrupt_free_prob > 0.0
            || self.oom_pressure_frac > 0.0
    }

    /// True if transfer-shard faults can fire.
    pub fn xfer_enabled(&self) -> bool {
        self.xfer_fail_prob > 0.0 || self.xfer_straggle_prob > 0.0
    }

    /// A uniform draw in `[0, 1)` for fault identity `(stream, a, b)` —
    /// the pure function behind every decision.
    fn unit(&self, stream: u64, a: u64, b: u64) -> f64 {
        let h = mix64(
            mix64(self.seed ^ stream)
                ^ mix64(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                ^ mix64(b.wrapping_add(0x6a09_e667_f3bc_c909)),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True if `dpu` is dead on arrival under this plan.
    pub fn dead_on_arrival(&self, dpu: usize) -> bool {
        self.dead_frac > 0.0 && self.unit(STREAM_DOA, dpu as u64, 0) < self.dead_frac
    }

    /// Simulated nanosecond at which `dpu` dies mid-run, if it does.
    /// Dead-on-arrival DPUs never also draw a kill (they are already
    /// gone), and a zero horizon disables kills.
    pub fn kill_time_ns(&self, dpu: usize) -> Option<u64> {
        if self.kill_frac <= 0.0 || self.kill_horizon_ns == 0 || self.dead_on_arrival(dpu) {
            return None;
        }
        if self.unit(STREAM_KILL, dpu as u64, 0) < self.kill_frac {
            let at = self.unit(STREAM_KILL_AT, dpu as u64, 1) * self.kill_horizon_ns as f64;
            Some(at as u64)
        } else {
            None
        }
    }

    /// True if `dpu` is healthy at simulated time `now_ns`.
    pub fn healthy_at(&self, dpu: usize, now_ns: u64) -> bool {
        if self.dead_on_arrival(dpu) {
            return false;
        }
        match self.kill_time_ns(dpu) {
            Some(at) => now_ns < at,
            None => true,
        }
    }

    /// Number of DPUs in `0..n_dpus` that are healthy at time 0.
    pub fn initial_healthy(&self, n_dpus: usize) -> usize {
        (0..n_dpus).filter(|&d| !self.dead_on_arrival(d)).count()
    }

    /// Outcome of rank shard `shard` of the transfer identified by
    /// `nonce` (callers use a per-engine transfer ordinal, which is
    /// deterministic in single-threaded event loops).
    pub fn shard_fault(&self, nonce: u64, shard: u64) -> ShardFault {
        if !self.xfer_enabled() {
            return ShardFault::None;
        }
        let u = self.unit(STREAM_XFER, nonce, shard);
        if u < self.xfer_fail_prob {
            ShardFault::Fail
        } else if u < self.xfer_fail_prob + self.xfer_straggle_prob {
            ShardFault::Straggle
        } else {
            ShardFault::None
        }
    }

    /// A corrupted address to free against the allocator at injection
    /// opportunity `nonce`, if the plan fires one. The address is an
    /// arbitrary seeded 32-bit value — misaligned, interior,
    /// out-of-heap — exactly the garbage a latent bug would feed
    /// `pim_free`; frame-table validation must reject it.
    pub fn corrupt_free_addr(&self, nonce: u64) -> Option<u32> {
        if self.corrupt_free_prob <= 0.0 {
            return None;
        }
        if self.unit(STREAM_CORRUPT, nonce, 0) < self.corrupt_free_prob {
            Some(
                mix64(self.seed ^ STREAM_CORRUPT ^ nonce.wrapping_mul(0xD6E8_FEB8_6659_FD93))
                    as u32,
            )
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(!p.enabled());
        for d in 0..512 {
            assert!(!p.dead_on_arrival(d));
            assert_eq!(p.kill_time_ns(d), None);
            assert!(p.healthy_at(d, u64::MAX));
        }
        for n in 0..256 {
            assert_eq!(p.shard_fault(n, n), ShardFault::None);
            assert_eq!(p.corrupt_free_addr(n), None);
        }
        assert_eq!(p.initial_healthy(512), 512);
    }

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let p = FaultPlan::chaos(42);
        for d in 0..512 {
            assert_eq!(p.dead_on_arrival(d), p.dead_on_arrival(d));
            assert_eq!(p.kill_time_ns(d), p.kill_time_ns(d));
        }
        for nonce in 0..64 {
            for shard in 0..8 {
                assert_eq!(p.shard_fault(nonce, shard), p.shard_fault(nonce, shard));
            }
            assert_eq!(p.corrupt_free_addr(nonce), p.corrupt_free_addr(nonce));
        }
    }

    #[test]
    fn different_seeds_draw_different_fleets() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let dead = |p: &FaultPlan| (0..2560).filter(|&d| p.dead_on_arrival(d)).count();
        // Both near 5%, but not the same set.
        assert!(dead(&a) > 64 && dead(&a) < 256);
        assert!(dead(&b) > 64 && dead(&b) < 256);
        assert!(
            (0..2560).any(|d| a.dead_on_arrival(d) != b.dead_on_arrival(d)),
            "seeds must select different DPUs"
        );
    }

    #[test]
    fn fractions_track_probabilities_at_scale() {
        let p = FaultPlan {
            dead_frac: 0.10,
            kill_frac: 0.10,
            kill_horizon_ns: 1_000_000,
            ..FaultPlan::none()
        };
        let n = 20_000;
        let dead = (0..n).filter(|&d| p.dead_on_arrival(d)).count() as f64 / n as f64;
        assert!((dead - 0.10).abs() < 0.01, "dead fraction {dead}");
        let killed = (0..n).filter(|&d| p.kill_time_ns(d).is_some()).count() as f64 / n as f64;
        // Kills only draw among non-DoA DPUs: ~0.9 * 0.1.
        assert!((killed - 0.09).abs() < 0.01, "killed fraction {killed}");
    }

    #[test]
    fn kill_times_live_inside_the_horizon_and_flip_health() {
        let p = FaultPlan {
            kill_frac: 0.5,
            kill_horizon_ns: 1_000_000,
            ..FaultPlan::none()
        };
        let mut saw_kill = false;
        for d in 0..256 {
            if let Some(at) = p.kill_time_ns(d) {
                saw_kill = true;
                assert!(at < 1_000_000);
                assert!(p.healthy_at(d, at.saturating_sub(1)));
                assert!(!p.healthy_at(d, at));
            } else {
                assert!(p.healthy_at(d, u64::MAX));
            }
        }
        assert!(saw_kill, "half the fleet draws a kill");
    }

    #[test]
    fn doa_dpus_never_draw_a_kill() {
        let p = FaultPlan {
            dead_frac: 0.5,
            kill_frac: 1.0,
            kill_horizon_ns: 1_000_000,
            ..FaultPlan::none()
        };
        for d in 0..512 {
            if p.dead_on_arrival(d) {
                assert_eq!(p.kill_time_ns(d), None);
                assert!(!p.healthy_at(d, 0));
            }
        }
    }

    #[test]
    fn shard_faults_split_between_fail_and_straggle() {
        let p = FaultPlan {
            xfer_fail_prob: 0.2,
            xfer_straggle_prob: 0.3,
            straggle_factor: 2.0,
            ..FaultPlan::none()
        };
        let mut fails = 0;
        let mut straggles = 0;
        let n = 20_000u64;
        for nonce in 0..n {
            match p.shard_fault(nonce, nonce % 8) {
                ShardFault::Fail => fails += 1,
                ShardFault::Straggle => straggles += 1,
                ShardFault::None => {}
            }
        }
        let (f, s) = (fails as f64 / n as f64, straggles as f64 / n as f64);
        assert!((f - 0.2).abs() < 0.02, "fail fraction {f}");
        assert!((s - 0.3).abs() < 0.02, "straggle fraction {s}");
    }

    #[test]
    fn corrupt_frees_fire_at_the_configured_rate() {
        let p = FaultPlan {
            corrupt_free_prob: 0.25,
            ..FaultPlan::none()
        };
        let n = 20_000u64;
        let fired = (0..n).filter(|&i| p.corrupt_free_addr(i).is_some()).count() as f64 / n as f64;
        assert!((fired - 0.25).abs() < 0.02, "corrupt-free rate {fired}");
        // Injected addresses vary (they are garbage, not a fixed value).
        let addrs: std::collections::BTreeSet<u32> =
            (0..n).filter_map(|i| p.corrupt_free_addr(i)).collect();
        assert!(addrs.len() > 100);
    }

    #[test]
    fn chaos_preset_is_enabled_and_reseedable() {
        let p = FaultPlan::chaos(9);
        assert!(p.enabled());
        assert!(p.xfer_enabled());
        let reseeded = p.with_seed(10);
        assert_eq!(reseeded.seed, 10);
        assert_eq!(
            FaultPlan {
                seed: 9,
                ..reseeded
            },
            p
        );
    }
}
