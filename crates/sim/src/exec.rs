//! Topology-aware persistent executor for multi-DPU sweeps.
//!
//! Real UPMEM hosts are NUMA machines: rank worker threads run on two
//! (or more) sockets, and a DPU's host-side state — here, the
//! [`crate::DpuSim`] being re-simulated — lives in the memory of the
//! node that last touched it. The PrIM benchmarking work shows host
//! thread placement dominating end-to-end numbers at high DPU counts,
//! which is exactly the regime the paper's multi-DPU figures aggregate
//! over. This module replaces the old spawn-per-call, topology-oblivious
//! `parallel_indexed` with a persistent [`Executor`]:
//!
//! * a modeled [`HostTopology`] (`nodes × cores_per_node`), detected
//!   from the machine and overridable via `PIM_HOST_TOPO=NxC` for
//!   reproducible tests;
//! * **sticky index→node placement**: the executor remembers, across
//!   calls, which node last simulated each index, and re-deals the
//!   index to a worker on that node, so a DPU's state is re-simulated
//!   where its memory already is;
//! * a **cross-node penalty model**: placement quality is observable in
//!   *simulated* results, not just wall clock — every first touch and
//!   every cross-node migration of an index is priced by the new
//!   [`TransferModel::cross_node_us`] term and reported per epoch in an
//!   [`EpochReport`];
//! * **bounded work-stealing** ([`ExecPolicy::StickySteal`]) for
//!   imbalanced sweeps: a worker whose queue drains steals single
//!   indices from the *back* of the fullest remaining queue, so
//!   monotone-cost sweeps no longer pile their heavy tail onto one
//!   worker.
//!
//! Determinism is non-negotiable: `f` must be pure with respect to
//! shared state, results are merged by index, and the *placement
//! model* is a pure function of `(policy, topology, n, epoch, ledger)`
//! — never of the OS steal schedule — so every simulated number is
//! byte-identical for any worker count and any interleaving. Only wall
//! clock and the schedule diagnostics ([`EpochReport::steals`],
//! [`EpochReport::per_worker_items`]) vary.
//!
//! The executor persists its placement state (ledger, epoch counter)
//! across calls; the OS worker crew itself is leased per epoch via
//! [`std::thread::scope`], because handing a non-`'static` sweep
//! closure to a detached thread is impossible under this crate's
//! `#![forbid(unsafe_code)]` — leasing a handful of threads costs
//! microseconds, while placement (the part that needs memory) lives in
//! the long-lived [`Executor`].
//!
//! [`parallel_indexed`] remains as a thin facade over
//! [`Executor::global`] with the default policy.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use serde::{Deserialize, Serialize};

use crate::host::TransferModel;

/// Environment variable overriding the modeled host topology
/// (`PIM_HOST_TOPO=2x4` → 2 NUMA nodes × 4 cores each).
pub const TOPOLOGY_ENV: &str = "PIM_HOST_TOPO";

/// Environment variable overriding the executor's worker count
/// (`PIM_EXEC_WORKERS=1` forces single-threaded execution — the CI
/// matrix gates determinism with it).
pub const WORKERS_ENV: &str = "PIM_EXEC_WORKERS";

/// Locks a mutex, ignoring poisoning: the executor's shared structures
/// (queues, ledger) are only ever mutated outside user code, so a
/// poisoned lock means a sibling worker panicked *in `f`* — the panic
/// is re-raised after all workers drain, and the data itself is sound.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The modeled host machine: NUMA nodes × cores per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostTopology {
    /// NUMA nodes (sockets) the host schedules worker threads across.
    pub nodes: usize,
    /// Hardware threads per node.
    pub cores_per_node: usize,
}

impl HostTopology {
    /// A topology with `nodes` nodes of `cores_per_node` cores each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn uniform(nodes: usize, cores_per_node: usize) -> Self {
        assert!(
            nodes > 0 && cores_per_node > 0,
            "a host has at least one node with at least one core"
        );
        HostTopology {
            nodes,
            cores_per_node,
        }
    }

    /// Parses a `NODESxCORES` spec (e.g. `2x4`), as accepted by the
    /// [`TOPOLOGY_ENV`] override.
    pub fn parse(spec: &str) -> Option<Self> {
        let (nodes, cores) = spec.trim().split_once(['x', 'X'])?;
        let nodes: usize = nodes.trim().parse().ok()?;
        let cores: usize = cores.trim().parse().ok()?;
        (nodes > 0 && cores > 0).then(|| HostTopology::uniform(nodes, cores))
    }

    /// Detects the host topology: the [`TOPOLOGY_ENV`] override if set,
    /// else the NUMA node count from sysfs (Linux) with the machine's
    /// hardware threads split evenly, else a single node holding every
    /// hardware thread.
    pub fn detect() -> Self {
        if let Some(t) = std::env::var(TOPOLOGY_ENV)
            .ok()
            .as_deref()
            .and_then(HostTopology::parse)
        {
            return t;
        }
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let nodes = Self::sysfs_nodes().unwrap_or(1).max(1);
        HostTopology::uniform(nodes, (cores / nodes).max(1))
    }

    /// NUMA node count per `/sys/devices/system/node/node*`, if
    /// readable.
    fn sysfs_nodes() -> Option<usize> {
        let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
        let count = entries
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("node"))
                    .is_some_and(|rest| {
                        !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())
                    })
            })
            .count();
        (count > 0).then_some(count)
    }

    /// Total hardware threads across all nodes.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// How an [`Executor`] places and schedules a sweep's indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExecPolicy {
    /// Run every index inline on the calling thread. The reference
    /// engine the others are tested against.
    Serial,
    /// Spawn-per-call behaviour of the old engine: indices are dealt
    /// round-robin across workers with no regard for where an index's
    /// state last lived; the placement model charges the re-placement
    /// the OS would inflict on unpinned threads.
    Oblivious,
    /// Sticky index→node placement: each index is dealt to a worker on
    /// the node that last simulated it (first touches split the index
    /// range into contiguous per-node blocks). No stealing — a
    /// monotone-cost sweep keeps its imbalance.
    Sticky,
    /// [`ExecPolicy::Sticky`] placement plus bounded work-stealing:
    /// a drained worker steals single indices from the back of the
    /// fullest remaining queue. The default.
    #[default]
    StickySteal,
}

impl ExecPolicy {
    /// Every policy, in documentation order.
    pub const ALL: [ExecPolicy; 4] = [
        ExecPolicy::Serial,
        ExecPolicy::Oblivious,
        ExecPolicy::Sticky,
        ExecPolicy::StickySteal,
    ];

    /// Label used in result tables and sweep rows.
    pub fn label(self) -> &'static str {
        match self {
            ExecPolicy::Serial => "serial",
            ExecPolicy::Oblivious => "oblivious",
            ExecPolicy::Sticky => "sticky",
            ExecPolicy::StickySteal => "sticky+steal",
        }
    }
}

/// What one [`Executor::run_report`] epoch did: deterministic placement
/// accounting plus (schedule-dependent) execution diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Policy the epoch ran under.
    pub policy: ExecPolicy,
    /// The executor-wide epoch number (number of prior `run` calls).
    pub epoch: u64,
    /// Indices swept.
    pub items: usize,
    /// Worker threads used (1 means the sweep ran inline).
    pub workers: usize,
    /// Indices this executor had never placed before. Each faults its
    /// state in from wherever the host first materialized it, priced
    /// like a cross-node move.
    pub cold_starts: u64,
    /// Indices re-simulated on the node that last touched them — the
    /// locality the sticky policies exist to protect.
    pub node_hits: u64,
    /// Indices whose modeled node changed since their last epoch; each
    /// drags the index's simulated state across the socket interconnect
    /// and is priced by [`TransferModel::cross_node_us`].
    pub cross_node_moves: u64,
    /// Indices executed by a worker other than the one they were dealt
    /// to. **Schedule-dependent** — a wall-clock diagnostic, never part
    /// of simulated results.
    pub steals: u64,
    /// Indices executed per worker. **Schedule-dependent** under
    /// [`ExecPolicy::StickySteal`].
    pub per_worker_items: Vec<usize>,
    /// Sum of `index + 1` executed per worker — a load proxy for
    /// monotone-cost sweeps, where cost grows with the index.
    /// **Schedule-dependent** under [`ExecPolicy::StickySteal`].
    pub per_worker_index_sum: Vec<u64>,
}

impl EpochReport {
    fn empty(policy: ExecPolicy, epoch: u64, items: usize) -> Self {
        EpochReport {
            policy,
            epoch,
            items,
            workers: 0,
            cold_starts: 0,
            node_hits: 0,
            cross_node_moves: 0,
            steals: 0,
            per_worker_items: Vec::new(),
            per_worker_index_sum: Vec::new(),
        }
    }

    /// Modeled host seconds the epoch's placement costs: cold starts
    /// and cross-node moves each pay one
    /// [`TransferModel::cross_node_us`]. Deterministic — derived only
    /// from the placement ledger, never from the steal schedule.
    pub fn placement_penalty_secs(&self, model: &TransferModel) -> f64 {
        (self.cold_starts + self.cross_node_moves) as f64 * model.cross_node_us * 1e-6
    }

    /// Max/min ratio of [`EpochReport::per_worker_index_sum`] — the
    /// imbalance of a monotone-cost sweep across workers (1.0 is
    /// perfectly balanced; workers that executed nothing count as
    /// load 1).
    pub fn load_ratio(&self) -> f64 {
        let max = self.per_worker_index_sum.iter().copied().max().unwrap_or(1);
        let min = self.per_worker_index_sum.iter().copied().min().unwrap_or(1);
        max.max(1) as f64 / min.max(1) as f64
    }
}

/// The persistent topology-aware execution engine.
///
/// One [`Executor::global`] instance backs [`parallel_indexed`]; tests
/// and benches build private instances ([`Executor::new`]) for
/// history-free placement measurements. See the module docs for the
/// model.
#[derive(Debug)]
pub struct Executor {
    topology: HostTopology,
    workers_override: Option<usize>,
    /// index → NUMA node that last simulated it.
    ledger: Mutex<HashMap<usize, usize>>,
    epochs: AtomicU64,
}

impl Executor {
    /// A fresh executor (empty placement ledger) over `topology`.
    pub fn new(topology: HostTopology) -> Self {
        Executor {
            topology,
            workers_override: None,
            ledger: Mutex::new(HashMap::new()),
            epochs: AtomicU64::new(0),
        }
    }

    /// Pins the worker count (tests sweep {1, 2, 7, n_cpus} with this;
    /// production uses the machine's parallelism or [`WORKERS_ENV`]).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "an executor needs at least one worker");
        self.workers_override = Some(workers);
        self
    }

    /// The process-wide executor backing [`parallel_indexed`].
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(HostTopology::detect()))
    }

    /// The persistent executor dedicated to one subsystem.
    ///
    /// The sticky ledger is keyed by bare sweep index, so stickiness is
    /// only meaningful among sweeps whose indices name the same thing —
    /// a graph engine's DPU 7 is not a figure grid's cell 7. Engines
    /// that re-simulate per-index state across calls (graph update,
    /// trace fleet, `PimSystem`) therefore each own a ledger under
    /// their domain name instead of sharing [`Executor::global`]'s,
    /// which ad-hoc grid sweeps would otherwise pollute. The first call
    /// for each domain leaks one `Executor` (bounded by the set of
    /// distinct domain literals).
    pub fn for_domain(domain: &'static str) -> &'static Executor {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, &'static Executor>>> =
            OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        relock(registry)
            .entry(domain)
            .or_insert_with(|| Box::leak(Box::new(Executor::new(HostTopology::detect()))))
    }

    /// The modeled topology.
    pub fn topology(&self) -> HostTopology {
        self.topology
    }

    /// Epochs (`run`/`run_report` calls) completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// The [`WORKERS_ENV`] override, if set to a positive integer.
    pub fn env_workers() -> Option<usize> {
        std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&w| w > 0)
    }

    /// Worker threads a sweep of `n` items uses: the explicit override,
    /// else [`WORKERS_ENV`], else the machine's hardware threads —
    /// never more than `n`.
    fn effective_workers(&self, n: usize) -> usize {
        self.workers_override
            .or_else(Self::env_workers)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .clamp(1, n.max(1))
    }

    /// Deterministic node placement for every index of this epoch, and
    /// the ledger bookkeeping that prices it. Pure in
    /// `(policy, topology, n, epoch, ledger)`.
    fn place(
        &self,
        n: usize,
        policy: ExecPolicy,
        epoch: u64,
        report: &mut EpochReport,
    ) -> Vec<usize> {
        let nodes = self.topology.nodes;
        let mut ledger = relock(&self.ledger);
        let mut node_of = vec![0usize; n];
        for (i, slot) in node_of.iter_mut().enumerate() {
            // Fresh indices split the range into contiguous per-node
            // blocks (neighbouring DPUs share pages).
            let fresh = i * nodes / n;
            let node = match policy {
                // The OS re-places unpinned spawn-per-call threads on
                // every call; model that as a per-epoch rotation.
                ExecPolicy::Oblivious => (fresh + epoch as usize) % nodes,
                _ => ledger.get(&i).copied().unwrap_or(fresh),
            };
            *slot = node;
            match ledger.insert(i, node) {
                None => report.cold_starts += 1,
                Some(prev) if prev == node => report.node_hits += 1,
                Some(_) => report.cross_node_moves += 1,
            }
        }
        node_of
    }

    /// Runs `f(0), …, f(n - 1)` under `policy` and returns the results
    /// in index order. See [`Executor::run_report`].
    pub fn run<T, F>(&self, n: usize, policy: ExecPolicy, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_report(n, policy, f).0
    }

    /// Runs `f(0), …, f(n - 1)` under `policy`, returning the results
    /// in index order plus the epoch's placement/schedule report.
    ///
    /// `f` must be pure with respect to shared state (each call owns
    /// everything it mutates). The returned `Vec` is then
    /// byte-identical for every policy, worker count, and steal
    /// schedule; so are the report's placement fields (cold starts,
    /// node hits, cross-node moves), which depend only on the
    /// executor's ledger history.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by any invocation of `f`
    /// (remaining workers drain first; the executor stays usable).
    pub fn run_report<T, F>(&self, n: usize, policy: ExecPolicy, f: F) -> (Vec<T>, EpochReport)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed);
        let mut report = EpochReport::empty(policy, epoch, n);
        if n == 0 {
            return (Vec::new(), report);
        }
        // Serial is the reference engine: inline, no placement model
        // (the calling thread's node owns everything by definition).
        if policy == ExecPolicy::Serial {
            let out = Self::run_inline(n, &f, &mut report);
            return (out, report);
        }
        let node_of = self.place(n, policy, epoch, &mut report);
        let workers = self.effective_workers(n);
        if workers == 1 {
            let out = Self::run_inline(n, &f, &mut report);
            return (out, report);
        }
        report.workers = workers;
        let queues = self.deal(&node_of, policy, workers);
        let out = run_on_crew(n, workers, &queues, policy, &f, &mut report);
        (out, report)
    }

    fn run_inline<T>(n: usize, f: &impl Fn(usize) -> T, report: &mut EpochReport) -> Vec<T> {
        report.workers = 1;
        report.per_worker_items = vec![n];
        report.per_worker_index_sum = vec![(0..n).map(|i| i as u64 + 1).sum()];
        (0..n).map(f).collect()
    }

    /// Deals indices to per-worker queues. Workers are assigned to
    /// nodes in contiguous blocks (`worker w` serves node
    /// `w * nodes / workers`); sticky policies deal each index
    /// round-robin among its node's workers, the oblivious policy
    /// keeps the old global round-robin.
    fn deal(
        &self,
        node_of: &[usize],
        policy: ExecPolicy,
        workers: usize,
    ) -> Vec<Mutex<VecDeque<usize>>> {
        let nodes = self.topology.nodes;
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        if policy == ExecPolicy::Oblivious {
            for i in 0..node_of.len() {
                queues[i % workers].push_back(i);
            }
        } else {
            let mut crews: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for w in 0..workers {
                crews[w * nodes / workers].push(w);
            }
            let mut rr = vec![0usize; nodes];
            for (i, &node) in node_of.iter().enumerate() {
                let crew = &crews[node];
                let w = if crew.is_empty() {
                    // Fewer workers than nodes: the nearest worker
                    // covers the unserved node.
                    (node * workers / nodes).min(workers - 1)
                } else {
                    let w = crew[rr[node] % crew.len()];
                    rr[node] += 1;
                    w
                };
                queues[w].push_back(i);
            }
        }
        queues.into_iter().map(Mutex::new).collect()
    }
}

/// Pops one stolen index from the back of the fullest queue other than
/// `own`, if any queue still has work.
fn steal_one(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    let victim = queues
        .iter()
        .enumerate()
        .filter(|&(w, _)| w != own)
        .map(|(w, q)| (relock(q).len(), w))
        .max()?;
    match victim {
        (0, _) => None,
        (_, w) => relock(&queues[w]).pop_back(),
    }
}

/// Leases a scoped worker crew, drains the queues (stealing if the
/// policy allows), merges results by index, and re-raises the first
/// worker panic after every worker has drained.
fn run_on_crew<T, F>(
    n: usize,
    workers: usize,
    queues: &[Mutex<VecDeque<usize>>],
    policy: ExecPolicy,
    f: &F,
    report: &mut EpochReport,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let steal = policy == ExecPolicy::StickySteal;
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    report.per_worker_items = vec![0; workers];
    report.per_worker_index_sum = vec![0; workers];
    let mut panic_payload = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                std::thread::Builder::new()
                    .name(format!("pim-exec-{w}"))
                    .spawn_scoped(scope, move || {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut steals = 0u64;
                        loop {
                            let own = relock(&queues[w]).pop_front();
                            let idx = match own {
                                Some(i) => Some(i),
                                None if steal => {
                                    let stolen = steal_one(queues, w);
                                    if stolen.is_some() {
                                        steals += 1;
                                    }
                                    stolen
                                }
                                None => None,
                            };
                            match idx {
                                Some(i) => out.push((i, f(i))),
                                None => break,
                            }
                        }
                        (out, steals)
                    })
                    .expect("spawn executor worker")
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((out, steals)) => {
                    report.steals += steals;
                    report.per_worker_items[w] = out.len();
                    for (i, value) in out {
                        report.per_worker_index_sum[w] += i as u64 + 1;
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => panic_payload = panic_payload.take().or(Some(payload)),
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed"))
        .collect()
}

/// Runs `f(0), f(1), …, f(n - 1)` on the global executor under the
/// default policy ([`ExecPolicy::StickySteal`]) and returns the results
/// in index order.
///
/// `f` must be pure with respect to shared state (each call owns
/// everything it mutates); determinism then follows from reassembling
/// results by index — byte-identical for any worker count or steal
/// schedule. With a single worker ([`WORKERS_ENV`]`=1`, one hardware
/// thread, or `n == 1`) the calls run inline, spawning nothing.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Executor::global().run(n, ExecPolicy::default(), f)
}

/// [`parallel_indexed`] under an explicit [`ExecPolicy`] — the knob
/// call sites thread through their configs (e.g. sweeps whose indices
/// carry no cross-epoch locality pass [`ExecPolicy::Oblivious`]).
pub fn parallel_indexed_with<T, F>(n: usize, policy: ExecPolicy, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Executor::global().run(n, policy, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(nodes: usize, cores: usize) -> HostTopology {
        HostTopology::uniform(nodes, cores)
    }

    #[test]
    fn parse_accepts_specs_and_rejects_garbage() {
        assert_eq!(HostTopology::parse("2x4"), Some(topo(2, 4)));
        assert_eq!(HostTopology::parse(" 8X2 "), Some(topo(8, 2)));
        assert_eq!(HostTopology::parse("0x4"), None);
        assert_eq!(HostTopology::parse("2x"), None);
        assert_eq!(HostTopology::parse("banana"), None);
        assert_eq!(topo(2, 4).total_cores(), 8);
    }

    #[test]
    fn results_merge_in_index_order_for_every_policy() {
        for policy in ExecPolicy::ALL {
            for workers in [1, 2, 7] {
                let exec = Executor::new(topo(2, 4)).with_workers(workers);
                let out = exec.run(37, policy, |i| i * i);
                assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        let exec = Executor::new(topo(2, 2));
        let (out, report) = exec.run_report(0, ExecPolicy::StickySteal, |i| i);
        assert!(out.is_empty());
        assert_eq!(report.items, 0);
        assert_eq!(report.cold_starts, 0);
    }

    #[test]
    fn sticky_placement_hits_after_first_epoch() {
        let exec = Executor::new(topo(4, 2)).with_workers(4);
        let (_, first) = exec.run_report(64, ExecPolicy::Sticky, |i| i);
        assert_eq!(first.cold_starts, 64);
        assert_eq!(first.cross_node_moves, 0);
        let (_, second) = exec.run_report(64, ExecPolicy::Sticky, |i| i);
        assert_eq!(second.node_hits, 64);
        assert_eq!(second.cross_node_moves, 0);
        assert_eq!(
            second.placement_penalty_secs(&TransferModel::default()),
            0.0
        );
    }

    #[test]
    fn oblivious_placement_migrates_every_epoch() {
        let exec = Executor::new(topo(2, 4)).with_workers(4);
        let (_, first) = exec.run_report(64, ExecPolicy::Oblivious, |i| i);
        assert_eq!(first.cold_starts, 64);
        let (_, second) = exec.run_report(64, ExecPolicy::Oblivious, |i| i);
        assert_eq!(
            second.cross_node_moves, 64,
            "epoch rotation re-places every index on a 2-node host"
        );
        assert!(second.placement_penalty_secs(&TransferModel::default()) > 0.0);
    }

    #[test]
    fn single_node_host_never_pays_cross_node_penalties() {
        let exec = Executor::new(topo(1, 8)).with_workers(4);
        for policy in [
            ExecPolicy::Oblivious,
            ExecPolicy::Sticky,
            ExecPolicy::StickySteal,
        ] {
            let (_, r) = exec.run_report(32, policy, |i| i);
            assert_eq!(r.cross_node_moves, 0, "{policy:?}");
        }
    }

    #[test]
    fn placement_stats_are_worker_count_independent() {
        let runs = |workers: usize| {
            let exec = Executor::new(topo(4, 4)).with_workers(workers);
            let mut stats = Vec::new();
            for policy in [
                ExecPolicy::Oblivious,
                ExecPolicy::Sticky,
                ExecPolicy::StickySteal,
            ] {
                let (_, r) = exec.run_report(100, policy, |i| i);
                stats.push((r.cold_starts, r.node_hits, r.cross_node_moves));
            }
            stats
        };
        assert_eq!(runs(1), runs(3));
        assert_eq!(runs(3), runs(16));
    }

    #[test]
    fn serial_policy_skips_the_placement_model() {
        let exec = Executor::new(topo(4, 4));
        let (_, r) = exec.run_report(16, ExecPolicy::Serial, |i| i);
        assert_eq!(r.workers, 1);
        assert_eq!(r.cold_starts + r.node_hits + r.cross_node_moves, 0);
    }

    #[test]
    fn facade_matches_a_serial_map() {
        let out = parallel_indexed(23, |i| 3 * i + 1);
        assert_eq!(out, (0..23).map(|i| 3 * i + 1).collect::<Vec<_>>());
        assert!(parallel_indexed(0, |i| i).is_empty());
        for policy in ExecPolicy::ALL {
            assert_eq!(
                parallel_indexed_with(11, policy, |i| i * 2),
                parallel_indexed(11, |i| i * 2)
            );
        }
    }
}
