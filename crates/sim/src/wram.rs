//! Scratchpad (WRAM) capacity budgeting.
//!
//! UPMEM DPUs have 64 KB of WRAM shared by all tasklets. WRAM loads and
//! stores are ordinary pipeline instructions (no extra latency), so the
//! simulator does not model WRAM *timing* separately — what matters for
//! allocator design is the *capacity budget*: the software-managed
//! metadata buffer, the per-tasklet thread-cache bitmaps, and tasklet
//! stacks must all fit. [`Wram`] is a named-region bump allocator that
//! makes running out of scratchpad an explicit, testable error.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error returned when a WRAM reservation exceeds the remaining budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WramOverflow {
    /// Name of the region that failed to fit.
    pub region: String,
    /// Bytes requested by the failing reservation.
    pub requested: u32,
    /// Bytes still available when the reservation was attempted.
    pub available: u32,
}

impl fmt::Display for WramOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WRAM overflow: region `{}` needs {} B but only {} B remain",
            self.region, self.requested, self.available
        )
    }
}

impl Error for WramOverflow {}

/// A 64 KB scratchpad capacity ledger.
///
/// ```
/// use pim_sim::Wram;
/// let mut w = Wram::new(64 * 1024);
/// let buf = w.reserve("metadata buffer", 2048)?;
/// assert_eq!(w.used_bytes(), 2048);
/// assert_eq!(buf, 0); // first reservation starts at offset 0
/// # Ok::<(), pim_sim::wram::WramOverflow>(())
/// ```
#[derive(Debug, Clone)]
pub struct Wram {
    size_bytes: u32,
    used_bytes: u32,
    regions: BTreeMap<String, (u32, u32)>, // name -> (offset, len)
}

impl Wram {
    /// Creates a scratchpad with `size_bytes` capacity (64 KB on UPMEM).
    pub fn new(size_bytes: u32) -> Self {
        Wram {
            size_bytes,
            used_bytes: 0,
            regions: BTreeMap::new(),
        }
    }

    /// Total scratchpad capacity in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Bytes consumed by reservations so far.
    pub fn used_bytes(&self) -> u32 {
        self.used_bytes
    }

    /// Bytes still available.
    pub fn available_bytes(&self) -> u32 {
        self.size_bytes - self.used_bytes
    }

    /// Reserves `bytes` under `name`, returning the region's offset.
    ///
    /// # Errors
    ///
    /// Returns [`WramOverflow`] if the reservation does not fit; the
    /// ledger is left unchanged in that case.
    pub fn reserve(&mut self, name: &str, bytes: u32) -> Result<u32, WramOverflow> {
        if bytes > self.available_bytes() {
            return Err(WramOverflow {
                region: name.to_owned(),
                requested: bytes,
                available: self.available_bytes(),
            });
        }
        let offset = self.used_bytes;
        self.used_bytes += bytes;
        self.regions.insert(name.to_owned(), (offset, bytes));
        Ok(offset)
    }

    /// Returns the `(offset, len)` of a named region, if reserved.
    pub fn region(&self, name: &str) -> Option<(u32, u32)> {
        self.regions.get(name).copied()
    }

    /// Iterates over `(name, offset, len)` of all reservations.
    pub fn regions(&self) -> impl Iterator<Item = (&str, u32, u32)> {
        self.regions.iter().map(|(n, &(o, l))| (n.as_str(), o, l))
    }
}

impl Default for Wram {
    /// A 64 KB scratchpad, the UPMEM WRAM size.
    fn default() -> Self {
        Wram::new(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_bump_sequentially() {
        let mut w = Wram::new(1024);
        assert_eq!(w.reserve("a", 100).unwrap(), 0);
        assert_eq!(w.reserve("b", 200).unwrap(), 100);
        assert_eq!(w.used_bytes(), 300);
        assert_eq!(w.available_bytes(), 724);
        assert_eq!(w.region("a"), Some((0, 100)));
        assert_eq!(w.region("b"), Some((100, 200)));
        assert_eq!(w.region("c"), None);
    }

    #[test]
    fn overflow_is_reported_and_leaves_state_unchanged() {
        let mut w = Wram::new(128);
        w.reserve("a", 100).unwrap();
        let err = w.reserve("big", 64).unwrap_err();
        assert_eq!(err.requested, 64);
        assert_eq!(err.available, 28);
        assert_eq!(err.region, "big");
        assert_eq!(w.used_bytes(), 100, "failed reserve must not consume");
        let msg = err.to_string();
        assert!(msg.contains("big") && msg.contains("64"), "message: {msg}");
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut w = Wram::new(64);
        w.reserve("all", 64).unwrap();
        assert_eq!(w.available_bytes(), 0);
        assert!(w.reserve("one more byte", 1).is_err());
    }

    #[test]
    fn default_is_upmem_sized() {
        assert_eq!(Wram::default().size_bytes(), 65536);
    }

    #[test]
    fn regions_iterates_all() {
        let mut w = Wram::new(1024);
        w.reserve("x", 8).unwrap();
        w.reserve("y", 8).unwrap();
        let names: Vec<&str> = w.regions().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
