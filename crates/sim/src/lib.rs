//! # pim-sim — a cycle-cost simulator substrate for bank-level PIM systems
//!
//! This crate models an UPMEM-like general-purpose Processing-In-Memory
//! system at the fidelity needed to reproduce the PIM-malloc paper
//! (HPCA 2026): per-bank DPU cores with fine-grained multithreading,
//! a scratchpad (WRAM) / DRAM-bank (MRAM) memory hierarchy joined by a
//! DMA engine, DPU-local mutexes with busy-wait accounting, the paper's
//! proposed per-core hardware *buddy cache* (a small CAM with LRU
//! replacement), and an analytic host-CPU / host↔PIM transfer model.
//!
//! ## Simulation model
//!
//! Rather than interpreting DPU machine code, the simulator uses
//! *virtual time with resource reservation*: every tasklet (hardware
//! thread) owns a logical clock in DPU cycles, and shared resources
//! (mutexes, the DMA engine) are timelines that grant access at
//! `max(request_time, free_at)`. Workload drivers execute the request of
//! the tasklet with the smallest clock first (see [`DpuSim::next_tasklet`]),
//! which keeps cross-tasklet interactions causally ordered.
//!
//! Compute is charged in *instructions*; a tasklet retires one
//! instruction every `max(pipeline_depth, active_tasklets)` cycles,
//! matching the UPMEM "revolver" pipeline in which a single tasklet can
//! dispatch at most one instruction per 11 cycles and tasklets beyond 11
//! share issue slots.
//!
//! ## Quick example
//!
//! ```
//! use pim_sim::{DpuConfig, DpuSim};
//!
//! let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(2));
//! let mutex = dpu.alloc_mutex();
//! for tid in 0..2 {
//!     let mut ctx = dpu.ctx(tid);
//!     ctx.instrs(100);
//!     ctx.mutex_lock(mutex);
//!     ctx.instrs(10);
//!     ctx.mutex_unlock(mutex);
//! }
//! // The second tasklet had to wait for the first one's critical section.
//! assert!(dpu.tasklet_stats(1).busy_wait.0 > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buddy_cache;
pub mod cam_overhead;
pub mod context;
pub mod cost;
pub mod dpu;
pub mod exec;
pub mod fault;
pub mod host;
pub mod iram;
pub mod mram;
pub mod runtime;
pub mod sched;
pub mod stats;
pub mod system;
pub mod trace;
pub mod wram;
pub mod xfer;

pub use buddy_cache::{BuddyCache, BuddyCacheConfig, BuddyCacheStats, Eviction, LookupResult};
pub use cam_overhead::{CamOverhead, CamOverheadModel};
pub use context::{SimContext, SimContextBuilder};
pub use cost::{CostModel, Cycles};
pub use dpu::{DpuConfig, DpuSim, MutexId, TaskletCtx};
pub use exec::{
    parallel_indexed, parallel_indexed_with, EpochReport, ExecPolicy, Executor, HostTopology,
};
pub use fault::{FaultPlan, ShardFault};
pub use host::{HostConfig, HostSim, TransferDirection, TransferModel};
pub use iram::Iram;
pub use mram::Mram;
pub use runtime::DpuSet;
pub use sched::{EventQueue, VirtualTimeQueue};
pub use stats::{DramTraffic, LatencyRecorder, LatencySummary, TaskletStats};
pub use system::PimSystem;
pub use trace::{TraceEntry, TraceEvent, TraceRecorder};
pub use wram::Wram;
pub use xfer::{FaultyXferEstimate, HostBatching, ShardedXfer, TransferPlan, XferEstimate};
