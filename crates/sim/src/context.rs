//! The shared execution context: one bundle of the four knobs every
//! multi-DPU engine in the workspace needs — transfer pricing, host
//! batching policy, sweep execution policy, and the workload seed.
//!
//! Before [`SimContext`], `ServingConfig`, `GraphUpdateConfig`,
//! `DseConfig`, and `FleetConfig` each carried their own copy of the
//! `transfer`/`batching`/`exec`/`seed` field cluster; every new engine
//! (the serving frontend being the fifth) would have grown another.
//! Embedding one `ctx: SimContext` instead keeps the knobs, their
//! defaults, and their sweep conventions in a single place.
//!
//! ```
//! use pim_sim::{ExecPolicy, HostBatching, SimContext};
//!
//! let ctx = SimContext::builder()
//!     .batching(HostBatching::PerDpu)
//!     .exec(ExecPolicy::Serial)
//!     .seed(7)
//!     .build();
//! assert_eq!(ctx.batching, HostBatching::PerDpu);
//! assert_eq!(ctx.seed, 7);
//! // Figure sweeps pin the oblivious policy so placement effects stay
//! // out of comparative rows:
//! assert_eq!(SimContext::sweep_default().exec, ExecPolicy::Oblivious);
//! ```

use serde::{Deserialize, Serialize};

use crate::exec::ExecPolicy;
use crate::fault::FaultPlan;
use crate::host::TransferModel;
use crate::xfer::{HostBatching, ShardedXfer};

/// The execution context shared by every multi-DPU engine: how
/// host↔PIM traffic is priced ([`TransferModel`]) and scheduled
/// ([`HostBatching`]), how sweep indices are placed ([`ExecPolicy`]),
/// and which seed drives the workload's stochastic choices.
///
/// All four fields are plain data (`Copy`), so configs embed the
/// context by value and struct-update syntax keeps working:
/// `GraphUpdateConfig { ctx: SimContext { seed: 7, ..Default::default() }, .. }`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimContext {
    /// Bandwidth/latency model of the host↔PIM data path.
    pub transfer: TransferModel,
    /// How the host schedules a transfer plan's per-DPU buffers.
    pub batching: HostBatching,
    /// How the executor places and schedules sweep indices.
    pub exec: ExecPolicy,
    /// Seed for the workload's stochastic generators.
    pub seed: u64,
    /// Seeded fault schedule for the fleet; [`FaultPlan::none`] (the
    /// default) disables the fault paths entirely.
    pub faults: FaultPlan,
}

impl Default for SimContext {
    /// Production defaults: the default transfer model, rank-sharded
    /// batching, the sticky work-stealing executor, and seed 42.
    fn default() -> Self {
        SimContext {
            transfer: TransferModel::default(),
            batching: HostBatching::default(),
            exec: ExecPolicy::default(),
            seed: 42,
            faults: FaultPlan::none(),
        }
    }
}

impl SimContext {
    /// A fluent [`SimContextBuilder`] starting from the defaults.
    pub fn builder() -> SimContextBuilder {
        SimContextBuilder::default()
    }

    /// The context figure sweeps use: defaults with
    /// [`ExecPolicy::Oblivious`], so comparative rows never mix
    /// placement effects into what they are sweeping.
    pub fn sweep_default() -> Self {
        SimContext {
            exec: ExecPolicy::Oblivious,
            ..SimContext::default()
        }
    }

    /// This context with a different seed (sweep ergonomics).
    pub fn with_seed(self, seed: u64) -> Self {
        SimContext { seed, ..self }
    }

    /// This context with a different batching policy.
    pub fn with_batching(self, batching: HostBatching) -> Self {
        SimContext { batching, ..self }
    }

    /// This context with a different execution policy.
    pub fn with_exec(self, exec: ExecPolicy) -> Self {
        SimContext { exec, ..self }
    }

    /// This context with a fault schedule (chaos ergonomics).
    pub fn with_faults(self, faults: FaultPlan) -> Self {
        SimContext { faults, ..self }
    }

    /// A transfer planner over this context's model and batching
    /// policy — the `ShardedXfer::new(cfg.transfer, cfg.batching)`
    /// call every engine used to spell out.
    pub fn planner(&self) -> ShardedXfer {
        ShardedXfer::new(self.transfer, self.batching)
    }
}

/// Builder for [`SimContext`]: `Default` start point plus fluent
/// setters, for call sites that configure more than one knob.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimContextBuilder {
    ctx: SimContext,
}

impl SimContextBuilder {
    /// Sets the host↔PIM transfer model.
    pub fn transfer(mut self, transfer: TransferModel) -> Self {
        self.ctx.transfer = transfer;
        self
    }

    /// Sets the host batching policy.
    pub fn batching(mut self, batching: HostBatching) -> Self {
        self.ctx.batching = batching;
        self
    }

    /// Sets the sweep execution policy.
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.ctx.exec = exec;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.ctx.seed = seed;
        self
    }

    /// Sets the fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.ctx.faults = faults;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SimContext {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_component_defaults() {
        let ctx = SimContext::default();
        assert_eq!(ctx.transfer, TransferModel::default());
        assert_eq!(ctx.batching, HostBatching::Sharded);
        assert_eq!(ctx.exec, ExecPolicy::default());
        assert_eq!(ctx.seed, 42);
        assert_eq!(ctx.faults, FaultPlan::none());
        assert!(!ctx.faults.enabled());
    }

    #[test]
    fn builder_round_trips_every_field() {
        let ctx = SimContext::builder()
            .transfer(TransferModel {
                base_us_per_call: 1.0,
                ..TransferModel::default()
            })
            .batching(HostBatching::PerDpu)
            .exec(ExecPolicy::Serial)
            .seed(99)
            .build();
        assert_eq!(ctx.transfer.base_us_per_call, 1.0);
        assert_eq!(ctx.batching, HostBatching::PerDpu);
        assert_eq!(ctx.exec, ExecPolicy::Serial);
        assert_eq!(ctx.seed, 99);
    }

    #[test]
    fn sweep_default_is_oblivious_only() {
        let sweep = SimContext::sweep_default();
        assert_eq!(sweep.exec, ExecPolicy::Oblivious);
        assert_eq!(
            SimContext {
                exec: ExecPolicy::default(),
                ..sweep
            },
            SimContext::default()
        );
    }

    #[test]
    fn with_helpers_change_one_field() {
        let base = SimContext::default();
        assert_eq!(base.with_seed(5).seed, 5);
        assert_eq!(
            base.with_batching(HostBatching::PerDpu).batching,
            HostBatching::PerDpu
        );
        assert_eq!(base.with_exec(ExecPolicy::Sticky).exec, ExecPolicy::Sticky);
        assert_eq!(base.with_seed(5).transfer, base.transfer);
        let chaotic = base.with_faults(FaultPlan::chaos(3));
        assert_eq!(chaotic.faults, FaultPlan::chaos(3));
        assert_eq!(chaotic.seed, base.seed, "faults leave the workload seed");
    }

    #[test]
    fn planner_uses_context_policy() {
        let ctx = SimContext::default().with_batching(HostBatching::PerDpu);
        assert_eq!(ctx.planner().policy(), HostBatching::PerDpu);
        assert_eq!(ctx.planner().model(), ctx.transfer);
    }

    #[test]
    fn context_is_plain_copyable_data() {
        let ctx = SimContext::default();
        let copy = ctx; // Copy, not move
        assert_eq!(ctx, copy);
    }
}
