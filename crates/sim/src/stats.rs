//! Execution statistics: per-tasklet time breakdown, DRAM traffic
//! counters, and latency sample recording with percentile queries.
//!
//! The four time classes mirror Figure 8(b) / Figure 17(a) of the
//! PIM-malloc paper:
//!
//! * **Run** — cycles spent retiring instructions (including the
//!   pipeline-depth spacing a lone tasklet experiences),
//! * **Busy-wait** — cycles spinning on a mutex,
//! * **Idle (memory)** — cycles stalled on the DMA engine (queueing for
//!   it plus the transfer itself),
//! * **Idle (etc)** — cycles lost to issue-slot sharing beyond the
//!   pipeline depth and to explicit waits.

use serde::{Deserialize, Serialize};

use crate::cost::Cycles;

/// Per-tasklet cycle breakdown and instruction count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskletStats {
    /// Cycles retiring instructions.
    pub run: Cycles,
    /// Cycles spinning on mutexes.
    pub busy_wait: Cycles,
    /// Cycles stalled on MRAM↔WRAM DMA.
    pub idle_mem: Cycles,
    /// Cycles lost to issue-slot sharing or explicit waits.
    pub idle_etc: Cycles,
    /// Instructions retired.
    pub instrs: u64,
}

impl TaskletStats {
    /// Total accounted cycles across all classes.
    pub fn total(&self) -> Cycles {
        self.run + self.busy_wait + self.idle_mem + self.idle_etc
    }

    /// Fraction of accounted time in each class:
    /// `(run, busy_wait, idle_mem, idle_etc)`. Returns all zeros when no
    /// time has been accounted.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total().0 as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.run.0 as f64 / t,
            self.busy_wait.0 as f64 / t,
            self.idle_mem.0 as f64 / t,
            self.idle_etc.0 as f64 / t,
        )
    }

    /// Element-wise difference `self − earlier`: the activity that
    /// happened after an `earlier` snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not component-wise ≤
    /// `self` (snapshots must come from the same monotone counter).
    pub fn since(&self, earlier: &TaskletStats) -> TaskletStats {
        TaskletStats {
            run: self.run - earlier.run,
            busy_wait: self.busy_wait - earlier.busy_wait,
            idle_mem: self.idle_mem - earlier.idle_mem,
            idle_etc: self.idle_etc - earlier.idle_etc,
            instrs: self.instrs - earlier.instrs,
        }
    }

    /// Element-wise sum of two stats records.
    pub fn merged(&self, other: &TaskletStats) -> TaskletStats {
        TaskletStats {
            run: self.run + other.run,
            busy_wait: self.busy_wait + other.busy_wait,
            idle_mem: self.idle_mem + other.idle_mem,
            idle_etc: self.idle_etc + other.idle_etc,
            instrs: self.instrs + other.instrs,
        }
    }
}

/// Bytes moved between MRAM and WRAM, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Bytes read from MRAM into WRAM.
    pub bytes_read: u64,
    /// Bytes written from WRAM back to MRAM.
    pub bytes_written: u64,
    /// Number of discrete DMA transfers issued.
    pub transfers: u64,
}

impl DramTraffic {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Collects latency samples (e.g. one per `pim_malloc` call) and
/// answers average / percentile queries, as needed for the paper's
/// latency-over-time plots and TPOT percentiles.
///
/// ```
/// use pim_sim::{Cycles, LatencyRecorder};
/// let mut r = LatencyRecorder::new();
/// for v in [10u64, 20, 30, 40] { r.record(Cycles(v)); }
/// assert_eq!(r.len(), 4);
/// assert_eq!(r.mean(), Cycles(25));
/// assert_eq!(r.percentile(0.5), Cycles(20));
/// assert_eq!(r.max(), Cycles(40));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples: Vec<Cycles>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one latency sample.
    pub fn record(&mut self, latency: Cycles) {
        self.samples.push(latency);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[Cycles] {
        &self.samples
    }

    /// Arithmetic mean of the samples (zero if empty).
    pub fn mean(&self) -> Cycles {
        if self.samples.is_empty() {
            return Cycles::ZERO;
        }
        let sum: u64 = self.samples.iter().map(|c| c.0).sum();
        Cycles(sum / self.samples.len() as u64)
    }

    /// Largest sample (zero if empty).
    pub fn max(&self) -> Cycles {
        self.samples.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// The `q`-quantile (0.0 ≤ `q` ≤ 1.0) using the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Cycles {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return Cycles::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Merges another recorder's samples into this one.
    pub fn extend_from(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// The SLO percentile summary (p50/p95/p99/p99.9 plus mean, max,
    /// and count) over the recorded samples, sorting once instead of
    /// once per percentile query.
    pub fn summary(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let at = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let sum: u128 = sorted.iter().map(|c| u128::from(c.0)).sum();
        LatencySummary {
            count: sorted.len() as u64,
            mean: Cycles((sum / sorted.len() as u128) as u64),
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            p999: at(0.999),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// The SLO tail-latency summary of one [`LatencyRecorder`]: the
/// nearest-rank percentiles serving reports are built from. All fields
/// are zero when the recorder was empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Cycles,
    /// Median (nearest-rank p50).
    pub p50: Cycles,
    /// 95th percentile.
    pub p95: Cycles,
    /// 99th percentile.
    pub p99: Cycles,
    /// 99.9th percentile — the SLO tail serving gates on.
    pub p999: Cycles,
    /// Largest sample.
    pub max: Cycles,
}

impl LatencySummary {
    /// True when no samples were summarized.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let s = TaskletStats {
            run: Cycles(10),
            busy_wait: Cycles(20),
            idle_mem: Cycles(30),
            idle_etc: Cycles(40),
            instrs: 5,
        };
        let (r, b, m, e) = s.fractions();
        assert!((r + b + m + e - 1.0).abs() < 1e-12);
        assert!((r - 0.1).abs() < 1e-12);
        assert!((e - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fractions_of_empty_stats_are_zero() {
        assert_eq!(TaskletStats::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn merged_adds_fieldwise() {
        let a = TaskletStats {
            run: Cycles(1),
            busy_wait: Cycles(2),
            idle_mem: Cycles(3),
            idle_etc: Cycles(4),
            instrs: 5,
        };
        let b = a;
        let m = a.merged(&b);
        assert_eq!(m.run, Cycles(2));
        assert_eq!(m.instrs, 10);
        assert_eq!(m.total(), Cycles(20));
    }

    #[test]
    fn traffic_totals() {
        let t = DramTraffic {
            bytes_read: 10,
            bytes_written: 5,
            transfers: 3,
        };
        assert_eq!(t.total_bytes(), 15);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100u64 {
            r.record(Cycles(v));
        }
        assert_eq!(r.percentile(0.5), Cycles(50));
        assert_eq!(r.percentile(0.99), Cycles(99));
        assert_eq!(r.percentile(1.0), Cycles(100));
        assert_eq!(r.percentile(0.0), Cycles(1));
    }

    #[test]
    fn empty_recorder_is_all_zeroes() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), Cycles::ZERO);
        assert_eq!(r.max(), Cycles::ZERO);
        assert_eq!(r.percentile(0.5), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        LatencyRecorder::new().percentile(1.5);
    }

    #[test]
    fn extend_from_merges_samples() {
        let mut a = LatencyRecorder::new();
        a.record(Cycles(1));
        let mut b = LatencyRecorder::new();
        b.record(Cycles(3));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), Cycles(2));
    }

    /// The serving frontend records latencies at completion time, so
    /// under fault re-dispatch the same sample set can arrive in a
    /// different order than under fault-free routing. The byte-identity
    /// contract therefore requires summaries to be a pure function of
    /// the multiset of samples, independent of insertion order.
    #[test]
    fn summary_is_insertion_order_invariant() {
        let samples: Vec<u64> = (0..257u64).map(|i| (i * 7919) % 1013).collect();
        let mut fwd = LatencyRecorder::new();
        for &v in &samples {
            fwd.record(Cycles(v));
        }
        let mut rev = LatencyRecorder::new();
        for &v in samples.iter().rev() {
            rev.record(Cycles(v));
        }
        // Interleaved from both ends, as if two DPUs completed in turn.
        let mut shuffled = LatencyRecorder::new();
        let (mut lo, mut hi) = (0, samples.len() - 1);
        while lo < hi {
            shuffled.record(Cycles(samples[lo]));
            shuffled.record(Cycles(samples[hi]));
            lo += 1;
            hi -= 1;
        }
        if lo == hi {
            shuffled.record(Cycles(samples[lo]));
        }
        let reference = fwd.summary();
        assert_eq!(reference, rev.summary());
        assert_eq!(reference, shuffled.summary());
        assert_eq!(fwd.mean(), rev.mean());
        assert_eq!(fwd.percentile(0.99), shuffled.percentile(0.99));
    }
}
