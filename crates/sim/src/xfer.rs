//! Sharded host↔PIM transfer batching.
//!
//! Real UPMEM deployments live or die by how host↔PIM traffic is
//! *scheduled*: a naive host issues one `dpu_copy_to`-style call per
//! DPU and pays the fixed software overhead (runtime entry, rank
//! programming, cache maintenance) serially for every DPU, while a
//! batched `dpu_push_xfer` programs each **rank** once and lets the
//! ranks' data paths proceed in parallel under the shared memory
//! channel's bandwidth cap. This module models both schedules over one
//! description of the traffic:
//!
//! * [`TransferPlan`] — the per-DPU buffers of one logical transfer
//!   (possibly non-uniform: each DPU may move a different byte count).
//! * [`HostBatching`] — the scheduling policy: per-DPU calls or
//!   per-rank shards.
//! * [`ShardedXfer`] — the planner: groups a plan's buffers into
//!   per-rank shards (via [`TransferModel::dpus_per_rank`]), charges
//!   one `base_us_per_call` per shard instead of per DPU, overlaps the
//!   rank data paths, and models channel arbitration between
//!   concurrent shards. When sharding cannot win (e.g. a handful of
//!   tiny buffers spread one-per-rank, where arbitration eats the
//!   amortization), the planner falls back to the per-DPU schedule —
//!   so a batched plan never costs more than the per-DPU calls it
//!   replaces.
//!
//! The split keeps *what moves* (the plan, emitted by workloads)
//! separate from *how it moves* (the policy), which is what lets the
//! DSE and overhead figures sweep batched vs. unbatched without
//! touching workload code.

use serde::{Deserialize, Serialize};

use crate::fault::{FaultPlan, ShardFault};
use crate::host::{TransferDirection, TransferModel};

/// How the host schedules the per-DPU buffers of a [`TransferPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostBatching {
    /// One transfer call per DPU buffer (`dpu_copy_to` in a loop):
    /// every buffer pays the fixed per-call overhead, calls issue
    /// serially, and only one rank's data path is active at a time.
    PerDpu,
    /// One transfer call per occupied rank (`dpu_push_xfer`): the
    /// per-call overhead is paid once per shard, rank data paths
    /// overlap, and concurrent shards arbitrate for the shared
    /// channel. Falls back to per-DPU calls when that is cheaper.
    Sharded,
}

impl HostBatching {
    /// Label used in result tables and sweep rows.
    pub fn label(self) -> &'static str {
        match self {
            HostBatching::PerDpu => "per-DPU calls",
            HostBatching::Sharded => "per-rank shards",
        }
    }
}

impl Default for HostBatching {
    /// Rank-sharded batching — what a tuned UPMEM host program does.
    fn default() -> Self {
        HostBatching::Sharded
    }
}

/// One logical host↔PIM transfer: a direction plus the per-DPU buffers
/// it moves. Buffers may be non-uniform; zero-byte entries are legal
/// and cost nothing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferPlan {
    direction: TransferDirection,
    entries: Vec<(usize, u64)>,
}

impl TransferPlan {
    /// An empty plan in the given direction.
    pub fn new(direction: TransferDirection) -> Self {
        TransferPlan {
            direction,
            entries: Vec::new(),
        }
    }

    /// The common case: `bytes_per_dpu` to or from each of DPUs
    /// `0..n_dpus`.
    pub fn uniform(direction: TransferDirection, n_dpus: usize, bytes_per_dpu: u64) -> Self {
        TransferPlan {
            direction,
            entries: (0..n_dpus).map(|d| (d, bytes_per_dpu)).collect(),
        }
    }

    /// Appends one DPU's buffer.
    pub fn push(&mut self, dpu: usize, bytes: u64) {
        self.entries.push((dpu, bytes));
    }

    /// Transfer direction.
    pub fn direction(&self) -> TransferDirection {
        self.direction
    }

    /// The `(dpu index, bytes)` buffers, in insertion order.
    pub fn entries(&self) -> &[(usize, u64)] {
        &self.entries
    }

    /// Number of non-empty buffers — the calls a per-DPU schedule
    /// would issue.
    pub fn buffer_count(&self) -> usize {
        self.entries.iter().filter(|&&(_, b)| b > 0).count()
    }

    /// Total bytes the plan moves.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|&(_, b)| b).sum()
    }

    /// True if the plan moves no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.total_bytes() == 0
    }
}

/// The planner's verdict on one [`TransferPlan`] under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XferEstimate {
    /// Modeled host wall-clock seconds for the whole plan.
    pub secs: f64,
    /// Transfer calls the chosen schedule issues (per-DPU: one per
    /// non-empty buffer; sharded: one per occupied rank).
    pub calls: u64,
    /// Occupied ranks — what the sharded schedule's call count would
    /// be, regardless of the policy chosen.
    pub shards: usize,
    /// Total bytes moved.
    pub bytes: u64,
    /// True when the sharded policy fell back to per-DPU calls because
    /// sharding could not beat them (tiny buffers spread across ranks).
    pub fell_back: bool,
}

impl XferEstimate {
    fn zero() -> Self {
        XferEstimate {
            secs: 0.0,
            calls: 0,
            shards: 0,
            bytes: 0,
            fell_back: false,
        }
    }
}

/// A [`ShardedXfer`] estimate priced under a [`FaultPlan`]: the base
/// estimate plus which rank shards failed or straggled and what the
/// stragglers cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyXferEstimate {
    /// The schedule's estimate with straggle inflation already folded
    /// into `est.secs` (failed shards still pay their call + data time:
    /// the host only learns of the failure after issuing the call).
    pub est: XferEstimate,
    /// DPUs whose payload never landed because their rank shard failed
    /// (ascending, deduplicated). The sender must retry or drop them.
    pub failed_dpus: Vec<usize>,
    /// Rank shards that failed outright.
    pub failed_shards: u64,
    /// Rank shards that completed but straggled.
    pub straggled_shards: u64,
    /// Extra seconds the slowest straggler added to the plan.
    pub straggle_secs: f64,
}

impl FaultyXferEstimate {
    /// A fault-free wrapper around a plain estimate.
    pub fn clean(est: XferEstimate) -> Self {
        FaultyXferEstimate {
            est,
            failed_dpus: Vec::new(),
            failed_shards: 0,
            straggled_shards: 0,
            straggle_secs: 0.0,
        }
    }
}

/// Groups a plan's per-DPU buffers into per-rank shards and prices
/// both schedules; see the module docs for the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardedXfer {
    model: TransferModel,
    policy: HostBatching,
}

impl ShardedXfer {
    /// A planner over `model` using `policy`.
    pub fn new(model: TransferModel, policy: HostBatching) -> Self {
        ShardedXfer { model, policy }
    }

    /// The transfer model in use.
    pub fn model(&self) -> TransferModel {
        self.model
    }

    /// The scheduling policy in use.
    pub fn policy(&self) -> HostBatching {
        self.policy
    }

    /// Prices `plan` under the planner's policy.
    ///
    /// Under [`HostBatching::Sharded`] the estimate never exceeds the
    /// per-DPU schedule's cost: if per-rank batching cannot win, the
    /// planner issues per-DPU calls instead (`fell_back` is set).
    ///
    /// ```
    /// use pim_sim::{HostBatching, ShardedXfer, TransferDirection, TransferModel, TransferPlan};
    /// let plan = TransferPlan::uniform(TransferDirection::HostToPim, 256, 4096);
    /// let model = TransferModel::default();
    /// let per_dpu = ShardedXfer::new(model, HostBatching::PerDpu).estimate(&plan);
    /// let sharded = ShardedXfer::new(model, HostBatching::Sharded).estimate(&plan);
    /// assert_eq!(per_dpu.calls, 256);
    /// assert_eq!(sharded.calls, 4, "256 DPUs / 64 per rank = 4 shards");
    /// assert!(sharded.secs < per_dpu.secs);
    /// ```
    pub fn estimate(&self, plan: &TransferPlan) -> XferEstimate {
        // Group into rank loads once; both schedule prices, the byte
        // total, and the shard count all derive from them (this runs
        // per decode step in the serving loop).
        let loads = self.model.rank_loads(plan);
        if loads.is_empty() {
            return XferEstimate::zero();
        }
        let per_dpu_secs = self.model.per_dpu_transfer_secs(plan);
        let shards = loads.len();
        let bytes = loads.iter().map(|&(_, b)| b).sum();
        match self.policy {
            HostBatching::PerDpu => XferEstimate {
                secs: per_dpu_secs,
                calls: plan.buffer_count() as u64,
                shards,
                bytes,
                fell_back: false,
            },
            HostBatching::Sharded => {
                let batched_secs = self.model.batched_secs_from_loads(&loads);
                if batched_secs <= per_dpu_secs {
                    XferEstimate {
                        secs: batched_secs,
                        calls: shards as u64,
                        shards,
                        bytes,
                        fell_back: false,
                    }
                } else {
                    XferEstimate {
                        secs: per_dpu_secs,
                        calls: plan.buffer_count() as u64,
                        shards,
                        bytes,
                        fell_back: true,
                    }
                }
            }
        }
    }

    /// Prices `plan` under `faults`, attributing per-rank shard
    /// outcomes drawn for transfer identity `nonce` (callers pass a
    /// deterministic transfer ordinal, e.g. the serving loop's flush
    /// counter).
    ///
    /// Failed shards still pay their call and data time — the host
    /// only learns a shard failed after issuing it — but their DPUs'
    /// payloads never land (`failed_dpus`). Straggling shards inflate
    /// the plan by `straggle_factor`× the slowest straggler's rank
    /// data time. With faults disabled this is exactly
    /// [`ShardedXfer::estimate`] wrapped in
    /// [`FaultyXferEstimate::clean`].
    pub fn estimate_with_faults(
        &self,
        plan: &TransferPlan,
        faults: &FaultPlan,
        nonce: u64,
    ) -> FaultyXferEstimate {
        let est = self.estimate(plan);
        if !faults.xfer_enabled() || est.bytes == 0 {
            return FaultyXferEstimate::clean(est);
        }
        let loads = self.model.rank_loads(plan);
        let mut failed_ranks: Vec<usize> = Vec::new();
        let mut failed_shards = 0u64;
        let mut straggled_shards = 0u64;
        let mut straggle_secs: f64 = 0.0;
        for &(rank, bytes) in &loads {
            match faults.shard_fault(nonce, rank as u64) {
                ShardFault::Fail => {
                    failed_shards += 1;
                    failed_ranks.push(rank);
                }
                ShardFault::Straggle => {
                    straggled_shards += 1;
                    let data_secs = bytes as f64 / (self.model.rank_bw_gbps * 1e9);
                    straggle_secs = straggle_secs.max(faults.straggle_factor * data_secs);
                }
                ShardFault::None => {}
            }
        }
        let mut failed_dpus: Vec<usize> = plan
            .entries()
            .iter()
            .filter(|&&(dpu, bytes)| {
                bytes > 0 && failed_ranks.contains(&(dpu / self.model.dpus_per_rank))
            })
            .map(|&(dpu, _)| dpu)
            .collect();
        failed_dpus.sort_unstable();
        failed_dpus.dedup();
        FaultyXferEstimate {
            est: XferEstimate {
                secs: est.secs + straggle_secs,
                ..est
            },
            failed_dpus,
            failed_shards,
            straggled_shards,
            straggle_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferModel {
        TransferModel::default()
    }

    #[test]
    fn empty_and_zero_byte_plans_are_free() {
        for policy in [HostBatching::PerDpu, HostBatching::Sharded] {
            let planner = ShardedXfer::new(model(), policy);
            let empty = TransferPlan::new(TransferDirection::HostToPim);
            let zeros = TransferPlan::uniform(TransferDirection::PimToHost, 128, 0);
            for plan in [empty, zeros] {
                let e = planner.estimate(&plan);
                assert_eq!(e.secs, 0.0);
                assert_eq!(e.calls, 0);
                assert_eq!(e.bytes, 0);
            }
        }
    }

    #[test]
    fn zero_byte_entries_do_not_become_calls() {
        let mut plan = TransferPlan::new(TransferDirection::HostToPim);
        plan.push(0, 4096);
        plan.push(1, 0);
        plan.push(200, 4096); // rank 3 with default 64 DPUs/rank
        let per_dpu = ShardedXfer::new(model(), HostBatching::PerDpu).estimate(&plan);
        assert_eq!(per_dpu.calls, 2);
        let sharded = ShardedXfer::new(model(), HostBatching::Sharded).estimate(&plan);
        assert_eq!(sharded.shards, 2);
    }

    #[test]
    fn partially_filled_last_rank_counts_as_a_shard() {
        // 65 DPUs = one full rank + one DPU in the next: two shards.
        let plan = TransferPlan::uniform(TransferDirection::HostToPim, 65, 1024);
        let e = ShardedXfer::new(model(), HostBatching::Sharded).estimate(&plan);
        assert_eq!(e.shards, 2);
        assert_eq!(e.calls, 2);
        // The fullest rank (64 DPUs) sets the rank-serial data time.
        let expected_data = (64.0 * 1024.0) / (model().rank_bw_gbps * 1e9);
        assert!(e.secs >= expected_data);
    }

    #[test]
    fn single_dpu_sharded_equals_per_dpu() {
        // One DPU is one shard: same base overhead, same data path, no
        // arbitration — the schedules are indistinguishable.
        let plan = TransferPlan::uniform(TransferDirection::PimToHost, 1, 1 << 20);
        let per_dpu = ShardedXfer::new(model(), HostBatching::PerDpu).estimate(&plan);
        let sharded = ShardedXfer::new(model(), HostBatching::Sharded).estimate(&plan);
        assert!((per_dpu.secs - sharded.secs).abs() < 1e-15);
        assert_eq!(per_dpu.calls, 1);
        assert_eq!(sharded.calls, 1);
    }

    #[test]
    fn channel_capped_regime_bounds_the_batching_win() {
        // Data-dominated transfers: per-DPU serializes every buffer on
        // one rank path, sharding runs into the channel cap, so the
        // speedup approaches channel_bw / rank_bw and no more.
        let m = model();
        let plan = TransferPlan::uniform(TransferDirection::HostToPim, 512, 8 << 20);
        let per_dpu = ShardedXfer::new(m, HostBatching::PerDpu).estimate(&plan);
        let sharded = ShardedXfer::new(m, HostBatching::Sharded).estimate(&plan);
        let speedup = per_dpu.secs / sharded.secs;
        let cap = m.channel_bw_gbps / m.rank_bw_gbps;
        // Per-DPU also pays 512 base overheads, so the observed ratio
        // may exceed the pure bandwidth ratio by that sliver at most.
        assert!(speedup <= cap * 1.01, "speedup {speedup} beyond cap {cap}");
        assert!(
            speedup > cap * 0.9,
            "data-dominated run should sit near the cap"
        );
        // Batching can never beat the channel's aggregate bandwidth.
        assert!(sharded.secs >= plan.total_bytes() as f64 / (m.channel_bw_gbps * 1e9));
    }

    #[test]
    fn sharded_falls_back_when_batching_cannot_help() {
        // One tiny buffer per rank: sharding saves nothing on call
        // overhead (shards == buffers) and would add arbitration, so
        // the planner issues per-DPU calls.
        let mut plan = TransferPlan::new(TransferDirection::HostToPim);
        for rank in 0..8 {
            plan.push(rank * model().dpus_per_rank, 8);
        }
        let per_dpu = ShardedXfer::new(model(), HostBatching::PerDpu).estimate(&plan);
        let sharded = ShardedXfer::new(model(), HostBatching::Sharded).estimate(&plan);
        assert!(sharded.fell_back);
        assert!((sharded.secs - per_dpu.secs).abs() < 1e-15);
        assert_eq!(sharded.calls, 8);
    }

    #[test]
    fn sharding_amortizes_call_overhead_for_small_buffers() {
        // The headline effect: 256 DPUs × 8 B pointers cost 256 base
        // overheads per-DPU but only 4 when sharded by rank.
        let plan = TransferPlan::uniform(TransferDirection::HostToPim, 256, 8);
        let per_dpu = ShardedXfer::new(model(), HostBatching::PerDpu).estimate(&plan);
        let sharded = ShardedXfer::new(model(), HostBatching::Sharded).estimate(&plan);
        assert_eq!(per_dpu.calls, 256);
        assert_eq!(sharded.calls, 4);
        assert!(
            per_dpu.secs / sharded.secs > 10.0,
            "call-overhead-bound plan must see a large win: {} vs {}",
            per_dpu.secs,
            sharded.secs
        );
    }

    #[test]
    fn labels_and_default_policy() {
        assert_eq!(HostBatching::default(), HostBatching::Sharded);
        assert_eq!(HostBatching::PerDpu.label(), "per-DPU calls");
        assert_eq!(HostBatching::Sharded.label(), "per-rank shards");
    }

    #[test]
    fn faultless_plan_prices_identically() {
        let plan = TransferPlan::uniform(TransferDirection::HostToPim, 256, 4096);
        let planner = ShardedXfer::new(model(), HostBatching::Sharded);
        let clean = planner.estimate(&plan);
        let faulty = planner.estimate_with_faults(&plan, &FaultPlan::none(), 7);
        assert_eq!(faulty, FaultyXferEstimate::clean(clean));
        assert_eq!(faulty.est, clean);
    }

    #[test]
    fn failed_shards_name_their_dpus() {
        // Force every shard to fail: all DPUs with payload are listed.
        let faults = FaultPlan {
            xfer_fail_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut plan = TransferPlan::new(TransferDirection::HostToPim);
        plan.push(3, 512);
        plan.push(70, 0); // zero-byte entry never "fails"
        plan.push(130, 512);
        let planner = ShardedXfer::new(model(), HostBatching::Sharded);
        let f = planner.estimate_with_faults(&plan, &faults, 0);
        assert_eq!(f.failed_dpus, vec![3, 130]);
        assert_eq!(f.failed_shards, 2, "two occupied ranks, both failed");
        assert_eq!(f.straggled_shards, 0);
        // Failure does not refund the call: time matches the clean run.
        assert_eq!(f.est.secs, planner.estimate(&plan).secs);
    }

    #[test]
    fn stragglers_inflate_time_but_land_payloads() {
        let faults = FaultPlan {
            xfer_straggle_prob: 1.0,
            straggle_factor: 3.0,
            ..FaultPlan::none()
        };
        let plan = TransferPlan::uniform(TransferDirection::HostToPim, 128, 1 << 16);
        let planner = ShardedXfer::new(model(), HostBatching::Sharded);
        let clean = planner.estimate(&plan);
        let f = planner.estimate_with_faults(&plan, &faults, 1);
        assert!(f.failed_dpus.is_empty());
        assert_eq!(f.straggled_shards, 2, "128 DPUs = 2 ranks");
        assert!(f.straggle_secs > 0.0);
        assert!((f.est.secs - (clean.secs + f.straggle_secs)).abs() < 1e-15);
        // Straggle adds the slowest shard's factor x data time.
        let rank_data = (64.0 * (1 << 16) as f64) / (model().rank_bw_gbps * 1e9);
        assert!((f.straggle_secs - 3.0 * rank_data).abs() / f.straggle_secs < 1e-12);
    }

    #[test]
    fn shard_outcomes_are_deterministic_per_nonce() {
        let faults = FaultPlan {
            seed: 11,
            xfer_fail_prob: 0.3,
            xfer_straggle_prob: 0.3,
            straggle_factor: 2.0,
            ..FaultPlan::none()
        };
        let plan = TransferPlan::uniform(TransferDirection::PimToHost, 512, 2048);
        let planner = ShardedXfer::new(model(), HostBatching::Sharded);
        for nonce in 0..16 {
            assert_eq!(
                planner.estimate_with_faults(&plan, &faults, nonce),
                planner.estimate_with_faults(&plan, &faults, nonce)
            );
        }
        // Across many nonces the outcomes vary (not a constant draw).
        let distinct: std::collections::BTreeSet<u64> = (0..64)
            .map(|n| {
                let f = planner.estimate_with_faults(&plan, &faults, n);
                f.failed_shards * 100 + f.straggled_shards
            })
            .collect();
        assert!(distinct.len() > 1);
    }
}
