//! Per-tasklet event tracing.
//!
//! A [`TraceRecorder`] captures what each tasklet did and when —
//! instruction blocks, DMA transfers with their queueing, mutex
//! acquisitions with their spin time — so allocator behaviour can be
//! inspected event by event (the uPIMulator-style view the paper used
//! for Figure 8(b)). Tracing is opt-in per DPU via
//! [`DpuSim::enable_trace`](crate::DpuSim::enable_trace) and costs
//! nothing when disabled.

use serde::{Deserialize, Serialize};

use crate::cost::Cycles;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A block of `count` instructions retired.
    Instrs {
        /// Instructions retired in this block.
        count: u64,
    },
    /// A DMA transfer of `bytes`, after `queued` cycles behind the
    /// engine's backlog.
    Dma {
        /// Bytes transferred.
        bytes: u32,
        /// Cycles spent queued behind earlier transfers.
        queued: Cycles,
        /// True for MRAM→WRAM reads, false for writes.
        is_read: bool,
    },
    /// A mutex acquisition that spun for `waited` cycles.
    MutexAcquired {
        /// Cycles spent busy-waiting before the grant.
        waited: Cycles,
    },
    /// A mutex release.
    MutexReleased,
}

/// A timestamped event on one tasklet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Tasklet that produced the event.
    pub tid: usize,
    /// Tasklet-local completion time of the event.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// An append-only event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, tid: usize, at: Cycles, event: TraceEvent) {
        self.entries.push(TraceEntry { tid, at, event });
    }

    /// All entries in recording order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries produced by one tasklet, in order.
    pub fn for_tasklet(&self, tid: usize) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.tid == tid)
    }

    /// Total busy-wait cycles visible in the trace.
    pub fn total_mutex_wait(&self) -> Cycles {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::MutexAcquired { waited } => Some(waited),
                _ => None,
            })
            .sum()
    }

    /// Total bytes moved by traced DMA transfers.
    pub fn total_dma_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Dma { bytes, .. } => Some(u64::from(bytes)),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::{DpuConfig, DpuSim};

    #[test]
    fn disabled_by_default_enabled_records_everything() {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(2));
        dpu.ctx(0).instrs(10);
        assert!(dpu.trace().is_none(), "tracing must be opt-in");

        dpu.enable_trace();
        let m = dpu.alloc_mutex();
        {
            let mut c = dpu.ctx(0);
            c.instrs(5);
            c.mram_read(0, 64);
            c.mutex_lock(m);
            c.instrs(1);
            c.mutex_unlock(m);
        }
        {
            let mut c = dpu.ctx(1);
            c.mutex_lock(m); // contended: tasklet 0 held it until later
            c.mutex_unlock(m);
        }
        let trace = dpu.trace().expect("enabled");
        assert!(trace.entries().len() >= 5);
        assert_eq!(trace.total_dma_bytes(), 64);
        assert!(trace.total_mutex_wait() > Cycles::ZERO);
        // Per-tasklet filtering and timestamp monotonicity.
        let t0: Vec<_> = trace.for_tasklet(0).collect();
        assert!(t0.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(t0.iter().all(|e| e.tid == 0));
    }

    #[test]
    fn dma_events_capture_queueing() {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(2));
        dpu.enable_trace();
        dpu.ctx(0).mram_read(0, 2048);
        dpu.ctx(1).mram_read(0, 8); // queues behind the 2 KB transfer
        let trace = dpu.trace().unwrap();
        let queued: Vec<Cycles> = trace
            .entries()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Dma { queued, .. } => Some(queued),
                _ => None,
            })
            .collect();
        assert_eq!(queued.len(), 2);
        assert_eq!(queued[0], Cycles::ZERO, "first transfer sees no backlog");
        assert!(queued[1] > Cycles::ZERO, "second transfer queues");
    }
}
