//! Determinism harness for the topology-aware executor.
//!
//! The executor's contract is that **simulated results are a pure
//! function of the sweep**, never of the machine: for any worker count
//! (the CI matrix pins `PIM_EXEC_WORKERS=1` against the default), any
//! [`ExecPolicy`], and any steal schedule, the output vector is
//! byte-identical to the serial reference, panics in the sweep closure
//! propagate without deadlocking the pool, and the deterministic
//! placement model never depends on how many OS threads happened to
//! run the epoch. A separate regression pins the load-balance fix:
//! monotone-cost sweeps no longer pile their heavy tail onto one
//! worker once stealing is on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pim_sim::{
    parallel_indexed, parallel_indexed_with, Cycles, DpuConfig, DpuSim, ExecPolicy, Executor,
    HostTopology, TransferModel,
};
use proptest::prelude::*;

/// The worker counts the harness sweeps: forced-serial, tiny, an odd
/// count that never divides the sweep evenly, and the machine itself.
fn worker_counts() -> Vec<usize> {
    let n_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 7, n_cpus];
    counts.dedup();
    counts
}

/// A cheap but index-sensitive pure function: any reordering or lost
/// index changes the output vector.
fn mix(i: usize, salt: u64) -> u64 {
    let mut x = i as u64 ^ salt.rotate_left(17);
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 29;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical output for every (policy, worker count) pair, on a
    /// fresh executor each time, against the serial reference.
    #[test]
    fn output_is_identical_for_all_policies_and_worker_counts(
        n in 0usize..80,
        salt in proptest::arbitrary::any::<u64>(),
        nodes in 1usize..5,
    ) {
        let reference: Vec<u64> = (0..n).map(|i| mix(i, salt)).collect();
        for policy in ExecPolicy::ALL {
            for workers in worker_counts() {
                let exec = Executor::new(HostTopology::uniform(nodes, 2))
                    .with_workers(workers);
                let out = exec.run(n, policy, |i| mix(i, salt));
                prop_assert_eq!(
                    &out, &reference,
                    "policy {:?}, {} workers", policy, workers
                );
            }
        }
    }

    /// The placement model is a pure function of (policy, topology, n,
    /// epoch history) — re-running the same epoch sequence on a fresh
    /// executor reproduces the exact same placement accounting no
    /// matter how many workers execute it.
    #[test]
    fn placement_stats_ignore_the_worker_count(
        n in 1usize..120,
        nodes in 1usize..5,
        epochs in 1usize..4,
    ) {
        let run_seq = |workers: usize| {
            let exec = Executor::new(HostTopology::uniform(nodes, 2))
                .with_workers(workers);
            let mut stats = Vec::new();
            for _ in 0..epochs {
                for policy in [ExecPolicy::Oblivious, ExecPolicy::Sticky, ExecPolicy::StickySteal] {
                    let (_, r) = exec.run_report(n, policy, |i| i);
                    stats.push((r.cold_starts, r.node_hits, r.cross_node_moves));
                }
            }
            stats
        };
        let reference = run_seq(1);
        for workers in worker_counts() {
            prop_assert_eq!(&run_seq(workers), &reference, "{} workers", workers);
        }
    }
}

#[test]
fn dpu_simulation_is_identical_across_engines() {
    // The pattern every workload uses: one private DpuSim per index,
    // built and consumed inside the worker.
    let cell = |i: usize| -> (Cycles, u64) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(4));
        for t in 0..4 {
            let mut ctx = dpu.ctx(t);
            ctx.instrs(17 * (i as u64 + 1) + t as u64);
            ctx.mram_read(0, 64 * (i as u32 % 7 + 1));
        }
        (dpu.max_clock(), dpu.traffic().total_bytes())
    };
    let reference: Vec<(Cycles, u64)> = (0..96).map(cell).collect();
    for policy in ExecPolicy::ALL {
        for workers in worker_counts() {
            let exec = Executor::new(HostTopology::uniform(2, 4)).with_workers(workers);
            assert_eq!(
                exec.run(96, policy, cell),
                reference,
                "{policy:?} at {workers} workers"
            );
        }
    }
    // The facade runs on the global executor and must agree too.
    assert_eq!(parallel_indexed(96, cell), reference);
    for policy in ExecPolicy::ALL {
        assert_eq!(parallel_indexed_with(96, policy, cell), reference);
    }
}

#[test]
fn panicking_f_propagates_and_does_not_deadlock_the_pool() {
    let exec = Executor::new(HostTopology::uniform(2, 2)).with_workers(4);
    for policy in ExecPolicy::ALL {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.run(32, policy, |i| {
                if i == 13 {
                    panic!("boom at 13");
                }
                i
            })
        }));
        let payload = caught.expect_err("the worker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("boom at 13"),
            "{policy:?}: payload was {msg:?}"
        );
        // The executor survives: the next epoch runs to completion on
        // the same instance (no poisoned queue, no wedged worker).
        let out = exec.run(32, policy, |i| i + 1);
        assert_eq!(out, (1..=32).collect::<Vec<_>>(), "{policy:?}");
    }
}

#[test]
fn every_index_runs_exactly_once_even_with_stealing() {
    let counter = AtomicU64::new(0);
    let n = 257;
    let exec = Executor::new(HostTopology::uniform(2, 4)).with_workers(7);
    let out = exec.run(n, ExecPolicy::StickySteal, |i| {
        counter.fetch_add(1, Ordering::Relaxed);
        i
    });
    assert_eq!(out, (0..n).collect::<Vec<_>>());
    assert_eq!(counter.load(Ordering::Relaxed), n as u64);
}

/// The regression the executor's stealing fixes: the old round-robin
/// deal handed worker 0 the systematically cheapest indices of a
/// monotone-cost sweep (and the sticky deal's contiguous blocks are
/// even more skewed — the last block costs ~7x the first at 4 workers).
/// With bounded stealing, drained workers pull the heavy tail and the
/// per-worker load ratio stays bounded.
#[test]
fn stealing_bounds_monotone_cost_imbalance() {
    let n = 48;
    let workers = 4;
    // Cost grows linearly with the index: index i sleeps (i + 1) × 400 µs.
    // Sleeps (not spins) so the test is robust on starved CI runners —
    // all four workers can overlap their waits even on one core.
    let linear_cost = |i: usize| {
        std::thread::sleep(Duration::from_micros(400 * (i as u64 + 1)));
        i
    };
    let unbalanced = Executor::new(HostTopology::uniform(workers, 1)).with_workers(workers);
    let (_, sticky) = unbalanced.run_report(n, ExecPolicy::Sticky, linear_cost);
    assert!(
        sticky.load_ratio() > 4.0,
        "without stealing the contiguous deal must stay skewed: ratio {}",
        sticky.load_ratio()
    );
    assert_eq!(sticky.steals, 0, "sticky never steals");

    let balanced = Executor::new(HostTopology::uniform(workers, 1)).with_workers(workers);
    let (_, stolen) = balanced.run_report(n, ExecPolicy::StickySteal, linear_cost);
    assert!(stolen.steals > 0, "drained workers must steal the tail");
    // Generous bound (the sticky skew is ~6.5, a balanced steal
    // schedule lands near 1.5) so scheduler noise on loaded CI
    // machines cannot flake the gate.
    assert!(
        stolen.load_ratio() < 3.5,
        "stealing must bound the monotone-cost imbalance: ratio {} (sticky was {})",
        stolen.load_ratio(),
        sticky.load_ratio()
    );
}

#[test]
fn sticky_placement_penalty_is_observable_and_cheaper_than_oblivious() {
    // The modeled cross-node penalty — the simulated-results face of
    // placement quality. Same epochs, same sweep: sticky re-places
    // nothing after warm-up, oblivious drags state across nodes every
    // epoch, and the TransferModel prices the difference.
    let model = TransferModel::default();
    let run = |policy: ExecPolicy| {
        let exec = Executor::new(HostTopology::uniform(2, 4)).with_workers(4);
        let mut penalty = 0.0;
        for _ in 0..4 {
            let (_, r) = exec.run_report(128, policy, |i| i);
            penalty += r.placement_penalty_secs(&model);
        }
        penalty
    };
    let sticky = run(ExecPolicy::Sticky);
    let steal = run(ExecPolicy::StickySteal);
    let oblivious = run(ExecPolicy::Oblivious);
    assert_eq!(sticky, steal, "stealing never changes modeled placement");
    assert!(
        oblivious > sticky,
        "oblivious {oblivious} must pay more than sticky {sticky}"
    );
    // Both share the identical cold-start bill (first epoch).
    assert!(sticky > 0.0);
}
