//! Property tests of the simulator substrate: conservation laws the
//! cost model must satisfy under arbitrary operation sequences.

use pim_sim::{
    Cycles, DpuConfig, DpuSim, HostBatching, ShardedXfer, TransferDirection, TransferModel,
    TransferPlan,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Instrs(u64),
    Read(u32),
    Write(u32),
    Lock,
    Unlock,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200).prop_map(Op::Instrs),
        (1u32..4096).prop_map(Op::Read),
        (1u32..4096).prop_map(Op::Write),
        Just(Op::Lock),
        Just(Op::Unlock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clocks never move backwards, accounted time never exceeds the
    /// clock, and traffic counters match the bytes requested.
    #[test]
    fn time_and_traffic_conservation(
        tasklets in 1usize..16,
        ops in proptest::collection::vec((0usize..16, op_strategy()), 1..200),
    ) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
        let m = dpu.alloc_mutex();
        let mut held: Option<usize> = None;
        let mut expect_read = 0u64;
        let mut expect_written = 0u64;
        let mut last_clock = vec![Cycles::ZERO; tasklets];
        for (t, op) in ops {
            let tid = t % tasklets;
            match op {
                Op::Instrs(n) => dpu.ctx(tid).instrs(n),
                Op::Read(b) => {
                    dpu.ctx(tid).mram_read(0, b);
                    expect_read += u64::from(b);
                }
                Op::Write(b) => {
                    dpu.ctx(tid).mram_write(0, b);
                    expect_written += u64::from(b);
                }
                Op::Lock => {
                    if held.is_none() {
                        dpu.ctx(tid).mutex_lock(m);
                        held = Some(tid);
                    }
                }
                Op::Unlock => {
                    if let Some(h) = held.take() {
                        dpu.ctx(h).mutex_unlock(m);
                    }
                }
            }
            prop_assert!(dpu.clock(tid) >= last_clock[tid], "clock went backwards");
            last_clock[tid] = dpu.clock(tid);
            // Accounted time equals the clock exactly: every advance is
            // classified into one of the four breakdown classes.
            let s = dpu.tasklet_stats(tid);
            prop_assert_eq!(s.total(), dpu.clock(tid), "unaccounted cycles");
        }
        let traffic = dpu.traffic();
        prop_assert_eq!(traffic.bytes_read, expect_read);
        prop_assert_eq!(traffic.bytes_written, expect_written);
    }

    /// Host↔PIM transfer time is monotone in both DPU count and bytes.
    #[test]
    fn transfer_model_monotone(
        d1 in 1usize..1024, d2 in 1usize..1024,
        b1 in 1u64..(1 << 24), b2 in 1u64..(1 << 24),
    ) {
        let t = TransferModel::default();
        let (dl, dh) = (d1.min(d2), d1.max(d2));
        let (bl, bh) = (b1.min(b2), b1.max(b2));
        prop_assert!(t.transfer_secs(dh, bl) >= t.transfer_secs(dl, bl));
        prop_assert!(t.transfer_secs(dl, bh) >= t.transfer_secs(dl, bl));
    }

    /// Instruction retirement obeys the pipeline model exactly:
    /// `clock = instrs × max(11, tasklets)` for a lone busy tasklet.
    #[test]
    fn pipeline_arithmetic(tasklets in 1usize..24, n in 1u64..10_000) {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(tasklets));
        dpu.ctx(0).instrs(n);
        let interval = 11u64.max(tasklets as u64);
        prop_assert_eq!(dpu.clock(0), Cycles(n * interval));
        prop_assert_eq!(dpu.tasklet_stats(0).instrs, n);
    }

    /// The headline batching guarantee: for **any** plan and any sane
    /// transfer model, a rank-sharded schedule never costs more than
    /// the per-DPU calls it replaces, never issues more calls, moves
    /// identical bytes — and never pretends to beat the channel's
    /// aggregate bandwidth.
    #[test]
    fn sharded_plan_never_exceeds_per_dpu_calls(
        base_us in 0.0f64..100.0,
        rank_bw in 0.05f64..4.0,
        channel_mult in 1.0f64..8.0,
        dpus_per_rank in 1usize..130,
        arb_us in 0.0f64..25.0,
        entries in proptest::collection::vec((0usize..2048, 0u64..(1 << 22)), 0..96),
    ) {
        let model = TransferModel {
            base_us_per_call: base_us,
            rank_bw_gbps: rank_bw,
            // Channel at least as fast as one rank, as in hardware.
            channel_bw_gbps: rank_bw * channel_mult,
            dpus_per_rank,
            channel_arb_us: arb_us,
            ..TransferModel::default()
        };
        let mut plan = TransferPlan::new(TransferDirection::HostToPim);
        for (dpu, bytes) in entries {
            plan.push(dpu, bytes);
        }
        let per_dpu = ShardedXfer::new(model, HostBatching::PerDpu).estimate(&plan);
        let sharded = ShardedXfer::new(model, HostBatching::Sharded).estimate(&plan);
        prop_assert!(
            sharded.secs <= per_dpu.secs + 1e-12,
            "sharded {} must not exceed per-DPU {}",
            sharded.secs,
            per_dpu.secs
        );
        prop_assert!(sharded.calls <= per_dpu.calls);
        prop_assert_eq!(sharded.bytes, per_dpu.bytes);
        prop_assert_eq!(sharded.bytes, plan.total_bytes());
        if !plan.is_empty() {
            let channel_floor = plan.total_bytes() as f64 / (model.channel_bw_gbps * 1e9);
            prop_assert!(sharded.secs >= channel_floor - 1e-12);
            prop_assert!(sharded.calls >= 1);
            prop_assert_eq!(sharded.shards, model.shard_count(&plan));
        }
    }

    /// Shard accounting: occupied ranks never exceed either the rank
    /// count implied by the highest DPU index or the number of
    /// non-empty buffers, and uniform plans fill ranks in order.
    #[test]
    fn shard_count_is_consistent(
        n_dpus in 1usize..1024,
        bytes in 1u64..(1 << 16),
        dpus_per_rank in 1usize..130,
    ) {
        let model = TransferModel { dpus_per_rank, ..TransferModel::default() };
        let plan = TransferPlan::uniform(TransferDirection::PimToHost, n_dpus, bytes);
        let shards = model.shard_count(&plan);
        prop_assert_eq!(shards, n_dpus.div_ceil(dpus_per_rank));
        prop_assert!(shards <= plan.buffer_count());
    }

    /// SLO percentile ordering: for any sample set,
    /// p50 ≤ p95 ≤ p99 ≤ p99.9 ≤ max, the mean sits within [min, max],
    /// and the summary agrees with the recorder's own percentile
    /// queries.
    #[test]
    fn latency_summary_percentiles_are_ordered(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..512),
    ) {
        let mut r = pim_sim::LatencyRecorder::new();
        for &s in &samples {
            r.record(Cycles(s));
        }
        let s = r.summary();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert!(s.p50 <= s.p95);
        prop_assert!(s.p95 <= s.p99);
        prop_assert!(s.p99 <= s.p999);
        prop_assert!(s.p999 <= s.max);
        prop_assert_eq!(s.max, Cycles(*samples.iter().max().unwrap()));
        let min = Cycles(*samples.iter().min().unwrap());
        prop_assert!(s.mean >= min && s.mean <= s.max);
        prop_assert_eq!(s.p50, r.percentile(0.50));
        prop_assert_eq!(s.p95, r.percentile(0.95));
        prop_assert_eq!(s.p99, r.percentile(0.99));
        prop_assert_eq!(s.p999, r.percentile(0.999));
    }
}

/// Exact nearest-rank values over a hand-computed 10-sample set.
///
/// Sorted samples: 5, 10, 20, 30, 40, 50, 60, 70, 80, 1000.
/// Nearest rank = ⌈q·10⌉ clamped to [1, 10]:
/// p50 → rank 5 → 40; p95 → rank ⌈9.5⌉ = 10 → 1000;
/// p99 → rank ⌈9.9⌉ = 10 → 1000; p99.9 → rank 10 → 1000;
/// mean = 1365/10 = 136 (integer division).
#[test]
fn latency_summary_exact_ten_sample_values() {
    let mut r = pim_sim::LatencyRecorder::new();
    for v in [50u64, 10, 1000, 30, 5, 70, 20, 60, 40, 80] {
        r.record(Cycles(v));
    }
    let s = r.summary();
    assert_eq!(s.count, 10);
    assert_eq!(s.p50, Cycles(40));
    assert_eq!(s.p95, Cycles(1000));
    assert_eq!(s.p99, Cycles(1000));
    assert_eq!(s.p999, Cycles(1000));
    assert_eq!(s.max, Cycles(1000));
    assert_eq!(s.mean, Cycles(136));
    // A tighter mid-distribution check: p90 hits rank 9 → 80.
    assert_eq!(r.percentile(0.90), Cycles(80));
    assert!(!s.is_empty());
    assert!(pim_sim::LatencyRecorder::new().summary().is_empty());
}
