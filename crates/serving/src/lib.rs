//! # pim-serving — an open-loop serving frontend for the PIM-malloc fleet
//!
//! The paper's workloads measure *kernel* time; production PIM
//! deployments are driven by request streams. This crate closes that
//! gap with a deterministic discrete-event serving frontend over the
//! simulated DPU fleet:
//!
//! * [`ArrivalProcess`] — seeded open-loop arrival generators
//!   (Poisson, bursty, diurnal), the serving-side analogue of
//!   `pim_trace::synthesize`.
//! * [`RequestClass`] — what one request does: an [`pim_trace::AllocTrace`]
//!   fragment replayed once per class on a [`pim_sim::DpuSim`] to
//!   *calibrate* its service time, plus the payload bytes it ships
//!   through the dispatch window.
//! * [`serve`] — bounded-queue admission, windowed host→PIM dispatch
//!   priced by the shared [`pim_sim::SimContext`] planner, FIFO
//!   per-DPU service; reports p50/p95/p99/p99.9 *simulated* latency,
//!   a queue-depth timeline, and drop counts in a [`ServeReport`].
//! * [`saturation_sweep`] — a knee-finding ladder of offered loads,
//!   fanned over the topology-aware executor, yielding the fleet's
//!   saturation throughput.
//!
//! Everything is seeded and single-threaded per run: reports are
//! byte-identical across [`pim_sim::ExecPolicy`] values and
//! `PIM_EXEC_WORKERS` settings — including runs under a
//! [`pim_sim::FaultPlan`], whose fault draws are pure functions of the
//! plan and stable identities. With faults scheduled the frontend
//! *self-heals*: health-aware routing skips dead DPUs, failed transfer
//! shards retry with bounded exponential backoff, and requests
//! stranded on a DPU that dies mid-run are re-dispatched; the
//! [`FaultSummary`] section of each report accounts for every drop.
//!
//! ## Quick example
//!
//! ```
//! use pim_serving::{serve, ArrivalProcess, RequestClass, ServeConfig};
//! use pim_trace::{synthesize, SynthConfig};
//!
//! let classes = [RequestClass::new(
//!     "micro",
//!     synthesize(&SynthConfig { n_tasklets: 4, mallocs_per_tasklet: 8, ..SynthConfig::default() }),
//!     2048,
//!     1.0,
//! )];
//! let cfg = ServeConfig {
//!     n_dpus: 8,
//!     n_requests: 500,
//!     arrival: ArrivalProcess::Poisson { rps: 10_000.0 },
//!     ..ServeConfig::default()
//! };
//! let report = serve(&cfg, &classes, &|dpu, tasklets, heap| {
//!     let cfg = pim_malloc::AllocGeometry::sw(tasklets).with_heap_size(heap).build();
//!     Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
//! });
//! assert_eq!(report.admitted + report.dropped, 500);
//! assert!(report.p50_ms() <= report.p99_ms());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod arrival;
pub mod frontend;
pub mod request;
pub mod sweep;

pub use arrival::ArrivalProcess;
pub use frontend::{serve, FaultSummary, RetryPolicy, ServeConfig, ServeReport};
pub use request::{BuildAllocator, RequestClass};
pub use sweep::{estimated_capacity_rps, saturation_sweep, LoadPoint, SaturationReport};
