//! Request classes: what one admitted request *does* on its DPU.
//!
//! A [`RequestClass`] carries an [`AllocTrace`] fragment — the same
//! format the trace subsystem records and replays — so the replay
//! determinism contract extends to serving: the per-request service
//! time is *calibrated* by replaying the fragment once on a fresh
//! [`DpuSim`] under the allocator being served, then the event loop
//! charges that time analytically per request. Payload bytes ride the
//! host→PIM dispatch window and are priced by the shared transfer
//! planner.

use pim_malloc::PimAllocator;
use pim_sim::{CostModel, DpuConfig, DpuSim};
use pim_trace::{replay, AllocTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a fresh allocator for a calibration DPU: `(dpu, n_tasklets,
/// heap_size) -> allocator`. The same signature as
/// `pim_workloads::AllocatorKind::build`, without depending on it.
pub type BuildAllocator<'a> = &'a (dyn Fn(&mut DpuSim, usize, u32) -> Box<dyn PimAllocator> + Sync);

/// One class of allocation-bearing request in the open-loop stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestClass {
    /// Class name, used in reports.
    pub name: String,
    /// The allocation work one request performs on its DPU.
    pub trace: AllocTrace,
    /// Host→PIM bytes each request contributes to its dispatch window.
    pub payload_bytes: u64,
    /// Relative mixing weight in the request stream (need not sum
    /// to 1 across classes).
    pub weight: f64,
}

impl RequestClass {
    /// A class from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the fragment is invalid or the weight is not
    /// strictly positive.
    pub fn new(
        name: impl Into<String>,
        trace: AllocTrace,
        payload_bytes: u64,
        weight: f64,
    ) -> Self {
        trace.validate().expect("request fragments must be valid");
        assert!(weight > 0.0, "class weight must be positive");
        RequestClass {
            name: name.into(),
            trace,
            payload_bytes,
            weight,
        }
    }

    /// Calibrated service time of one request, in nanoseconds: the
    /// fragment replayed on a fresh default-config DPU under `build`'s
    /// allocator, finish time converted at the cost model's clock.
    /// Deterministic — replay is.
    ///
    /// # Panics
    ///
    /// Panics if the fragment needs more tasklets than a default DPU
    /// has, or the allocator fails to initialise.
    pub fn service_ns(&self, build: BuildAllocator) -> u64 {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(self.trace.n_tasklets));
        let mut alloc = build(&mut dpu, self.trace.n_tasklets, self.trace.heap_size);
        let r = replay(&mut dpu, alloc.as_mut(), &self.trace);
        let ns = r.finish.as_micros(CostModel::default().clock_mhz) * 1e3;
        (ns.round() as u64).max(1)
    }
}

/// Assigns one class index to each of `n` requests by seeded weighted
/// sampling — the stream's *composition* is part of the seed contract.
///
/// # Panics
///
/// Panics if `classes` is empty.
pub(crate) fn assign_classes(classes: &[RequestClass], seed: u64, n: usize) -> Vec<u32> {
    assert!(!classes.is_empty(), "serving needs at least one class");
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut u = rng.gen_range(0.0..1.0) * total;
            for (i, c) in classes.iter().enumerate() {
                if u < c.weight || i + 1 == classes.len() {
                    return i as u32;
                }
                u -= c.weight;
            }
            0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::{synthesize, SizeLaw, SynthConfig, TemporalShape};

    fn class(weight: f64) -> RequestClass {
        let trace = synthesize(&SynthConfig {
            n_tasklets: 4,
            mallocs_per_tasklet: 8,
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 100 },
            heap_size: 1 << 20,
            ..SynthConfig::default()
        });
        RequestClass::new("t", trace, 4096, weight)
    }

    fn sw_build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
        let cfg = pim_malloc::AllocGeometry::sw(tasklets)
            .with_heap_size(heap)
            .build();
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    }

    #[test]
    fn calibration_is_deterministic_and_positive() {
        let c = class(1.0);
        let a = c.service_ns(&sw_build);
        let b = c.service_ns(&sw_build);
        assert_eq!(a, b);
        assert!(a > 0);
    }

    #[test]
    fn class_assignment_follows_weights() {
        let classes = vec![class(3.0), class(1.0)];
        let picks = assign_classes(&classes, 9, 40_000);
        assert_eq!(picks, assign_classes(&classes, 9, 40_000));
        let heavy = picks.iter().filter(|&&c| c == 0).count() as f64 / picks.len() as f64;
        assert!((heavy - 0.75).abs() < 0.03, "3:1 weights -> ~75%: {heavy}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        class(0.0);
    }
}
