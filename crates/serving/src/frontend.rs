//! The deterministic open-loop serving event loop.
//!
//! [`serve`] admits a seeded arrival stream of allocation-bearing
//! requests into a fleet of `n_dpus` DPUs and reports SLO metrics in
//! *simulated* time. The loop is a discrete-event simulation over
//! virtual nanoseconds driven by [`pim_sim::EventQueue`]:
//!
//! 1. **Admission** — each arrival is hash-routed round-robin over
//!    admitted requests to a DPU; if that DPU already holds
//!    `queue_cap` requests in flight, the request is *dropped*
//!    (bounded-queue admission control), otherwise it is staged into
//!    the current dispatch window.
//! 2. **Dispatch** — every `window_us` the staged requests flush as
//!    one host→PIM push: the window's per-DPU payload bytes form a
//!    [`TransferPlan`] priced by the shared [`SimContext::planner`],
//!    and every request in the window becomes runnable once the push
//!    lands.
//! 3. **Service** — each DPU serves its queue FIFO; a request's
//!    service time is its class's replay-calibrated fragment time
//!    (see [`RequestClass::service_ns`]). Completion events feed the
//!    queue-depth timeline.
//!
//! Everything is single-threaded and seeded, so a [`ServeReport`] is
//! byte-identical across [`pim_sim::ExecPolicy`] values and worker
//! counts by construction; the saturation sweep in [`crate::sweep`]
//! fans *independent* serve runs over the executor and merges them in
//! index order, preserving the contract.

use pim_sim::{
    Cycles, EventQueue, LatencyRecorder, LatencySummary, SimContext, TransferDirection,
    TransferPlan,
};

use crate::arrival::ArrivalProcess;
use crate::request::{assign_classes, BuildAllocator, RequestClass};

/// Seed salt separating the class-composition substream from the
/// arrival-time substream.
const CLASS_STREAM_SALT: u64 = 0xC1A5_5E5E_D000_0001;

/// Open-loop serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// DPUs in the serving fleet.
    pub n_dpus: usize,
    /// Requests in the open-loop stream.
    pub n_requests: usize,
    /// Arrival process (shape + mean offered load).
    pub arrival: ArrivalProcess,
    /// Per-DPU bound on requests in flight (staged + queued +
    /// in service); arrivals beyond it are dropped.
    pub queue_cap: usize,
    /// Dispatch-window length, microseconds: staged requests flush as
    /// one batched host→PIM push per window.
    pub window_us: u64,
    /// Maximum points retained in the queue-depth timeline (sampled
    /// at dispatch boundaries, then evenly thinned).
    pub timeline_points: usize,
    /// Shared execution context: `seed` drives arrivals and class
    /// composition, `transfer`/`batching` price dispatch windows,
    /// `exec` fans out sweep points (never a single run).
    pub ctx: SimContext,
}

impl Default for ServeConfig {
    /// The paper-scale fleet: 2560 DPUs (40 ranks), one million
    /// requests, 100 µs dispatch windows, 64-deep per-DPU queues.
    fn default() -> Self {
        ServeConfig {
            n_dpus: 2560,
            n_requests: 1_000_000,
            arrival: ArrivalProcess::Poisson { rps: 5e5 },
            queue_cap: 64,
            window_us: 100,
            timeline_points: 256,
            ctx: SimContext::default(),
        }
    }
}

impl ServeConfig {
    /// The same config with a different arrival process.
    pub fn with_arrival(self, arrival: ArrivalProcess) -> Self {
        ServeConfig { arrival, ..self }
    }
}

/// Outcome of one open-loop serving run, all in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Mean offered load of the arrival process, requests/second.
    pub offered_rps: f64,
    /// Completed requests over the simulated makespan.
    pub achieved_rps: f64,
    /// Requests admitted (and completed — admitted work always
    /// finishes; only admission is bounded).
    pub admitted: u64,
    /// Requests dropped at admission by the bounded queue.
    pub dropped: u64,
    /// End-to-end request latency (arrival → completion), nanoseconds
    /// carried in [`Cycles`]: p50/p95/p99/p99.9/max and mean.
    pub latency: LatencySummary,
    /// `(simulated seconds, requests in flight)` sampled at dispatch
    /// boundaries, thinned to at most `timeline_points` entries.
    pub queue_depth: Vec<(f64, u64)>,
    /// Peak requests in flight across the fleet.
    pub peak_in_flight: u64,
    /// Modeled host seconds spent on dispatch-window pushes.
    pub push_secs: f64,
    /// Transfer calls the dispatch schedule issued.
    pub push_calls: u64,
    /// Simulated seconds from first arrival to last completion.
    pub makespan_secs: f64,
}

impl ServeReport {
    /// Fraction of offered requests dropped at admission.
    pub fn drop_frac(&self) -> f64 {
        let total = self.admitted + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    /// A latency field in milliseconds (the recorder stores ns).
    fn ms(c: Cycles) -> f64 {
        c.0 as f64 * 1e-6
    }

    /// Median latency, ms.
    pub fn p50_ms(&self) -> f64 {
        Self::ms(self.latency.p50)
    }

    /// 95th-percentile latency, ms.
    pub fn p95_ms(&self) -> f64 {
        Self::ms(self.latency.p95)
    }

    /// 99th-percentile latency, ms.
    pub fn p99_ms(&self) -> f64 {
        Self::ms(self.latency.p99)
    }

    /// 99.9th-percentile latency, ms.
    pub fn p999_ms(&self) -> f64 {
        Self::ms(self.latency.p999)
    }

    /// Worst observed latency, ms.
    pub fn max_ms(&self) -> f64 {
        Self::ms(self.latency.max)
    }
}

/// Events of the serving loop. Ordering ties at one timestamp resolve
/// by push order ([`EventQueue`] is FIFO within a timestamp), which is
/// itself deterministic.
enum Ev {
    /// Request `idx` of the stream reaches the frontend.
    Arrive(u32),
    /// The current dispatch window closes.
    Flush,
    /// A request finishes on `dpu`.
    Complete(u32),
}

/// Runs the open-loop frontend. See the module docs for the model.
///
/// # Panics
///
/// Panics on an empty fleet/stream/class set, a zero queue cap, or a
/// non-positive arrival rate.
pub fn serve(cfg: &ServeConfig, classes: &[RequestClass], build: BuildAllocator) -> ServeReport {
    assert!(cfg.n_dpus > 0, "serving needs at least one DPU");
    assert!(cfg.n_requests > 0, "serving needs requests");
    assert!(cfg.queue_cap > 0, "a zero queue cap drops everything");
    let svc_ns: Vec<u64> = classes.iter().map(|c| c.service_ns(build)).collect();
    let arrivals = cfg.arrival.arrival_times_ns(cfg.ctx.seed, cfg.n_requests);
    let class_of = assign_classes(classes, cfg.ctx.seed ^ CLASS_STREAM_SALT, cfg.n_requests);
    let window_ns = (cfg.window_us * 1_000).max(1);
    let planner = cfg.ctx.planner();

    let mut ev: EventQueue<Ev> = EventQueue::new();
    ev.push(arrivals[0], Ev::Arrive(0));
    let mut next_arrival = 1usize;

    // free_at covers staging: a window's requests start no earlier
    // than its flush + push, FIFO per DPU thereafter.
    let mut free_at = vec![0u64; cfg.n_dpus];
    let mut in_flight = vec![0u32; cfg.n_dpus];
    let mut staged: Vec<(u64, u32, u32)> = Vec::new(); // (arrival_ns, dpu, class)
    let mut window_bytes = vec![0u64; cfg.n_dpus];
    let mut flush_scheduled = false;

    let mut rec = LatencyRecorder::new();
    let mut admitted = 0u64;
    let mut dropped = 0u64;
    let mut total_in_flight = 0u64;
    let mut peak_in_flight = 0u64;
    let mut depth_series: Vec<(u64, u64)> = Vec::new();
    let mut push_secs = 0.0f64;
    let mut push_calls = 0u64;
    let mut last_event_ns = 0u64;

    while let Some((now, event)) = ev.pop() {
        last_event_ns = last_event_ns.max(now);
        match event {
            Ev::Arrive(idx) => {
                let dpu = (admitted % cfg.n_dpus as u64) as usize;
                if u64::from(in_flight[dpu]) >= cfg.queue_cap as u64 {
                    dropped += 1;
                } else {
                    in_flight[dpu] += 1;
                    total_in_flight += 1;
                    peak_in_flight = peak_in_flight.max(total_in_flight);
                    staged.push((now, dpu as u32, class_of[idx as usize]));
                    window_bytes[dpu] += classes[class_of[idx as usize] as usize].payload_bytes;
                    admitted += 1;
                    if !flush_scheduled {
                        // Close the window at the next boundary.
                        ev.push((now / window_ns + 1) * window_ns, Ev::Flush);
                        flush_scheduled = true;
                    }
                }
                if next_arrival < arrivals.len() {
                    ev.push(arrivals[next_arrival], Ev::Arrive(next_arrival as u32));
                    next_arrival += 1;
                }
            }
            Ev::Flush => {
                flush_scheduled = false;
                let mut plan = TransferPlan::new(TransferDirection::HostToPim);
                for (dpu, bytes) in window_bytes.iter_mut().enumerate() {
                    if *bytes > 0 {
                        plan.push(dpu, *bytes);
                        *bytes = 0;
                    }
                }
                let est = planner.estimate(&plan);
                push_secs += est.secs;
                push_calls += est.calls;
                let runnable_at = now + (est.secs * 1e9).round() as u64;
                for &(arrived, dpu, class) in &staged {
                    let dpu = dpu as usize;
                    let start = free_at[dpu].max(runnable_at);
                    let done = start + svc_ns[class as usize];
                    free_at[dpu] = done;
                    rec.record(Cycles(done - arrived));
                    ev.push(done, Ev::Complete(dpu as u32));
                }
                staged.clear();
                depth_series.push((now, total_in_flight));
            }
            Ev::Complete(dpu) => {
                in_flight[dpu as usize] -= 1;
                total_in_flight -= 1;
            }
        }
    }
    debug_assert_eq!(total_in_flight, 0, "every admitted request completes");

    let makespan_secs = last_event_ns as f64 * 1e-9;
    // Thin the dispatch-boundary samples to a bounded, evenly spaced
    // timeline (deterministic index arithmetic).
    let queue_depth: Vec<(f64, u64)> = if depth_series.len() <= cfg.timeline_points.max(1) {
        depth_series
            .iter()
            .map(|&(t, d)| (t as f64 * 1e-9, d))
            .collect()
    } else {
        let points = cfg.timeline_points.max(1);
        (0..points)
            .map(|i| {
                let (t, d) = depth_series[i * depth_series.len() / points];
                (t as f64 * 1e-9, d)
            })
            .collect()
    };

    ServeReport {
        offered_rps: cfg.arrival.mean_rps(),
        achieved_rps: if makespan_secs > 0.0 {
            admitted as f64 / makespan_secs
        } else {
            0.0
        },
        admitted,
        dropped,
        latency: rec.summary(),
        queue_depth,
        peak_in_flight,
        push_secs,
        push_calls,
        makespan_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_malloc::PimAllocator;
    use pim_sim::DpuSim;
    use pim_trace::{synthesize, SizeLaw, SynthConfig, TemporalShape};

    fn sw_build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
        let cfg = pim_malloc::PimMallocConfig::sw(tasklets).with_heap_size(heap);
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    }

    fn small_class() -> RequestClass {
        let trace = synthesize(&SynthConfig {
            n_tasklets: 4,
            mallocs_per_tasklet: 8,
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 100 },
            heap_size: 1 << 20,
            ..SynthConfig::default()
        });
        RequestClass::new("small", trace, 2048, 1.0)
    }

    fn quick_cfg(rps: f64) -> ServeConfig {
        ServeConfig {
            n_dpus: 16,
            n_requests: 2_000,
            arrival: ArrivalProcess::Poisson { rps },
            queue_cap: 32,
            window_us: 50,
            ..ServeConfig::default()
        }
    }

    /// Rates relative to the calibrated capacity of the 16-DPU test
    /// fleet, so load levels stay meaningful if cost models move.
    fn at_load(mult: f64) -> ServeConfig {
        let cap = crate::sweep::estimated_capacity_rps(&[small_class()], &sw_build, 16);
        quick_cfg(mult * cap)
    }

    #[test]
    fn serving_is_deterministic() {
        let cfg = at_load(0.5);
        let classes = [small_class()];
        let a = serve(&cfg, &classes, &sw_build);
        let b = serve(&cfg, &classes, &sw_build);
        assert_eq!(a, b);
        assert_eq!(a.admitted + a.dropped, cfg.n_requests as u64);
        assert_eq!(a.latency.count, a.admitted);
        assert!(a.makespan_secs > 0.0);
        assert!(a.push_calls > 0);
    }

    #[test]
    fn light_load_sees_no_drops_and_low_latency() {
        let r = serve(&at_load(0.3), &[small_class()], &sw_build);
        assert_eq!(r.dropped, 0, "0.3x capacity is far from the knee");
        // Latency is bounded below by one dispatch window and, at
        // light load, stays within a few service times of it.
        let service_ms = small_class().service_ns(&sw_build) as f64 * 1e-6;
        assert!(r.p50_ms() >= 0.05 * 0.5);
        assert!(
            r.p50_ms() < 4.0 * service_ms + 1.0,
            "uncongested p50 {} ms vs service {} ms",
            r.p50_ms(),
            service_ms
        );
        assert!(r.latency.p50 <= r.latency.p99);
    }

    #[test]
    fn overload_drops_and_inflates_the_tail() {
        let light = serve(&at_load(0.3), &[small_class()], &sw_build);
        let heavy = serve(&at_load(50.0), &[small_class()], &sw_build);
        assert!(heavy.dropped > 0, "50x capacity must overwhelm 16 DPUs");
        assert!(heavy.drop_frac() > 0.1);
        assert!(heavy.p99_ms() > light.p99_ms());
        assert!(heavy.peak_in_flight >= light.peak_in_flight);
        // The queue bound holds: never more in flight than cap × fleet.
        assert!(heavy.peak_in_flight <= (32 * 16) as u64);
    }

    #[test]
    fn achieved_tracks_offered_under_light_load() {
        let r = serve(&at_load(0.3), &[small_class()], &sw_build);
        assert!(
            (r.achieved_rps - r.offered_rps).abs() < r.offered_rps * 0.2,
            "offered {} vs achieved {}",
            r.offered_rps,
            r.achieved_rps
        );
    }

    #[test]
    fn timeline_is_bounded_and_ordered() {
        let cfg = ServeConfig {
            timeline_points: 32,
            ..at_load(0.8)
        };
        let r = serve(&cfg, &[small_class()], &sw_build);
        assert!(r.queue_depth.len() <= 32);
        assert!(!r.queue_depth.is_empty());
        assert!(r
            .queue_depth
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[1].0 <= r.makespan_secs));
    }

    #[test]
    fn seed_changes_the_stream() {
        let cfg = at_load(0.5);
        let other = ServeConfig {
            ctx: cfg.ctx.with_seed(99),
            ..cfg
        };
        let classes = [small_class()];
        let a = serve(&cfg, &classes, &sw_build);
        let b = serve(&other, &classes, &sw_build);
        assert_ne!(a.latency, b.latency, "different seeds, different tails");
    }
}
