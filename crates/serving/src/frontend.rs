//! The deterministic open-loop serving event loop.
//!
//! [`serve`] admits a seeded arrival stream of allocation-bearing
//! requests into a fleet of `n_dpus` DPUs and reports SLO metrics in
//! *simulated* time. The loop is a discrete-event simulation over
//! virtual nanoseconds driven by [`pim_sim::EventQueue`]:
//!
//! 1. **Admission** — each arrival is hash-routed round-robin over
//!    admitted requests to a *healthy* DPU; if that DPU already holds
//!    `queue_cap` requests in flight, the request is *dropped*
//!    (bounded-queue admission control), otherwise it is staged into
//!    the current dispatch window.
//! 2. **Dispatch** — every `window_us` the staged requests flush as
//!    one host→PIM push: the window's per-DPU payload bytes form a
//!    [`TransferPlan`] priced by the shared [`SimContext::planner`],
//!    and every request in the window becomes runnable once the push
//!    lands.
//! 3. **Service** — each DPU serves its queue FIFO; a request's
//!    service time is its class's replay-calibrated fragment time
//!    (see [`RequestClass::service_ns`]). Completion events feed the
//!    queue-depth timeline.
//!
//! ## Self-healing under faults
//!
//! With a [`pim_sim::FaultPlan`] in `cfg.ctx.faults`, the frontend
//! survives an unhealthy fleet instead of assuming 100% capacity:
//!
//! * **Health-aware routing** — dead-on-arrival DPUs never receive
//!   traffic; the round-robin spreads over the currently healthy set.
//! * **Transfer faults** — a dispatch window priced through
//!   [`pim_sim::ShardedXfer::estimate_with_faults`] may fail rank
//!   shards (their requests retry with exponential backoff, bounded by
//!   [`RetryPolicy::max_retries`]) or straggle (the window's push time
//!   inflates).
//! * **Mid-run kills** — when a DPU dies, its staged and in-service
//!   requests are *re-dispatched* to healthy DPUs; requests whose
//!   retry budget is exhausted become fault-attributed drops.
//! * **Per-request timeout** — a request whose projected completion
//!   exceeds [`RetryPolicy::timeout_ns`] after queueing is re-routed
//!   to another DPU instead of waiting out a hopeless queue.
//!
//! Every fault decision is a pure function of the plan and a stable
//! identity (DPU index, flush ordinal), and the loop itself is
//! single-threaded, so reports stay byte-identical across
//! [`pim_sim::ExecPolicy`] values and worker counts — the workspace's
//! standing contract — and a disabled plan takes none of the fault
//! paths, leaving fault-free reports byte-identical to the
//! pre-fault-model frontend. The degraded-capacity story lands in
//! [`FaultSummary`]: healthy-DPU timeline, retries, re-dispatches,
//! and drop attribution.

use pim_sim::{
    Cycles, EventQueue, FaultyXferEstimate, LatencyRecorder, LatencySummary, SimContext,
    TransferDirection, TransferPlan,
};

use crate::arrival::ArrivalProcess;
use crate::request::{assign_classes, BuildAllocator, RequestClass};

/// Seed salt separating the class-composition substream from the
/// arrival-time substream.
const CLASS_STREAM_SALT: u64 = 0xC1A5_5E5E_D000_0001;

/// Retry/timeout policy of the self-healing frontend, in simulated
/// time. The default leaves the timeout disabled and allows three
/// retries with 50 µs exponential backoff — retry handling only
/// activates when the fault plan actually produces failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// A request whose projected completion lies more than this many
    /// simulated nanoseconds after its arrival is re-routed instead of
    /// served ([`u64::MAX`] disables the timeout).
    pub timeout_ns: u64,
    /// Re-dispatch/retry attempts allowed per request before it
    /// becomes a fault-attributed drop.
    pub max_retries: u32,
    /// Base backoff before a retried request re-enters a dispatch
    /// window; doubles per attempt.
    pub backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_ns: u64::MAX,
            max_retries: 3,
            backoff_ns: 50_000,
        }
    }
}

/// Open-loop serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// DPUs in the serving fleet.
    pub n_dpus: usize,
    /// Requests in the open-loop stream.
    pub n_requests: usize,
    /// Arrival process (shape + mean offered load).
    pub arrival: ArrivalProcess,
    /// Per-DPU bound on requests in flight (staged + queued +
    /// in service); arrivals beyond it are dropped.
    pub queue_cap: usize,
    /// Dispatch-window length, microseconds: staged requests flush as
    /// one batched host→PIM push per window.
    pub window_us: u64,
    /// Maximum points retained in the queue-depth timeline (sampled
    /// at dispatch boundaries, then evenly thinned).
    pub timeline_points: usize,
    /// Retry/timeout policy under faults (inert on a healthy fleet).
    pub retry: RetryPolicy,
    /// Shared execution context: `seed` drives arrivals and class
    /// composition, `transfer`/`batching` price dispatch windows,
    /// `faults` schedules fleet/transfer faults, `exec` fans out sweep
    /// points (never a single run).
    pub ctx: SimContext,
}

impl Default for ServeConfig {
    /// The paper-scale fleet: 2560 DPUs (40 ranks), one million
    /// requests, 100 µs dispatch windows, 64-deep per-DPU queues.
    fn default() -> Self {
        ServeConfig {
            n_dpus: 2560,
            n_requests: 1_000_000,
            arrival: ArrivalProcess::Poisson { rps: 5e5 },
            queue_cap: 64,
            window_us: 100,
            timeline_points: 256,
            retry: RetryPolicy::default(),
            ctx: SimContext::default(),
        }
    }
}

impl ServeConfig {
    /// The same config with a different arrival process.
    pub fn with_arrival(self, arrival: ArrivalProcess) -> Self {
        ServeConfig { arrival, ..self }
    }
}

/// The degraded-capacity section of a [`ServeReport`]: what the fault
/// plan did to the fleet and what the self-healing frontend did about
/// it. All-zero (with a single full-strength timeline point) on a
/// healthy run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// DPUs dead on arrival (faulty-part model).
    pub doa_dpus: u64,
    /// DPUs killed mid-run.
    pub killed_dpus: u64,
    /// Healthy DPUs when the run ended.
    pub healthy_final: u64,
    /// `(simulated seconds, healthy DPUs)` — the initial strength plus
    /// one point per mid-run kill.
    pub healthy_timeline: Vec<(f64, u64)>,
    /// Retry attempts scheduled (transfer-shard failures + timeouts).
    pub retries: u64,
    /// Requests moved off a DPU that died with them staged or in
    /// service.
    pub redispatched: u64,
    /// Requests re-routed because their projected completion exceeded
    /// [`RetryPolicy::timeout_ns`].
    pub timeouts: u64,
    /// Rank shards of dispatch pushes that failed outright.
    pub xfer_failed_shards: u64,
    /// Rank shards that completed but straggled.
    pub xfer_straggled_shards: u64,
    /// Requests dropped at admission by the bounded queue.
    pub drops_queue_full: u64,
    /// Requests dropped at admission because no healthy DPU remained.
    pub drops_no_healthy: u64,
    /// Admitted requests dropped after exhausting their retry budget
    /// (or finding no healthy DPU with queue room to retry on).
    pub drops_retry_exhausted: u64,
}

impl FaultSummary {
    fn new(n_dpus: usize) -> Self {
        FaultSummary {
            doa_dpus: 0,
            killed_dpus: 0,
            healthy_final: n_dpus as u64,
            healthy_timeline: Vec::new(),
            retries: 0,
            redispatched: 0,
            timeouts: 0,
            xfer_failed_shards: 0,
            xfer_straggled_shards: 0,
            drops_queue_full: 0,
            drops_no_healthy: 0,
            drops_retry_exhausted: 0,
        }
    }

    /// Drops attributable to faults rather than offered load: requests
    /// that found no healthy DPU plus admitted requests lost to
    /// exhausted retries. Together with [`FaultSummary::drops_queue_full`]
    /// this accounts for every drop in the report.
    pub fn fault_drops(&self) -> u64 {
        self.drops_no_healthy + self.drops_retry_exhausted
    }
}

/// Outcome of one open-loop serving run, all in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Mean offered load of the arrival process, requests/second.
    pub offered_rps: f64,
    /// Completed requests over the simulated makespan.
    pub achieved_rps: f64,
    /// Requests served to completion. On a healthy fleet admitted work
    /// always finishes; under faults, admitted requests that exhaust
    /// their retry budget move to the drop column instead.
    pub admitted: u64,
    /// Total requests dropped: bounded-queue admission drops plus
    /// fault-attributed drops (see [`FaultSummary`] for the split).
    pub dropped: u64,
    /// End-to-end request latency (arrival → completion), nanoseconds
    /// carried in [`Cycles`]: p50/p95/p99/p99.9/max and mean.
    pub latency: LatencySummary,
    /// `(simulated seconds, requests in flight)` sampled at dispatch
    /// boundaries, thinned to at most `timeline_points` entries.
    pub queue_depth: Vec<(f64, u64)>,
    /// Peak requests in flight across the fleet.
    pub peak_in_flight: u64,
    /// Modeled host seconds spent on dispatch-window pushes.
    pub push_secs: f64,
    /// Transfer calls the dispatch schedule issued.
    pub push_calls: u64,
    /// Simulated seconds from first arrival to last completion.
    pub makespan_secs: f64,
    /// Degraded-capacity accounting under the fault plan.
    pub faults: FaultSummary,
}

impl ServeReport {
    /// Fraction of offered requests dropped (admission + fault drops).
    pub fn drop_frac(&self) -> f64 {
        let total = self.admitted + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    /// Fraction of offered requests served to completion — the
    /// complement of [`ServeReport::drop_frac`], and the quantity the
    /// resilience gates compare against a fault-free baseline.
    pub fn goodput(&self) -> f64 {
        1.0 - self.drop_frac()
    }

    /// A latency field in milliseconds (the recorder stores ns).
    fn ms(c: Cycles) -> f64 {
        c.0 as f64 * 1e-6
    }

    /// Median latency, ms.
    pub fn p50_ms(&self) -> f64 {
        Self::ms(self.latency.p50)
    }

    /// 95th-percentile latency, ms.
    pub fn p95_ms(&self) -> f64 {
        Self::ms(self.latency.p95)
    }

    /// 99th-percentile latency, ms.
    pub fn p99_ms(&self) -> f64 {
        Self::ms(self.latency.p99)
    }

    /// 99.9th-percentile latency, ms.
    pub fn p999_ms(&self) -> f64 {
        Self::ms(self.latency.p999)
    }

    /// Worst observed latency, ms.
    pub fn max_ms(&self) -> f64 {
        Self::ms(self.latency.max)
    }
}

/// Events of the serving loop. Ordering ties at one timestamp resolve
/// by push order ([`EventQueue`] is FIFO within a timestamp), which is
/// itself deterministic.
enum Ev {
    /// Request `idx` of the stream reaches the frontend.
    Arrive(u32),
    /// The current dispatch window closes.
    Flush,
    /// Service slot `job` finishes on its DPU (possibly a ghost, if
    /// the DPU died mid-service and the request was re-dispatched).
    Complete(u32),
    /// DPU `dpu` dies at its scheduled kill time.
    Kill(u32),
}

/// A request staged for (re-)dispatch.
#[derive(Debug, Clone, Copy)]
struct StagedReq {
    /// Arrival nanosecond of the original request (latency anchor).
    arrived: u64,
    /// Target DPU.
    dpu: u32,
    /// Request-class index.
    class: u32,
    /// Retry attempts consumed so far.
    retries: u32,
    /// Earliest nanosecond this entry may ship (retry backoff).
    not_before: u64,
}

/// One request in service: the bookkeeping needed to re-dispatch it if
/// its DPU dies before `done`.
#[derive(Debug, Clone, Copy)]
struct Job {
    arrived: u64,
    dpu: u32,
    class: u32,
    retries: u32,
    done: u64,
    /// Cleared when the serving DPU dies; the pending completion event
    /// then becomes a ghost.
    live: bool,
}

/// Mutable loop state shared by the fault paths.
struct Loop<'a> {
    cfg: &'a ServeConfig,
    svc_ns: Vec<u64>,
    alive: Vec<bool>,
    /// Indices of currently healthy DPUs, ascending (rebuilt on kill).
    healthy: Vec<u32>,
    free_at: Vec<u64>,
    in_flight: Vec<u32>,
    staged: Vec<StagedReq>,
    jobs: Vec<Job>,
    free_slots: Vec<u32>,
    /// Live job ids per DPU (maintained only under a fault plan).
    dpu_jobs: Vec<Vec<u32>>,
    total_in_flight: u64,
    /// Deterministic rotation for re-dispatch target scans.
    redispatch_rr: u64,
    summary: FaultSummary,
}

impl Loop<'_> {
    /// Picks a healthy DPU with queue room for a re-dispatched
    /// request, rotating deterministically; `None` drops the request.
    fn redispatch_target(&mut self) -> Option<u32> {
        if self.healthy.is_empty() {
            return None;
        }
        let n = self.healthy.len();
        let start = (self.redispatch_rr % n as u64) as usize;
        self.redispatch_rr = self.redispatch_rr.wrapping_add(1);
        for off in 0..n {
            let dpu = self.healthy[(start + off) % n];
            if u64::from(self.in_flight[dpu as usize]) < self.cfg.queue_cap as u64 {
                return Some(dpu);
            }
        }
        None
    }

    /// Exponential backoff for the given attempt count.
    fn backoff_ns(&self, retries: u32) -> u64 {
        let shift = retries.saturating_sub(1).min(20);
        self.cfg.retry.backoff_ns.saturating_mul(1u64 << shift)
    }

    /// Allocates a job slot (reusing freed ones to bound memory).
    fn alloc_job(&mut self, job: Job) -> u32 {
        match self.free_slots.pop() {
            Some(id) => {
                self.jobs[id as usize] = job;
                id
            }
            None => {
                self.jobs.push(job);
                (self.jobs.len() - 1) as u32
            }
        }
    }

    /// Drops an admitted request that exhausted its options, keeping
    /// the in-flight accounting (`from_dpu` still holds its slot).
    fn drop_admitted(&mut self, from_dpu: u32) {
        self.in_flight[from_dpu as usize] -= 1;
        self.total_in_flight -= 1;
        self.summary.drops_retry_exhausted += 1;
    }
}

/// Runs the open-loop frontend. See the module docs for the model.
///
/// # Panics
///
/// Panics on an empty fleet/stream/class set, a zero queue cap, or a
/// non-positive arrival rate.
pub fn serve(cfg: &ServeConfig, classes: &[RequestClass], build: BuildAllocator) -> ServeReport {
    assert!(cfg.n_dpus > 0, "serving needs at least one DPU");
    assert!(cfg.n_requests > 0, "serving needs requests");
    assert!(cfg.queue_cap > 0, "a zero queue cap drops everything");
    let svc_ns: Vec<u64> = classes.iter().map(|c| c.service_ns(build)).collect();
    let arrivals = cfg.arrival.arrival_times_ns(cfg.ctx.seed, cfg.n_requests);
    let class_of = assign_classes(classes, cfg.ctx.seed ^ CLASS_STREAM_SALT, cfg.n_requests);
    let window_ns = (cfg.window_us * 1_000).max(1);
    let planner = cfg.ctx.planner();
    let faults = cfg.ctx.faults;
    let faults_on = faults.enabled();

    let mut ev: EventQueue<Ev> = EventQueue::new();
    ev.push(arrivals[0], Ev::Arrive(0));
    let mut next_arrival = 1usize;

    let alive: Vec<bool> = (0..cfg.n_dpus)
        .map(|d| !faults.dead_on_arrival(d))
        .collect();
    let healthy: Vec<u32> = (0..cfg.n_dpus as u32)
        .filter(|&d| alive[d as usize])
        .collect();
    let mut st = Loop {
        cfg,
        svc_ns,
        alive,
        healthy,
        // free_at covers staging: a window's requests start no earlier
        // than its flush + push, FIFO per DPU thereafter.
        free_at: vec![0u64; cfg.n_dpus],
        in_flight: vec![0u32; cfg.n_dpus],
        staged: Vec::new(),
        jobs: Vec::new(),
        free_slots: Vec::new(),
        dpu_jobs: vec![Vec::new(); if faults_on { cfg.n_dpus } else { 0 }],
        total_in_flight: 0,
        redispatch_rr: 0,
        summary: FaultSummary::new(cfg.n_dpus),
    };
    st.summary.doa_dpus = (cfg.n_dpus - st.healthy.len()) as u64;
    st.summary
        .healthy_timeline
        .push((0.0, st.healthy.len() as u64));
    if faults_on {
        for d in 0..cfg.n_dpus {
            if let Some(at) = faults.kill_time_ns(d) {
                ev.push(at, Ev::Kill(d as u32));
            }
        }
    }

    let mut rec = LatencyRecorder::new();
    let mut admitted = 0u64; // routing counter: requests admitted so far
    let mut completed = 0u64;
    let mut peak_in_flight = 0u64;
    let mut depth_series: Vec<(u64, u64)> = Vec::new();
    let mut push_secs = 0.0f64;
    let mut push_calls = 0u64;
    let mut flush_scheduled = false;
    let mut flush_ordinal = 0u64;
    let mut last_event_ns = 0u64;
    let mut window_bytes = vec![0u64; cfg.n_dpus];

    while let Some((now, event)) = ev.pop() {
        last_event_ns = last_event_ns.max(now);
        match event {
            Ev::Arrive(idx) => {
                if st.healthy.is_empty() {
                    st.summary.drops_no_healthy += 1;
                } else {
                    let dpu = st.healthy[(admitted % st.healthy.len() as u64) as usize];
                    if u64::from(st.in_flight[dpu as usize]) >= cfg.queue_cap as u64 {
                        st.summary.drops_queue_full += 1;
                    } else {
                        st.in_flight[dpu as usize] += 1;
                        st.total_in_flight += 1;
                        peak_in_flight = peak_in_flight.max(st.total_in_flight);
                        st.staged.push(StagedReq {
                            arrived: now,
                            dpu,
                            class: class_of[idx as usize],
                            retries: 0,
                            not_before: 0,
                        });
                        admitted += 1;
                        if !flush_scheduled {
                            // Close the window at the next boundary.
                            ev.push((now / window_ns + 1) * window_ns, Ev::Flush);
                            flush_scheduled = true;
                        }
                    }
                }
                if next_arrival < arrivals.len() {
                    ev.push(arrivals[next_arrival], Ev::Arrive(next_arrival as u32));
                    next_arrival += 1;
                }
            }
            Ev::Flush => {
                flush_scheduled = false;
                let nonce = flush_ordinal;
                flush_ordinal += 1;
                // Ship the eligible staged requests; backoff holds the
                // rest for a later window.
                let (ready, deferred): (Vec<StagedReq>, Vec<StagedReq>) =
                    st.staged.drain(..).partition(|r| r.not_before <= now);
                st.staged = deferred;
                for r in &ready {
                    window_bytes[r.dpu as usize] += classes[r.class as usize].payload_bytes;
                }
                let mut plan = TransferPlan::new(TransferDirection::HostToPim);
                for (dpu, bytes) in window_bytes.iter_mut().enumerate() {
                    if *bytes > 0 {
                        plan.push(dpu, *bytes);
                        *bytes = 0;
                    }
                }
                let f = if faults.xfer_enabled() {
                    planner.estimate_with_faults(&plan, &faults, nonce)
                } else {
                    FaultyXferEstimate::clean(planner.estimate(&plan))
                };
                push_secs += f.est.secs;
                push_calls += f.est.calls;
                st.summary.xfer_failed_shards += f.failed_shards;
                st.summary.xfer_straggled_shards += f.straggled_shards;
                let runnable_at = now + (f.est.secs * 1e9).round() as u64;
                for r in ready {
                    let dpu = r.dpu as usize;
                    if f.failed_dpus.binary_search(&dpu).is_ok() {
                        // The rank shard carrying this payload failed:
                        // retry with backoff or drop.
                        let retries = r.retries + 1;
                        if retries > cfg.retry.max_retries {
                            st.drop_admitted(r.dpu);
                        } else {
                            st.summary.retries += 1;
                            let not_before = now + st.backoff_ns(retries);
                            st.staged.push(StagedReq {
                                retries,
                                not_before,
                                ..r
                            });
                        }
                        continue;
                    }
                    let start = st.free_at[dpu].max(runnable_at);
                    let done = start + st.svc_ns[r.class as usize];
                    if done.saturating_sub(r.arrived) > cfg.retry.timeout_ns {
                        // Hopeless queue: re-route instead of waiting.
                        st.summary.timeouts += 1;
                        let retries = r.retries + 1;
                        if retries > cfg.retry.max_retries {
                            st.drop_admitted(r.dpu);
                        } else if let Some(target) = st.redispatch_target() {
                            st.summary.retries += 1;
                            st.in_flight[dpu] -= 1;
                            st.in_flight[target as usize] += 1;
                            let not_before = now + st.backoff_ns(retries);
                            st.staged.push(StagedReq {
                                dpu: target,
                                retries,
                                not_before,
                                ..r
                            });
                        } else {
                            st.drop_admitted(r.dpu);
                        }
                        continue;
                    }
                    st.free_at[dpu] = done;
                    let job = st.alloc_job(Job {
                        arrived: r.arrived,
                        dpu: r.dpu,
                        class: r.class,
                        retries: r.retries,
                        done,
                        live: true,
                    });
                    if faults_on {
                        st.dpu_jobs[dpu].push(job);
                    }
                    ev.push(done, Ev::Complete(job));
                }
                depth_series.push((now, st.total_in_flight));
                if !st.staged.is_empty() && !flush_scheduled {
                    // Deferred retries still need a window.
                    ev.push((now / window_ns + 1) * window_ns, Ev::Flush);
                    flush_scheduled = true;
                }
            }
            Ev::Complete(job_id) => {
                let job = st.jobs[job_id as usize];
                st.free_slots.push(job_id);
                if !job.live {
                    continue; // ghost of a killed DPU's service slot
                }
                let dpu = job.dpu as usize;
                if faults_on {
                    if let Some(pos) = st.dpu_jobs[dpu].iter().position(|&j| j == job_id) {
                        st.dpu_jobs[dpu].swap_remove(pos);
                    }
                }
                st.in_flight[dpu] -= 1;
                st.total_in_flight -= 1;
                completed += 1;
                rec.record(Cycles(job.done - job.arrived));
            }
            Ev::Kill(dpu) => {
                let d = dpu as usize;
                if !st.alive[d] {
                    continue;
                }
                st.alive[d] = false;
                st.healthy.retain(|&h| h != dpu);
                st.summary.killed_dpus += 1;
                st.summary
                    .healthy_timeline
                    .push((now as f64 * 1e-9, st.healthy.len() as u64));
                // Re-dispatch the casualties: staged requests simply
                // re-target; in-service requests lose their progress,
                // consume a retry, and back off before re-entering.
                let (mut stranded, kept): (Vec<StagedReq>, Vec<StagedReq>) =
                    st.staged.drain(..).partition(|r| r.dpu == dpu);
                st.staged = kept;
                for id in std::mem::take(&mut st.dpu_jobs[d]) {
                    let (arrived, class, prev_retries) = {
                        let job = &mut st.jobs[id as usize];
                        job.live = false;
                        (job.arrived, job.class, job.retries)
                    };
                    let retries = prev_retries + 1;
                    if retries > cfg.retry.max_retries {
                        st.drop_admitted(dpu);
                        continue;
                    }
                    let not_before = now + st.backoff_ns(retries);
                    stranded.push(StagedReq {
                        arrived,
                        dpu,
                        class,
                        retries,
                        not_before,
                    });
                }
                for r in stranded {
                    match st.redispatch_target() {
                        Some(target) => {
                            st.summary.redispatched += 1;
                            st.in_flight[d] -= 1;
                            st.in_flight[target as usize] += 1;
                            st.staged.push(StagedReq { dpu: target, ..r });
                        }
                        None => st.drop_admitted(dpu),
                    }
                }
                if !st.staged.is_empty() && !flush_scheduled {
                    ev.push((now / window_ns + 1) * window_ns, Ev::Flush);
                    flush_scheduled = true;
                }
            }
        }
    }
    debug_assert_eq!(
        st.total_in_flight, 0,
        "every admitted request completes or drops"
    );
    st.summary.healthy_final = st.healthy.len() as u64;
    let dropped = st.summary.drops_queue_full
        + st.summary.drops_no_healthy
        + st.summary.drops_retry_exhausted;
    debug_assert_eq!(completed + dropped, cfg.n_requests as u64);

    let makespan_secs = last_event_ns as f64 * 1e-9;
    // Thin the dispatch-boundary samples to a bounded, evenly spaced
    // timeline (deterministic index arithmetic).
    let queue_depth: Vec<(f64, u64)> = if depth_series.len() <= cfg.timeline_points.max(1) {
        depth_series
            .iter()
            .map(|&(t, d)| (t as f64 * 1e-9, d))
            .collect()
    } else {
        let points = cfg.timeline_points.max(1);
        (0..points)
            .map(|i| {
                let (t, d) = depth_series[i * depth_series.len() / points];
                (t as f64 * 1e-9, d)
            })
            .collect()
    };

    ServeReport {
        offered_rps: cfg.arrival.mean_rps(),
        achieved_rps: if makespan_secs > 0.0 {
            completed as f64 / makespan_secs
        } else {
            0.0
        },
        admitted: completed,
        dropped,
        latency: rec.summary(),
        queue_depth,
        peak_in_flight,
        push_secs,
        push_calls,
        makespan_secs,
        faults: st.summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_malloc::PimAllocator;
    use pim_sim::{DpuSim, FaultPlan};
    use pim_trace::{synthesize, SizeLaw, SynthConfig, TemporalShape};

    fn sw_build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
        let cfg = pim_malloc::AllocGeometry::sw(tasklets)
            .with_heap_size(heap)
            .build();
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    }

    fn small_class() -> RequestClass {
        let trace = synthesize(&SynthConfig {
            n_tasklets: 4,
            mallocs_per_tasklet: 8,
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 100 },
            heap_size: 1 << 20,
            ..SynthConfig::default()
        });
        RequestClass::new("small", trace, 2048, 1.0)
    }

    fn quick_cfg(rps: f64) -> ServeConfig {
        ServeConfig {
            n_dpus: 16,
            n_requests: 2_000,
            arrival: ArrivalProcess::Poisson { rps },
            queue_cap: 32,
            window_us: 50,
            ..ServeConfig::default()
        }
    }

    /// Rates relative to the calibrated capacity of the 16-DPU test
    /// fleet, so load levels stay meaningful if cost models move.
    fn at_load(mult: f64) -> ServeConfig {
        let cap = crate::sweep::estimated_capacity_rps(&[small_class()], &sw_build, 16);
        quick_cfg(mult * cap)
    }

    #[test]
    fn serving_is_deterministic() {
        let cfg = at_load(0.5);
        let classes = [small_class()];
        let a = serve(&cfg, &classes, &sw_build);
        let b = serve(&cfg, &classes, &sw_build);
        assert_eq!(a, b);
        assert_eq!(a.admitted + a.dropped, cfg.n_requests as u64);
        assert_eq!(a.latency.count, a.admitted);
        assert!(a.makespan_secs > 0.0);
        assert!(a.push_calls > 0);
    }

    #[test]
    fn light_load_sees_no_drops_and_low_latency() {
        let r = serve(&at_load(0.3), &[small_class()], &sw_build);
        assert_eq!(r.dropped, 0, "0.3x capacity is far from the knee");
        // Latency is bounded below by one dispatch window and, at
        // light load, stays within a few service times of it.
        let service_ms = small_class().service_ns(&sw_build) as f64 * 1e-6;
        assert!(r.p50_ms() >= 0.05 * 0.5);
        assert!(
            r.p50_ms() < 4.0 * service_ms + 1.0,
            "uncongested p50 {} ms vs service {} ms",
            r.p50_ms(),
            service_ms
        );
        assert!(r.latency.p50 <= r.latency.p99);
    }

    #[test]
    fn overload_drops_and_inflates_the_tail() {
        let light = serve(&at_load(0.3), &[small_class()], &sw_build);
        let heavy = serve(&at_load(50.0), &[small_class()], &sw_build);
        assert!(heavy.dropped > 0, "50x capacity must overwhelm 16 DPUs");
        assert!(heavy.drop_frac() > 0.1);
        assert!(heavy.p99_ms() > light.p99_ms());
        assert!(heavy.peak_in_flight >= light.peak_in_flight);
        // The queue bound holds: never more in flight than cap × fleet.
        assert!(heavy.peak_in_flight <= (32 * 16) as u64);
        // Healthy fleet: every drop is a queue-full admission drop.
        assert_eq!(heavy.faults.drops_queue_full, heavy.dropped);
        assert_eq!(heavy.faults.fault_drops(), 0);
    }

    #[test]
    fn achieved_tracks_offered_under_light_load() {
        let r = serve(&at_load(0.3), &[small_class()], &sw_build);
        assert!(
            (r.achieved_rps - r.offered_rps).abs() < r.offered_rps * 0.2,
            "offered {} vs achieved {}",
            r.offered_rps,
            r.achieved_rps
        );
    }

    #[test]
    fn timeline_is_bounded_and_ordered() {
        let cfg = ServeConfig {
            timeline_points: 32,
            ..at_load(0.8)
        };
        let r = serve(&cfg, &[small_class()], &sw_build);
        assert!(r.queue_depth.len() <= 32);
        assert!(!r.queue_depth.is_empty());
        assert!(r
            .queue_depth
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[1].0 <= r.makespan_secs));
    }

    #[test]
    fn seed_changes_the_stream() {
        let cfg = at_load(0.5);
        let other = ServeConfig {
            ctx: cfg.ctx.with_seed(99),
            ..cfg
        };
        let classes = [small_class()];
        let a = serve(&cfg, &classes, &sw_build);
        let b = serve(&other, &classes, &sw_build);
        assert_ne!(a.latency, b.latency, "different seeds, different tails");
    }

    #[test]
    fn healthy_run_reports_a_clean_fault_summary() {
        let r = serve(&at_load(0.5), &[small_class()], &sw_build);
        let f = &r.faults;
        assert_eq!(f.doa_dpus, 0);
        assert_eq!(f.killed_dpus, 0);
        assert_eq!(f.healthy_final, 16);
        assert_eq!(f.healthy_timeline, vec![(0.0, 16)]);
        assert_eq!(f.retries + f.redispatched + f.timeouts, 0);
        assert_eq!(f.fault_drops(), 0);
    }

    #[test]
    fn dead_on_arrival_dpus_never_serve() {
        let faults = FaultPlan {
            seed: 3,
            dead_frac: 0.3,
            ..FaultPlan::none()
        };
        let base = at_load(0.4);
        let cfg = ServeConfig {
            ctx: base.ctx.with_faults(faults),
            ..base
        };
        let r = serve(&cfg, &[small_class()], &sw_build);
        let dead = (0..16).filter(|&d| faults.dead_on_arrival(d)).count() as u64;
        assert!(dead > 0, "0.3 dead_frac on 16 DPUs should hit some");
        assert_eq!(r.faults.doa_dpus, dead);
        assert_eq!(r.faults.healthy_final, 16 - dead);
        // The healthy subset absorbs the load; the run still completes
        // every admitted request deterministically.
        assert_eq!(serve(&cfg, &[small_class()], &sw_build), r);
        assert_eq!(r.admitted + r.dropped, cfg.n_requests as u64);
        assert_eq!(r.latency.count, r.admitted);
    }

    #[test]
    fn mid_run_kills_redispatch_in_flight_work() {
        // Kill aggressively inside the stream's active horizon so
        // in-service requests are stranded and must move.
        let base = at_load(0.6);
        let probe = serve(&base, &[small_class()], &sw_build);
        let horizon = (probe.makespan_secs * 0.5 * 1e9) as u64;
        let faults = FaultPlan {
            seed: 8,
            kill_frac: 0.4,
            kill_horizon_ns: horizon.max(1),
            ..FaultPlan::none()
        };
        let cfg = ServeConfig {
            ctx: base.ctx.with_faults(faults),
            ..base
        };
        let r = serve(&cfg, &[small_class()], &sw_build);
        assert!(r.faults.killed_dpus > 0, "0.4 kill_frac must land kills");
        assert_eq!(
            r.faults.healthy_timeline.len() as u64,
            1 + r.faults.killed_dpus,
            "one timeline point per kill"
        );
        assert!(
            r.faults.redispatched > 0,
            "killing mid-run must strand work"
        );
        // Accounting stays closed: all requests end somewhere.
        assert_eq!(r.admitted + r.dropped, cfg.n_requests as u64);
        assert_eq!(
            r.dropped,
            r.faults.drops_queue_full + r.faults.fault_drops()
        );
        // Deterministic under chaos.
        assert_eq!(serve(&cfg, &[small_class()], &sw_build), r);
    }

    #[test]
    fn transfer_faults_trigger_bounded_retries() {
        let base = at_load(0.5);
        let faults = FaultPlan {
            seed: 21,
            xfer_fail_prob: 0.2,
            xfer_straggle_prob: 0.2,
            straggle_factor: 3.0,
            ..FaultPlan::none()
        };
        let cfg = ServeConfig {
            ctx: base.ctx.with_faults(faults),
            ..base
        };
        let clean = serve(&base, &[small_class()], &sw_build);
        let r = serve(&cfg, &[small_class()], &sw_build);
        assert!(r.faults.xfer_failed_shards > 0);
        assert!(r.faults.xfer_straggled_shards > 0);
        assert!(r.faults.retries > 0, "failed shards must be retried");
        // Retries + stragglers can only push the tail up.
        assert!(r.p99_ms() >= clean.p99_ms());
        assert!(r.push_secs > clean.push_secs, "stragglers inflate pushes");
        assert_eq!(r.admitted + r.dropped, cfg.n_requests as u64);
        assert_eq!(serve(&cfg, &[small_class()], &sw_build), r);
    }

    #[test]
    fn timeout_reroutes_hopeless_queues() {
        // A tight timeout at heavy load forces re-routing.
        let base = at_load(3.0);
        let svc = small_class().service_ns(&sw_build);
        let cfg = ServeConfig {
            retry: RetryPolicy {
                timeout_ns: 20 * svc,
                ..RetryPolicy::default()
            },
            // The timeout path only engages under a fault plan; use a
            // negligible-but-enabled one so the fault machinery is on.
            ctx: base.ctx.with_faults(FaultPlan {
                seed: 1,
                dead_frac: 1e-9,
                ..FaultPlan::none()
            }),
            ..base
        };
        let r = serve(&cfg, &[small_class()], &sw_build);
        assert!(r.faults.timeouts > 0, "3x load must breach a 20-svc SLO");
        // Timed-out requests either re-route (and complete) or drop.
        assert_eq!(r.admitted + r.dropped, cfg.n_requests as u64);
        assert!(r.latency.max.0 <= 20 * svc + 2 * svc + 1_000_000);
    }

    #[test]
    fn fleet_of_the_dead_drops_everything_gracefully() {
        let faults = FaultPlan {
            seed: 2,
            dead_frac: 1.0,
            ..FaultPlan::none()
        };
        let base = at_load(0.5);
        let cfg = ServeConfig {
            ctx: base.ctx.with_faults(faults),
            ..base
        };
        let r = serve(&cfg, &[small_class()], &sw_build);
        assert_eq!(r.admitted, 0);
        assert_eq!(r.dropped, cfg.n_requests as u64);
        assert_eq!(r.faults.drops_no_healthy, cfg.n_requests as u64);
        assert_eq!(r.faults.healthy_final, 0);
    }
}
