//! Seeded open-loop arrival processes.
//!
//! An [`ArrivalProcess`] expands, via the same seeded-generator
//! discipline as `pim_trace::synthesize`, into a deterministic sorted
//! vector of arrival timestamps (virtual nanoseconds). Open-loop means
//! arrivals do not react to the system: a saturated frontend keeps
//! receiving requests, which is what makes tail latency and drop
//! counts meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spacing between requests inside one burst of
/// [`ArrivalProcess::Bursty`], seconds (2 µs — back-to-back RPC
/// deserialisation on the host).
const INTRA_BURST_GAP_SECS: f64 = 2e-6;

/// Shape of the open-loop request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean offered load, requests per second.
        rps: f64,
    },
    /// Bursts of `burst` back-to-back requests whose *epochs* form a
    /// Poisson process at `rps / burst` — same mean rate as
    /// [`ArrivalProcess::Poisson`], far worse instantaneous load.
    Bursty {
        /// Mean offered load, requests per second.
        rps: f64,
        /// Requests per burst.
        burst: usize,
    },
    /// Sinusoidally modulated rate `rps * (1 + depth * sin(2πt/period))`
    /// — a compressed day/night load curve, sampled by thinning.
    Diurnal {
        /// Mean offered load, requests per second.
        rps: f64,
        /// Period of the modulation, seconds.
        period_secs: f64,
        /// Modulation depth in `[0, 1)`: peak load is `(1 + depth)·rps`.
        depth: f64,
    },
}

impl ArrivalProcess {
    /// Short label used in report rows.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }

    /// Mean offered load, requests per second.
    pub fn mean_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rps }
            | ArrivalProcess::Bursty { rps, .. }
            | ArrivalProcess::Diurnal { rps, .. } => rps,
        }
    }

    /// The same shape at a different mean rate — how the saturation
    /// sweep scales offered load without changing burstiness.
    pub fn with_rps(self, rps: f64) -> Self {
        match self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rps },
            ArrivalProcess::Bursty { burst, .. } => ArrivalProcess::Bursty { rps, burst },
            ArrivalProcess::Diurnal {
                period_secs, depth, ..
            } => ArrivalProcess::Diurnal {
                rps,
                period_secs,
                depth,
            },
        }
    }

    /// Expands the process into `n` arrival timestamps in virtual
    /// nanoseconds, sorted ascending. Deterministic per `(self, seed,
    /// n)`; equal prefixes: growing `n` appends later arrivals without
    /// disturbing earlier ones (before the final sort, which only
    /// matters for overlapping bursts).
    ///
    /// # Panics
    ///
    /// Panics if the mean rate is not strictly positive.
    pub fn arrival_times_ns(&self, seed: u64, n: usize) -> Vec<u64> {
        assert!(
            self.mean_rps() > 0.0,
            "arrival process needs a positive rate"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut times = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rps } => {
                let mut t = 0.0f64;
                for _ in 0..n {
                    t += exp_sample(&mut rng, rps);
                    times.push(to_ns(t));
                }
            }
            ArrivalProcess::Bursty { rps, burst } => {
                let burst = burst.max(1);
                let epoch_rate = rps / burst as f64;
                let mut epoch = 0.0f64;
                while times.len() < n {
                    epoch += exp_sample(&mut rng, epoch_rate);
                    for k in 0..burst.min(n - times.len()) {
                        times.push(to_ns(epoch + k as f64 * INTRA_BURST_GAP_SECS));
                    }
                }
            }
            ArrivalProcess::Diurnal {
                rps,
                period_secs,
                depth,
            } => {
                // Lewis–Shedler thinning against the peak rate.
                let depth = depth.clamp(0.0, 0.99);
                let period = period_secs.max(1e-9);
                let peak = rps * (1.0 + depth);
                let mut t = 0.0f64;
                while times.len() < n {
                    t += exp_sample(&mut rng, peak);
                    let lambda =
                        rps * (1.0 + depth * (2.0 * std::f64::consts::PI * t / period).sin());
                    if rng.gen_range(0.0..1.0) * peak < lambda {
                        times.push(to_ns(t));
                    }
                }
            }
        }
        // Bursts can overlap when an epoch gap is shorter than the
        // burst span; the frontend wants a time-ordered stream.
        times.sort_unstable();
        times
    }
}

/// One exponential inter-arrival gap at `rate` per second.
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate
}

fn to_ns(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 20_000;

    fn all() -> [ArrivalProcess; 3] {
        [
            ArrivalProcess::Poisson { rps: 1e5 },
            ArrivalProcess::Bursty {
                rps: 1e5,
                burst: 16,
            },
            ArrivalProcess::Diurnal {
                rps: 1e5,
                period_secs: 0.05,
                depth: 0.8,
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        for p in all() {
            let a = p.arrival_times_ns(7, N);
            let b = p.arrival_times_ns(7, N);
            assert_eq!(a, b, "{}", p.label());
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{}", p.label());
            assert_ne!(a, p.arrival_times_ns(8, N), "{}", p.label());
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        // Span of N arrivals ≈ N / rps for every shape (±15%).
        for p in all() {
            let t = p.arrival_times_ns(42, N);
            let span_secs = *t.last().unwrap() as f64 * 1e-9;
            let expected = N as f64 / p.mean_rps();
            assert!(
                (span_secs - expected).abs() < expected * 0.15,
                "{}: span {span_secs} vs expected {expected}",
                p.label()
            );
        }
    }

    #[test]
    fn bursty_clusters_harder_than_poisson() {
        // Fraction of inter-arrival gaps under 3 µs: bursty packs
        // 15/16 of its arrivals back-to-back, Poisson at 100 krps
        // almost never gets that close.
        let tight = |p: ArrivalProcess| {
            let t = p.arrival_times_ns(1, N);
            t.windows(2).filter(|w| w[1] - w[0] < 3_000).count() as f64 / (N - 1) as f64
        };
        let poisson = tight(ArrivalProcess::Poisson { rps: 1e5 });
        let bursty = tight(ArrivalProcess::Bursty {
            rps: 1e5,
            burst: 16,
        });
        assert!(
            bursty > poisson + 0.3,
            "bursty {bursty} vs poisson {poisson}"
        );
    }

    #[test]
    fn with_rps_scales_rate_and_keeps_shape() {
        let p = ArrivalProcess::Bursty { rps: 1e4, burst: 8 };
        let fast = p.with_rps(2e4);
        assert_eq!(fast.mean_rps(), 2e4);
        assert_eq!(fast.label(), "bursty");
        let slow_span = *p.arrival_times_ns(3, N).last().unwrap();
        let fast_span = *fast.arrival_times_ns(3, N).last().unwrap();
        assert!(fast_span < slow_span, "doubling the rate halves the span");
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_rejected() {
        ArrivalProcess::Poisson { rps: 0.0 }.arrival_times_ns(1, 10);
    }
}
