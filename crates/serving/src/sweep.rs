//! Knee-finding saturation sweep over offered load.
//!
//! [`saturation_sweep`] re-runs the open-loop frontend at a ladder of
//! load multipliers relative to the fleet's calibrated capacity and
//! finds the *knee*: the highest offered load the fleet still serves
//! without shedding (≤1% drops) while achieving ≥95% of what was
//! offered. Sweep points are independent serve runs fanned over the
//! topology-aware executor under the config's
//! [`pim_sim::ExecPolicy`]; results merge in index order, so the
//! report is byte-identical across policies and worker counts.
//!
//! Sweeping a config whose context carries a [`pim_sim::FaultPlan`]
//! measures the *degraded* fleet: fault-attributed drops count
//! against the knee exactly like admission drops (both live in
//! [`ServeReport::drop_frac`]), so the knee under faults is the
//! honest capacity of the surviving DPUs.

use pim_sim::parallel_indexed_with;

use crate::frontend::{serve, ServeConfig, ServeReport};
use crate::request::{BuildAllocator, RequestClass};

/// Drop fraction above which a sweep point no longer counts as
/// "serving the offered load".
const KNEE_DROP_FRAC: f64 = 0.01;
/// Minimum achieved/offered ratio for a point to sit below the knee.
const KNEE_GOODPUT_FRAC: f64 = 0.95;

/// One offered-load point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load as a multiple of the calibrated capacity.
    pub load: f64,
    /// The full serve report at this load.
    pub report: ServeReport,
}

/// Outcome of a saturation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationReport {
    /// Calibrated fleet capacity (requests/second a drop-free fleet
    /// could serve back-to-back): `n_dpus / mean service seconds`.
    pub capacity_rps: f64,
    /// Sweep points in ascending load order.
    pub points: Vec<LoadPoint>,
    /// Offered load (rps) at the knee — the highest swept point still
    /// served at ≥95% goodput with ≤1% drops; 0 if even the lightest
    /// point sheds load.
    pub knee_rps: f64,
    /// Best achieved throughput across the sweep, requests/second —
    /// the fleet's saturation throughput.
    pub saturation_rps: f64,
}

/// Calibrated capacity of `n_dpus` DPUs serving `classes` mixed by
/// weight: `n_dpus / weighted mean service seconds`. The event loop's
/// drop-free upper bound (dispatch windows and queueing push the real
/// knee below it).
///
/// # Panics
///
/// Panics if `classes` is empty (calibration replays each class).
pub fn estimated_capacity_rps(
    classes: &[RequestClass],
    build: BuildAllocator,
    n_dpus: usize,
) -> f64 {
    assert!(!classes.is_empty(), "capacity needs at least one class");
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    let mean_secs: f64 = classes
        .iter()
        .map(|c| c.service_ns(build) as f64 * 1e-9 * (c.weight / total_weight))
        .sum();
    n_dpus as f64 / mean_secs
}

/// Sweeps offered load over `loads` (multiples of the calibrated
/// capacity, ascending) and locates the knee. `base.arrival` supplies
/// the *shape* (Poisson/bursty/diurnal); each point rescales its mean
/// rate.
///
/// # Panics
///
/// Panics if `loads` is empty or not strictly ascending and positive.
pub fn saturation_sweep(
    base: &ServeConfig,
    classes: &[RequestClass],
    build: BuildAllocator,
    loads: &[f64],
) -> SaturationReport {
    assert!(!loads.is_empty(), "sweep needs load points");
    assert!(
        loads.windows(2).all(|w| w[0] < w[1]) && loads[0] > 0.0,
        "load multipliers must be positive and ascending"
    );
    let capacity_rps = estimated_capacity_rps(classes, build, base.n_dpus);
    let reports = parallel_indexed_with(loads.len(), base.ctx.exec, |i| {
        let cfg = base.with_arrival(base.arrival.with_rps(loads[i] * capacity_rps));
        serve(&cfg, classes, build)
    });
    let points: Vec<LoadPoint> = loads
        .iter()
        .zip(reports)
        .map(|(&load, report)| LoadPoint { load, report })
        .collect();
    let knee_rps = points
        .iter()
        .filter(|p| {
            p.report.drop_frac() <= KNEE_DROP_FRAC
                && p.report.achieved_rps >= KNEE_GOODPUT_FRAC * p.report.offered_rps
        })
        .map(|p| p.report.offered_rps)
        .fold(0.0, f64::max);
    let saturation_rps = points
        .iter()
        .map(|p| p.report.achieved_rps)
        .fold(0.0, f64::max);
    SaturationReport {
        capacity_rps,
        points,
        knee_rps,
        saturation_rps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use pim_malloc::PimAllocator;
    use pim_sim::DpuSim;
    use pim_trace::{synthesize, SizeLaw, SynthConfig, TemporalShape};

    fn sw_build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
        let cfg = pim_malloc::AllocGeometry::sw(tasklets)
            .with_heap_size(heap)
            .build();
        Box::new(pim_malloc::PimMalloc::init(dpu, cfg).expect("init"))
    }

    fn classes() -> Vec<RequestClass> {
        let trace = synthesize(&SynthConfig {
            n_tasklets: 4,
            mallocs_per_tasklet: 8,
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 100 },
            heap_size: 1 << 20,
            ..SynthConfig::default()
        });
        vec![RequestClass::new("c", trace, 2048, 1.0)]
    }

    fn base() -> ServeConfig {
        ServeConfig {
            n_dpus: 16,
            n_requests: 1_500,
            arrival: ArrivalProcess::Poisson { rps: 1.0 }, // rescaled per point
            queue_cap: 16,
            window_us: 50,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn knee_sits_between_light_and_overload() {
        let r = saturation_sweep(&base(), &classes(), &sw_build, &[0.25, 0.5, 4.0]);
        assert!(r.capacity_rps > 0.0);
        assert_eq!(r.points.len(), 3);
        // The light points serve cleanly; 4x capacity cannot.
        assert!(r.points[0].report.drop_frac() <= 0.01);
        assert!(
            r.points[2].report.drop_frac() > 0.01 || {
                r.points[2].report.achieved_rps < 0.95 * r.points[2].report.offered_rps
            }
        );
        assert!(r.knee_rps >= 0.5 * r.capacity_rps * 0.9);
        assert!(r.knee_rps < 4.0 * r.capacity_rps);
        assert!(r.saturation_rps > 0.0);
        // Tails grow monotonically toward saturation in this ladder.
        assert!(r.points[2].report.p99_ms() >= r.points[0].report.p99_ms());
    }

    #[test]
    fn sweep_is_identical_across_exec_policies() {
        let cls = classes();
        let run = |exec| {
            let cfg = ServeConfig {
                ctx: base().ctx.with_exec(exec),
                ..base()
            };
            saturation_sweep(&cfg, &cls, &sw_build, &[0.5, 2.0])
        };
        let reference = run(pim_sim::ExecPolicy::Serial);
        for exec in [
            pim_sim::ExecPolicy::Oblivious,
            pim_sim::ExecPolicy::Sticky,
            pim_sim::ExecPolicy::StickySteal,
        ] {
            assert_eq!(run(exec), reference, "{exec:?}");
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_loads_rejected() {
        saturation_sweep(&base(), &classes(), &sw_build, &[1.0, 0.5]);
    }
}
