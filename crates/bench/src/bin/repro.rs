//! `repro` — regenerate the PIM-malloc paper's tables and figures.
//!
//! ```text
//! repro all [FLAGS]      run every experiment
//! repro <id> [FLAGS]     run one experiment (fig15, trace, ...)
//! repro list             list experiment ids with descriptions
//!
//! FLAGS:
//!   --quick       trim sweep sizes for a fast smoke run
//!   --seed N      override the stochastic experiments' workload seeds
//!                 (LLM trace, graph generator, synthetic traces);
//!                 defaults to each experiment's fixed seed
//!   --csv DIR     write each experiment's rows to DIR/<id>.csv
//!   --json DIR    write DIR/<id>.json (machine-readable, with
//!                 schema_version and the producing experiment id);
//!                 for `trace`, also writes the generated traces as
//!                 DIR/trace-<family>.trace.json
//! ```

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use parking_lot::Mutex;
use pim_bench::figures;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let value_flag = |flag: &str, operand: &str| -> Result<Option<String>, String> {
        match args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(format!("{flag} requires a {operand} operand")),
            },
        }
    };
    type Flags = (Option<String>, Option<String>, Option<u64>);
    let parsed = (|| -> Result<Flags, String> {
        let csv = value_flag("--csv", "DIR")?;
        let json = value_flag("--json", "DIR")?;
        let seed = match value_flag("--seed", "N")? {
            None => None,
            Some(s) => Some(
                s.parse::<u64>()
                    .map_err(|_| format!("--seed needs a u64, got `{s}`"))?,
            ),
        };
        Ok((csv, json, seed))
    })();
    let (csv_dir, json_dir, seed) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let targets: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--csv" || *a == "--json" || *a == "--seed" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    let target = targets.first().copied().unwrap_or("all");
    let write_outputs = |experiments: &[pim_bench::Experiment]| {
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for e in experiments {
                let path = std::path::Path::new(dir).join(format!("{}.csv", e.id));
                std::fs::write(&path, e.to_csv()).expect("write csv");
            }
        }
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            for e in experiments {
                let path = std::path::Path::new(dir).join(format!("{}.json", e.id));
                std::fs::write(&path, e.to_json()).expect("write json");
            }
        }
        // The trace experiment ships its generated traces alongside
        // the report, so a replay elsewhere starts from the same files.
        if let Some(dir) = &json_dir {
            if experiments.iter().any(|e| e.id == "trace") {
                for (file, contents) in figures::trace_artifact_files(
                    quick,
                    seed.unwrap_or(figures::TRACE_DEFAULT_SEED),
                ) {
                    let path = std::path::Path::new(dir).join(file);
                    std::fs::write(&path, contents).expect("write trace artifact");
                }
            }
        }
    };

    match target {
        "list" => {
            let width = figures::all_ids().map(str::len).max().unwrap_or(0);
            for entry in &figures::CATALOG {
                println!("{:width$}  {}", entry.id, entry.description);
            }
            ExitCode::SUCCESS
        }
        "all" => {
            println!(
                "# PIM-malloc reproduction — all experiments ({} mode)\n",
                if quick { "quick" } else { "full" }
            );
            // Experiments are independent; run them on a scoped thread
            // pool and print in paper order as they complete.
            let results: Mutex<BTreeMap<usize, Vec<pim_bench::Experiment>>> =
                Mutex::new(BTreeMap::new());
            std::thread::scope(|scope| {
                for (idx, id) in figures::all_ids().enumerate() {
                    let results = &results;
                    scope.spawn(move || {
                        let out = figures::run(id, quick, seed);
                        results.lock().insert(idx, out);
                    });
                }
            });
            for (_, experiments) in results.into_inner() {
                write_outputs(&experiments);
                for e in experiments {
                    println!("{e}");
                }
            }
            ExitCode::SUCCESS
        }
        id if figures::is_known(id) => {
            let experiments = figures::run(id, quick, seed);
            write_outputs(&experiments);
            for e in experiments {
                println!("{e}");
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown experiment `{other}`; try `repro list`");
            ExitCode::FAILURE
        }
    }
}
