//! `repro` — regenerate the PIM-malloc paper's tables and figures.
//!
//! ```text
//! repro all [--quick] [--csv DIR] [--json DIR]   run every experiment
//! repro <id> [--quick] [--csv DIR] [--json DIR]  run one experiment (fig15, ...)
//! repro list                                     list experiment ids
//! ```
//!
//! `--csv DIR` additionally writes each experiment's rows to
//! `DIR/<id>.csv` (plot-ready series); `--json DIR` writes
//! `DIR/<id>.json` (machine-readable, with title and paper reference).
//!
//! `--quick` trims sweep sizes for a fast smoke run; without it the
//! experiments use paper-scale parameters where feasible.

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use parking_lot::Mutex;
use pim_bench::figures;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dir_flag = |flag: &str| -> Result<Option<String>, String> {
        match args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match args.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => Ok(Some(dir.clone())),
                _ => Err(format!("{flag} requires a DIR operand")),
            },
        }
    };
    let (csv_dir, json_dir) = match (dir_flag("--csv"), dir_flag("--json")) {
        (Ok(csv), Ok(json)) => (csv, json),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let targets: Vec<&str> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--csv" || *a == "--json" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    let target = targets.first().copied().unwrap_or("all");
    let write_outputs = |experiments: &[pim_bench::Experiment]| {
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for e in experiments {
                let path = std::path::Path::new(dir).join(format!("{}.csv", e.id));
                std::fs::write(&path, e.to_csv()).expect("write csv");
            }
        }
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            for e in experiments {
                let path = std::path::Path::new(dir).join(format!("{}.json", e.id));
                std::fs::write(&path, e.to_json()).expect("write json");
            }
        }
    };

    match target {
        "list" => {
            for id in figures::ALL_IDS {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            println!(
                "# PIM-malloc reproduction — all experiments ({} mode)\n",
                if quick { "quick" } else { "full" }
            );
            // Experiments are independent; run them on a scoped thread
            // pool and print in paper order as they complete.
            let results: Mutex<BTreeMap<usize, Vec<pim_bench::Experiment>>> =
                Mutex::new(BTreeMap::new());
            std::thread::scope(|scope| {
                for (idx, id) in figures::ALL_IDS.iter().enumerate() {
                    let results = &results;
                    scope.spawn(move || {
                        let out = figures::run(id, quick);
                        results.lock().insert(idx, out);
                    });
                }
            });
            for (_, experiments) in results.into_inner() {
                write_outputs(&experiments);
                for e in experiments {
                    println!("{e}");
                }
            }
            ExitCode::SUCCESS
        }
        id if figures::ALL_IDS.contains(&id) => {
            let experiments = figures::run(id, quick);
            write_outputs(&experiments);
            for e in experiments {
                println!("{e}");
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown experiment `{other}`; try `repro list`");
            ExitCode::FAILURE
        }
    }
}
