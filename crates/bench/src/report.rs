//! Result tables: a tiny fixed-width report format shared by every
//! reproduced experiment.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Version stamp written into every experiment's JSON rendering, so
/// downstream consumers (the CI `jq` gates, plot scripts) can assert
/// the layout they were written against. Bump on incompatible change.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// One row of an experiment's result table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Row label (configuration or series name).
    pub label: String,
    /// `(column name, value)` pairs, printed in order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row from a label and `(column, value)` pairs.
    pub fn new(label: impl Into<String>, values: Vec<(&str, f64)>) -> Self {
        Row {
            label: label.into(),
            values: values.into_iter().map(|(c, v)| (c.to_owned(), v)).collect(),
        }
    }

    /// Looks up a value by column name.
    pub fn value(&self, column: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(c, _)| c == column)
            .map(|&(_, v)| v)
    }
}

/// One reproduced table or figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experiment {
    /// Short id (`fig15`, `table3`, …) used on the command line.
    pub id: String,
    /// Human-readable title including the paper artifact.
    pub title: String,
    /// Result rows.
    pub rows: Vec<Row>,
    /// What the paper reports, for side-by-side comparison.
    pub paper_reference: String,
}

impl Experiment {
    /// Creates an experiment report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_reference: impl Into<String>,
    ) -> Self {
        Experiment {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            paper_reference: paper_reference.into(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Finds a row by label.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl Experiment {
    /// Renders the rows as CSV: a header of `label` plus the union of
    /// value columns, then one line per row (missing values are empty).
    pub fn to_csv(&self) -> String {
        let mut columns: Vec<String> = Vec::new();
        for row in &self.rows {
            for (c, _) in &row.values {
                if !columns.contains(c) {
                    columns.push(c.clone());
                }
            }
        }
        let mut out = String::from("label");
        for c in &columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.label.replace(',', ";"));
            for c in &columns {
                out.push(',');
                if let Some(v) = row.value(c) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the experiment as a JSON object: schema version, id
    /// (the producing experiment), title, paper reference, and rows as
    /// `{label, values: {column: value}}`.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        use std::collections::BTreeMap;

        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|row| {
                let values: BTreeMap<String, Value> = row
                    .values
                    .iter()
                    .map(|(c, v)| (c.clone(), Value::Number(*v)))
                    .collect();
                let mut obj = BTreeMap::new();
                obj.insert("label".to_owned(), Value::from(row.label.as_str()));
                obj.insert("values".to_owned(), Value::Object(values));
                Value::Object(obj)
            })
            .collect();
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema_version".to_owned(),
            Value::from(REPORT_SCHEMA_VERSION),
        );
        obj.insert("id".to_owned(), Value::from(self.id.as_str()));
        obj.insert("title".to_owned(), Value::from(self.title.as_str()));
        obj.insert(
            "paper_reference".to_owned(),
            Value::from(self.paper_reference.as_str()),
        );
        obj.insert("rows".to_owned(), Value::Array(rows));
        Value::Object(obj).to_json()
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        if self.rows.is_empty() {
            return writeln!(f, "   (no rows)");
        }
        // Column layout: label column + union of value columns in
        // first-appearance order.
        let mut columns: Vec<String> = Vec::new();
        for row in &self.rows {
            for (c, _) in &row.values {
                if !columns.contains(c) {
                    columns.push(c.clone());
                }
            }
        }
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(5)
            .max(5);
        write!(f, "   {:label_w$}", "")?;
        for c in &columns {
            write!(f, "  {c:>14}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "   {:label_w$}", row.label)?;
            for c in &columns {
                match row.value(c) {
                    Some(v) if v.abs() >= 1000.0 => write!(f, "  {v:>14.0}")?,
                    Some(v) if v.abs() >= 1.0 => write!(f, "  {v:>14.2}")?,
                    Some(v) => write!(f, "  {v:>14.4}")?,
                    None => write!(f, "  {:>14}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(f, "   paper: {}", self.paper_reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_look_up_values() {
        let r = Row::new("x", vec![("a", 1.0), ("b", 2.0)]);
        assert_eq!(r.value("a"), Some(1.0));
        assert_eq!(r.value("missing"), None);
    }

    #[test]
    fn display_renders_all_rows_and_columns() {
        let mut e = Experiment::new("fig0", "test figure", "n/a");
        e.push(Row::new("alpha", vec![("lat", 1.5), ("x", 2000.0)]));
        e.push(Row::new("beta", vec![("lat", 0.25)]));
        let s = e.to_string();
        assert!(s.contains("fig0"));
        assert!(s.contains("alpha") && s.contains("beta"));
        assert!(s.contains("lat") && s.contains('x'));
        assert!(s.contains("2000"));
        assert!(s.contains('-'), "missing values print a dash");
        assert!(e.row("alpha").is_some());
        assert!(e.row("gamma").is_none());
    }

    #[test]
    fn empty_experiment_renders() {
        let e = Experiment::new("e", "t", "p");
        assert!(e.to_string().contains("no rows"));
    }

    #[test]
    fn json_renders_all_fields() {
        let mut e = Experiment::new("fig0", "test \"figure\"", "n/a");
        e.push(Row::new("alpha", vec![("lat", 1.5)]));
        let json = e.to_json();
        assert_eq!(
            json,
            r#"{"id":"fig0","paper_reference":"n/a","rows":[{"label":"alpha","values":{"lat":1.5}}],"schema_version":1,"title":"test \"figure\""}"#
        );
        // Machine-checkable by the CI gate: parses back with the
        // version stamp and producing experiment id.
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(v.get("id").unwrap().as_str(), Some("fig0"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut e = Experiment::new("fig0", "t", "p");
        e.push(Row::new("a,b", vec![("x", 1.5), ("y", 2.0)]));
        e.push(Row::new("c", vec![("y", 3.0)]));
        let csv = e.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "label,x,y");
        assert_eq!(lines[1], "a;b,1.5,2");
        assert_eq!(lines[2], "c,,3");
    }
}
