//! LLM-serving figures: 4(b) and 18.
//!
//! Each allocation scheme is an independent serving simulation, so both
//! figures evaluate their schemes concurrently (via
//! [`pim_workloads::llm::run_serving_many`] and
//! [`pim_sim::parallel_indexed`]) and report in paper order.

use pim_sim::parallel_indexed_with;
use pim_workloads::llm::{
    fixed_trace, max_batch_size, run_serving_many, sharegpt_like_trace, KvScheme, LlmConfig,
    ServingConfig,
};
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

/// Figure 4(b): maximum batch size under static vs dynamic KV-cache
/// allocation (512 PIM cores, ShareGPT-shaped lengths, Llama-2-7B).
/// `seed` drives the ShareGPT-shaped length sampler (paper runs use
/// 11).
pub fn fig4b(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "fig4b",
        "maximum batch size, static vs dynamic KV allocation",
        "dynamic roughly doubles the achievable batch (~75 vs ~150)",
    );
    let cfg = LlmConfig::default();
    let trace = sharegpt_like_trace(if quick { 250 } else { 500 }, 10.0, cfg.max_seq_len, seed);
    let schemes = [KvScheme::Static, KvScheme::Dynamic(AllocatorKind::Sw)];
    let runs = parallel_indexed_with(schemes.len(), SWEEP_POLICY, |i| {
        max_batch_size(schemes[i], &cfg, &trace)
    });
    for (scheme, r) in schemes.into_iter().zip(runs) {
        e.push(Row::new(
            scheme.label(),
            vec![("max batch", r.max_batch as f64)],
        ));
    }
    e
}

/// Figure 18: serving throughput and TPOT percentiles across the four
/// allocation schemes.
pub fn fig18(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig18",
        "LLM serving: throughput and TPOT across allocation schemes",
        "HW/SW 1.7x static throughput; TPOT static < HW/SW < SW < straw-man",
    );
    // The batch-formation effect needs the paper's full 100-request
    // trace; the serving simulator itself is cheap, so quick mode only
    // trims the allocator calibration run inside `run_serving`.
    let cfg = ServingConfig::default();
    let trace = fixed_trace(100, 10.0);
    let _ = quick;
    let schemes = [
        KvScheme::Static,
        KvScheme::Dynamic(AllocatorKind::StrawMan),
        KvScheme::Dynamic(AllocatorKind::Sw),
        KvScheme::Dynamic(AllocatorKind::HwSw),
    ];
    let results = run_serving_many(&schemes, &cfg, &trace);
    for (scheme, r) in schemes.into_iter().zip(results) {
        e.push(Row::new(
            scheme.label(),
            vec![
                ("tokens/s", r.throughput_tokens_per_s),
                ("TPOT p50 ms", r.tpot_p50_ms),
                ("TPOT p95 ms", r.tpot_p95_ms),
                ("TPOT p99 ms", r.tpot_p99_ms),
                ("peak batch", r.peak_batch as f64),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4b_dynamic_doubles_batch() {
        let e = fig4b(true, 11);
        let st = e.row("Static").unwrap().value("max batch").unwrap();
        let dy = e.row("PIM-malloc-SW").unwrap().value("max batch").unwrap();
        assert!(dy >= 1.5 * st, "dynamic {dy} vs static {st}");
    }

    #[test]
    fn fig18_throughput_and_tpot_orderings() {
        let e = fig18(true);
        let tput = |label: &str| e.row(label).unwrap().value("tokens/s").unwrap();
        let tpot = |label: &str| e.row(label).unwrap().value("TPOT p50 ms").unwrap();
        assert!(tput("PIM-malloc-HW/SW") > tput("Static") * 1.2);
        assert!(tput("PIM-malloc-SW") > tput("Straw-man"));
        assert!(tpot("Straw-man") > tpot("PIM-malloc-SW"));
        assert!(tpot("Static") <= tpot("PIM-malloc-SW"));
    }
}
