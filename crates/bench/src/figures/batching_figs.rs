//! Host transfer batching sweep: what rank-sharded `dpu_push_xfer`
//! scheduling buys over naive per-DPU calls, across the three call
//! sites that emit transfer plans (extension beyond the paper; the
//! batched-transfer motivation follows Gómez-Luna et al.'s UPMEM
//! benchmarking).

use pim_dse::{run_strategy, DseConfig, Strategy};
use pim_sim::{parallel_indexed_with, HostBatching};
use pim_workloads::graph::{run_graph_update, GraphRepr, GraphUpdateConfig};
use pim_workloads::llm::{fixed_trace, run_serving, KvScheme, ServingConfig};
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

const POLICIES: [HostBatching; 2] = [HostBatching::PerDpu, HostBatching::Sharded];

/// The batching sweep: host-executed DSE latency vs DPU count, LLM
/// serving TPOT, and graph edge-staging cost, each under per-DPU and
/// per-rank-sharded transfer scheduling.
pub fn host_batching(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "host-batching",
        "per-DPU vs per-rank-sharded host<->PIM transfer scheduling",
        "rank-level dpu_push_xfer amortizes per-call overhead (Gomez-Luna et al.)",
    );
    let counts: &[usize] = if quick {
        &[64, 256]
    } else {
        &[16, 64, 256, 512]
    };

    // Host-executed DSE: the curve the paper's Figure 6 shows, bent by
    // the transfer schedule. Grid points are independent sims.
    let grid: Vec<(HostBatching, usize)> = POLICIES
        .iter()
        .flat_map(|&p| counts.iter().map(move |&n| (p, n)))
        .collect();
    let dse = parallel_indexed_with(grid.len(), SWEEP_POLICY, |i| {
        let (batching, n) = grid[i];
        let base = DseConfig::default().with_dpus(n);
        run_strategy(
            Strategy::HostMetaHostExec,
            &DseConfig {
                ctx: base.ctx.with_batching(batching),
                ..base
            },
        )
    });
    for (&(policy, n), r) in grid.iter().zip(&dse) {
        e.push(Row::new(
            format!("DSE Host-Executed, {} @ {n} DPUs", policy.label()),
            vec![
                ("total s", r.total_secs),
                ("transfer s", r.transfer_secs),
                ("xfer calls", r.transfer_calls as f64),
            ],
        ));
    }

    // LLM serving: the per-step KV push either hides behind FC compute
    // (sharded) or stalls every decode step (per-DPU).
    let trace = fixed_trace(if quick { 40 } else { 100 }, 10.0);
    let serving = parallel_indexed_with(POLICIES.len(), SWEEP_POLICY, |i| {
        let base = ServingConfig::default();
        run_serving(
            KvScheme::Dynamic(AllocatorKind::Sw),
            &ServingConfig {
                ctx: base.ctx.with_batching(POLICIES[i]),
                ..base
            },
            &trace,
        )
    });
    for (&policy, r) in POLICIES.iter().zip(&serving) {
        e.push(Row::new(
            format!("LLM serving, {}", policy.label()),
            vec![
                ("TPOT p50 ms", r.tpot_p50_ms),
                ("KV push stall s", r.kv_push_stall_secs),
                ("xfer calls", r.kv_push_calls as f64),
            ],
        ));
    }

    // Graph update: staging the new-edge streams into MRAM.
    let graph_cfg = GraphUpdateConfig {
        repr: GraphRepr::LinkedList,
        allocator: AllocatorKind::Sw,
        n_dpus: if quick { 4 } else { 16 },
        n_nodes: if quick { 2048 } else { 8192 },
        base_edges: if quick { 6400 } else { 26_000 },
        new_edges: if quick { 3200 } else { 13_000 },
        ..GraphUpdateConfig::default()
    };
    let graph = parallel_indexed_with(POLICIES.len(), SWEEP_POLICY, |i| {
        run_graph_update(&GraphUpdateConfig {
            ctx: graph_cfg.ctx.with_batching(POLICIES[i]),
            ..graph_cfg
        })
    });
    for (&policy, r) in POLICIES.iter().zip(&graph) {
        e.push(Row::new(
            format!("Graph edge staging, {}", policy.label()),
            vec![
                ("host push s", r.host_push_secs),
                ("xfer calls", r.host_xfer_calls as f64),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_beats_per_dpu_everywhere_it_matters() {
        let e = host_batching(true);
        // DSE at 256 DPUs: strictly fewer transfer-call overheads
        // (shards = ranks, not DPUs) and less transfer time.
        let per = e
            .row("DSE Host-Executed, per-DPU calls @ 256 DPUs")
            .unwrap();
        let sh = e
            .row("DSE Host-Executed, per-rank shards @ 256 DPUs")
            .unwrap();
        assert_eq!(sh.value("xfer calls").unwrap(), (128 * 4) as f64);
        assert!(sh.value("xfer calls").unwrap() < per.value("xfer calls").unwrap());
        assert!(sh.value("transfer s").unwrap() < per.value("transfer s").unwrap());
        assert!(sh.value("total s").unwrap() < per.value("total s").unwrap());
        // Serving: sharded pushes stall (far) less.
        let per = e.row("LLM serving, per-DPU calls").unwrap();
        let sh = e.row("LLM serving, per-rank shards").unwrap();
        assert!(sh.value("KV push stall s").unwrap() < per.value("KV push stall s").unwrap());
        assert!(sh.value("TPOT p50 ms").unwrap() <= per.value("TPOT p50 ms").unwrap());
        // Graph staging: never worse.
        let per = e.row("Graph edge staging, per-DPU calls").unwrap();
        let sh = e.row("Graph edge staging, per-rank shards").unwrap();
        assert!(sh.value("host push s").unwrap() <= per.value("host push s").unwrap());
    }
}
