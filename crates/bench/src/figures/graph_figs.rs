//! Dynamic-graph figures: 3(c), 11, and 17.
//!
//! Each `run_graph_update` call is an independent multi-DPU simulation
//! (itself parallel over DPUs); the figure-level sweeps fan the calls
//! out with [`pim_sim::parallel_indexed`] and assemble rows from the
//! index-ordered results.

use pim_sim::parallel_indexed_with;
use pim_workloads::graph::{run_graph_update, GraphRepr, GraphUpdateConfig};
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

fn scaled(quick: bool, seed: u64) -> GraphUpdateConfig {
    let ctx = pim_sim::SimContext::default().with_seed(seed);
    if quick {
        GraphUpdateConfig {
            n_dpus: 4,
            n_nodes: 2048,
            base_edges: 6400,
            new_edges: 3200,
            ctx,
            ..GraphUpdateConfig::default()
        }
    } else {
        GraphUpdateConfig {
            ctx,
            ..GraphUpdateConfig::default()
        }
    }
}

/// Figure 3(c): graph-update slowdown as the pre-update graph grows
/// (small → large) with a fixed number of new edges, static vs dynamic.
pub fn fig3c(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "fig3c",
        "update slowdown vs pre-update graph size (fixed new edges)",
        "static grows with graph size; dynamic stays flat",
    );
    let base = scaled(quick, seed);
    let sizes: [(&str, usize); 3] = [
        ("small", base.base_edges / 4),
        ("medium", base.base_edges),
        ("large", base.base_edges * 4),
    ];
    let reprs = [GraphRepr::StaticCsr, GraphRepr::LinkedList];
    // Node count stays fixed; "size" is the pre-update edge count, as
    // in the paper's small/medium/large sweep.
    let per_edge_us = parallel_indexed_with(reprs.len() * sizes.len(), SWEEP_POLICY, |i| {
        let cfg = GraphUpdateConfig {
            repr: reprs[i / sizes.len()],
            base_edges: sizes[i % sizes.len()].1,
            allocator: AllocatorKind::Sw,
            ..base
        };
        run_graph_update(&cfg).update_secs * 1e6 / cfg.new_edges as f64
    });
    // Normalize to the (static, small) point, as the paper does.
    let static_small = per_edge_us[0];
    for (ri, repr) in reprs.into_iter().enumerate() {
        e.push(Row {
            label: repr.label().to_owned(),
            values: sizes
                .iter()
                .enumerate()
                .map(|(si, &(name, _))| {
                    (
                        name.to_owned(),
                        per_edge_us[ri * sizes.len() + si] / static_small,
                    )
                })
                .collect(),
        });
    }
    e
}

/// Figure 11: fraction of `pim_malloc` requests serviced at the
/// frontend (a) and the backend's share of aggregate allocation
/// latency (b), across the evaluation workloads.
pub fn fig11(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "fig11",
        "frontend service fraction and backend latency share",
        "~93% of requests frontend-serviced; backend still ~68% of latency",
    );
    let base = scaled(quick, seed);
    let reprs = [GraphRepr::LinkedList, GraphRepr::VarArray];
    let runs = parallel_indexed_with(reprs.len(), SWEEP_POLICY, |i| {
        run_graph_update(&GraphUpdateConfig {
            repr: reprs[i],
            allocator: AllocatorKind::Sw,
            ..base
        })
    });
    for (repr, r) in reprs.into_iter().zip(runs) {
        e.push(Row::new(
            repr.label(),
            vec![
                ("frontend frac", r.frontend_fraction),
                ("backend latency frac", r.backend_latency_fraction),
            ],
        ));
    }
    // Attention / KV-cache growth: 512 B blocks through PIM-malloc-SW.
    {
        use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc};
        use pim_sim::{DpuConfig, DpuSim};
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let mut pm = PimMalloc::init(&mut dpu, AllocGeometry::sw(16).build()).expect("init");
        let blocks = if quick { 512 } else { 4096 };
        for i in 0..blocks {
            let mut ctx = dpu.ctx(i % 16);
            pm.pim_malloc(&mut ctx, 512).expect("heap sized");
        }
        let s = pm.alloc_stats();
        e.push(Row::new(
            "Attention (LLM decode)",
            vec![
                ("frontend frac", s.frontend_service_fraction()),
                ("backend latency frac", s.backend_latency_fraction()),
            ],
        ));
    }
    e
}

/// Figure 17: the full dynamic-graph-update comparison — throughput,
/// cycle breakdown, per-tasklet allocation time, and metadata DRAM
/// traffic, for the static baseline and both dynamic representations
/// under the three allocators.
pub fn fig17(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "fig17",
        "graph update: throughput, breakdown, alloc time, metadata traffic",
        "HW/SW: 7.1x (linked list) and 32x (var array) over static; \
         straw-man loses to static; HW/SW moves ~30% less DRAM than SW",
    );
    let base = scaled(quick, seed);
    // One static run plus every (representation, allocator) pair, all
    // independent simulations: fan out, then assemble in paper order.
    let grid: Vec<(GraphRepr, AllocatorKind)> =
        std::iter::once((GraphRepr::StaticCsr, base.allocator))
            .chain(
                [GraphRepr::LinkedList, GraphRepr::VarArray]
                    .into_iter()
                    .flat_map(|repr| AllocatorKind::HEADLINE.into_iter().map(move |k| (repr, k))),
            )
            .collect();
    let runs = parallel_indexed_with(grid.len(), SWEEP_POLICY, |i| {
        let (repr, allocator) = grid[i];
        run_graph_update(&GraphUpdateConfig {
            repr,
            allocator,
            ..base
        })
    });
    let static_r = &runs[0];
    let (s_run, s_busy, s_mem, s_etc) = static_r.breakdown.fractions();
    e.push(Row::new(
        "Static (CSR)",
        vec![
            ("Meps", static_r.throughput_meps),
            ("ms", static_r.update_secs * 1e3),
            ("run", s_run),
            ("busy-wait", s_busy),
            ("idle(mem)", s_mem),
            ("idle(etc)", s_etc),
        ],
    ));
    let mut sw_meta = None;
    for (&(repr, kind), r) in grid[1..].iter().zip(&runs[1..]) {
        let (run, busy, mem, etc) = r.breakdown.fractions();
        let malloc_p50 = {
            let mut v = r.per_tasklet_malloc_us.clone();
            v.sort_by(f64::total_cmp);
            v.get(v.len() / 2).copied().unwrap_or(0.0)
        };
        if kind == AllocatorKind::Sw {
            sw_meta = Some(r.dram_bytes.max(1));
        }
        let dram_vs_sw = match (kind, sw_meta) {
            (AllocatorKind::HwSw, Some(sw)) => r.dram_bytes as f64 / sw as f64,
            _ => 1.0,
        };
        e.push(Row::new(
            format!("{} + {}", repr.label(), kind.label()),
            vec![
                ("Meps", r.throughput_meps),
                ("ms", r.update_secs * 1e3),
                ("run", run),
                ("busy-wait", busy),
                ("idle(mem)", mem),
                ("idle(etc)", etc),
                ("vs static", r.throughput_meps / static_r.throughput_meps),
                ("tasklet malloc p50 us", malloc_p50),
                ("DRAM vs SW", dram_vs_sw),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3c_static_degrades_dynamic_flat() {
        let e = fig3c(true, 42);
        let s = e.row("Static (CSR)").unwrap();
        assert!(s.value("large").unwrap() > s.value("small").unwrap() * 1.5);
        let d = e.row("Dynamic (Array of linked list)").unwrap();
        assert!(
            d.value("large").unwrap() < d.value("small").unwrap() * 2.0,
            "dynamic must be nearly flat"
        );
        // Dynamic beats static at every size.
        for col in ["small", "medium", "large"] {
            assert!(d.value(col).unwrap() < s.value(col).unwrap());
        }
    }

    #[test]
    fn fig11_frontend_dominates_service_backend_dominates_latency() {
        let e = fig11(true, 42);
        for row in &e.rows {
            let f = row.value("frontend frac").unwrap();
            assert!(f > 0.75, "{}: frontend fraction {f}", row.label);
        }
        let llm = e.row("Attention (LLM decode)").unwrap();
        assert!(llm.value("backend latency frac").unwrap() > 0.3);
    }

    #[test]
    fn fig17_orderings() {
        let e = fig17(true, 42);
        let straw = e
            .row("Dynamic (Array of linked list) + Straw-man")
            .unwrap()
            .value("vs static")
            .unwrap();
        assert!(
            straw < 1.0,
            "straw-man dynamic must lose to static: {straw}"
        );
        let hw = e
            .row("Dynamic (Array of linked list) + PIM-malloc-HW/SW")
            .unwrap()
            .value("vs static")
            .unwrap();
        assert!(hw > 2.0, "HW/SW must be well above static: {hw}");
        let va = e
            .row("Dynamic (Variable sized array) + PIM-malloc-HW/SW")
            .unwrap()
            .value("vs static")
            .unwrap();
        assert!(va >= hw, "var array {va} must beat linked list {hw}");
        let dram = e
            .row("Dynamic (Array of linked list) + PIM-malloc-HW/SW")
            .unwrap()
            .value("DRAM vs SW")
            .unwrap();
        assert!(dram < 1.0, "HW/SW must cut DRAM traffic: {dram}");
    }
}
