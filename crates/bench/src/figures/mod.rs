//! One generator per reproduced table/figure of the paper.
//!
//! Every function takes `quick: bool`; quick mode trims sweep sizes so
//! `repro all --quick` completes in well under a minute, while the
//! default scales match the paper's parameters where feasible.
//! Stochastic experiments additionally take a `seed`, plumbed from
//! `repro --seed` (defaulting to the fixed seeds the figures have
//! always used, so unseeded runs stay byte-identical).

mod batching_figs;
mod chaos_figs;
mod discussion_figs;
mod dse_figs;
mod graph_figs;
mod llm_figs;
mod micro_figs;
mod overhead_figs;
mod serve_figs;
mod tier_figs;
mod trace_figs;

pub use batching_figs::host_batching;
pub use chaos_figs::chaos_resilience;
pub use discussion_figs::{discussion_cache_granularity, discussion_future_pim};
pub use dse_figs::{fig6a, fig6b};
pub use graph_figs::{fig11, fig17, fig3c};
pub use llm_figs::{fig18, fig4b};
pub use micro_figs::{ablation_descent, ablation_swlru, fig15, fig16, fig7, fig8};
pub use overhead_figs::{hw_overhead, metadata_overhead, table3};
pub use serve_figs::serve_frontend;
pub use tier_figs::tier_comparison;
pub use trace_figs::{scenario_families, trace_artifact_files, trace_replay, TRACE_DEFAULT_SEED};

use crate::report::Experiment;

/// Figure sweeps index *grid cells*, not DPUs: the indices carry no
/// cross-epoch locality for sticky placement to exploit, so every
/// figure sweep declares itself topology-oblivious.
const SWEEP_POLICY: pim_sim::ExecPolicy = pim_sim::ExecPolicy::Oblivious;

/// Fixed seed of the ShareGPT-shaped LLM trace (Figure 4(b)).
const LLM_DEFAULT_SEED: u64 = 11;
/// Fixed seed of the graph-update workload generator.
const GRAPH_DEFAULT_SEED: u64 = 42;
/// Fixed seed of the serving frontend's request stream.
const SERVE_DEFAULT_SEED: u64 = 0x5E21;
/// Fixed seed of the chaos experiment's fault plan + request stream.
const CHAOS_DEFAULT_SEED: u64 = 0xC4A05;

/// Every experiment id with a one-line description, in paper order
/// (extensions last). `repro list` prints this catalogue.
pub const CATALOG: [(&str, &str); 21] = [
    (
        "fig3c",
        "graph-update slowdown vs pre-update graph size, static vs dynamic",
    ),
    (
        "fig4b",
        "maximum LLM batch size under static vs dynamic KV allocation",
    ),
    (
        "fig6a",
        "DSE: allocation latency vs PIM-core count, four strategies",
    ),
    ("fig6b", "DSE: latency breakdown at 512 PIM cores"),
    (
        "fig7",
        "straw-man slowdown over heap size x (de)allocation size",
    ),
    (
        "fig8",
        "straw-man latency over a request sequence + cycle breakdown",
    ),
    (
        "fig11",
        "frontend service fraction and backend latency share",
    ),
    (
        "fig15",
        "average pim_malloc latency across the three allocator designs",
    ),
    (
        "fig16",
        "buddy-cache size sensitivity (speedup and hit rate)",
    ),
    (
        "fig17",
        "graph update: throughput, breakdown, alloc time, metadata traffic",
    ),
    (
        "fig18",
        "LLM serving throughput and TPOT percentiles across schemes",
    ),
    ("table3", "memory fragmentation A/U, eager vs lazy"),
    (
        "metadata-overhead",
        "allocator metadata footprint per DPU",
    ),
    (
        "hw-overhead",
        "buddy-cache area / power / latency on a DRAM process",
    ),
    (
        "ablations",
        "fine-grained SW LRU and descent-policy ablations",
    ),
    (
        "discussion",
        "future-PIM projection and cache-granularity comparison",
    ),
    (
        "host-batching",
        "per-DPU vs rank-sharded host<->PIM transfer scheduling",
    ),
    (
        "trace",
        "allocation-trace subsystem: synthetic scenario families x allocators, record/replay fidelity",
    ),
    (
        "serve",
        "open-loop serving frontend: SLO tail latencies per arrival shape, drops, saturation knee",
    ),
    (
        "chaos",
        "resilience: self-healing serving under a fault plan + allocator fault injection",
    ),
    (
        "tiers",
        "free-path tiering: three-tier transfer cache vs two-tier global lock on producer-consumer",
    ),
];

/// Every experiment id, in catalogue order.
pub fn all_ids() -> impl Iterator<Item = &'static str> {
    CATALOG.iter().map(|&(id, _)| id)
}

/// True if `id` names a known experiment.
pub fn is_known(id: &str) -> bool {
    all_ids().any(|known| known == id)
}

/// Runs one experiment by id. `ablations` bundles the §IV-B fine-LRU
/// ablation and the descent-policy ablation. `seed` overrides the
/// stochastic experiments' workload seeds (LLM trace, graph generator,
/// synthetic traces); `None` keeps each experiment's fixed default.
///
/// # Panics
///
/// Panics on an unknown id; [`CATALOG`] lists the valid ones.
pub fn run(id: &str, quick: bool, seed: Option<u64>) -> Vec<Experiment> {
    match id {
        "fig3c" => vec![fig3c(quick, seed.unwrap_or(GRAPH_DEFAULT_SEED))],
        "fig4b" => vec![fig4b(quick, seed.unwrap_or(LLM_DEFAULT_SEED))],
        "fig6a" => vec![fig6a(quick)],
        "fig6b" => vec![fig6b(quick)],
        "fig7" => vec![fig7(quick)],
        "fig8" => vec![fig8(quick)],
        "fig11" => vec![fig11(quick, seed.unwrap_or(GRAPH_DEFAULT_SEED))],
        "fig15" => vec![fig15(quick)],
        "fig16" => vec![fig16(quick)],
        "fig17" => vec![fig17(quick, seed.unwrap_or(GRAPH_DEFAULT_SEED))],
        "fig18" => vec![fig18(quick)],
        "table3" => vec![table3(quick)],
        "metadata-overhead" => vec![metadata_overhead()],
        "hw-overhead" => vec![hw_overhead()],
        "ablations" => vec![ablation_swlru(quick), ablation_descent(quick)],
        "discussion" => vec![
            discussion_future_pim(quick),
            discussion_cache_granularity(quick),
        ],
        "host-batching" => vec![host_batching(quick)],
        "trace" => vec![trace_replay(quick, seed.unwrap_or(TRACE_DEFAULT_SEED))],
        "serve" => vec![serve_frontend(quick, seed.unwrap_or(SERVE_DEFAULT_SEED))],
        "chaos" => vec![chaos_resilience(quick, seed.unwrap_or(CHAOS_DEFAULT_SEED))],
        "tiers" => vec![tier_comparison(quick, seed.unwrap_or(TRACE_DEFAULT_SEED))],
        other => {
            let ids: Vec<&str> = all_ids().collect();
            panic!("unknown experiment id `{other}`; valid ids: {ids:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs_in_quick_mode() {
        for (id, description) in CATALOG {
            assert!(!description.is_empty(), "{id} needs a description");
            let out = run(id, true, None);
            assert!(!out.is_empty(), "{id} produced no experiments");
            for e in out {
                assert!(!e.rows.is_empty(), "{id} produced an empty table");
            }
        }
    }

    #[test]
    fn seeds_default_when_unset() {
        // An explicit seed equal to the default reproduces the
        // unseeded run exactly.
        let a = run("fig4b", true, None);
        let b = run("fig4b", true, Some(LLM_DEFAULT_SEED));
        assert_eq!(a[0].to_json(), b[0].to_json());
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run("fig99", true, None);
    }
}
