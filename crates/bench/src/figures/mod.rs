//! One generator per reproduced table/figure of the paper.
//!
//! Every function takes `quick: bool`; quick mode trims sweep sizes so
//! `repro all --quick` completes in well under a minute, while the
//! default scales match the paper's parameters where feasible.

mod batching_figs;
mod discussion_figs;
mod dse_figs;
mod graph_figs;
mod llm_figs;
mod micro_figs;
mod overhead_figs;

pub use batching_figs::host_batching;
pub use discussion_figs::{discussion_cache_granularity, discussion_future_pim};
pub use dse_figs::{fig6a, fig6b};
pub use graph_figs::{fig11, fig17, fig3c};
pub use llm_figs::{fig18, fig4b};
pub use micro_figs::{ablation_descent, ablation_swlru, fig15, fig16, fig7, fig8};
pub use overhead_figs::{hw_overhead, metadata_overhead, table3};

use crate::report::Experiment;

/// Every experiment id, in paper order (extensions last).
pub const ALL_IDS: [&str; 17] = [
    "fig3c",
    "fig4b",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig11",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "table3",
    "metadata-overhead",
    "hw-overhead",
    "ablations",
    "discussion",
    "host-batching",
];

/// Runs one experiment by id. `ablations` bundles the §IV-B fine-LRU
/// ablation and the descent-policy ablation.
///
/// # Panics
///
/// Panics on an unknown id; `ALL_IDS` lists the valid ones.
pub fn run(id: &str, quick: bool) -> Vec<Experiment> {
    match id {
        "fig3c" => vec![fig3c(quick)],
        "fig4b" => vec![fig4b(quick)],
        "fig6a" => vec![fig6a(quick)],
        "fig6b" => vec![fig6b(quick)],
        "fig7" => vec![fig7(quick)],
        "fig8" => vec![fig8(quick)],
        "fig11" => vec![fig11(quick)],
        "fig15" => vec![fig15(quick)],
        "fig16" => vec![fig16(quick)],
        "fig17" => vec![fig17(quick)],
        "fig18" => vec![fig18(quick)],
        "table3" => vec![table3(quick)],
        "metadata-overhead" => vec![metadata_overhead()],
        "hw-overhead" => vec![hw_overhead()],
        "ablations" => vec![ablation_swlru(quick), ablation_descent(quick)],
        "discussion" => vec![
            discussion_future_pim(quick),
            discussion_cache_granularity(quick),
        ],
        "host-batching" => vec![host_batching(quick)],
        other => panic!("unknown experiment id `{other}`; valid ids: {ALL_IDS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs_in_quick_mode() {
        for id in ALL_IDS {
            let out = run(id, true);
            assert!(!out.is_empty(), "{id} produced no experiments");
            for e in out {
                assert!(!e.rows.is_empty(), "{id} produced an empty table");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run("fig99", true);
    }
}
