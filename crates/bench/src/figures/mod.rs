//! One generator per reproduced table/figure of the paper.
//!
//! Every function takes `quick: bool`; quick mode trims sweep sizes so
//! `repro all --quick` completes in well under a minute, while the
//! default scales match the paper's parameters where feasible.
//! Stochastic experiments additionally take a `seed`, plumbed from
//! `repro --seed` (defaulting to the fixed seeds the figures have
//! always used, so unseeded runs stay byte-identical).

mod batching_figs;
mod chaos_figs;
mod discussion_figs;
mod dse_figs;
mod graph_figs;
mod llm_figs;
mod micro_figs;
mod overhead_figs;
mod page_figs;
mod serve_figs;
mod tier_figs;
mod trace_figs;
mod tune_figs;

pub use batching_figs::host_batching;
pub use chaos_figs::chaos_resilience;
pub use discussion_figs::{discussion_cache_granularity, discussion_future_pim};
pub use dse_figs::{fig6a, fig6b};
pub use graph_figs::{fig11, fig17, fig3c};
pub use llm_figs::{fig18, fig4b};
pub use micro_figs::{ablation_descent, ablation_swlru, fig15, fig16, fig7, fig8};
pub use overhead_figs::{hw_overhead, metadata_overhead, table3};
pub use page_figs::page_frontend;
pub use serve_figs::serve_frontend;
pub use tier_figs::tier_comparison;
pub use trace_figs::{scenario_families, trace_artifact_files, trace_replay, TRACE_DEFAULT_SEED};
pub use tune_figs::{geometry_tune, tune_families, Measured, TunedFamily};

use crate::report::Experiment;

/// Figure sweeps index *grid cells*, not DPUs: the indices carry no
/// cross-epoch locality for sticky placement to exploit, so every
/// figure sweep declares itself topology-oblivious.
const SWEEP_POLICY: pim_sim::ExecPolicy = pim_sim::ExecPolicy::Oblivious;

/// Fixed seed of the ShareGPT-shaped LLM trace (Figure 4(b)).
const LLM_DEFAULT_SEED: u64 = 11;
/// Fixed seed of the graph-update workload generator.
const GRAPH_DEFAULT_SEED: u64 = 42;
/// Fixed seed of the serving frontend's request stream.
const SERVE_DEFAULT_SEED: u64 = 0x5E21;
/// Fixed seed of the chaos experiment's fault plan + request stream.
const CHAOS_DEFAULT_SEED: u64 = 0xC4A05;

/// One catalogue entry: an experiment id, its one-line description,
/// and the generator that runs it. Keeping the runner *inside* the
/// entry means listing and dispatch cannot drift apart — adding an
/// experiment is one new entry, not an entry plus a match arm.
pub struct CatalogEntry {
    /// Short id used on the command line (`fig15`, `tune`, …).
    pub id: &'static str,
    /// One-line description `repro list` prints.
    pub description: &'static str,
    /// Runs the experiment: `(quick, seed override)` → experiments.
    runner: fn(bool, Option<u64>) -> Vec<Experiment>,
}

/// Every experiment, in paper order (extensions last). `repro list`
/// prints this catalogue; [`run`] dispatches through it.
pub const CATALOG: [CatalogEntry; 23] = [
    CatalogEntry {
        id: "fig3c",
        description: "graph-update slowdown vs pre-update graph size, static vs dynamic",
        runner: |quick, seed| vec![fig3c(quick, seed.unwrap_or(GRAPH_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "fig4b",
        description: "maximum LLM batch size under static vs dynamic KV allocation",
        runner: |quick, seed| vec![fig4b(quick, seed.unwrap_or(LLM_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "fig6a",
        description: "DSE: allocation latency vs PIM-core count, four strategies",
        runner: |quick, _| vec![fig6a(quick)],
    },
    CatalogEntry {
        id: "fig6b",
        description: "DSE: latency breakdown at 512 PIM cores",
        runner: |quick, _| vec![fig6b(quick)],
    },
    CatalogEntry {
        id: "fig7",
        description: "straw-man slowdown over heap size x (de)allocation size",
        runner: |quick, _| vec![fig7(quick)],
    },
    CatalogEntry {
        id: "fig8",
        description: "straw-man latency over a request sequence + cycle breakdown",
        runner: |quick, _| vec![fig8(quick)],
    },
    CatalogEntry {
        id: "fig11",
        description: "frontend service fraction and backend latency share",
        runner: |quick, seed| vec![fig11(quick, seed.unwrap_or(GRAPH_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "fig15",
        description: "average pim_malloc latency across the three allocator designs",
        runner: |quick, _| vec![fig15(quick)],
    },
    CatalogEntry {
        id: "fig16",
        description: "buddy-cache size sensitivity (speedup and hit rate)",
        runner: |quick, _| vec![fig16(quick)],
    },
    CatalogEntry {
        id: "fig17",
        description: "graph update: throughput, breakdown, alloc time, metadata traffic",
        runner: |quick, seed| vec![fig17(quick, seed.unwrap_or(GRAPH_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "fig18",
        description: "LLM serving throughput and TPOT percentiles across schemes",
        runner: |quick, _| vec![fig18(quick)],
    },
    CatalogEntry {
        id: "table3",
        description: "memory fragmentation A/U, eager vs lazy",
        runner: |quick, _| vec![table3(quick)],
    },
    CatalogEntry {
        id: "metadata-overhead",
        description: "allocator metadata footprint per DPU",
        runner: |_, _| vec![metadata_overhead()],
    },
    CatalogEntry {
        id: "hw-overhead",
        description: "buddy-cache area / power / latency on a DRAM process",
        runner: |_, _| vec![hw_overhead()],
    },
    CatalogEntry {
        id: "ablations",
        description: "fine-grained SW LRU and descent-policy ablations",
        runner: |quick, _| vec![ablation_swlru(quick), ablation_descent(quick)],
    },
    CatalogEntry {
        id: "discussion",
        description: "future-PIM projection and cache-granularity comparison",
        runner: |quick, _| {
            vec![
                discussion_future_pim(quick),
                discussion_cache_granularity(quick),
            ]
        },
    },
    CatalogEntry {
        id: "host-batching",
        description: "per-DPU vs rank-sharded host<->PIM transfer scheduling",
        runner: |quick, _| vec![host_batching(quick)],
    },
    CatalogEntry {
        id: "trace",
        description: "allocation-trace subsystem: synthetic scenario families x allocators, record/replay fidelity",
        runner: |quick, seed| vec![trace_replay(quick, seed.unwrap_or(TRACE_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "serve",
        description: "open-loop serving frontend: SLO tail latencies per arrival shape, drops, saturation knee",
        runner: |quick, seed| vec![serve_frontend(quick, seed.unwrap_or(SERVE_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "chaos",
        description: "resilience: self-healing serving under a fault plan + allocator fault injection",
        runner: |quick, seed| vec![chaos_resilience(quick, seed.unwrap_or(CHAOS_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "tiers",
        description: "free-path tiering: three-tier transfer cache vs two-tier global lock on producer-consumer",
        runner: |quick, seed| vec![tier_comparison(quick, seed.unwrap_or(TRACE_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "pages",
        description: "page/queue frontend vs legacy bitmap scan: finish, latency, hit rate",
        runner: |quick, seed| vec![page_frontend(quick, seed.unwrap_or(TRACE_DEFAULT_SEED))],
    },
    CatalogEntry {
        id: "tune",
        description: "profile-guided geometry: record -> synthesize -> replay, synthesized vs paper size classes",
        runner: |quick, seed| vec![geometry_tune(quick, seed.unwrap_or(TRACE_DEFAULT_SEED))],
    },
];

/// Every experiment id, in catalogue order.
pub fn all_ids() -> impl Iterator<Item = &'static str> {
    CATALOG.iter().map(|e| e.id)
}

/// True if `id` names a known experiment.
pub fn is_known(id: &str) -> bool {
    all_ids().any(|known| known == id)
}

/// Runs one experiment by id, dispatching through [`CATALOG`].
/// `ablations` bundles the §IV-B fine-LRU ablation and the
/// descent-policy ablation. `seed` overrides the stochastic
/// experiments' workload seeds (LLM trace, graph generator, synthetic
/// traces); `None` keeps each experiment's fixed default.
///
/// # Panics
///
/// Panics on an unknown id; [`CATALOG`] lists the valid ones.
pub fn run(id: &str, quick: bool, seed: Option<u64>) -> Vec<Experiment> {
    match CATALOG.iter().find(|e| e.id == id) {
        Some(entry) => (entry.runner)(quick, seed),
        None => {
            let ids: Vec<&str> = all_ids().collect();
            panic!("unknown experiment id `{id}`; valid ids: {ids:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_runs_in_quick_mode() {
        for entry in &CATALOG {
            assert!(
                !entry.description.is_empty(),
                "{} needs a description",
                entry.id
            );
            let out = run(entry.id, true, None);
            assert!(!out.is_empty(), "{} produced no experiments", entry.id);
            for e in out {
                assert!(!e.rows.is_empty(), "{} produced an empty table", entry.id);
            }
        }
    }

    #[test]
    fn catalog_is_consistent() {
        // Ids are unique and non-empty; lookup through `run` reaches
        // every entry (the fn-pointer design makes a desync between
        // the listing and the dispatcher impossible by construction,
        // but unique ids still matter: a duplicate would shadow the
        // later entry).
        let ids: Vec<&str> = all_ids().collect();
        assert_eq!(ids.len(), CATALOG.len());
        for (i, id) in ids.iter().enumerate() {
            assert!(!id.is_empty());
            assert!(
                !ids[..i].contains(id),
                "duplicate experiment id `{id}` in CATALOG"
            );
            assert!(is_known(id));
        }
        // The extension experiments landed across PRs stay listed.
        for required in ["trace", "serve", "chaos", "tiers", "tune", "pages"] {
            assert!(is_known(required), "{required} missing from CATALOG");
        }
    }

    #[test]
    fn seeds_default_when_unset() {
        // An explicit seed equal to the default reproduces the
        // unseeded run exactly.
        let a = run("fig4b", true, None);
        let b = run("fig4b", true, Some(LLM_DEFAULT_SEED));
        assert_eq!(a[0].to_json(), b[0].to_json());
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run("fig99", true, None);
    }
}
