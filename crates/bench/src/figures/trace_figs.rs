//! The allocation-trace experiment (extension beyond the paper).
//!
//! Sweeps the synthetic scenario matrix — size laws × temporal shapes
//! from [`pim_trace::synth`] — across the headline allocator designs,
//! replaying every trace on the parallel multi-DPU engine with
//! host-batched trace distribution. A final row verifies the
//! record/replay contract end to end: a trace recorded from the
//! micro-benchmark replays against a fresh allocator of the same kind
//! to byte-identical latency results.

use pim_sim::CostModel;
use pim_trace::{replay_fleet, synthesize, FleetConfig, SizeLaw, SynthConfig, TemporalShape};
use pim_workloads::micro::{run_micro_recorded, MicroConfig};
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

/// Default seed of the `trace` experiment (overridable via
/// `repro --seed`).
pub const TRACE_DEFAULT_SEED: u64 = 0xA110C;

/// The allocator designs the sweep replays every scenario against.
const KINDS: [AllocatorKind; 3] = [
    AllocatorKind::StrawMan,
    AllocatorKind::Sw,
    AllocatorKind::HwSw,
];

/// The synthetic scenario families of the sweep: one per generator
/// shape, each paired with a different size law.
pub fn scenario_families(quick: bool, seed: u64) -> Vec<SynthConfig> {
    let base = SynthConfig {
        n_tasklets: 16,
        mallocs_per_tasklet: if quick { 96 } else { 384 },
        live_window: 32,
        heap_size: 32 << 20,
        seed,
        ..SynthConfig::default()
    };
    vec![
        SynthConfig {
            size_law: SizeLaw::Fixed(64),
            shape: TemporalShape::Steady { compute: 200 },
            ..base
        },
        SynthConfig {
            size_law: SizeLaw::Uniform { min: 16, max: 4096 },
            shape: TemporalShape::Bursty {
                burst: 16,
                gap: 20_000,
            },
            ..base
        },
        SynthConfig {
            size_law: SizeLaw::Zipf {
                min: 16,
                max: 4096,
                exponent: 1.1,
            },
            shape: TemporalShape::Ramp { start_gap: 10_000 },
            ..base
        },
        SynthConfig {
            size_law: SizeLaw::LogNormal {
                mu: 5.5,
                sigma: 1.0,
                min: 8,
                max: 8192,
            },
            shape: TemporalShape::PhaseShift {
                period: 32,
                compute: 200,
            },
            ..base
        },
        SynthConfig {
            size_law: SizeLaw::Fixed(512),
            shape: TemporalShape::ProducerConsumer { compute: 500 },
            ..base
        },
    ]
}

/// The `trace` experiment: generators × allocators on the parallel
/// engine, plus the record/replay fidelity check.
pub fn trace_replay(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "trace",
        "trace replay: synthetic scenario families x allocators",
        "extension; workload-diversity motivation per PrIM (Gomez-Luna et al.)",
    );
    let mhz = CostModel::default().clock_mhz;
    let fleet_cfg = FleetConfig {
        n_dpus: if quick { 4 } else { 16 },
        ..FleetConfig::default()
    };
    for family in scenario_families(quick, seed) {
        let trace = synthesize(&family);
        for kind in KINDS {
            let (n_tasklets, heap) = (trace.n_tasklets, trace.heap_size);
            let fleet = replay_fleet(&trace, &fleet_cfg, |dpu| kind.build(dpu, n_tasklets, heap));
            let d0 = &fleet.per_dpu[0];
            e.push(Row::new(
                format!("{} @ {}", trace.name, kind.label()),
                vec![
                    ("mean us", fleet.mean_latency().as_micros(mhz)),
                    (
                        "p95 us",
                        d0.malloc_latencies.percentile(0.95).as_micros(mhz),
                    ),
                    ("finish ms", fleet.kernel_finish.as_millis(mhz)),
                    ("oom", fleet.oom_count() as f64),
                    ("dropped frees", d0.dropped_frees as f64),
                    ("dist ms", fleet.distribution.secs * 1e3),
                    ("dist calls", fleet.distribution.calls as f64),
                ],
            ));
        }
    }

    // Record/replay fidelity: a micro-benchmark run captured as a
    // trace must replay byte-identically on a fresh allocator.
    let micro_cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: if quick { 32 } else { 128 },
        ..MicroConfig::default()
    };
    for kind in [AllocatorKind::StrawMan, AllocatorKind::Sw] {
        let (direct, recorded) = run_micro_recorded(kind, &micro_cfg);
        let fleet = replay_fleet(
            &recorded,
            &FleetConfig {
                n_dpus: 1,
                ..fleet_cfg
            },
            |dpu| kind.build(dpu, micro_cfg.n_tasklets, micro_cfg.heap_size),
        );
        let replayed = &fleet.per_dpu[0];
        let replay_timeline: Vec<(f64, f64)> = replayed
            .timeline
            .iter()
            .map(|&(t, l)| (t.as_micros(mhz), l.as_micros(mhz)))
            .collect();
        let identical = direct.timeline_us == replay_timeline;
        e.push(Row::new(
            format!("recorded {} @ {}", recorded.name, kind.label()),
            vec![
                ("mean us", replayed.malloc_latencies.mean().as_micros(mhz)),
                ("direct mean us", direct.avg_latency_us),
                ("replay==direct", if identical { 1.0 } else { 0.0 }),
            ],
        ));
    }
    e
}

/// Serialized trace artifacts accompanying the `trace` experiment: one
/// JSON file per synthetic family plus a recorded micro trace, for
/// `repro trace --json DIR` to write next to the experiment report.
pub fn trace_artifact_files(quick: bool, seed: u64) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = scenario_families(quick, seed)
        .iter()
        .map(|family| {
            let trace = synthesize(family);
            let file = format!("trace-{}.trace.json", trace.name.replace('/', "-"));
            (file, trace.to_json())
        })
        .collect();
    let micro_cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: if quick { 32 } else { 128 },
        ..MicroConfig::default()
    };
    let (_, recorded) = run_micro_recorded(AllocatorKind::Sw, &micro_cfg);
    files.push((
        "trace-recorded-micro.trace.json".to_owned(),
        recorded.to_json(),
    ));
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_families_and_allocators() {
        let e = trace_replay(true, TRACE_DEFAULT_SEED);
        let families = scenario_families(true, TRACE_DEFAULT_SEED);
        assert!(families.len() >= 4, "matrix needs >= 4 scenario families");
        for family in &families {
            for kind in KINDS {
                let label = format!("{} @ {}", family.scenario_name(), kind.label());
                let row = e.row(&label).unwrap_or_else(|| panic!("missing {label}"));
                assert!(row.value("mean us").unwrap() > 0.0, "{label}");
                assert_eq!(row.value("oom").unwrap(), 0.0, "{label}");
                assert_eq!(row.value("dropped frees").unwrap(), 0.0, "{label}");
            }
        }
    }

    #[test]
    fn straw_man_loses_to_pim_malloc_on_every_family() {
        let e = trace_replay(true, TRACE_DEFAULT_SEED);
        for family in scenario_families(true, TRACE_DEFAULT_SEED) {
            let name = family.scenario_name();
            let straw = e
                .row(&format!("{name} @ Straw-man"))
                .unwrap()
                .value("mean us")
                .unwrap();
            let sw = e
                .row(&format!("{name} @ PIM-malloc-SW"))
                .unwrap()
                .value("mean us")
                .unwrap();
            assert!(straw > sw, "{name}: straw {straw} vs SW {sw}");
        }
    }

    #[test]
    fn recorded_micro_replays_byte_identically() {
        let e = trace_replay(true, TRACE_DEFAULT_SEED);
        for kind in ["Straw-man", "PIM-malloc-SW"] {
            let row = e
                .row(&format!("recorded micro/alloc-only @ {kind}"))
                .unwrap();
            assert_eq!(row.value("replay==direct").unwrap(), 1.0, "{kind}");
        }
    }

    #[test]
    fn seed_changes_the_stochastic_rows() {
        let a = trace_replay(true, 1);
        let b = trace_replay(true, 2);
        let label = "uniform/bursty @ PIM-malloc-SW";
        let ma = a.row(label).unwrap().value("mean us").unwrap();
        let mb = b.row(label).unwrap().value("mean us").unwrap();
        assert_ne!(ma, mb, "different seeds must draw different sizes");
        // Same seed reproduces exactly.
        let c = trace_replay(true, 1);
        assert_eq!(ma, c.row(label).unwrap().value("mean us").unwrap());
    }

    #[test]
    fn artifacts_parse_back() {
        let files = trace_artifact_files(true, TRACE_DEFAULT_SEED);
        assert!(files.len() >= 5);
        for (name, json) in files {
            let t =
                pim_trace::AllocTrace::from_json(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(t.malloc_count() > 0, "{name}");
        }
    }
}
