//! The free-path tiering experiment (extension beyond the paper).
//!
//! Replays the producer-consumer trace family — the one scenario whose
//! `RemoteFree` edges exercise cross-tasklet deallocation — on the
//! default three-tier allocator (thread cache → transfer cache →
//! central free lists → buddy backend) and on the config-reachable
//! two-tier design where every remote free serializes through the
//! global backend lock. One row per (family variant, tier), plus a
//! speedup row per variant, all fully modeled and deterministic for a
//! fixed seed.

use pim_malloc::{AllocGeometry, PimAllocator, PimMalloc, TierPolicy};
use pim_sim::{CostModel, DpuConfig, DpuSim};
use pim_trace::{replay, synthesize, SizeLaw, SynthConfig, TemporalShape};

use crate::report::{Experiment, Row};

/// The producer-consumer variants the comparison sweeps: tighter
/// compute gaps put more pressure on the remote-free path.
fn pc_variants(quick: bool, seed: u64) -> Vec<(String, SynthConfig)> {
    let computes: &[u64] = if quick {
        &[200, 2000]
    } else {
        &[100, 500, 2000]
    };
    computes
        .iter()
        .map(|&compute| {
            (
                format!("pc compute={compute}"),
                SynthConfig {
                    n_tasklets: 16,
                    mallocs_per_tasklet: if quick { 128 } else { 256 },
                    live_window: 32,
                    size_law: SizeLaw::Fixed(512),
                    shape: TemporalShape::ProducerConsumer { compute },
                    heap_size: 32 << 20,
                    seed,
                },
            )
        })
        .collect()
}

struct TierRun {
    finish_ms: f64,
    mean_us: f64,
    remote_transfer: u64,
    remote_global: u64,
}

fn run_tier(cfg: &SynthConfig, policy: TierPolicy, mhz: u64) -> TierRun {
    let trace = synthesize(cfg);
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let mut geom = AllocGeometry::sw(trace.n_tasklets).with_heap_size(trace.heap_size);
    if policy == TierPolicy::TwoTier {
        geom = geom.two_tier();
    }
    let mut alloc: Box<dyn PimAllocator> =
        Box::new(PimMalloc::init(&mut dpu, geom.build()).expect("init"));
    let result = replay(&mut dpu, alloc.as_mut(), &trace);
    assert_eq!(result.oom_count, 0, "heap sized for the trace");
    let pm = alloc
        .as_any()
        .downcast_ref::<PimMalloc>()
        .expect("built a PimMalloc");
    TierRun {
        finish_ms: result.finish.as_millis(mhz),
        mean_us: result.malloc_latencies.mean().as_micros(mhz),
        remote_transfer: pm.alloc_stats().frees_remote_transfer,
        remote_global: pm.alloc_stats().frees_remote_global,
    }
}

/// The `tiers` experiment: two-tier vs three-tier on the
/// producer-consumer family.
pub fn tier_comparison(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "tiers",
        "free-path tiering: transfer cache + central lists vs global lock on producer-consumer",
        "extension; middle-tier design after TCMalloc's transfer cache",
    );
    let mhz = CostModel::default().clock_mhz;
    for (label, cfg) in pc_variants(quick, seed) {
        let three = run_tier(&cfg, TierPolicy::ThreeTier, mhz);
        let two = run_tier(&cfg, TierPolicy::TwoTier, mhz);
        assert_eq!(
            three.remote_transfer, two.remote_global,
            "{label}: both tiers must see the same remote frees"
        );
        e.push(Row::new(
            format!("{label} @ three-tier"),
            vec![
                ("finish ms", three.finish_ms),
                ("mean us", three.mean_us),
                ("remote transfer", three.remote_transfer as f64),
                ("remote global", three.remote_global as f64),
            ],
        ));
        e.push(Row::new(
            format!("{label} @ two-tier"),
            vec![
                ("finish ms", two.finish_ms),
                ("mean us", two.mean_us),
                ("remote transfer", two.remote_transfer as f64),
                ("remote global", two.remote_global as f64),
            ],
        ));
        e.push(Row::new(
            format!("{label} speedup"),
            vec![("finish speedup", two.finish_ms / three.finish_ms)],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::super::TRACE_DEFAULT_SEED;
    use super::*;

    #[test]
    fn three_tier_wins_on_every_variant() {
        let e = tier_comparison(true, TRACE_DEFAULT_SEED);
        for (label, _) in pc_variants(true, TRACE_DEFAULT_SEED) {
            let speedup = e
                .row(&format!("{label} speedup"))
                .unwrap_or_else(|| panic!("missing {label}"))
                .value("finish speedup")
                .unwrap();
            assert!(speedup >= 1.0, "{label}: speedup {speedup}");
        }
    }

    #[test]
    fn remote_frees_route_by_tier() {
        let e = tier_comparison(true, TRACE_DEFAULT_SEED);
        for (label, _) in pc_variants(true, TRACE_DEFAULT_SEED) {
            let three = e.row(&format!("{label} @ three-tier")).unwrap();
            let two = e.row(&format!("{label} @ two-tier")).unwrap();
            assert!(three.value("remote transfer").unwrap() > 0.0, "{label}");
            assert_eq!(three.value("remote global").unwrap(), 0.0, "{label}");
            assert_eq!(two.value("remote transfer").unwrap(), 0.0, "{label}");
            assert!(two.value("remote global").unwrap() > 0.0, "{label}");
        }
    }

    #[test]
    fn fixed_seed_reproduces_exactly() {
        let a = tier_comparison(true, 7);
        let b = tier_comparison(true, 7);
        assert_eq!(a.to_json(), b.to_json());
    }
}
