//! Serving-frontend experiment: SLO tail latencies and the saturation
//! knee of the open-loop fleet (an extension beyond the paper's
//! kernel-time figures).
//!
//! Two tables in one experiment:
//!
//! * one row per arrival shape (Poisson / bursty / diurnal) at 60% of
//!   the calibrated fleet capacity — p50/p95/p99/p99.9 simulated
//!   latency, drop fraction, achieved throughput, peak in-flight;
//! * a knee-finding load ladder under Poisson arrivals — offered vs
//!   achieved vs p99 per point, closed by a `saturation` row with the
//!   calibrated capacity, the knee, and the saturation throughput.
//!
//! Each serve run is single-threaded and seeded; the shape rows and
//! ladder points fan out over the topology-aware executor and merge in
//! index order, so the whole experiment is byte-identical across
//! `ExecPolicy` × `PIM_EXEC_WORKERS`.

use pim_malloc::PimAllocator;
use pim_serving::{estimated_capacity_rps, saturation_sweep, serve, ArrivalProcess, ServeConfig};
use pim_sim::{parallel_indexed_with, DpuSim};
use pim_workloads::requests::standard_mix;
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

/// Fraction of calibrated capacity the arrival-shape rows offer.
const SHAPE_LOAD: f64 = 0.6;

fn build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, tasklets, heap)
}

fn scaled(quick: bool, seed: u64) -> ServeConfig {
    let ctx = pim_sim::SimContext::sweep_default().with_seed(seed);
    if quick {
        ServeConfig {
            n_dpus: 64,
            n_requests: 4_000,
            ctx,
            ..ServeConfig::default()
        }
    } else {
        // The paper-scale fleet: 2560 DPUs × 10^6 requests.
        ServeConfig {
            ctx,
            ..ServeConfig::default()
        }
    }
}

fn report_row(label: impl Into<String>, r: &pim_serving::ServeReport) -> Row {
    Row::new(
        label.into(),
        vec![
            ("offered krps", r.offered_rps / 1e3),
            ("achieved krps", r.achieved_rps / 1e3),
            ("p50 ms", r.p50_ms()),
            ("p95 ms", r.p95_ms()),
            ("p99 ms", r.p99_ms()),
            ("p99.9 ms", r.p999_ms()),
            ("drop frac", r.drop_frac()),
            ("peak in-flight", r.peak_in_flight as f64),
        ],
    )
}

/// The `serve` experiment (see the module docs).
pub fn serve_frontend(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "serve",
        "open-loop serving: tail latency per arrival shape + saturation knee",
        "clean service at 60% load for every shape; \
         bursty tails widest; knee below the calibrated capacity",
    );
    let base = scaled(quick, seed);
    let classes = standard_mix();
    let capacity = estimated_capacity_rps(&classes, &build, base.n_dpus);

    // One row per arrival shape at 60% of capacity, fanned out like
    // every other figure sweep.
    let rate = SHAPE_LOAD * capacity;
    let shapes = [
        ArrivalProcess::Poisson { rps: rate },
        ArrivalProcess::Bursty {
            rps: rate,
            burst: 32,
        },
        ArrivalProcess::Diurnal {
            rps: rate,
            period_secs: 0.02,
            depth: 0.8,
        },
    ];
    let runs = parallel_indexed_with(shapes.len(), SWEEP_POLICY, |i| {
        serve(&base.with_arrival(shapes[i]), &classes, &build)
    });
    for (shape, r) in shapes.iter().zip(&runs) {
        e.push(report_row(shape.label(), r));
    }

    // Knee-finding ladder under Poisson arrivals.
    let loads: &[f64] = if quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0]
    };
    let sweep = saturation_sweep(
        &base.with_arrival(ArrivalProcess::Poisson { rps: rate }),
        &classes,
        &build,
        loads,
    );
    for p in &sweep.points {
        e.push(report_row(format!("load x{:.2}", p.load), &p.report));
    }
    e.push(Row::new(
        "saturation",
        vec![
            ("capacity krps", sweep.capacity_rps / 1e3),
            ("knee krps", sweep.knee_rps / 1e3),
            ("saturation krps", sweep.saturation_rps / 1e3),
        ],
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_serve_cleanly_at_sixty_percent_load() {
        let e = serve_frontend(true, 42);
        for shape in ["poisson", "bursty", "diurnal"] {
            let r = e.row(shape).unwrap();
            assert!(
                r.value("drop frac").unwrap() < 0.01,
                "{shape} drops at 60% load"
            );
            assert!(r.value("p50 ms").unwrap() <= r.value("p99 ms").unwrap());
            assert!(r.value("p99 ms").unwrap() <= r.value("p99.9 ms").unwrap());
        }
    }

    #[test]
    fn ladder_saturates_and_knee_is_sane() {
        let e = serve_frontend(true, 42);
        let sat = e.row("saturation").unwrap();
        let capacity = sat.value("capacity krps").unwrap();
        let knee = sat.value("knee krps").unwrap();
        assert!(capacity > 0.0);
        assert!(knee > 0.0, "the light rungs must serve cleanly");
        assert!(knee <= 2.0 * capacity, "knee beyond the swept range");
        assert!(sat.value("saturation krps").unwrap() > 0.0);
        // The overloaded top rung must shed or fall behind.
        let top = e.row("load x2.00").unwrap();
        assert!(
            top.value("drop frac").unwrap() > 0.01
                || top.value("achieved krps").unwrap() < 0.95 * top.value("offered krps").unwrap()
        );
    }

    #[test]
    fn experiment_is_seed_deterministic() {
        let a = serve_frontend(true, 7);
        let b = serve_frontend(true, 7);
        assert_eq!(a.to_json(), b.to_json());
    }
}
