//! The profile-guided geometry-tuning experiment (extension beyond
//! the paper): closes the record → synthesize → replay loop.
//!
//! For every synthetic scenario family, the experiment derives an
//! allocation profile from the trace, synthesizes a custom size-class
//! table under the default [`SynthesisObjective`], and replays the
//! same trace under both the paper's fixed power-of-two geometry and
//! the synthesized one — reporting *measured* fragmentation (A/U at
//! peak), churn throughput, and WRAM bitmap footprint next to the
//! synthesizer's *modeled* predictions. Two extra row groups verify
//! the pipeline: a recorder-vs-pure fidelity check (profiling a live
//! replay must observe the same histogram and counts as the pure
//! trace walk), and the `pim-dse` objective-weight ladder showing the
//! fragmentation/WRAM trade-off the objective exposes.

use pim_malloc::{AllocGeometry, PimMalloc, SizeClassTable};
use pim_profile::{
    synthesize_table, wram_bitmap_bytes, AllocProfile, ProfileRecorder, Synthesis,
    SynthesisObjective,
};
use pim_sim::{CostModel, DpuConfig, DpuSim};
use pim_trace::{replay, replay_fleet, synthesize, AllocTrace, FleetConfig};

use crate::figures::scenario_families;
use crate::report::{Experiment, Row};

/// Builds the paper-geometry or tuned-geometry allocator for `trace`.
fn build_alloc(dpu: &mut DpuSim, trace: &AllocTrace, table: &SizeClassTable) -> PimMalloc {
    let geom = AllocGeometry::sw(trace.n_tasklets)
        .with_heap_size(trace.heap_size)
        .with_size_classes(table.clone());
    PimMalloc::init(dpu, geom.build()).expect("geometry fits the trace heap")
}

/// What one (trace, geometry) replay measures.
pub struct Measured {
    /// A/U at the memory-usage peak, from a single-DPU replay.
    pub frag_peak_ratio: f64,
    /// Successful mallocs per second of simulated kernel time, from
    /// the parallel fleet replay (SPMD — every DPU runs the trace).
    pub churn_ops_per_sec: f64,
    /// Mean `pim_malloc` latency, microseconds.
    pub mean_us: f64,
    /// Out-of-memory events across the fleet.
    pub oom: u64,
}

fn measure(trace: &AllocTrace, table: &SizeClassTable, quick: bool) -> Measured {
    let mhz = CostModel::default().clock_mhz;
    // Fragmentation comes from a local single-DPU replay — the fleet
    // discards its allocators, and SPMD replicas are identical anyway.
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let mut alloc = build_alloc(&mut dpu, trace, table);
    replay(&mut dpu, &mut alloc, trace);
    let frag_peak_ratio = alloc.frag().peak_ratio();

    let fleet_cfg = FleetConfig {
        n_dpus: if quick { 2 } else { 8 },
        ..FleetConfig::default()
    };
    let fleet = replay_fleet(trace, &fleet_cfg, |dpu| {
        Box::new(build_alloc(dpu, trace, table))
    });
    let finish_secs = fleet.kernel_finish.as_secs(mhz);
    Measured {
        frag_peak_ratio,
        churn_ops_per_sec: trace.malloc_count() as f64 / finish_secs,
        mean_us: fleet.mean_latency().as_micros(mhz),
        oom: fleet.oom_count(),
    }
}

/// Recorder-vs-pure fidelity: profiling a live replay with
/// [`ProfileRecorder`] must observe the same histogram and
/// malloc/free/remote-free counts as the pure
/// [`AllocProfile::from_trace`] walk (lifetime *units* differ —
/// cycles vs op ticks — so those are out of scope).
fn recorder_matches_pure(trace: &AllocTrace, pure: &AllocProfile) -> bool {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let inner = build_alloc(&mut dpu, trace, &SizeClassTable::paper_default());
    let mut rec = ProfileRecorder::new(inner, trace.name.clone(), trace.n_tasklets);
    replay(&mut dpu, &mut rec, trace);
    let (live, _alloc) = rec.into_profile();
    live.histogram == pure.histogram
        && live.mallocs == pure.mallocs
        && live.frees == pure.frees
        && live.remote_frees == pure.remote_frees
}

/// Per-family synthesis outcome the experiment (and the CI bench)
/// reports.
pub struct TunedFamily {
    /// Scenario name (`fixed64/steady`, …).
    pub name: String,
    /// The synthesized table and its modeled report.
    pub synthesis: Synthesis,
    /// Replay measurements under the paper geometry.
    pub paper: Measured,
    /// Replay measurements under the synthesized geometry.
    pub tuned: Measured,
}

impl TunedFamily {
    /// Measured fragmentation ratio, tuned over paper.
    pub fn frag_ratio(&self) -> f64 {
        self.tuned.frag_peak_ratio / self.paper.frag_peak_ratio
    }

    /// Measured churn-throughput ratio, tuned over paper.
    pub fn churn_ratio(&self) -> f64 {
        self.tuned.churn_ops_per_sec / self.paper.churn_ops_per_sec
    }

    /// WRAM bitmap footprint ratio, tuned over paper.
    pub fn wram_ratio(&self) -> f64 {
        f64::from(self.synthesis.report.wram_bytes_per_tasklet)
            / f64::from(self.synthesis.report.wram_bytes_per_tasklet_paper)
    }
}

/// Records, synthesizes, and replays every scenario family.
pub fn tune_families(quick: bool, seed: u64) -> Vec<TunedFamily> {
    let paper = SizeClassTable::paper_default();
    scenario_families(quick, seed)
        .iter()
        .map(|family| {
            let trace = synthesize(family);
            let profile = AllocProfile::from_trace(&trace);
            let synthesis = synthesize_table(&profile, &SynthesisObjective::default())
                .expect("every scenario family allocates cacheable sizes");
            TunedFamily {
                name: trace.name.clone(),
                paper: measure(&trace, &paper, quick),
                tuned: measure(&trace, &synthesis.table, quick),
                synthesis,
            }
        })
        .collect()
}

/// The `tune` experiment: paper vs synthesized geometry per family,
/// fidelity row, and the DSE objective ladder.
pub fn geometry_tune(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "tune",
        "profile-guided geometry: synthesized vs paper size classes per scenario family",
        "extension; internal-fragmentation model per Table III (A/U, Hoard-style)",
    );
    let paper_table = SizeClassTable::paper_default();
    let paper_wram = f64::from(wram_bitmap_bytes(&paper_table));
    for fam in tune_families(quick, seed) {
        let report = &fam.synthesis.report;
        e.push(Row::new(
            format!("{} @ paper", fam.name),
            vec![
                ("classes", paper_table.len() as f64),
                ("frag A/U", fam.paper.frag_peak_ratio),
                ("churn Mops/s", fam.paper.churn_ops_per_sec / 1e6),
                ("mean us", fam.paper.mean_us),
                ("wram B", paper_wram),
                ("oom", fam.paper.oom as f64),
            ],
        ));
        e.push(Row::new(
            format!("{} @ tuned", fam.name),
            vec![
                ("classes", report.class_count as f64),
                ("frag A/U", fam.tuned.frag_peak_ratio),
                ("churn Mops/s", fam.tuned.churn_ops_per_sec / 1e6),
                ("mean us", fam.tuned.mean_us),
                ("wram B", f64::from(report.wram_bytes_per_tasklet)),
                ("oom", fam.tuned.oom as f64),
            ],
        ));
        e.push(Row::new(
            format!("{} delta", fam.name),
            vec![
                ("frag ratio", fam.frag_ratio()),
                ("churn ratio", fam.churn_ratio()),
                ("wram ratio", fam.wram_ratio()),
                ("modeled frag ratio", report.predicted_frag_ratio),
                ("bypass", report.bypass_requests as f64),
            ],
        ));
    }

    // Fidelity: live ProfileRecorder vs pure trace walk, on the most
    // size-diverse family (uniform/bursty).
    let families = scenario_families(quick, seed);
    let trace = synthesize(&families[1]);
    let pure = AllocProfile::from_trace(&trace);
    e.push(Row::new(
        format!("recorded {} fidelity", trace.name),
        vec![
            (
                "recorder==pure",
                if recorder_matches_pure(&trace, &pure) {
                    1.0
                } else {
                    0.0
                },
            ),
            ("mallocs", pure.mallocs as f64),
            ("remote-free frac", pure.remote_free_fraction()),
        ],
    ));

    // The DSE hook: sweep the objective's WRAM-weight ladder over the
    // same profile, exposing the fragmentation/WRAM frontier.
    let sweep_cfg = pim_dse::GeometrySweepConfig::default();
    for point in pim_dse::sweep_objectives(&pure, &sweep_cfg)
        .into_iter()
        .flatten()
    {
        e.push(Row::new(
            format!("dse w={} @ {}", point.wram_weight, trace.name),
            vec![
                ("classes", point.classes.len() as f64),
                ("modeled frag ratio", point.predicted_frag_ratio),
                ("wram B", f64::from(point.wram_bytes_per_tasklet)),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::TRACE_DEFAULT_SEED;

    #[test]
    fn synthesized_geometry_beats_paper_on_most_families() {
        let fams = tune_families(true, TRACE_DEFAULT_SEED);
        assert_eq!(fams.len(), 5);
        let modeled_wins = fams
            .iter()
            .filter(|f| f.synthesis.report.predicted_frag_ratio < 1.0)
            .count();
        assert!(
            modeled_wins >= 3,
            "synthesized geometry must beat paper modeled fragmentation on >= 3 of 5 families, won {modeled_wins}"
        );
        for f in &fams {
            assert!(
                f.frag_ratio() <= 1.0,
                "{}: measured frag regressed ({} vs {})",
                f.name,
                f.tuned.frag_peak_ratio,
                f.paper.frag_peak_ratio
            );
            assert!(
                f.churn_ratio() >= 0.95,
                "{}: churn throughput fell by more than 5% (ratio {})",
                f.name,
                f.churn_ratio()
            );
            assert_eq!(f.paper.oom + f.tuned.oom, 0, "{}: replay hit OOM", f.name);
        }
    }

    #[test]
    fn experiment_rows_cover_every_family_and_the_loop_checks() {
        let e = geometry_tune(true, TRACE_DEFAULT_SEED);
        for family in scenario_families(true, TRACE_DEFAULT_SEED) {
            let name = family.scenario_name();
            for suffix in ["paper", "tuned"] {
                let label = format!("{name} @ {suffix}");
                let row = e.row(&label).unwrap_or_else(|| panic!("missing {label}"));
                assert!(row.value("frag A/U").unwrap() >= 1.0, "{label}");
                assert!(row.value("churn Mops/s").unwrap() > 0.0, "{label}");
            }
            assert!(e.row(&format!("{name} delta")).is_some());
        }
        let fidelity = e
            .rows
            .iter()
            .find(|r| r.label.ends_with("fidelity"))
            .expect("fidelity row");
        assert_eq!(fidelity.value("recorder==pure").unwrap(), 1.0);
        assert!(
            e.rows
                .iter()
                .filter(|r| r.label.starts_with("dse w="))
                .count()
                >= 4,
            "objective ladder rows missing"
        );
    }

    #[test]
    fn tune_is_deterministic() {
        let a = geometry_tune(true, TRACE_DEFAULT_SEED).to_json();
        let b = geometry_tune(true, TRACE_DEFAULT_SEED).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn replay_measurements_are_policy_invariant() {
        use pim_sim::{ExecPolicy, SimContext};
        let families = scenario_families(true, TRACE_DEFAULT_SEED);
        let trace = synthesize(&families[0]);
        let profile = AllocProfile::from_trace(&trace);
        let synth = synthesize_table(&profile, &SynthesisObjective::default()).unwrap();
        let run = |policy: ExecPolicy| {
            let cfg = FleetConfig {
                n_dpus: 2,
                ctx: SimContext::default().with_exec(policy),
            };
            let fleet = replay_fleet(&trace, &cfg, |dpu| {
                Box::new(build_alloc(dpu, &trace, &synth.table))
            });
            (fleet.kernel_finish, fleet.mean_latency())
        };
        let serial = run(ExecPolicy::Serial);
        for policy in [
            ExecPolicy::Oblivious,
            ExecPolicy::Sticky,
            ExecPolicy::StickySteal,
        ] {
            assert_eq!(run(policy), serial, "{policy:?} diverged from serial");
        }
    }
}
