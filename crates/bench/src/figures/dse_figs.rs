//! Design-space-exploration figures: 6(a) and 6(b).

use pim_dse::{run_strategy, sweep, DseConfig, Strategy};

use crate::report::{Experiment, Row};

/// Figure 6(a): system-wide allocation latency (seconds) as the DPU
/// count grows from 1 to 512, for the four Table I strategies.
pub fn fig6a(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig6a",
        "allocation latency (s) vs number of PIM cores, four strategies",
        "only PIM-Metadata/PIM-Executed stays flat; metadata movers reach ~10s",
    );
    let counts: &[usize] = if quick {
        &[1, 64, 512]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    };
    let rows = sweep(&DseConfig::default(), counts);
    for &strategy in &Strategy::ALL {
        let values: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| r.strategy == strategy)
            .map(|r| (format!("{} DPUs", r.n_dpus), r.total_secs))
            .collect();
        e.push(Row {
            label: strategy.to_string(),
            values,
        });
    }
    e
}

/// Figure 6(b): latency breakdown (transfer vs compute) at 512 cores.
pub fn fig6b(_quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig6b",
        "latency breakdown at 512 PIM cores",
        "metadata-moving strategies are >75% DRAM<->PIM transfer",
    );
    let cfg = DseConfig::default().with_dpus(512);
    for &strategy in &Strategy::ALL {
        let r = run_strategy(strategy, &cfg);
        e.push(Row::new(
            strategy.to_string(),
            vec![
                ("total s", r.total_secs),
                ("transfer frac", r.transfer_fraction()),
                ("compute frac", 1.0 - r.transfer_fraction()),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_pim_local_is_flat_and_best() {
        let e = fig6a(true);
        let local = e.row("PIM-Metadata/PIM-Executed").unwrap();
        let one = local.value("1 DPUs").unwrap();
        let many = local.value("512 DPUs").unwrap();
        assert!((many / one) < 1.01);
        for label in [
            "Host-Metadata/Host-Executed",
            "Host-Metadata/PIM-Executed",
            "PIM-Metadata/Host-Executed",
        ] {
            let r = e.row(label).unwrap();
            assert!(
                r.value("512 DPUs").unwrap() > many * 10.0,
                "{label} must scale poorly"
            );
        }
    }

    #[test]
    fn fig6b_transfer_fractions() {
        let e = fig6b(true);
        for label in ["Host-Metadata/PIM-Executed", "PIM-Metadata/Host-Executed"] {
            assert!(e.row(label).unwrap().value("transfer frac").unwrap() > 0.75);
        }
        assert_eq!(
            e.row("PIM-Metadata/PIM-Executed")
                .unwrap()
                .value("transfer frac")
                .unwrap(),
            0.0
        );
    }
}
