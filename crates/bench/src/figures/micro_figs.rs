//! Microbenchmark-driven figures: 7, 8, 15, 16, and the ablations.
//!
//! Every grid point is an independent single-DPU simulation, so each
//! figure fans its sweep out with [`pim_sim::parallel_indexed`] and
//! assembles rows from the index-ordered results — same tables, host
//! wall-clock divided by the core count.

use pim_sim::{parallel_indexed_with, BuddyCacheConfig};
use pim_workloads::micro::{
    run_micro, run_micro_with_cache, run_straw_man_grid_point, MicroConfig,
};
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

/// Figure 7: straw-man slowdown over heap size × allocation size,
/// normalized to (32 KB heap, 2 KB allocations).
pub fn fig7(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig7",
        "straw-man slowdown vs heap size and (de)allocation size",
        "up to 12x from (32KB heap, 2KB alloc) to (32MB heap, 32B alloc)",
    );
    let pairs = if quick { 8 } else { 64 };
    let heaps: &[u32] = if quick {
        &[32 << 10, 2 << 20, 32 << 20]
    } else {
        &[32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20]
    };
    let alloc_sizes: &[u32] = if quick {
        &[32, 2048]
    } else {
        &[32, 128, 512, 1024, 2048]
    };
    let grid: Vec<(u32, u32)> = alloc_sizes
        .iter()
        .flat_map(|&alloc| heaps.iter().map(move |&heap| (alloc, heap)))
        .collect();
    let baseline = run_straw_man_grid_point(32 << 10, 2048, pairs);
    let latencies = parallel_indexed_with(grid.len(), SWEEP_POLICY, |i| {
        let (alloc, heap) = grid[i];
        run_straw_man_grid_point(heap, alloc, pairs)
    });
    for (ai, &alloc) in alloc_sizes.iter().enumerate() {
        let values = heaps
            .iter()
            .enumerate()
            .map(|(hi, &heap)| {
                (
                    format!("{}KB heap", heap >> 10),
                    latencies[ai * heaps.len() + hi] / baseline,
                )
            })
            .collect();
        e.push(Row {
            label: format!("{alloc} B alloc"),
            values,
        });
    }
    e
}

/// Figure 8: straw-man allocation latency over a request sequence and
/// the Run/Busy-wait/Idle breakdown, 1 vs 16 threads.
pub fn fig8(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig8",
        "straw-man latency over sequence + cycle breakdown, 1 vs 16 threads",
        "1 thread stable; 16 threads fluctuate, busy-wait dominates",
    );
    let allocs = if quick { 64 } else { 300 };
    let thread_counts = [1usize, 16];
    let runs = parallel_indexed_with(thread_counts.len(), SWEEP_POLICY, |i| {
        let threads = thread_counts[i];
        let cfg = MicroConfig {
            n_tasklets: threads,
            allocs_per_tasklet: allocs / threads.min(allocs),
            alloc_size: 32,
            ..MicroConfig::default()
        };
        run_micro(AllocatorKind::StrawMan, &cfg)
    });
    for (threads, r) in thread_counts.into_iter().zip(runs) {
        let n = r.timeline_us.len().max(1);
        let early: f64 =
            r.timeline_us[..n / 4].iter().map(|&(_, l)| l).sum::<f64>() / (n / 4).max(1) as f64;
        let late: f64 = r.timeline_us[3 * n / 4..]
            .iter()
            .map(|&(_, l)| l)
            .sum::<f64>()
            / (n - 3 * n / 4).max(1) as f64;
        let max = r.timeline_us.iter().map(|&(_, l)| l).fold(0.0f64, f64::max);
        let (run, busy, mem, etc) = r.breakdown.fractions();
        e.push(Row::new(
            format!("{threads} thread(s)"),
            vec![
                ("mean us", r.avg_latency_us),
                ("first-quarter us", early),
                ("last-quarter us", late),
                ("max us", max),
                ("run", run),
                ("busy-wait", busy),
                ("idle(mem)", mem),
                ("idle(etc)", etc),
            ],
        ));
    }
    e
}

/// Figure 15: average allocation latency, {1, 16} threads ×
/// {32 B, 256 B, 4 KB} × {straw-man, SW, HW/SW}.
pub fn fig15(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig15",
        "average pim_malloc latency (us) across allocators",
        "SW 66x over straw-man overall; HW/SW +31% over SW; 39% on 4KB",
    );
    let allocs = if quick { 32 } else { 128 };
    let cells: Vec<(usize, u32)> = [1usize, 16]
        .into_iter()
        .flat_map(|threads| [32u32, 256, 4096].into_iter().map(move |s| (threads, s)))
        .collect();
    let kinds = AllocatorKind::HEADLINE;
    let latencies = parallel_indexed_with(cells.len() * kinds.len(), SWEEP_POLICY, |i| {
        let (threads, size) = cells[i / kinds.len()];
        let cfg = MicroConfig {
            n_tasklets: threads,
            allocs_per_tasklet: allocs,
            alloc_size: size,
            ..MicroConfig::default()
        };
        run_micro(kinds[i % kinds.len()], &cfg).avg_latency_us
    });
    for (ci, &(threads, size)) in cells.iter().enumerate() {
        let &[straw, sw, hw] = &latencies[ci * kinds.len()..(ci + 1) * kinds.len()] else {
            unreachable!("HEADLINE is straw-man, SW, HW/SW");
        };
        e.push(Row::new(
            format!("{threads}thr {size}B"),
            vec![
                ("straw-man", straw),
                ("SW", sw),
                ("HW/SW", hw),
                ("straw/SW", straw / sw),
                ("SW/HWSW", sw / hw),
            ],
        ));
    }
    e
}

/// Figure 16: HW/SW speedup over SW and buddy-cache hit rate vs cache
/// capacity (16 threads, 4 KB requests).
pub fn fig16(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "fig16",
        "buddy-cache size sensitivity (16 threads, 4KB requests)",
        "speedup and hit rate saturate beyond 64 B of cache",
    );
    let cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: if quick { 32 } else { 128 },
        alloc_size: 4096,
        ..MicroConfig::default()
    };
    let sw = run_micro(AllocatorKind::Sw, &cfg).avg_latency_us;
    let sizes = [16u32, 32, 64, 128, 256];
    let runs = parallel_indexed_with(sizes.len(), SWEEP_POLICY, |i| {
        run_micro_with_cache(&cfg, BuddyCacheConfig::with_capacity_bytes(sizes[i]))
    });
    for (bytes, r) in sizes.into_iter().zip(runs) {
        let bc = r.buddy_cache.expect("HW/SW exposes cache stats");
        e.push(Row::new(
            format!("{bytes} B cache"),
            vec![
                ("speedup vs SW", sw / r.avg_latency_us),
                ("hit rate", bc.hit_rate()),
                (
                    "bytes/req",
                    r.meta.total_bytes() as f64 / (16.0 * cfg.allocs_per_tasklet as f64),
                ),
            ],
        ));
    }
    e
}

/// §IV-B ablation: the all-software fine-grained LRU metadata buffer
/// vs the coarse window (16 threads, 4 KB requests).
pub fn ablation_swlru(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "ablation-swlru",
        "fine-grained software LRU vs coarse window",
        "fine-grained SW management regressed 29% despite fewer transfers",
    );
    let cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: if quick { 32 } else { 64 },
        alloc_size: 4096,
        ..MicroConfig::default()
    };
    let mut runs = parallel_indexed_with(2, SWEEP_POLICY, |i| {
        run_micro([AllocatorKind::Sw, AllocatorKind::SwFineLru][i], &cfg)
    });
    let fine = runs.pop().expect("two runs");
    let coarse = runs.pop().expect("two runs");
    e.push(Row::new(
        "coarse window",
        vec![
            ("avg us", coarse.avg_latency_us),
            ("meta KB", coarse.meta.total_bytes() as f64 / 1024.0),
        ],
    ));
    e.push(Row::new(
        "fine SW LRU",
        vec![
            ("avg us", fine.avg_latency_us),
            ("meta KB", fine.meta.total_bytes() as f64 / 1024.0),
            (
                "regression",
                fine.avg_latency_us / coarse.avg_latency_us - 1.0,
            ),
        ],
    ));
    e
}

/// Descent-policy ablation: four-state full marks (paper behaviour)
/// vs naive three-state metadata whose descent degrades with
/// occupancy.
pub fn ablation_descent(quick: bool) -> Experiment {
    use pim_malloc::{DescentPolicy, PimAllocator, StrawManAllocator, StrawManConfig};
    use pim_sim::{DpuConfig, DpuSim};

    let mut e = Experiment::new(
        "ablation-descent",
        "buddy descent: full marks vs three-state metadata",
        "design choice called out in DESIGN.md; not in the paper",
    );
    let allocs = if quick { 128 } else { 512 };
    let policies = [
        ("full marks", DescentPolicy::FullMarks),
        ("three-state", DescentPolicy::ThreeState),
    ];
    let runs = parallel_indexed_with(policies.len(), SWEEP_POLICY, |i| {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
        let cfg = StrawManConfig {
            descent: policies[i].1,
            ..StrawManConfig::default()
        };
        let mut alloc = StrawManAllocator::init(&mut dpu, cfg).expect("straw-man init");
        let mut first = 0.0;
        let mut last = 0.0;
        for j in 0..allocs {
            let mut ctx = dpu.ctx(0);
            let t0 = ctx.now();
            alloc.pim_malloc(&mut ctx, 32).unwrap();
            let us = (ctx.now() - t0).as_micros(350);
            if j == 0 {
                first = us;
            }
            last = us;
        }
        (first, last)
    });
    for ((label, _), (first, last)) in policies.into_iter().zip(runs) {
        e.push(Row::new(
            label,
            vec![
                ("first alloc us", first),
                ("last alloc us", last),
                ("degradation", last / first.max(1e-9)),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_diagonal_shows_large_slowdown() {
        let e = fig7(true);
        let worst = e.row("32 B alloc").unwrap().value("32768KB heap").unwrap();
        let best = e.row("2048 B alloc").unwrap().value("32KB heap").unwrap();
        assert!(worst / best > 5.0, "worst {worst} best {best}");
    }

    #[test]
    fn fig8_contention_dominates_16_threads() {
        let e = fig8(true);
        let r16 = e.row("16 thread(s)").unwrap();
        assert!(r16.value("busy-wait").unwrap() > 0.5);
        let r1 = e.row("1 thread(s)").unwrap();
        // Single-thread latency is flat across the sequence.
        let early = r1.value("first-quarter us").unwrap();
        let late = r1.value("last-quarter us").unwrap();
        assert!(late < early * 2.0, "single-thread must stay stable");
    }

    #[test]
    fn fig15_headline_ratios() {
        let e = fig15(true);
        let r = e.row("1thr 32B").unwrap();
        assert!(r.value("straw/SW").unwrap() > 10.0);
        let r = e.row("16thr 4096B").unwrap();
        assert!(r.value("SW/HWSW").unwrap() > 1.2);
    }

    #[test]
    fn fig16_saturates_at_64b() {
        let e = fig16(true);
        let h64 = e.row("64 B cache").unwrap().value("hit rate").unwrap();
        let h256 = e.row("256 B cache").unwrap().value("hit rate").unwrap();
        assert!((h256 - h64).abs() < 0.1, "64B {h64} vs 256B {h256}");
    }

    #[test]
    fn swlru_regresses() {
        let e = ablation_swlru(true);
        let reg = e.row("fine SW LRU").unwrap().value("regression").unwrap();
        assert!(reg > 0.0, "fine LRU must be slower, got {reg}");
    }

    #[test]
    fn three_state_descent_degrades() {
        let e = ablation_descent(true);
        let fm = e.row("full marks").unwrap().value("degradation").unwrap();
        let ts = e.row("three-state").unwrap().value("degradation").unwrap();
        assert!(ts > fm * 2.0, "three-state {ts} vs full-marks {fm}");
    }
}
