//! Chaos/resilience experiment: the serving fleet under a scheduled
//! [`FaultPlan`] versus the same fleet fault-free (an extension beyond
//! the paper's figures, motivated by PrIM's faulty-part observation —
//! real UPMEM boards ship with dead DPUs, e.g. 2524 of 2560 usable).
//!
//! One experiment, three stories:
//!
//! * **Serving under chaos** — the open-loop frontend at 60% of
//!   calibrated capacity, once fault-free and once under
//!   [`FaultPlan::chaos`] (5% dead-on-arrival DPUs, mid-run kills,
//!   failing/straggling transfer shards). The `degradation` row gates
//!   graceful degradation: goodput stays ≥ 90% of fault-free because
//!   the self-healing frontend routes around dead DPUs, retries failed
//!   shards, and re-dispatches stranded requests.
//! * **Corrupted frees** — a quarantine-armed allocator absorbing the
//!   plan's corrupted-free stream: every hostile free comes back as an
//!   `Err`, and past the budget the allocator seals itself instead of
//!   trusting poisoned metadata.
//! * **Heap-exhaustion pressure** — an allocator whose heap the plan
//!   shrinks by [`FaultPlan::oom_pressure_frac`]: exhaustion surfaces
//!   as graceful `OutOfMemory` errors, never a panic.
//!
//! Both serve runs are seeded and single-threaded, and every fault
//! draw is a pure function of the plan — the experiment is
//! byte-identical across `ExecPolicy` × `PIM_EXEC_WORKERS`.

use pim_malloc::{AllocError, AllocGeometry, PimAllocator, PimMalloc};
use pim_serving::{estimated_capacity_rps, serve, ArrivalProcess, ServeConfig, ServeReport};
use pim_sim::{parallel_indexed_with, DpuConfig, DpuSim, FaultPlan};
use pim_workloads::requests::standard_mix;
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

/// Fraction of calibrated capacity the chaos comparison offers.
const CHAOS_LOAD: f64 = 0.6;
/// Invalid frees tolerated before the demo allocator quarantines.
const QUARANTINE_BUDGET: u32 = 16;
/// Allocator ops driven through the corrupted-free storm.
const STORM_OPS: u64 = 1024;

fn build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, tasklets, heap)
}

fn scaled(quick: bool, seed: u64) -> ServeConfig {
    let ctx = pim_sim::SimContext::sweep_default().with_seed(seed);
    if quick {
        ServeConfig {
            n_dpus: 64,
            n_requests: 4_000,
            ctx,
            ..ServeConfig::default()
        }
    } else {
        // The paper-scale fleet: 2560 DPUs × 10^6 requests.
        ServeConfig {
            ctx,
            ..ServeConfig::default()
        }
    }
}

fn serve_row(label: &str, r: &ServeReport) -> Row {
    Row::new(
        label.to_string(),
        vec![
            ("offered krps", r.offered_rps / 1e3),
            ("achieved krps", r.achieved_rps / 1e3),
            ("goodput", r.goodput()),
            ("p99 ms", r.p99_ms()),
            ("drop frac", r.drop_frac()),
            ("healthy final", r.faults.healthy_final as f64),
        ],
    )
}

/// The corrupted-free storm: `STORM_OPS` valid allocations interleaved
/// with the plan's corrupted-free stream against a quarantine-armed
/// allocator. Returns (frees fired, caught as errors, quarantined,
/// live allocations preserved).
fn corrupted_free_storm(plan: &FaultPlan) -> (u64, u64, bool, u64) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let cfg = AllocGeometry::sw(1)
        .with_heap_size(1 << 20)
        .with_quarantine(QUARANTINE_BUDGET)
        .build();
    let mut pm = PimMalloc::init(&mut dpu, cfg).expect("init");
    let mut ctx = dpu.ctx(0);
    let mut live: Vec<u32> = Vec::new();
    let mut fired = 0u64;
    let mut caught = 0u64;
    for nonce in 0..STORM_OPS {
        if !pm.is_quarantined() {
            // Keep a small working set of real allocations alive so
            // the storm rages against genuine heap state.
            if live.len() < 8 {
                if let Ok(addr) = pm.pim_malloc(&mut ctx, 64) {
                    live.push(addr);
                }
            } else if let Some(addr) = live.pop() {
                pm.pim_free(&mut ctx, addr).expect("valid free");
            }
        }
        if let Some(addr) = plan.corrupt_free_addr(nonce) {
            if live.contains(&addr) {
                continue; // astronomically unlikely collision
            }
            fired += 1;
            match pm.pim_free(&mut ctx, addr) {
                Err(AllocError::InvalidFree { .. }) | Err(AllocError::Quarantined { .. }) => {
                    caught += 1
                }
                other => panic!("corrupted free must error, got {other:?}"),
            }
        }
    }
    (fired, caught, pm.is_quarantined(), live.len() as u64)
}

/// Heap-exhaustion pressure: the plan steals `oom_pressure_frac` of
/// the heap up front; allocation then runs to exhaustion. Returns
/// (successful allocations, graceful OOM errors observed).
fn oom_pressure_run(pressure_frac: f64) -> (u64, u64) {
    let full: u32 = 1 << 18;
    let usable = ((full as f64) * (1.0 - pressure_frac)).max(4096.0) as u32;
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let cfg = AllocGeometry::sw(1).with_heap_size(usable).build();
    let mut pm = PimMalloc::init(&mut dpu, cfg).expect("init");
    let mut ctx = dpu.ctx(0);
    let mut ok = 0u64;
    let mut oom = 0u64;
    // Twice the unpressured capacity guarantees exhaustion.
    for _ in 0..(2 * full / 2048) {
        match pm.pim_malloc(&mut ctx, 2048) {
            Ok(_) => ok += 1,
            Err(AllocError::OutOfMemory { .. }) => oom += 1,
            Err(e) => panic!("exhaustion must surface as OutOfMemory, got {e}"),
        }
    }
    (ok, oom)
}

/// The `chaos` experiment (see the module docs).
pub fn chaos_resilience(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "chaos",
        "resilience under a scheduled fault plan: faulty fleet serving + allocator fault injection",
        "goodput within 10% of fault-free despite 5% dead DPUs, kills, and shard faults; \
         corrupted frees caught and quarantined; heap exhaustion degrades gracefully",
    );
    let base = scaled(quick, seed);
    let classes = standard_mix();
    let capacity = estimated_capacity_rps(&classes, &build, base.n_dpus);
    let arrival = ArrivalProcess::Poisson {
        rps: CHAOS_LOAD * capacity,
    };
    let plan = FaultPlan::chaos(seed);
    let cfgs = [
        base.with_arrival(arrival),
        ServeConfig {
            ctx: base.ctx.with_faults(plan),
            ..base.with_arrival(arrival)
        },
    ];
    let runs = parallel_indexed_with(cfgs.len(), SWEEP_POLICY, |i| {
        serve(&cfgs[i], &classes, &build)
    });
    let (clean, chaos) = (&runs[0], &runs[1]);
    e.push(serve_row("fault-free", clean));
    e.push(serve_row("chaos", chaos));
    let f = &chaos.faults;
    e.push(Row::new(
        "self-healing",
        vec![
            ("doa dpus", f.doa_dpus as f64),
            ("killed dpus", f.killed_dpus as f64),
            ("retries", f.retries as f64),
            ("redispatched", f.redispatched as f64),
            ("failed shards", f.xfer_failed_shards as f64),
            ("straggled shards", f.xfer_straggled_shards as f64),
            ("fault drops", f.fault_drops() as f64),
        ],
    ));
    let clean_goodput = clean.goodput();
    e.push(Row::new(
        "degradation",
        vec![
            (
                "goodput ratio",
                if clean_goodput > 0.0 {
                    chaos.goodput() / clean_goodput
                } else {
                    0.0
                },
            ),
            (
                "p99 inflation",
                if clean.p99_ms() > 0.0 {
                    chaos.p99_ms() / clean.p99_ms()
                } else {
                    0.0
                },
            ),
            ("healthy frac", f.healthy_final as f64 / base.n_dpus as f64),
        ],
    ));

    // Allocator-level fault injection, from the same plan.
    let (fired, caught, quarantined, live) = corrupted_free_storm(&plan);
    e.push(Row::new(
        "alloc-quarantine",
        vec![
            ("corrupt frees", fired as f64),
            ("caught as err", caught as f64),
            ("quarantined", if quarantined { 1.0 } else { 0.0 }),
            ("live preserved", live as f64),
        ],
    ));
    let pressure = FaultPlan {
        oom_pressure_frac: 0.5,
        ..plan
    };
    let (ok, oom) = oom_pressure_run(pressure.oom_pressure_frac);
    e.push(Row::new(
        "alloc-oom-pressure",
        vec![
            ("pressure frac", pressure.oom_pressure_frac),
            ("allocs ok", ok as f64),
            ("graceful oom", oom as f64),
        ],
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_degrades_gracefully() {
        let e = chaos_resilience(true, 0xC4A05);
        let deg = e.row("degradation").unwrap();
        assert!(
            deg.value("goodput ratio").unwrap() >= 0.90,
            "self-healing must hold goodput within 10% of fault-free"
        );
        assert!(deg.value("healthy frac").unwrap() < 1.0, "chaos must bite");
        let heal = e.row("self-healing").unwrap();
        assert!(heal.value("doa dpus").unwrap() > 0.0);
        // Drop accounting closes: chaos drops = queue drops + fault
        // drops, already folded into goodput; the row only surfaces
        // fault-attributed ones.
        assert!(heal.value("fault drops").unwrap() >= 0.0);
    }

    #[test]
    fn corrupted_frees_are_contained() {
        let e = chaos_resilience(true, 0xC4A05);
        let q = e.row("alloc-quarantine").unwrap();
        let fired = q.value("corrupt frees").unwrap();
        assert!(fired > QUARANTINE_BUDGET as f64, "storm must exceed budget");
        assert_eq!(q.value("caught as err").unwrap(), fired, "all caught");
        assert_eq!(q.value("quarantined").unwrap(), 1.0, "budget exceeded");
    }

    #[test]
    fn oom_pressure_is_graceful() {
        let e = chaos_resilience(true, 0xC4A05);
        let r = e.row("alloc-oom-pressure").unwrap();
        assert!(r.value("allocs ok").unwrap() > 0.0);
        assert!(r.value("graceful oom").unwrap() > 0.0);
    }

    #[test]
    fn experiment_is_seed_deterministic() {
        let a = chaos_resilience(true, 7);
        let b = chaos_resilience(true, 7);
        assert_eq!(a.to_json(), b.to_json());
        let c = chaos_resilience(true, 8);
        assert_ne!(a.to_json(), c.to_json(), "fault seed must matter");
    }
}
