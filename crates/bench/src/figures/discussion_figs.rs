//! The §VII Discussion experiments — the paper's forward-looking
//! claims, reproduced quantitatively.
//!
//! 1. **Future PIM with enhanced processing**: a faster DPU shrinks
//!    `pim_malloc`'s absolute latency but accelerates the surrounding
//!    workload proportionally, so allocation's *relative* share stays a
//!    bottleneck.
//! 2. **Cache-enabled PIM**: a general-purpose data cache with 64 B
//!    lines is a poor home for 2-bit buddy metadata; the dedicated
//!    fine-granularity buddy cache matches its latency with a fraction
//!    of the capacity and the DRAM traffic.

use pim_malloc::{AllocGeometry, BackendKind, PimAllocator, PimMalloc};
use pim_sim::{BuddyCacheConfig, CostModel, Cycles, DpuConfig, DpuSim};

use crate::report::{Experiment, Row};

/// Runs a small allocation-heavy kernel (interleaved 256 B allocations
/// and simulated compute) and returns `(total us, malloc us)`.
fn alloc_share_kernel(cost: CostModel, allocs: usize) -> (f64, f64) {
    let mut dpu = DpuSim::new(
        DpuConfig {
            cost,
            ..DpuConfig::default()
        }
        .with_tasklets(16),
    );
    let mut pm = PimMalloc::init(&mut dpu, AllocGeometry::sw(16).build()).expect("init");
    let mut malloc_cycles = Cycles::ZERO;
    for i in 0..allocs {
        let tid = i % 16;
        let mut ctx = dpu.ctx(tid);
        // Surrounding workload: some compute and a data write per item.
        ctx.instrs(800);
        ctx.mram_write(0, 256);
        let t = ctx.now();
        pm.pim_malloc(&mut ctx, 256).expect("heap sized");
        malloc_cycles += ctx.now() - t;
    }
    // Malloc time is summed across tasklets, so compare against the
    // total accounted tasklet time (run + waits across all tasklets).
    let total = dpu.total_stats().total();
    let mhz = cost.clock_mhz;
    (total.as_micros(mhz), malloc_cycles.as_micros(mhz))
}

/// §VII claim 1: allocation overhead survives faster PIM cores.
pub fn discussion_future_pim(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "discussion-future-pim",
        "allocation share of runtime as DPU processing improves",
        "faster cores cut absolute latency, not the relative bottleneck",
    );
    let allocs = if quick { 256 } else { 1024 };
    let base = CostModel::default();
    let configs = [
        ("today (350 MHz)", base),
        (
            "2x clock (700 MHz)",
            CostModel {
                clock_mhz: 700,
                ..base
            },
        ),
        (
            "2x clock + 2x DMA",
            CostModel {
                clock_mhz: 700,
                dma_setup_cycles: base.dma_setup_cycles / 2,
                dma_cycles_per_8b: base.dma_cycles_per_8b.max(2) / 2,
                ..base
            },
        ),
    ];
    for (label, cost) in configs {
        let (total_us, malloc_us) = alloc_share_kernel(cost, allocs);
        e.push(Row::new(
            label,
            vec![
                ("kernel us", total_us),
                ("malloc us", malloc_us),
                ("malloc share", malloc_us / total_us),
            ],
        ));
    }
    e
}

/// §VII claim 2: granularity mismatch of a general-purpose cache.
pub fn discussion_cache_granularity(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "discussion-cache-granularity",
        "dedicated 64 B buddy cache vs general-purpose line caches",
        "64 B-line caches waste bandwidth on 2-bit metadata; an 8 B \
         granularity complements a general-purpose cache",
    );
    let allocs = if quick { 256 } else { 1024 };
    let backends: [(&str, BackendKind); 4] = [
        (
            "buddy cache 64 B (16 x 4 B)",
            BackendKind::HwCache {
                cache: BuddyCacheConfig::default(),
            },
        ),
        (
            "line cache 1 KB, 64 B lines",
            BackendKind::LineCache {
                capacity_bytes: 1024,
                line_bytes: 64,
            },
        ),
        (
            "line cache 1 KB, 8 B lines",
            BackendKind::LineCache {
                capacity_bytes: 1024,
                line_bytes: 8,
            },
        ),
        (
            "line cache 64 B, 64 B lines",
            BackendKind::LineCache {
                capacity_bytes: 64,
                line_bytes: 64,
            },
        ),
    ];
    for (label, backend) in backends {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(16));
        let cfg = AllocGeometry::hw_sw(16).with_backend(backend).build();
        let mut pm = PimMalloc::init(&mut dpu, cfg).expect("init");
        for i in 0..allocs {
            let mut ctx = dpu.ctx(i % 16);
            // 4 KB requests exercise the backend tree on every call.
            pm.pim_malloc(&mut ctx, 4096).expect("heap sized");
        }
        let meta = pm.metadata_stats();
        let mean_us = pm.alloc_stats().malloc_latencies.mean().as_micros(350);
        e.push(Row::new(
            label,
            vec![
                ("avg us", mean_us),
                ("bytes/req", meta.total_bytes() as f64 / allocs as f64),
                ("hit rate", meta.hit_rate()),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_share_survives_faster_cores() {
        let e = discussion_future_pim(true);
        let today = e.row("today (350 MHz)").unwrap();
        let future = e.row("2x clock + 2x DMA").unwrap();
        // Absolute latency drops...
        assert!(future.value("malloc us").unwrap() < today.value("malloc us").unwrap());
        // ...but the share moves by far less than the 2x speedup.
        let s0 = today.value("malloc share").unwrap();
        let s1 = future.value("malloc share").unwrap();
        assert!(
            (s1 - s0).abs() < 0.25 * s0.max(s1),
            "share must be roughly invariant: {s0} vs {s1}"
        );
    }

    #[test]
    fn wide_lines_waste_bandwidth_at_equal_capacity() {
        let e = discussion_cache_granularity(true);
        let buddy = e.row("buddy cache 64 B (16 x 4 B)").unwrap();
        let wide = e.row("line cache 64 B, 64 B lines").unwrap();
        // At the capacity a per-DPU dedicated structure can afford,
        // 64 B granularity wastes orders of magnitude more bandwidth
        // and loses on latency — the paper's mismatch argument.
        assert!(
            buddy.value("bytes/req").unwrap() * 20.0 < wide.value("bytes/req").unwrap(),
            "64 B lines must waste bandwidth at equal capacity"
        );
        assert!(buddy.value("avg us").unwrap() < wide.value("avg us").unwrap());
        // A general-purpose cache only catches up by being 16x larger.
        let big = e.row("line cache 1 KB, 64 B lines").unwrap();
        let ratio = buddy.value("avg us").unwrap() / big.value("avg us").unwrap();
        assert!((0.8..1.3).contains(&ratio), "latency ratio {ratio}");
    }

    #[test]
    fn equal_capacity_fine_lines_beat_wide_lines_on_traffic() {
        let e = discussion_cache_granularity(true);
        let fine = e.row("line cache 1 KB, 8 B lines").unwrap();
        let wide = e.row("line cache 1 KB, 64 B lines").unwrap();
        assert!(fine.value("bytes/req").unwrap() <= wide.value("bytes/req").unwrap());
    }
}
