//! Table III (fragmentation) and the §VI-E/§VI-F overhead analyses.

use pim_malloc::BuddyGeometry;
use pim_sim::parallel_indexed_with;
use pim_sim::{BuddyCacheConfig, CamOverheadModel};
use pim_workloads::graph::{run_graph_update, GraphRepr, GraphUpdateConfig};
use pim_workloads::llm::{kv_fragmentation, LlmConfig};
use pim_workloads::AllocatorKind;

use crate::report::{Experiment, Row};

use super::SWEEP_POLICY;

/// Table III: fragmentation A/U of PIM-malloc as-is (eager
/// pre-population) vs PIM-malloc-lazy, per workload.
pub fn table3(quick: bool) -> Experiment {
    let mut e = Experiment::new(
        "table3",
        "memory fragmentation A/U: eager pre-population vs lazy",
        "paper: LL 1.95->1.21, var array 1.72->1.49, LLM 1.66->1.00",
    );
    let base = if quick {
        GraphUpdateConfig {
            n_dpus: 2,
            n_nodes: 1024,
            base_edges: 3200,
            new_edges: 1600,
            ..GraphUpdateConfig::default()
        }
    } else {
        GraphUpdateConfig::default()
    };
    let reprs = [GraphRepr::LinkedList, GraphRepr::VarArray];
    let kinds = [AllocatorKind::Sw, AllocatorKind::SwLazy];
    let ratios = parallel_indexed_with(reprs.len() * kinds.len(), SWEEP_POLICY, |i| {
        run_graph_update(&GraphUpdateConfig {
            repr: reprs[i / kinds.len()],
            allocator: kinds[i % kinds.len()],
            ..base
        })
        .frag_ratio
    });
    for (ri, repr) in reprs.into_iter().enumerate() {
        e.push(Row::new(
            format!("Dynamic graph update ({})", repr.label()),
            vec![
                ("as-is", ratios[ri * kinds.len()]),
                ("lazy", ratios[ri * kinds.len() + 1]),
            ],
        ));
    }
    let cfg = LlmConfig::default();
    let (requests, tokens) = if quick { (8, 24) } else { (16, 64) };
    e.push(Row::new(
        "LLM attention",
        vec![
            ("as-is", kv_fragmentation(false, &cfg, requests, tokens)),
            ("lazy", kv_fragmentation(true, &cfg, requests, tokens)),
        ],
    ));
    e
}

/// §VI-E: metadata storage overhead of the straw-man vs PIM-malloc.
pub fn metadata_overhead() -> Experiment {
    let mut e = Experiment::new(
        "metadata-overhead",
        "allocator metadata footprint per DPU (KB)",
        "straw-man 512 KB/bank; PIM-malloc ~4 KB tree + negligible bitmaps",
    );
    let straw = BuddyGeometry::new(0, 32 << 20, 32);
    let backend = BuddyGeometry::new(0, 32 << 20, 4096);
    let bitmaps_per_cache =
        pim_malloc::ThreadCache::new(&pim_malloc::SizeClassTable::paper_default())
            .bitmap_wram_bytes();
    e.push(Row::new(
        "straw-man (20-level tree)",
        vec![("KB", f64::from(straw.metadata_bytes()) / 1024.0)],
    ));
    e.push(Row::new(
        "PIM-malloc backend (13-level tree)",
        vec![("KB", f64::from(backend.metadata_bytes()) / 1024.0)],
    ));
    e.push(Row::new(
        "thread-cache bitmaps (16 tasklets)",
        vec![("KB", f64::from(bitmaps_per_cache * 16) / 1024.0)],
    ));
    e.push(Row::new(
        "PIM-malloc total",
        vec![(
            "KB",
            f64::from(backend.metadata_bytes() + bitmaps_per_cache * 16) / 1024.0,
        )],
    ));
    e
}

/// §VI-F: buddy-cache implementation overhead (CACTI stand-in,
/// derated to a DRAM process).
pub fn hw_overhead() -> Experiment {
    let mut e = Experiment::new(
        "hw-overhead",
        "buddy cache area / power / latency on a DRAM process",
        "paper (CACTI 7.0, 32nm, derated): 0.019 mm2, 5 mW, <1 cycle",
    );
    let model = CamOverheadModel::default();
    for bytes in [16u32, 64, 256] {
        let o = model.evaluate(&BuddyCacheConfig::with_capacity_bytes(bytes), 350, 1.0);
        e.push(Row::new(
            format!("{bytes} B cache"),
            vec![
                ("area mm2", o.area_mm2),
                ("power mW", o.power_mw),
                ("access cycles", o.access_cycles),
            ],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lazy_always_improves() {
        let e = table3(true);
        for row in &e.rows {
            let eager = row.value("as-is").unwrap();
            let lazy = row.value("lazy").unwrap();
            assert!(
                eager >= lazy && lazy >= 0.99,
                "{}: eager {eager} lazy {lazy}",
                row.label
            );
        }
        // LLM attention reaches ~1.0 under lazy (512 B packs 4 KB
        // blocks exactly).
        let llm = e.row("LLM attention").unwrap();
        assert!((llm.value("lazy").unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn metadata_overhead_matches_paper_magnitudes() {
        let e = metadata_overhead();
        assert_eq!(
            e.row("straw-man (20-level tree)").unwrap().value("KB"),
            Some(512.0)
        );
        let total = e.row("PIM-malloc total").unwrap().value("KB").unwrap();
        assert!(total < 8.0, "PIM-malloc metadata must be a few KB: {total}");
    }

    #[test]
    fn hw_overhead_is_negligible() {
        let e = hw_overhead();
        let r = e.row("64 B cache").unwrap();
        assert!(r.value("area mm2").unwrap() < 0.05);
        assert!(r.value("access cycles").unwrap() < 1.0);
    }
}
