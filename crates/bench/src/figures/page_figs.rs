//! The page-frontend experiment (extension beyond the paper).
//!
//! Replays three trace families — allocator-bound churn (no compute
//! gap, 100% hit rate), steady small-object churn, and the
//! producer-consumer remote-free pattern — on the page/queue fast path
//! (`.page_local()`) and on the legacy bitmap-scan thread caches. The
//! two frontends are address-identical under a fixed op order (the
//! differential suite pins that), so on the interleave-invariant
//! local-churn families every difference in the modeled numbers is
//! pure hot-path cycle count: the page layer replaces the bitmap
//! walk's block-scan/word-scan/bit-op sequence with one constant-cost
//! queue pop. The producer-consumer family replays under a
//! virtual-time interleave, where the faster producer can outrun the
//! consumer's remote frees and pay extra backend refills — the rows
//! keep that visible rather than hiding it. One row per (family,
//! frontend), plus a speedup row per family, all fully modeled and
//! deterministic for a fixed seed.

use pim_malloc::{AllocGeometry, FrontendKind, PimAllocator, PimMalloc};
use pim_sim::{CostModel, DpuConfig, DpuSim};
use pim_trace::{replay, synthesize, SizeLaw, SynthConfig, TemporalShape};

use crate::report::{Experiment, Row};

/// The trace families the comparison sweeps: pure local churn (every
/// request on the frontend fast path) and producer-consumer (remote
/// frees refilling page free lists through the transfer cache). The
/// third tuple field marks families whose routing is purely
/// per-tasklet: for those, refill counts and hit rates must match the
/// bitmap frontend bit for bit, while cross-tasklet families replay
/// under a virtual-time interleave that the page path's cheaper
/// pricing legitimately shifts.
fn families(quick: bool, seed: u64) -> Vec<(String, SynthConfig, bool)> {
    let mallocs = if quick { 128 } else { 512 };
    vec![
        (
            "allocator-bound churn".to_string(),
            SynthConfig {
                n_tasklets: 16,
                mallocs_per_tasklet: mallocs,
                live_window: 32,
                size_law: SizeLaw::Fixed(64),
                shape: TemporalShape::Steady { compute: 0 },
                heap_size: 32 << 20,
                seed,
            },
            true,
        ),
        (
            "steady small-object churn".to_string(),
            SynthConfig {
                n_tasklets: 16,
                mallocs_per_tasklet: mallocs,
                live_window: 32,
                size_law: SizeLaw::Uniform { min: 16, max: 2048 },
                shape: TemporalShape::Steady { compute: 200 },
                heap_size: 32 << 20,
                seed,
            },
            true,
        ),
        (
            "producer-consumer".to_string(),
            SynthConfig {
                n_tasklets: 16,
                mallocs_per_tasklet: mallocs,
                live_window: 32,
                size_law: SizeLaw::Fixed(512),
                shape: TemporalShape::ProducerConsumer { compute: 500 },
                heap_size: 32 << 20,
                seed,
            },
            false,
        ),
    ]
}

struct FrontendRun {
    finish_ms: f64,
    mean_us: f64,
    hit_rate: f64,
    mallocs: u64,
    refills: u64,
}

fn run_frontend(cfg: &SynthConfig, frontend: FrontendKind, mhz: u64) -> FrontendRun {
    let trace = synthesize(cfg);
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let geom = AllocGeometry::sw(trace.n_tasklets)
        .with_heap_size(trace.heap_size)
        .with_frontend(frontend);
    let mut alloc: Box<dyn PimAllocator> =
        Box::new(PimMalloc::init(&mut dpu, geom.build()).expect("init"));
    let result = replay(&mut dpu, alloc.as_mut(), &trace);
    assert_eq!(result.oom_count, 0, "heap sized for the trace");
    let pm = alloc
        .as_any()
        .downcast_ref::<PimMalloc>()
        .expect("built a PimMalloc");
    FrontendRun {
        finish_ms: result.finish.as_millis(mhz),
        mean_us: result.malloc_latencies.mean().as_micros(mhz),
        hit_rate: pm.alloc_stats().class_hit_rate(),
        mallocs: pm.alloc_stats().total_mallocs(),
        refills: pm.alloc_stats().frontend_refills,
    }
}

/// The `pages` experiment: page/queue frontend vs legacy bitmap scan.
pub fn page_frontend(quick: bool, seed: u64) -> Experiment {
    let mut e = Experiment::new(
        "pages",
        "page/queue frontend vs legacy bitmap scan: modeled finish, latency, hit rate",
        "extension; page + sharded page-queue design after mimalloc's free-list pages",
    );
    let mhz = CostModel::default().clock_mhz;
    for (label, cfg, local_only) in families(quick, seed) {
        let pages = run_frontend(&cfg, FrontendKind::PageLocal, mhz);
        let bitmap = run_frontend(&cfg, FrontendKind::BitmapClasses, mhz);
        assert_eq!(pages.mallocs, bitmap.mallocs, "{label}: same trace");
        if local_only {
            // Per-tasklet routing is interleave-invariant, so the
            // frontends may only differ in pricing.
            assert_eq!(
                (pages.refills, pages.hit_rate.to_bits()),
                (bitmap.refills, bitmap.hit_rate.to_bits()),
                "{label}: frontends must route requests identically"
            );
        }
        e.push(Row::new(
            format!("{label} @ pages"),
            vec![
                ("finish ms", pages.finish_ms),
                ("mean us", pages.mean_us),
                ("hit rate", pages.hit_rate),
                ("refills", pages.refills as f64),
            ],
        ));
        e.push(Row::new(
            format!("{label} @ bitmap"),
            vec![
                ("finish ms", bitmap.finish_ms),
                ("mean us", bitmap.mean_us),
                ("hit rate", bitmap.hit_rate),
                ("refills", bitmap.refills as f64),
            ],
        ));
        e.push(Row::new(
            format!("{label} speedup"),
            vec![("finish speedup", bitmap.finish_ms / pages.finish_ms)],
        ));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::super::TRACE_DEFAULT_SEED;
    use super::*;

    #[test]
    fn page_frontend_wins_where_routing_is_invariant() {
        // On interleave-invariant families the two frontends hit the
        // backend identically, so the page path's cheaper hot path
        // must show up as a modeled-finish win (or a tie). The
        // producer-consumer family is exempt: its faster producer can
        // legitimately outrun the consumer's remote frees and pay
        // extra refills.
        let e = page_frontend(true, TRACE_DEFAULT_SEED);
        for (label, _, local_only) in families(true, TRACE_DEFAULT_SEED) {
            let speedup = e
                .row(&format!("{label} speedup"))
                .unwrap_or_else(|| panic!("missing {label}"))
                .value("finish speedup")
                .unwrap();
            assert!(speedup.is_finite() && speedup > 0.0, "{label}: {speedup}");
            if local_only {
                assert!(
                    speedup >= 1.0,
                    "{label}: page path must not regress modeled finish, got {speedup}"
                );
            }
        }
    }

    #[test]
    fn allocator_bound_hot_path_is_much_cheaper() {
        // With no compute gap and a 100% hit rate, mean malloc latency
        // is pure frontend: the constant-cost queue pop must beat the
        // bitmap scan by a wide margin.
        let e = page_frontend(true, TRACE_DEFAULT_SEED);
        let pages = e.row("allocator-bound churn @ pages").unwrap();
        let bitmap = e.row("allocator-bound churn @ bitmap").unwrap();
        assert_eq!(pages.value("hit rate").unwrap(), 1.0);
        let ratio = bitmap.value("mean us").unwrap() / pages.value("mean us").unwrap();
        assert!(ratio >= 2.0, "expected >=2x hot-path win, got {ratio:.2}x");
    }

    #[test]
    fn hit_rates_agree_and_stay_high() {
        let e = page_frontend(true, TRACE_DEFAULT_SEED);
        for (label, _, local_only) in families(true, TRACE_DEFAULT_SEED) {
            let pages = e.row(&format!("{label} @ pages")).unwrap();
            let bitmap = e.row(&format!("{label} @ bitmap")).unwrap();
            let rate = pages.value("hit rate").unwrap();
            if local_only {
                assert_eq!(rate, bitmap.value("hit rate").unwrap(), "{label}");
            }
            assert!(rate > 0.5, "{label}: hit rate {rate}");
        }
    }

    #[test]
    fn fixed_seed_reproduces_exactly() {
        let a = page_frontend(true, 7);
        let b = page_frontend(true, 7);
        assert_eq!(a.to_json(), b.to_json());
    }
}
