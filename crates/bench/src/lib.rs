//! # pim-bench — reproduction harness for every PIM-malloc table and figure
//!
//! Each experiment of the paper's evaluation has a generator function
//! returning an [`Experiment`] (a labelled table of rows) that the
//! `repro` binary prints; `repro all` regenerates the whole evaluation.
//! Criterion benches covering the same code paths live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;

pub use report::{Experiment, Row};
