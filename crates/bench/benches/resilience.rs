//! Resilience bench + machine-readable CI report.
//!
//! * `chaos_serve_20k_128dpu` — wall-clock of the self-healing event
//!   loop pushing 20,000 requests through a 128-DPU fleet under
//!   `FaultPlan::chaos` (host cost of the fault paths themselves).
//! * Before the timed group runs, one untimed pass serves the mix at
//!   60% of calibrated capacity twice — fault-free and under chaos —
//!   and writes `BENCH_resilience.json`: goodput ratio, healthy-fleet
//!   accounting (dead-on-arrival, killed, final), self-healing
//!   counters (retries, re-dispatches, failed/straggled shards), and
//!   the full drop attribution. All fields are *modeled*, hence
//!   deterministic; CI gates on `schema_version`, on the drop
//!   categories summing to `dropped_total`, and on
//!   `goodput_ratio >= 0.90` (graceful degradation), plus a
//!   two-legged byte-identity diff across `PIM_EXEC_WORKERS`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pim_malloc::PimAllocator;
use pim_serving::{estimated_capacity_rps, serve, ArrivalProcess, ServeConfig};
use pim_sim::{DpuSim, FaultPlan};
use pim_workloads::requests::standard_mix;
use pim_workloads::AllocatorKind;

const N_DPUS: usize = 128;
const N_REQUESTS: usize = 20_000;
const LOAD: f64 = 0.6;
const FAULT_SEED: u64 = 0xC4A05;

fn build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, tasklets, heap)
}

fn bench_cfg(rps: f64, faults: FaultPlan) -> ServeConfig {
    ServeConfig {
        n_dpus: N_DPUS,
        n_requests: N_REQUESTS,
        arrival: ArrivalProcess::Poisson { rps },
        ctx: pim_sim::SimContext::sweep_default().with_faults(faults),
        ..ServeConfig::default()
    }
}

fn emit_ci_report(_c: &mut Criterion) {
    if !std::env::args().any(|a| a == "--bench") {
        println!("resilience: not invoked via `cargo bench`, skipping CI report");
        return;
    }
    let classes = standard_mix();
    let capacity_rps = estimated_capacity_rps(&classes, &build, N_DPUS);
    let rate = LOAD * capacity_rps;

    let clean = serve(&bench_cfg(rate, FaultPlan::none()), &classes, &build);
    let t0 = Instant::now();
    let chaos = serve(
        &bench_cfg(rate, FaultPlan::chaos(FAULT_SEED)),
        &classes,
        &build,
    );
    let chaos_reqs_per_sec = N_REQUESTS as f64 / t0.elapsed().as_secs_f64();

    let goodput = |r: &pim_serving::ServeReport| {
        let total = r.admitted + r.dropped;
        if total == 0 {
            0.0
        } else {
            r.admitted as f64 / total as f64
        }
    };
    let goodput_ratio = if goodput(&clean) > 0.0 {
        goodput(&chaos) / goodput(&clean)
    } else {
        0.0
    };
    let f = &chaos.faults;
    println!(
        "resilience/chaos_serve_20k_128dpu: {chaos_reqs_per_sec:.0} host reqs/sec, \
         goodput ratio {goodput_ratio:.4}, {} healthy of {N_DPUS}",
        f.healthy_final
    );

    let json = format!(
        "{{\n  \
         \"schema_version\": 1,\n  \
         \"experiment\": \"resilience\",\n  \
         \"bench\": \"resilience\",\n  \
         \"n_dpus\": {N_DPUS},\n  \
         \"n_requests\": {N_REQUESTS},\n  \
         \"load_frac\": {LOAD},\n  \
         \"fault_seed\": {FAULT_SEED},\n  \
         \"goodput_clean\": {:.6},\n  \
         \"goodput_chaos\": {:.6},\n  \
         \"goodput_ratio\": {goodput_ratio:.6},\n  \
         \"p99_ms_clean\": {:.6},\n  \
         \"p99_ms_chaos\": {:.6},\n  \
         \"doa_dpus\": {},\n  \
         \"killed_dpus\": {},\n  \
         \"healthy_final\": {},\n  \
         \"retries\": {},\n  \
         \"redispatched\": {},\n  \
         \"timeouts\": {},\n  \
         \"xfer_failed_shards\": {},\n  \
         \"xfer_straggled_shards\": {},\n  \
         \"drops_queue_full\": {},\n  \
         \"drops_no_healthy\": {},\n  \
         \"drops_retry_exhausted\": {},\n  \
         \"dropped_total\": {},\n  \
         \"chaos_reqs_per_sec\": {chaos_reqs_per_sec:.1}\n}}\n",
        goodput(&clean),
        goodput(&chaos),
        clean.p99_ms(),
        chaos.p99_ms(),
        f.doa_dpus,
        f.killed_dpus,
        f.healthy_final,
        f.retries,
        f.redispatched,
        f.timeouts,
        f.xfer_failed_shards,
        f.xfer_straggled_shards,
        f.drops_queue_full,
        f.drops_no_healthy,
        f.drops_retry_exhausted,
        chaos.dropped,
    );
    // Cargo runs benches with CWD = the package dir (crates/bench);
    // drop the report at the workspace root, where the CI artifact
    // upload and jq gates look for it (BENCH_JSON_PATH overrides, so
    // the two CI determinism legs can write separate files).
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_resilience.json")
            .display()
            .to_string()
    });
    std::fs::write(&path, json).expect("write bench json");
    println!("resilience: wrote {path}");
}

fn bench_chaos_serve(c: &mut Criterion) {
    let classes = standard_mix();
    let capacity_rps = estimated_capacity_rps(&classes, &build, N_DPUS);
    let cfg = bench_cfg(LOAD * capacity_rps, FaultPlan::chaos(FAULT_SEED));
    let mut g = c.benchmark_group("resilience");
    g.sample_size(2);
    g.bench_function("chaos_serve_20k_128dpu", |b| {
        b.iter(|| serve(&cfg, &classes, &build).admitted)
    });
    g.finish();
}

criterion_group!(resilience, emit_ci_report, bench_chaos_serve);
criterion_main!(resilience);
