//! Criterion benches of the simulator substrate primitives and the
//! ablation comparisons (buddy-cache sweep of Figure 16, fine-LRU of
//! §IV-B, and the descent-policy design choice from DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_malloc::{
    BuddyAllocator, BuddyGeometry, DescentPolicy, MetadataBackend, PimAllocator, StrawManAllocator,
    StrawManConfig,
};
use pim_sim::{BuddyCache, BuddyCacheConfig, DpuConfig, DpuSim, LookupResult, Mram};
use pim_workloads::micro::{run_micro, run_micro_with_cache, MicroConfig};
use pim_workloads::AllocatorKind;

/// The CAM model's lookup/fill loop at several capacities.
fn bench_buddy_cache_cam(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy_cache_cam");
    for entries in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let mut cache = BuddyCache::new(BuddyCacheConfig {
                    entries,
                    bytes_per_entry: 4,
                });
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(4);
                    let addr = i % 256;
                    if let LookupResult::Miss = cache.lookup(addr) {
                        cache.fill(addr, i);
                    }
                });
            },
        );
    }
    group.finish();
}

/// Sparse MRAM store throughput.
fn bench_mram_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("mram_store");
    group.bench_function("write_read_64B", |b| {
        let mut m = Mram::new(64 << 20);
        let data = [0xa5u8; 64];
        let mut buf = [0u8; 64];
        let mut addr = 0u32;
        b.iter(|| {
            addr = (addr + 4096) % (32 << 20);
            m.write(addr, &data);
            m.read(addr, &mut buf);
        });
    });
    group.finish();
}

/// Figure 16: HW/SW microbenchmark across buddy-cache capacities.
fn bench_fig16_cache_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_cache_sweep");
    group.sample_size(10);
    let cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: 32,
        alloc_size: 4096,
        ..MicroConfig::default()
    };
    for bytes in [16u32, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            b.iter(|| run_micro_with_cache(&cfg, BuddyCacheConfig::with_capacity_bytes(bytes)))
        });
    }
    group.finish();
}

/// §IV-B ablation: coarse window vs fine software LRU.
fn bench_ablation_metadata_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_metadata_buffers");
    group.sample_size(10);
    let cfg = MicroConfig {
        n_tasklets: 16,
        allocs_per_tasklet: 32,
        alloc_size: 4096,
        ..MicroConfig::default()
    };
    group.bench_function("coarse_window", |b| {
        b.iter(|| run_micro(AllocatorKind::Sw, &cfg))
    });
    group.bench_function("fine_sw_lru", |b| {
        b.iter(|| run_micro(AllocatorKind::SwFineLru, &cfg))
    });
    group.finish();
}

/// Descent-policy ablation: full-marks pruning vs three-state scans.
fn bench_ablation_descent_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_descent_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("full_marks", DescentPolicy::FullMarks),
        ("three_state", DescentPolicy::ThreeState),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
                let cfg = StrawManConfig {
                    heap_size: 1 << 20,
                    descent: policy,
                    ..StrawManConfig::default()
                };
                let mut alloc = StrawManAllocator::init(&mut dpu, cfg).expect("straw-man init");
                for _ in 0..128 {
                    let mut ctx = dpu.ctx(0);
                    alloc.pim_malloc(&mut ctx, 64).expect("fits");
                }
                dpu.max_clock()
            })
        });
    }
    group.finish();
}

/// Raw buddy tree traversal over a WRAM-resident store (pure
/// algorithm cost, no DMA).
fn bench_buddy_tree_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy_tree");
    for depth_heap in [64u32 << 10, 4 << 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KB", depth_heap >> 10)),
            &depth_heap,
            |b, &heap| {
                let geometry = BuddyGeometry::new(0, heap, 32);
                let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
                let mut tree = BuddyAllocator::new(geometry, MetadataBackend::wram(&geometry));
                b.iter(|| {
                    let mut ctx = dpu.ctx(0);
                    let a = tree.alloc(&mut ctx, 32).expect("fits");
                    tree.free(&mut ctx, a).expect("frees");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_buddy_cache_cam,
    bench_mram_store,
    bench_fig16_cache_sweep,
    bench_ablation_metadata_buffers,
    bench_ablation_descent_policy,
    bench_buddy_tree_traversal
);
criterion_main!(benches);
