//! Criterion benches of the allocator designs: one bench group per
//! paper table/figure family, measuring the wall cost of regenerating
//! each data point (the simulations are deterministic, so this doubles
//! as a performance regression guard for the library itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_sim::{DpuConfig, DpuSim};
use pim_workloads::micro::{run_micro, run_straw_man_grid_point, MicroConfig};
use pim_workloads::AllocatorKind;

/// Figure 15's grid: microbenchmark latency per allocator design.
fn bench_fig15_microbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_microbench");
    group.sample_size(10);
    for kind in AllocatorKind::HEADLINE {
        for &(threads, size) in &[(1usize, 32u32), (16, 32), (16, 4096)] {
            let cfg = MicroConfig {
                n_tasklets: threads,
                allocs_per_tasklet: 32,
                alloc_size: size,
                ..MicroConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{threads}thr_{size}B")),
                &cfg,
                |b, cfg| b.iter(|| run_micro(kind, cfg)),
            );
        }
    }
    group.finish();
}

/// Figure 7's axes: straw-man cost vs heap size.
fn bench_fig7_heap_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_straw_man_grid");
    group.sample_size(10);
    for &heap in &[32u32 << 10, 2 << 20, 32 << 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KB", heap >> 10)),
            &heap,
            |b, &heap| b.iter(|| run_straw_man_grid_point(heap, 32, 8)),
        );
    }
    group.finish();
}

/// Raw allocator hot paths on a pre-initialized DPU: the cost of one
/// alloc/free pair through each design (simulator-side).
fn bench_alloc_free_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_free_pair");
    for kind in [
        AllocatorKind::Sw,
        AllocatorKind::HwSw,
        AllocatorKind::StrawMan,
    ] {
        group.bench_function(kind.label(), |b| {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
            let mut alloc = kind.build(&mut dpu, 1, 4 << 20);
            b.iter(|| {
                let mut ctx = dpu.ctx(0);
                let addr = alloc.pim_malloc(&mut ctx, 256).expect("fits");
                alloc.pim_free(&mut ctx, addr).expect("frees");
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig15_microbench,
    bench_fig7_heap_sweep,
    bench_alloc_free_pair
);
criterion_main!(benches);
