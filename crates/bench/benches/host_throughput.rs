//! Host-side throughput benches for the two PR-level optimizations:
//!
//! * `churn_1m_ops` — 1,000,000 alloc/free operations through one
//!   PIM-malloc instance, exercising the O(1) frame-table free routing
//!   on the host (the path that used to walk a `BTreeMap` oracle).
//!   ns/iter ÷ 1e6 gives host nanoseconds per allocator operation.
//! * `fig15_64dpu/{serial,parallel}` — a Figure 15-style 64-DPU
//!   microbenchmark sweep executed with the serial `run_per_dpu` loop
//!   vs the scoped-thread `run_per_dpu_parallel` engine. The printed
//!   speedup line makes wall-clock regressions (or a missing
//!   parallelism win) visible straight from CI logs; expect roughly
//!   the machine's core count on multicore hosts.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pim_malloc::{PimAllocator, PimMalloc, PimMallocConfig};
use pim_sim::{DpuConfig, DpuSim, PimSystem};
use pim_workloads::driver::{drive, Request};
use pim_workloads::AllocatorKind;

const CHURN_OPS: usize = 1_000_000;
const N_DPUS: usize = 64;

/// Runs `CHURN_OPS` total operations: mallocs through a sliding window
/// of 64 live slots per tasklet (freeing the oldest once full), sizes
/// cycling through every size class plus a bypass.
fn churn() -> u64 {
    let n_tasklets = 16;
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let mut pm = PimMalloc::init(&mut dpu, PimMallocConfig::sw(n_tasklets)).expect("init");
    let sizes = [16u32, 48, 100, 256, 700, 1500, 2048, 4096];
    let mut windows: Vec<Vec<u32>> = vec![Vec::new(); n_tasklets];
    let mut ops = 0usize;
    let mut i = 0usize;
    while ops < CHURN_OPS {
        let tid = i % n_tasklets;
        if windows[tid].len() >= 64 {
            let victim = windows[tid].remove(0);
            let mut ctx = dpu.ctx(tid);
            pm.pim_free(&mut ctx, victim)
                .expect("window frees are live");
            ops += 1;
        }
        let size = sizes[i % sizes.len()];
        let mut ctx = dpu.ctx(tid);
        let addr = pm.pim_malloc(&mut ctx, size).expect("heap outlives window");
        windows[tid].push(addr);
        ops += 1;
        i += 1;
    }
    pm.alloc_stats().total_mallocs()
}

fn bench_churn(c: &mut Criterion) {
    // Report host ops/sec once, outside the timed samples, so the
    // number is greppable in CI logs.
    let t0 = Instant::now();
    let mallocs = churn();
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "host_throughput/churn_1m_ops: {:.0} host ops/sec ({mallocs} mallocs)",
        CHURN_OPS as f64 / secs
    );
    let mut g = c.benchmark_group("host_throughput");
    g.sample_size(2);
    g.bench_function("churn_1m_ops", |b| b.iter(churn));
    g.finish();
}

/// One DPU's share of a Figure 15-style cell: 16 tasklets × 32
/// allocations per size, alloc/free-paired so the run self-cleans.
fn fig15_cell(dpu: &mut DpuSim) {
    let n_tasklets = 16;
    let mut alloc = AllocatorKind::Sw.build(dpu, n_tasklets, 32 << 20);
    let streams: Vec<Vec<Request>> = (0..n_tasklets)
        .map(|_| {
            let mut s = Vec::new();
            for (slot, &size) in [32u32, 256, 4096].iter().enumerate() {
                for _ in 0..32 {
                    s.push(Request::Malloc { size, slot });
                    s.push(Request::Free { slot });
                }
            }
            s
        })
        .collect();
    drive(dpu, alloc.as_mut(), &streams);
}

fn bench_figure_run(c: &mut Criterion) {
    let dpu_config = || DpuConfig::default().with_tasklets(16);
    // One untimed comparison with explicit wall clocks for the logs.
    let t0 = Instant::now();
    let mut sys = PimSystem::new(N_DPUS, dpu_config());
    sys.run_per_dpu(|_, dpu| fig15_cell(dpu));
    let serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut sys = PimSystem::new(N_DPUS, dpu_config());
    sys.run_per_dpu_parallel(|_, dpu| fig15_cell(dpu));
    let parallel = t0.elapsed().as_secs_f64();
    println!(
        "host_throughput/fig15_64dpu: serial {serial:.3}s, parallel {parallel:.3}s, \
         speedup {:.2}x over {} worker(s)",
        serial / parallel,
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );

    let mut g = c.benchmark_group("fig15_64dpu");
    g.sample_size(2);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut sys = PimSystem::new(N_DPUS, dpu_config());
            sys.run_per_dpu(|_, dpu| fig15_cell(dpu));
            sys.kernel_finish()
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            let mut sys = PimSystem::new(N_DPUS, dpu_config());
            sys.run_per_dpu_parallel(|_, dpu| fig15_cell(dpu));
            sys.kernel_finish()
        })
    });
    g.finish();
}

criterion_group!(host_throughput, bench_churn, bench_figure_run);
criterion_main!(host_throughput);
