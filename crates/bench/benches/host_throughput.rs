//! Host-side throughput benches for the PR-level optimizations, plus a
//! machine-readable CI perf report:
//!
//! * `churn_1m_ops` — 1,000,000 alloc/free operations through one
//!   PIM-malloc instance on the page/queue fast path (`.page_local()`),
//!   exercising the O(1) frame-table free routing on the host (the
//!   path that used to walk a `BTreeMap` oracle). ns/iter ÷ 1e6 gives
//!   host nanoseconds per allocator operation. The report also records
//!   `page_hit_rate`, the deterministic fraction of class-eligible
//!   requests served without a backend refill.
//! * `churn_xtask_1m_ops` — the same churn with every free issued by
//!   the *next* tasklet, so every free is remote and flows through the
//!   three-tier transfer cache.
//! * `churn_bitmap_1m_ops` — the same local churn on the legacy
//!   bitmap-scan thread caches, so every report shows the page-vs-
//!   bitmap host-throughput gap on identical addresses.
//! * Tier speedup — the producer-consumer trace family replayed on
//!   the default three-tier allocator vs the two-tier config, both
//!   fully modeled (deterministic), reporting the finish-time speedup
//!   the transfer cache buys over the global-lock remote-free path.
//! * `fig15_64dpu/{serial,parallel}` — a Figure 15-style 64-DPU
//!   microbenchmark sweep executed with the serial `run_per_dpu` loop
//!   vs the scoped-thread `run_per_dpu_parallel` engine.
//! * Batched-vs-unbatched transfers — the 256-DPU host-executed DSE
//!   run under per-DPU calls vs per-rank shards (`HostBatching`),
//!   reporting the modeled transfer-time speedup and call counts.
//! * 512-DPU placement sweep — the same per-DPU workload re-simulated
//!   over several epochs on a modeled two-socket host under every
//!   executor placement policy (oblivious vs sticky vs sticky+steal),
//!   reporting the modeled end-to-end seconds (kernel + cross-node
//!   placement penalty) and the sticky-placement speedups. The modeled
//!   numbers are deterministic — fixed topology, fixed epochs — so CI
//!   can gate on them.
//!
//! Before the timed groups run, one untimed pass measures everything
//! and writes `BENCH_host_throughput.json` (ops/sec for both churn
//! variants plus the serial-vs-parallel, batched-vs-unbatched,
//! sticky-placement, and three-tier-vs-two-tier speedups). CI uploads
//! the file as an artifact and gates on all speedups staying ≥ 1.0 and
//! the churn throughput staying above its floor, so a lost
//! parallelism, batching, placement, or tiering win fails the build
//! instead of scrolling past in a log. The modeled fields are
//! deterministic and must be byte-identical across `PIM_EXEC_WORKERS`
//! settings; CI runs the report on two worker legs and diffs the JSON
//! with the wall-clock fields stripped.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pim_dse::{run_strategy, DseConfig, DseResult, Strategy};
use pim_malloc::{AllocGeometry, FrontendKind, PimAllocator, PimMalloc, TierPolicy};
use pim_sim::{
    Cycles, DpuConfig, DpuSim, ExecPolicy, Executor, HostBatching, HostTopology, PimSystem,
    TransferModel,
};
use pim_trace::{replay, synthesize, SizeLaw, SynthConfig, TemporalShape};
use pim_workloads::driver::{drive, Request};
use pim_workloads::AllocatorKind;

const CHURN_OPS: usize = 1_000_000;
const N_DPUS: usize = 64;
const DSE_DPUS: usize = 256;
const PLACEMENT_DPUS: usize = 512;
const PLACEMENT_EPOCHS: usize = 4;

/// Runs `CHURN_OPS` total operations: mallocs through a sliding window
/// of 64 live slots per tasklet (freeing the oldest once full), sizes
/// cycling through every size class plus a bypass. With `cross_tasklet`
/// every free is issued by the next tasklet, so it takes the allocator's
/// remote-free path (the three-tier transfer cache by default).
/// Returns `(total mallocs, class-eligible hit rate)` — both
/// deterministic, since the op stream is fixed.
fn churn_with(cross_tasklet: bool, frontend: FrontendKind) -> (u64, f64) {
    let n_tasklets = 16;
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(n_tasklets));
    let geom = AllocGeometry::sw(n_tasklets).with_frontend(frontend);
    let mut pm = PimMalloc::init(&mut dpu, geom.build()).expect("init");
    let sizes = [16u32, 48, 100, 256, 700, 1500, 2048, 4096];
    let mut windows: Vec<Vec<u32>> = vec![Vec::new(); n_tasklets];
    let mut ops = 0usize;
    let mut i = 0usize;
    while ops < CHURN_OPS {
        let tid = i % n_tasklets;
        if windows[tid].len() >= 64 {
            let victim = windows[tid].remove(0);
            let freer = if cross_tasklet {
                (tid + 1) % n_tasklets
            } else {
                tid
            };
            let mut ctx = dpu.ctx(freer);
            pm.pim_free(&mut ctx, victim)
                .expect("window frees are live");
            ops += 1;
        }
        let size = sizes[i % sizes.len()];
        let mut ctx = dpu.ctx(tid);
        let addr = pm.pim_malloc(&mut ctx, size).expect("heap outlives window");
        windows[tid].push(addr);
        ops += 1;
        i += 1;
    }
    if cross_tasklet {
        assert!(
            pm.alloc_stats().frees_remote_transfer > 0,
            "cross-tasklet churn must exercise the transfer cache"
        );
    }
    (
        pm.alloc_stats().total_mallocs(),
        pm.alloc_stats().class_hit_rate(),
    )
}

/// The headline churn runs on the page/queue fast path — the frontend
/// the hot-path speedup landed on. The legacy bitmap frontend keeps
/// its own row (`churn_bitmap_ops_per_sec`) so the page-vs-bitmap gap
/// stays visible in every report.
fn churn() -> (u64, f64) {
    churn_with(false, FrontendKind::PageLocal)
}

fn churn_xtask() -> (u64, f64) {
    churn_with(true, FrontendKind::PageLocal)
}

fn churn_bitmap() -> (u64, f64) {
    churn_with(false, FrontendKind::BitmapClasses)
}

/// Replays the producer-consumer trace family on one DPU under the
/// given free-path hierarchy and returns the modeled finish time plus
/// the remote-free count. Fully deterministic: fixed trace seed, fixed
/// geometry, virtual-time replay.
fn tier_pc_finish(policy: TierPolicy) -> (Cycles, u64) {
    let trace = synthesize(&SynthConfig {
        n_tasklets: 16,
        mallocs_per_tasklet: 256,
        live_window: 32,
        size_law: SizeLaw::Fixed(512),
        shape: TemporalShape::ProducerConsumer { compute: 500 },
        heap_size: 32 << 20,
        seed: 0xA110C,
    });
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
    let mut geom = AllocGeometry::sw(trace.n_tasklets).with_heap_size(trace.heap_size);
    if policy == TierPolicy::TwoTier {
        geom = geom.two_tier();
    }
    let mut alloc: Box<dyn PimAllocator> =
        Box::new(PimMalloc::init(&mut dpu, geom.build()).expect("init"));
    let result = replay(&mut dpu, alloc.as_mut(), &trace);
    let pm = alloc
        .as_any()
        .downcast_ref::<PimMalloc>()
        .expect("PimMalloc");
    let remote = pm.alloc_stats().frees_remote_transfer + pm.alloc_stats().frees_remote_global;
    (result.finish, remote)
}

/// One DPU's share of a Figure 15-style cell: 16 tasklets × 32
/// allocations per size, alloc/free-paired so the run self-cleans.
fn fig15_cell(dpu: &mut DpuSim) {
    let n_tasklets = 16;
    let mut alloc = AllocatorKind::Sw.build(dpu, n_tasklets, 32 << 20);
    let streams: Vec<Vec<Request>> = (0..n_tasklets)
        .map(|_| {
            let mut s = Vec::new();
            for (slot, &size) in [32u32, 256, 4096].iter().enumerate() {
                for _ in 0..32 {
                    s.push(Request::Malloc { size, slot });
                    s.push(Request::Free { slot });
                }
            }
            s
        })
        .collect();
    drive(dpu, alloc.as_mut(), &streams);
}

/// One DPU's cell of the placement sweep: a trimmed Figure 15-style
/// allocation burst (8 tasklets × 8 alloc/free pairs per size), small
/// enough that 512 DPUs × epochs × policies stays in bench budget.
fn placement_cell(dpu: &mut DpuSim) -> Cycles {
    let n_tasklets = 8;
    let mut alloc = AllocatorKind::Sw.build(dpu, n_tasklets, 32 << 20);
    let streams: Vec<Vec<Request>> = (0..n_tasklets)
        .map(|_| {
            let mut s = Vec::new();
            for (slot, &size) in [32u32, 256, 4096].iter().enumerate() {
                for _ in 0..8 {
                    s.push(Request::Malloc { size, slot });
                    s.push(Request::Free { slot });
                }
            }
            s
        })
        .collect();
    drive(dpu, alloc.as_mut(), &streams);
    dpu.max_clock()
}

/// One arm of the 512-DPU placement sweep.
struct PlacementArm {
    /// Modeled end-to-end seconds over all epochs: per-epoch kernel
    /// finish (slowest DPU) plus the cross-node placement penalty.
    modeled_secs: f64,
    /// Placement-penalty share of `modeled_secs`.
    penalty_secs: f64,
    /// Cross-node migrations over all epochs (deterministic).
    cross_node_moves: u64,
    /// Host wall clock of the whole arm (informational; machine- and
    /// schedule-dependent).
    wall_secs: f64,
    /// Per-epoch kernel finish, to assert engine invariance.
    kernel: Cycles,
}

/// Re-simulates the 512-DPU fleet for `PLACEMENT_EPOCHS` epochs under
/// `policy` on a fresh executor modeling a two-socket host (fixed
/// topology, so the modeled numbers are machine-independent).
fn placement_sweep(policy: ExecPolicy) -> PlacementArm {
    let exec = Executor::new(HostTopology::uniform(2, 8));
    let model = TransferModel::default();
    let mhz = DpuConfig::default().cost.clock_mhz;
    let mut penalty = 0.0;
    let mut moves = 0u64;
    let mut kernel_secs = 0.0;
    let mut kernel = Cycles::ZERO;
    let t0 = Instant::now();
    for _ in 0..PLACEMENT_EPOCHS {
        let (finishes, report) = exec.run_report(PLACEMENT_DPUS, policy, |_| {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(8));
            placement_cell(&mut dpu)
        });
        kernel = finishes.into_iter().max().expect("512 DPUs ran");
        kernel_secs += kernel.as_secs(mhz);
        penalty += report.placement_penalty_secs(&model);
        moves += report.cross_node_moves;
    }
    PlacementArm {
        modeled_secs: kernel_secs + penalty,
        penalty_secs: penalty,
        cross_node_moves: moves,
        wall_secs: t0.elapsed().as_secs_f64(),
        kernel,
    }
}

/// The 256-DPU host-executed DSE run under one transfer schedule.
fn dse_host_executed(batching: HostBatching) -> DseResult {
    let base = DseConfig::default().with_dpus(DSE_DPUS);
    run_strategy(
        Strategy::HostMetaHostExec,
        &DseConfig {
            ctx: base.ctx.with_batching(batching),
            ..base
        },
    )
}

/// One untimed measurement pass: prints the CI log lines and writes
/// `BENCH_host_throughput.json` (or `$BENCH_JSON_PATH`).
///
/// `cargo test` also executes bench targets (with no `--bench` flag);
/// the measurement pass is minutes of work and a file side effect, so
/// it only runs under `cargo bench`, like upstream criterion's test
/// mode skips sampling.
fn emit_ci_report(_c: &mut Criterion) {
    if !std::env::args().any(|a| a == "--bench") {
        println!("host_throughput: not invoked via `cargo bench`, skipping CI report");
        return;
    }
    // Churn ops/sec. Best-of-5 (first run pays cold caches and page
    // faults, and shared CI hosts add multi-x scheduling noise) so the
    // CI throughput floor sees the steady-state rate.
    // The hit rate is deterministic — identical on every repeat.
    let churn_best = |f: fn() -> (u64, f64)| -> (f64, u64, f64) {
        let mut best = f64::INFINITY;
        let mut mallocs = 0;
        let mut hit_rate = 0.0;
        for _ in 0..5 {
            let t0 = Instant::now();
            (mallocs, hit_rate) = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (CHURN_OPS as f64 / best, mallocs, hit_rate)
    };
    let (churn_ops_per_sec, mallocs, page_hit_rate) = churn_best(churn);
    println!(
        "host_throughput/churn_1m_ops: {churn_ops_per_sec:.0} host ops/sec \
         ({mallocs} mallocs, page frontend, hit rate {page_hit_rate:.4})"
    );

    // Cross-tasklet churn: every free is remote, flowing through the
    // transfer cache instead of the owner's local fast path.
    let (churn_xtask_ops_per_sec, xtask_mallocs, _) = churn_best(churn_xtask);
    println!(
        "host_throughput/churn_xtask_1m_ops: {churn_xtask_ops_per_sec:.0} host ops/sec \
         ({xtask_mallocs} mallocs, all frees remote)"
    );

    // The legacy bitmap-scan frontend on the same op stream, so the
    // report always shows what the page layer buys. The differential
    // suite pins the two frontends to identical addresses; here only
    // the host throughput may differ.
    let (churn_bitmap_ops_per_sec, bitmap_mallocs, bitmap_hit_rate) = churn_best(churn_bitmap);
    assert_eq!(
        (mallocs, page_hit_rate.to_bits()),
        (bitmap_mallocs, bitmap_hit_rate.to_bits()),
        "page and bitmap frontends must service the churn identically"
    );
    println!(
        "host_throughput/churn_bitmap_1m_ops: {churn_bitmap_ops_per_sec:.0} host ops/sec \
         (legacy frontend; page speedup {:.2}x)",
        churn_ops_per_sec / churn_bitmap_ops_per_sec
    );

    // Producer-consumer tier comparison (modeled, deterministic): the
    // default three-tier allocator vs the two-tier config on the same
    // remote-free-heavy trace.
    let (three_finish, three_remote) = tier_pc_finish(TierPolicy::ThreeTier);
    let (two_finish, two_remote) = tier_pc_finish(TierPolicy::TwoTier);
    assert_eq!(
        three_remote, two_remote,
        "both tiers must see the same remote frees"
    );
    let tier_pc_speedup = two_finish.0 as f64 / three_finish.0 as f64;
    println!(
        "host_throughput/tier_pc: three-tier finish {} cycles, two-tier {} cycles, \
         speedup {tier_pc_speedup:.3}x over {three_remote} remote frees",
        three_finish.0, two_finish.0
    );

    // Serial vs parallel wall clock for the 64-DPU figure run.
    // Best-of-3 so scheduler noise doesn't fail the CI speedup gate on
    // machines where the win is small (with one worker the parallel
    // engine runs the same inline loop and the true ratio is 1.0).
    let dpu_config = || DpuConfig::default().with_tasklets(16);
    let best_of = |run: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                run();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let serial_secs = best_of(&|| {
        let mut sys = PimSystem::new(N_DPUS, dpu_config());
        sys.run_per_dpu(|_, dpu| fig15_cell(dpu));
    });
    let parallel_secs = best_of(&|| {
        let mut sys = PimSystem::new(N_DPUS, dpu_config());
        sys.run_per_dpu_parallel(|_, dpu| fig15_cell(dpu));
    });
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // With one worker `run_per_dpu_parallel` executes the same inline
    // loop as the serial engine: there is no parallelism win to lose,
    // and the measured ratio is pure timer noise — report the true
    // value, 1.0, so the gate doesn't flake on starved runners.
    let parallel_speedup = if workers > 1 {
        serial_secs / parallel_secs
    } else {
        1.0
    };
    println!(
        "host_throughput/fig15_64dpu: serial {serial_secs:.3}s, parallel {parallel_secs:.3}s, \
         speedup {parallel_speedup:.2}x over {workers} worker(s)"
    );

    // Batched vs unbatched transfer scheduling (modeled, deterministic).
    let per_dpu = dse_host_executed(HostBatching::PerDpu);
    let sharded = dse_host_executed(HostBatching::Sharded);
    let batched_speedup = per_dpu.transfer_secs / sharded.transfer_secs;
    println!(
        "host_throughput/dse256_host_executed: per-DPU {:.4}s transfer ({} calls), \
         sharded {:.4}s ({} calls), batched speedup {batched_speedup:.2}x",
        per_dpu.transfer_secs,
        per_dpu.transfer_calls,
        sharded.transfer_secs,
        sharded.transfer_calls
    );

    // 512-DPU placement sweep: oblivious vs sticky vs sticky+steal on
    // a modeled two-socket host. The kernel is engine-invariant; the
    // policies differ only in the modeled cross-node placement penalty
    // (and wall clock), so the speedups are deterministic.
    let oblivious = placement_sweep(ExecPolicy::Oblivious);
    let sticky = placement_sweep(ExecPolicy::Sticky);
    let steal = placement_sweep(ExecPolicy::StickySteal);
    assert_eq!(
        (oblivious.kernel, sticky.kernel),
        (sticky.kernel, steal.kernel),
        "placement policy must never change simulated kernel results"
    );
    let sticky_speedup = oblivious.modeled_secs / sticky.modeled_secs;
    let sticky_steal_speedup = oblivious.modeled_secs / steal.modeled_secs;
    println!(
        "host_throughput/placement_512dpu: modeled oblivious {:.4}s ({} moves), \
         sticky {:.4}s ({} moves), sticky+steal {:.4}s; speedups {sticky_speedup:.3}x / \
         {sticky_steal_speedup:.3}x; wall {:.2}s / {:.2}s / {:.2}s",
        oblivious.modeled_secs,
        oblivious.cross_node_moves,
        sticky.modeled_secs,
        sticky.cross_node_moves,
        steal.modeled_secs,
        oblivious.wall_secs,
        sticky.wall_secs,
        steal.wall_secs,
    );

    // Machine-readable report for the CI artifact + gate. Hand-rolled
    // so the bench stays free of serializer details; every value is a
    // finite number.
    let json = format!(
        "{{\n  \
         \"schema_version\": 1,\n  \
         \"experiment\": \"host_throughput\",\n  \
         \"bench\": \"host_throughput\",\n  \
         \"churn_ops_per_sec\": {churn_ops_per_sec:.1},\n  \
         \"churn_mallocs\": {mallocs},\n  \
         \"page_hit_rate\": {page_hit_rate:.6},\n  \
         \"churn_xtask_ops_per_sec\": {churn_xtask_ops_per_sec:.1},\n  \
         \"churn_xtask_mallocs\": {xtask_mallocs},\n  \
         \"churn_bitmap_ops_per_sec\": {churn_bitmap_ops_per_sec:.1},\n  \
         \"tier_pc_three_tier_finish_cycles\": {},\n  \
         \"tier_pc_two_tier_finish_cycles\": {},\n  \
         \"tier_pc_remote_frees\": {three_remote},\n  \
         \"tier_pc_speedup\": {tier_pc_speedup:.4},\n  \
         \"fig15_serial_secs\": {serial_secs:.6},\n  \
         \"fig15_parallel_secs\": {parallel_secs:.6},\n  \
         \"parallel_speedup\": {parallel_speedup:.4},\n  \
         \"dse256_per_dpu_transfer_secs\": {:.6},\n  \
         \"dse256_sharded_transfer_secs\": {:.6},\n  \
         \"dse256_per_dpu_calls\": {},\n  \
         \"dse256_sharded_calls\": {},\n  \
         \"batched_speedup\": {batched_speedup:.4},\n  \
         \"placement_dpus\": {PLACEMENT_DPUS},\n  \
         \"placement_epochs\": {PLACEMENT_EPOCHS},\n  \
         \"placement_oblivious_secs\": {:.6},\n  \
         \"placement_sticky_secs\": {:.6},\n  \
         \"placement_sticky_steal_secs\": {:.6},\n  \
         \"placement_oblivious_penalty_secs\": {:.6},\n  \
         \"placement_sticky_penalty_secs\": {:.6},\n  \
         \"placement_oblivious_moves\": {},\n  \
         \"placement_sticky_moves\": {},\n  \
         \"placement_sticky_speedup\": {sticky_speedup:.4},\n  \
         \"placement_sticky_steal_speedup\": {sticky_steal_speedup:.4}\n}}\n",
        three_finish.0,
        two_finish.0,
        per_dpu.transfer_secs,
        sharded.transfer_secs,
        per_dpu.transfer_calls,
        sharded.transfer_calls,
        oblivious.modeled_secs,
        sticky.modeled_secs,
        steal.modeled_secs,
        oblivious.penalty_secs,
        sticky.penalty_secs,
        oblivious.cross_node_moves,
        sticky.cross_node_moves,
    );
    // Cargo runs benches with CWD = the package dir (crates/bench);
    // drop the report at the workspace root, where the CI artifact
    // upload and jq gate look for it.
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_host_throughput.json")
            .display()
            .to_string()
    });
    std::fs::write(&path, json).expect("write bench json");
    println!("host_throughput: wrote {path}");
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_throughput");
    g.sample_size(2);
    g.bench_function("churn_1m_ops", |b| b.iter(churn));
    g.bench_function("churn_xtask_1m_ops", |b| b.iter(churn_xtask));
    g.bench_function("churn_bitmap_1m_ops", |b| b.iter(churn_bitmap));
    g.finish();
}

fn bench_figure_run(c: &mut Criterion) {
    let dpu_config = || DpuConfig::default().with_tasklets(16);
    let mut g = c.benchmark_group("fig15_64dpu");
    g.sample_size(2);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut sys = PimSystem::new(N_DPUS, dpu_config());
            sys.run_per_dpu(|_, dpu| fig15_cell(dpu));
            sys.kernel_finish()
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            let mut sys = PimSystem::new(N_DPUS, dpu_config());
            sys.run_per_dpu_parallel(|_, dpu| fig15_cell(dpu));
            sys.kernel_finish()
        })
    });
    g.finish();
}

fn bench_batching(c: &mut Criterion) {
    // The modeled result is deterministic; the bench tracks the host
    // cost of *computing* the 256-DPU host-executed sweep itself.
    let mut g = c.benchmark_group("dse256_host_executed");
    g.sample_size(2);
    g.bench_function("per_dpu", |b| {
        b.iter(|| dse_host_executed(HostBatching::PerDpu).total_secs)
    });
    g.bench_function("sharded", |b| {
        b.iter(|| dse_host_executed(HostBatching::Sharded).total_secs)
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    // The modeled result is deterministic; the bench tracks the wall
    // clock of re-simulating the 512-DPU fleet under each placement
    // policy (stealing should win on imbalanced machines).
    let mut g = c.benchmark_group("placement_512dpu");
    g.sample_size(2);
    for policy in [
        ExecPolicy::Oblivious,
        ExecPolicy::Sticky,
        ExecPolicy::StickySteal,
    ] {
        g.bench_function(policy.label(), |b| {
            b.iter(|| placement_sweep(policy).modeled_secs)
        });
    }
    g.finish();
}

criterion_group!(
    host_throughput,
    emit_ci_report,
    bench_churn,
    bench_figure_run,
    bench_batching,
    bench_placement
);
criterion_main!(host_throughput);
