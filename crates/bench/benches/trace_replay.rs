//! Criterion benches for the trace subsystem's host-side cost:
//!
//! * `synthesize` — generating a 16-tasklet zipf/bursty trace.
//! * `round_trip` — JSON encode + parse of the same trace.
//! * `replay_1dpu` — replaying it against PIM-malloc-SW on one DPU.
//! * `replay_fleet_64dpu/{serial,parallel}` — the same trace fanned
//!   over 64 share-nothing DPUs, serial loop vs the topology-aware
//!   executor (default sticky+steal policy).

use criterion::{criterion_group, criterion_main, Criterion};
use pim_malloc::PimAllocator;
use pim_sim::{DpuConfig, DpuSim};
use pim_trace::{
    replay, replay_fleet, synthesize, AllocTrace, FleetConfig, SizeLaw, SynthConfig, TemporalShape,
};
use pim_workloads::AllocatorKind;

fn bench_trace() -> (SynthConfig, AllocTrace) {
    let cfg = SynthConfig {
        n_tasklets: 16,
        mallocs_per_tasklet: 256,
        size_law: SizeLaw::Zipf {
            min: 16,
            max: 4096,
            exponent: 1.1,
        },
        shape: TemporalShape::Bursty {
            burst: 16,
            gap: 20_000,
        },
        ..SynthConfig::default()
    };
    let trace = synthesize(&cfg);
    (cfg, trace)
}

fn build(dpu: &mut DpuSim, trace: &AllocTrace) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, trace.n_tasklets, trace.heap_size)
}

fn bench_synthesize(c: &mut Criterion) {
    let (cfg, _) = bench_trace();
    let mut g = c.benchmark_group("trace");
    g.bench_function("synthesize", |b| b.iter(|| synthesize(&cfg).op_count()));
    g.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let (_, trace) = bench_trace();
    let mut g = c.benchmark_group("trace");
    g.bench_function("round_trip", |b| {
        b.iter(|| {
            let json = trace.to_json();
            AllocTrace::from_json(&json).expect("round trip").op_count()
        })
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let (_, trace) = bench_trace();
    let mut g = c.benchmark_group("trace");
    g.bench_function("replay_1dpu", |b| {
        b.iter(|| {
            let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
            let mut alloc = build(&mut dpu, &trace);
            replay(&mut dpu, alloc.as_mut(), &trace).finish
        })
    });
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let (_, trace) = bench_trace();
    let mut g = c.benchmark_group("replay_fleet_64dpu");
    g.sample_size(2);
    for (label, exec) in [
        ("serial", pim_sim::ExecPolicy::Serial),
        ("parallel", pim_sim::ExecPolicy::StickySteal),
    ] {
        let cfg = FleetConfig {
            n_dpus: 64,
            ctx: pim_sim::SimContext::default().with_exec(exec),
        };
        g.bench_function(label, |b| {
            b.iter(|| replay_fleet(&trace, &cfg, |dpu| build(dpu, &trace)).kernel_finish)
        });
    }
    g.finish();
}

criterion_group!(
    trace_replay,
    bench_synthesize,
    bench_round_trip,
    bench_replay,
    bench_fleet
);
criterion_main!(trace_replay);
