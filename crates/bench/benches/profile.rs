//! Profile-guided geometry bench + machine-readable CI report.
//!
//! * `tune_five_families` — wall-clock of the whole record →
//!   synthesize → replay loop over the five synthetic scenario
//!   families (host cost of profiling + the synthesis DP + replays).
//! * Before the timed group runs, one untimed pass writes
//!   `BENCH_profile.json`: per-family measured fragmentation ratio
//!   (synthesized over paper, A/U at peak), churn-throughput ratio,
//!   WRAM footprint ratio, the synthesizer's modeled prediction, and
//!   the class count. Every field except `synth_host_secs` is
//!   *simulated/modeled*, hence deterministic; CI gates on
//!   `schema_version`, on `frag_ratio <= 1.0` and
//!   `churn_ratio >= 0.95` for every family, on
//!   `families_improved >= 3` (modeled), plus a two-legged
//!   byte-identity diff across `PIM_EXEC_WORKERS` (with the
//!   wall-clock field stripped).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pim_bench::figures::{tune_families, TRACE_DEFAULT_SEED};

fn emit_ci_report(_c: &mut Criterion) {
    if !std::env::args().any(|a| a == "--bench") {
        println!("profile: not invoked via `cargo bench`, skipping CI report");
        return;
    }
    let t0 = Instant::now();
    let fams = tune_families(true, TRACE_DEFAULT_SEED);
    let synth_host_secs = t0.elapsed().as_secs_f64();

    let families_improved = fams
        .iter()
        .filter(|f| f.synthesis.report.predicted_frag_ratio < 1.0)
        .count();
    let frag_ratio_max = fams.iter().map(|f| f.frag_ratio()).fold(0.0, f64::max);
    let churn_ratio_min = fams
        .iter()
        .map(|f| f.churn_ratio())
        .fold(f64::INFINITY, f64::min);
    println!(
        "profile/tune: {} of {} families improve modeled frag; \
         worst measured frag ratio {frag_ratio_max:.4}, worst churn ratio {churn_ratio_min:.4}",
        families_improved,
        fams.len()
    );

    let family_rows: Vec<String> = fams
        .iter()
        .map(|f| {
            format!(
                "    {{\n      \
                 \"name\": \"{}\",\n      \
                 \"classes\": {},\n      \
                 \"frag_ratio\": {:.6},\n      \
                 \"churn_ratio\": {:.6},\n      \
                 \"wram_ratio\": {:.6},\n      \
                 \"modeled_frag_ratio\": {:.6},\n      \
                 \"bypass_requests\": {}\n    }}",
                f.name,
                f.synthesis.report.class_count,
                f.frag_ratio(),
                f.churn_ratio(),
                f.wram_ratio(),
                f.synthesis.report.predicted_frag_ratio,
                f.synthesis.report.bypass_requests,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \
         \"schema_version\": 1,\n  \
         \"experiment\": \"profile\",\n  \
         \"bench\": \"profile\",\n  \
         \"seed\": {TRACE_DEFAULT_SEED},\n  \
         \"families\": [\n{}\n  ],\n  \
         \"families_improved\": {families_improved},\n  \
         \"frag_ratio_max\": {frag_ratio_max:.6},\n  \
         \"churn_ratio_min\": {churn_ratio_min:.6},\n  \
         \"synth_host_secs\": {synth_host_secs:.4}\n}}\n",
        family_rows.join(",\n"),
    );
    // Cargo runs benches with CWD = the package dir (crates/bench);
    // drop the report at the workspace root, where the CI artifact
    // upload and jq gates look for it (BENCH_JSON_PATH overrides, so
    // the two CI determinism legs can write separate files).
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_profile.json")
            .display()
            .to_string()
    });
    std::fs::write(&path, json).expect("write bench json");
    println!("profile: wrote {path}");
}

fn bench_tune_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    g.sample_size(2);
    g.bench_function("tune_five_families", |b| {
        b.iter(|| tune_families(true, TRACE_DEFAULT_SEED).len())
    });
    g.finish();
}

criterion_group!(profile, emit_ci_report, bench_tune_loop);
criterion_main!(profile);
