//! Criterion benches of the evaluation workloads: graph update
//! (Figures 3/17), LLM serving (Figures 4/18), and the design-space
//! sweep (Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_dse::{run_strategy, DseConfig, Strategy};
use pim_workloads::graph::{run_graph_update, GraphRepr, GraphUpdateConfig};
use pim_workloads::llm::{fixed_trace, run_serving, KvScheme, ServingConfig};
use pim_workloads::AllocatorKind;

fn small_graph(repr: GraphRepr, allocator: AllocatorKind) -> GraphUpdateConfig {
    GraphUpdateConfig {
        repr,
        allocator,
        n_dpus: 2,
        n_tasklets: 8,
        n_nodes: 1024,
        base_edges: 3200,
        new_edges: 1600,
        ..GraphUpdateConfig::default()
    }
}

/// Figure 17's bars: one bench per (representation, allocator) pair.
fn bench_fig17_graph_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_graph_update");
    group.sample_size(10);
    group.bench_function("static_csr", |b| {
        let cfg = small_graph(GraphRepr::StaticCsr, AllocatorKind::Sw);
        b.iter(|| run_graph_update(&cfg))
    });
    for kind in AllocatorKind::HEADLINE {
        for repr in [GraphRepr::LinkedList, GraphRepr::VarArray] {
            let cfg = small_graph(repr, kind);
            group.bench_with_input(
                BenchmarkId::new(
                    match repr {
                        GraphRepr::LinkedList => "linked_list",
                        _ => "var_array",
                    },
                    kind.label(),
                ),
                &cfg,
                |b, cfg| b.iter(|| run_graph_update(cfg)),
            );
        }
    }
    group.finish();
}

/// Figure 18's bars: serving simulation per scheme.
fn bench_fig18_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_serving");
    group.sample_size(10);
    let cfg = ServingConfig::default();
    let trace = fixed_trace(50, 10.0);
    for scheme in [
        KvScheme::Static,
        KvScheme::Dynamic(AllocatorKind::Sw),
        KvScheme::Dynamic(AllocatorKind::HwSw),
    ] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| run_serving(scheme, &cfg, &trace))
        });
    }
    group.finish();
}

/// Figure 6's sweep: one strategy evaluation per design point.
fn bench_fig6_design_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_design_space");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        group.bench_function(strategy.to_string(), |b| {
            let cfg = DseConfig::default().with_dpus(512);
            b.iter(|| run_strategy(strategy, &cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig17_graph_update,
    bench_fig18_serving,
    bench_fig6_design_space
);
criterion_main!(benches);
