//! Serving-frontend bench + machine-readable CI report.
//!
//! * `serve_50k_256dpu` — wall-clock of the open-loop event loop
//!   pushing 50,000 requests through a 256-DPU fleet at 60% of its
//!   calibrated capacity (host cost of the frontend itself).
//! * Before the timed group runs, one untimed pass serves the
//!   three-family mix and sweeps a small load ladder, writing
//!   `BENCH_serving.json`: the SLO percentiles (p50/p95/p99/p99.9 in
//!   simulated ms), drop fraction, calibrated capacity, knee and
//!   saturation throughput — all *modeled*, hence deterministic. CI
//!   runs the bench twice (default workers and `PIM_EXEC_WORKERS=1`)
//!   and gates on the modeled fields being byte-identical across the
//!   two legs, plus schema and SLO sanity floors. The only
//!   non-deterministic field is `frontend_reqs_per_sec` (host wall
//!   clock), which the determinism gate excludes.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use pim_malloc::PimAllocator;
use pim_serving::{estimated_capacity_rps, saturation_sweep, serve, ArrivalProcess, ServeConfig};
use pim_sim::DpuSim;
use pim_workloads::requests::standard_mix;
use pim_workloads::AllocatorKind;

const N_DPUS: usize = 256;
const N_REQUESTS: usize = 50_000;
const LOAD: f64 = 0.6;
const SWEEP_LOADS: [f64; 3] = [0.5, 1.0, 2.0];

fn build(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
    AllocatorKind::Sw.build(dpu, tasklets, heap)
}

fn bench_cfg(rps: f64) -> ServeConfig {
    ServeConfig {
        n_dpus: N_DPUS,
        n_requests: N_REQUESTS,
        arrival: ArrivalProcess::Poisson { rps },
        ctx: pim_sim::SimContext::sweep_default(),
        ..ServeConfig::default()
    }
}

fn emit_ci_report(_c: &mut Criterion) {
    if !std::env::args().any(|a| a == "--bench") {
        println!("serving: not invoked via `cargo bench`, skipping CI report");
        return;
    }
    let classes = standard_mix();
    let capacity_rps = estimated_capacity_rps(&classes, &build, N_DPUS);
    let cfg = bench_cfg(LOAD * capacity_rps);

    // Frontend host throughput (wall clock) + the SLO report (modeled).
    let t0 = Instant::now();
    let report = serve(&cfg, &classes, &build);
    let frontend_reqs_per_sec = N_REQUESTS as f64 / t0.elapsed().as_secs_f64();
    println!(
        "serving/serve_50k_256dpu: {frontend_reqs_per_sec:.0} host reqs/sec, \
         p99 {:.3} simulated ms",
        report.p99_ms()
    );

    let sweep = saturation_sweep(&cfg, &classes, &build, &SWEEP_LOADS);
    let json = format!(
        "{{\n  \
         \"schema_version\": 1,\n  \
         \"experiment\": \"serving\",\n  \
         \"bench\": \"serving\",\n  \
         \"n_dpus\": {N_DPUS},\n  \
         \"n_requests\": {N_REQUESTS},\n  \
         \"load_frac\": {LOAD},\n  \
         \"capacity_rps\": {capacity_rps:.4},\n  \
         \"offered_rps\": {:.4},\n  \
         \"achieved_rps\": {:.4},\n  \
         \"p50_ms\": {:.6},\n  \
         \"p95_ms\": {:.6},\n  \
         \"p99_ms\": {:.6},\n  \
         \"p999_ms\": {:.6},\n  \
         \"drop_frac\": {:.6},\n  \
         \"peak_in_flight\": {},\n  \
         \"push_calls\": {},\n  \
         \"knee_rps\": {:.4},\n  \
         \"saturation_rps\": {:.4},\n  \
         \"frontend_reqs_per_sec\": {frontend_reqs_per_sec:.1}\n}}\n",
        report.offered_rps,
        report.achieved_rps,
        report.p50_ms(),
        report.p95_ms(),
        report.p99_ms(),
        report.p999_ms(),
        report.drop_frac(),
        report.peak_in_flight,
        report.push_calls,
        sweep.knee_rps,
        sweep.saturation_rps,
    );
    // Cargo runs benches with CWD = the package dir (crates/bench);
    // drop the report at the workspace root, where the CI artifact
    // upload and jq gates look for it (BENCH_JSON_PATH overrides, so
    // the two CI determinism legs can write separate files).
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_serving.json")
            .display()
            .to_string()
    });
    std::fs::write(&path, json).expect("write bench json");
    println!("serving: wrote {path}");
}

fn bench_serve(c: &mut Criterion) {
    let classes = standard_mix();
    let capacity_rps = estimated_capacity_rps(&classes, &build, N_DPUS);
    let cfg = bench_cfg(LOAD * capacity_rps);
    let mut g = c.benchmark_group("serving");
    g.sample_size(2);
    g.bench_function("serve_50k_256dpu", |b| {
        b.iter(|| serve(&cfg, &classes, &build).admitted)
    });
    g.finish();
}

criterion_group!(serving, emit_ci_report, bench_serve);
criterion_main!(serving);
