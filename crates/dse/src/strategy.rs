//! The four design strategies of Table I.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A point in the PIM-allocator design space (Table I of the paper):
/// metadata placement × executing processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Metadata in host DRAM, buddy algorithm on host CPU cores.
    HostMetaHostExec,
    /// Metadata in host DRAM, buddy algorithm on the PIM cores —
    /// metadata must be pushed host→PIM before each launch.
    HostMetaPimExec,
    /// Metadata in PIM banks, buddy algorithm on host CPU cores —
    /// metadata must be pulled PIM→host before each round.
    PimMetaHostExec,
    /// Metadata in PIM banks, buddy algorithm on the PIM cores — the
    /// paper's chosen design point (no metadata movement at all).
    PimMetaPimExec,
}

impl Strategy {
    /// All four strategies, in Table I order.
    pub const ALL: [Strategy; 4] = [
        Strategy::HostMetaHostExec,
        Strategy::HostMetaPimExec,
        Strategy::PimMetaHostExec,
        Strategy::PimMetaPimExec,
    ];

    /// True if the buddy algorithm runs on the host CPU.
    pub fn host_executed(self) -> bool {
        matches!(self, Strategy::HostMetaHostExec | Strategy::PimMetaHostExec)
    }

    /// True if metadata and execution sit on different sides, forcing
    /// a metadata transfer every round.
    pub fn moves_metadata(self) -> bool {
        matches!(self, Strategy::HostMetaPimExec | Strategy::PimMetaHostExec)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::HostMetaHostExec => "Host-Metadata/Host-Executed",
            Strategy::HostMetaPimExec => "Host-Metadata/PIM-Executed",
            Strategy::PimMetaHostExec => "PIM-Metadata/Host-Executed",
            Strategy::PimMetaPimExec => "PIM-Metadata/PIM-Executed",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table_one() {
        assert!(Strategy::HostMetaHostExec.host_executed());
        assert!(!Strategy::HostMetaHostExec.moves_metadata());
        assert!(!Strategy::HostMetaPimExec.host_executed());
        assert!(Strategy::HostMetaPimExec.moves_metadata());
        assert!(Strategy::PimMetaHostExec.host_executed());
        assert!(Strategy::PimMetaHostExec.moves_metadata());
        assert!(!Strategy::PimMetaPimExec.host_executed());
        assert!(!Strategy::PimMetaPimExec.moves_metadata());
    }

    #[test]
    fn display_names_are_paper_labels() {
        assert_eq!(
            Strategy::PimMetaPimExec.to_string(),
            "PIM-Metadata/PIM-Executed"
        );
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
