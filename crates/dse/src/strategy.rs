//! The four design strategies of Table I.

use std::fmt;

use pim_sim::{TransferDirection, TransferPlan};
use serde::{Deserialize, Serialize};

/// A point in the PIM-allocator design space (Table I of the paper):
/// metadata placement × executing processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Metadata in host DRAM, buddy algorithm on host CPU cores.
    HostMetaHostExec,
    /// Metadata in host DRAM, buddy algorithm on the PIM cores —
    /// metadata must be pushed host→PIM before each launch.
    HostMetaPimExec,
    /// Metadata in PIM banks, buddy algorithm on host CPU cores —
    /// metadata must be pulled PIM→host before each round.
    PimMetaHostExec,
    /// Metadata in PIM banks, buddy algorithm on the PIM cores — the
    /// paper's chosen design point (no metadata movement at all).
    PimMetaPimExec,
}

impl Strategy {
    /// All four strategies, in Table I order.
    pub const ALL: [Strategy; 4] = [
        Strategy::HostMetaHostExec,
        Strategy::HostMetaPimExec,
        Strategy::PimMetaHostExec,
        Strategy::PimMetaPimExec,
    ];

    /// True if the buddy algorithm runs on the host CPU.
    pub fn host_executed(self) -> bool {
        matches!(self, Strategy::HostMetaHostExec | Strategy::PimMetaHostExec)
    }

    /// True if metadata and execution sit on different sides, forcing
    /// a metadata transfer every round.
    pub fn moves_metadata(self) -> bool {
        matches!(self, Strategy::HostMetaPimExec | Strategy::PimMetaHostExec)
    }

    /// The host↔PIM [`TransferPlan`]s this strategy issues **per
    /// allocation round** on an `n_dpus` system whose per-DPU metadata
    /// set is `meta_bytes` (Figure 5's control flows, expressed as
    /// traffic):
    ///
    /// * Host-executed strategies push each DPU its 8 B result pointer.
    /// * Metadata movers pull/push the whole per-DPU metadata set.
    /// * `PimMetaPimExec` issues no host↔PIM traffic at all.
    ///
    /// The plans say *what moves*; the runner's
    /// [`pim_sim::HostBatching`] policy decides *how* (per-DPU calls
    /// vs per-rank shards).
    pub fn round_plans(self, n_dpus: usize, meta_bytes: u64) -> Vec<TransferPlan> {
        let push_pointers = TransferPlan::uniform(TransferDirection::HostToPim, n_dpus, 8);
        match self {
            Strategy::HostMetaHostExec => vec![push_pointers],
            Strategy::HostMetaPimExec => vec![TransferPlan::uniform(
                TransferDirection::HostToPim,
                n_dpus,
                meta_bytes,
            )],
            Strategy::PimMetaHostExec => vec![
                TransferPlan::uniform(TransferDirection::PimToHost, n_dpus, meta_bytes),
                push_pointers,
            ],
            Strategy::PimMetaPimExec => Vec::new(),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::HostMetaHostExec => "Host-Metadata/Host-Executed",
            Strategy::HostMetaPimExec => "Host-Metadata/PIM-Executed",
            Strategy::PimMetaHostExec => "PIM-Metadata/Host-Executed",
            Strategy::PimMetaPimExec => "PIM-Metadata/PIM-Executed",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table_one() {
        assert!(Strategy::HostMetaHostExec.host_executed());
        assert!(!Strategy::HostMetaHostExec.moves_metadata());
        assert!(!Strategy::HostMetaPimExec.host_executed());
        assert!(Strategy::HostMetaPimExec.moves_metadata());
        assert!(Strategy::PimMetaHostExec.host_executed());
        assert!(Strategy::PimMetaHostExec.moves_metadata());
        assert!(!Strategy::PimMetaPimExec.host_executed());
        assert!(!Strategy::PimMetaPimExec.moves_metadata());
    }

    #[test]
    fn round_plans_match_figure5_control_flow() {
        // 8 B pointer push for host-executed, whole-metadata moves for
        // the split strategies, silence for the PIM-local design.
        let plans = Strategy::HostMetaHostExec.round_plans(64, 1 << 19);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].total_bytes(), 64 * 8);
        let plans = Strategy::HostMetaPimExec.round_plans(64, 1 << 19);
        assert_eq!(plans[0].total_bytes(), 64 << 19);
        let plans = Strategy::PimMetaHostExec.round_plans(64, 1 << 19);
        assert_eq!(plans.len(), 2, "metadata pull then pointer push");
        assert_eq!(plans[0].direction(), pim_sim::TransferDirection::PimToHost);
        assert!(Strategy::PimMetaPimExec.round_plans(64, 1 << 19).is_empty());
    }

    #[test]
    fn display_names_are_paper_labels() {
        assert_eq!(
            Strategy::PimMetaPimExec.to_string(),
            "PIM-Metadata/PIM-Executed"
        );
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
