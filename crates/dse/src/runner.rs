//! Executes one design strategy and reports the latency split.

use pim_malloc::{PimAllocator, StrawManAllocator, StrawManConfig};
use pim_sim::{DpuConfig, DpuSim, HostConfig, HostSim, SimContext};
use serde::{Deserialize, Serialize};

use crate::strategy::Strategy;

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Number of PIM cores issuing allocation requests (1–512 in the
    /// paper's sweep).
    pub n_dpus: usize,
    /// Allocations requested per PIM core (paper: 128).
    pub allocs_per_dpu: usize,
    /// Size of each allocation in bytes (paper: 32 B).
    pub alloc_size: u32,
    /// Straw-man allocator geometry (32 MB heap, 32 B min block).
    pub straw_man: StrawManConfig,
    /// Host CPU model (Xeon Gold 5222-like: 8 hardware threads).
    pub host: HostConfig,
    /// Shared execution context: `ctx.transfer` prices host↔PIM
    /// traffic, `ctx.batching` schedules it (per-DPU calls vs per-rank
    /// shards — what separates a naive host loop from a batched
    /// `dpu_push_xfer` data path), and `ctx.exec` places [`sweep`]'s
    /// grid points on the host executor. Grid cells carry no
    /// cross-epoch index locality, so the default is
    /// [`SimContext::sweep_default`] ([`pim_sim::ExecPolicy::Oblivious`]);
    /// results are identical under every policy.
    pub ctx: SimContext,
    /// Fixed cost of one `pimLaunch` kernel dispatch, microseconds.
    pub launch_us: f64,
    /// Host last-level cache capacity, bytes — determines how much of
    /// the per-DPU metadata stays cache-resident for host execution.
    pub host_llc_bytes: u64,
}

impl DseConfig {
    /// Returns the config with a different DPU count.
    pub fn with_dpus(mut self, n: usize) -> Self {
        self.n_dpus = n;
        self
    }
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            n_dpus: 512,
            allocs_per_dpu: 128,
            alloc_size: 32,
            straw_man: StrawManConfig::default(),
            host: HostConfig::default(),
            ctx: SimContext::sweep_default(),
            launch_us: 60.0,
            host_llc_bytes: 16 << 20,
        }
    }
}

/// Outcome of running one strategy: end-to-end seconds for all
/// `allocs_per_dpu` rounds, split into transfer and compute
/// (Figure 6(a) and 6(b)).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DseResult {
    /// The strategy that produced this result.
    pub strategy: Strategy,
    /// Number of DPUs.
    pub n_dpus: usize,
    /// End-to-end latency in seconds.
    pub total_secs: f64,
    /// Seconds spent in host↔PIM data transfers.
    pub transfer_secs: f64,
    /// Seconds spent computing (host or PIM) plus launch overhead.
    pub compute_secs: f64,
    /// Host↔PIM transfer calls issued across all rounds — the fixed
    /// software overheads paid. Per-rank sharding pays one per
    /// occupied rank per plan; per-DPU scheduling pays one per DPU.
    pub transfer_calls: u64,
}

impl DseResult {
    /// Fraction of total time spent in DRAM↔PIM transfer (Fig 6(b)).
    pub fn transfer_fraction(&self) -> f64 {
        if self.total_secs == 0.0 {
            0.0
        } else {
            self.transfer_secs / self.total_secs
        }
    }
}

/// Measures the straw-man allocator on a real simulated DPU:
/// `(seconds per allocation, seconds for the whole batch)`.
fn pim_side_alloc_secs(config: &DseConfig) -> (f64, f64) {
    let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(1));
    let mut alloc = StrawManAllocator::init(&mut dpu, config.straw_man).expect("straw-man init");
    let start = dpu.clock(0);
    for _ in 0..config.allocs_per_dpu {
        let mut ctx = dpu.ctx(0);
        alloc
            .pim_malloc(&mut ctx, config.alloc_size)
            .expect("heap large enough for the microbenchmark");
    }
    let cycles = dpu.clock(0) - start;
    let clock_mhz = dpu.config().cost.clock_mhz;
    let batch = cycles.as_secs(clock_mhz);
    (batch / config.allocs_per_dpu as f64, batch)
}

/// Host metadata accesses per allocation: one read and one write per
/// tree level on the descent, plus fixed overhead.
fn host_accesses_per_alloc(config: &DseConfig) -> u64 {
    let depth = u64::from(
        pim_malloc::BuddyGeometry::new(
            config.straw_man.heap_base,
            config.straw_man.heap_size,
            config.straw_man.min_block,
        )
        .depth(),
    );
    2 * (depth + 1) + 8
}

/// Fraction of host metadata accesses that miss to DRAM: grows as the
/// aggregate per-DPU metadata working set overflows the LLC.
fn host_miss_fraction(config: &DseConfig) -> f64 {
    let meta_bytes = u64::from(
        pim_malloc::BuddyGeometry::new(
            config.straw_man.heap_base,
            config.straw_man.heap_size,
            config.straw_man.min_block,
        )
        .metadata_bytes(),
    );
    let working = meta_bytes * config.n_dpus as u64;
    if working == 0 {
        return 0.05;
    }
    (1.0 - config.host_llc_bytes as f64 / working as f64).clamp(0.05, 0.95)
}

/// Runs one strategy of Table I and returns its latency split.
///
/// The modelled control flow follows Figure 5 of the paper: each of
/// the `allocs_per_dpu` rounds performs the strategy's per-round
/// compute plus the transfer plans [`Strategy::round_plans`] emits,
/// scheduled under the config context's batching policy.
/// `PimMetaPimExec` launches
/// once and the PIM cores run the entire batch locally, issuing no
/// host↔PIM traffic at all.
pub fn run_strategy(strategy: Strategy, config: &DseConfig) -> DseResult {
    let mut host = HostSim::new(config.host, config.ctx.transfer);
    let rounds = config.allocs_per_dpu;
    let meta_bytes = u64::from(
        pim_malloc::BuddyGeometry::new(
            config.straw_man.heap_base,
            config.straw_man.heap_size,
            config.straw_man.min_block,
        )
        .metadata_bytes(),
    );
    let (pim_alloc_secs, pim_batch_secs) = match strategy {
        Strategy::HostMetaPimExec | Strategy::PimMetaPimExec => pim_side_alloc_secs(config),
        _ => (0.0, 0.0),
    };
    let mut compute_secs = 0.0;

    match strategy {
        // Fig 5(a)/(c): parallel-for pimMalloc on the host every round
        // (plus, for P-M/H-E, the metadata pull the plans describe).
        Strategy::HostMetaHostExec | Strategy::PimMetaHostExec => {
            let accesses = host_accesses_per_alloc(config);
            let miss = host_miss_fraction(config);
            for _ in 0..rounds {
                compute_secs += host.parallel_for(config.n_dpus, accesses, miss);
            }
        }
        // Fig 5(b): launch each round; PIM cores allocate.
        Strategy::HostMetaPimExec => {
            for _ in 0..rounds {
                compute_secs += config.launch_us * 1e-6 + pim_alloc_secs;
            }
        }
        // Fig 5(d): one launch; everything stays PIM-local.
        Strategy::PimMetaPimExec => {
            compute_secs += config.launch_us * 1e-6 + pim_batch_secs;
        }
    }

    // The strategy's per-round traffic, scheduled by the policy.
    let plans = strategy.round_plans(config.n_dpus, meta_bytes);
    for _ in 0..rounds {
        for plan in &plans {
            host.transfer_plan(plan, config.ctx.batching);
        }
    }

    let transfer_secs = host.transfer_secs();
    DseResult {
        strategy,
        n_dpus: config.n_dpus,
        total_secs: transfer_secs + compute_secs,
        transfer_secs,
        compute_secs,
        transfer_calls: host.transfer_calls(),
    }
}

/// Runs every strategy over a list of DPU counts (the Figure 6(a)
/// sweep). Results are ordered strategy-major, in [`Strategy::ALL`]
/// order.
///
/// Each grid point is an independent simulation (its own `DpuSim` and
/// host model), so the sweep fans out over the machine's cores via the
/// topology-aware executor (`config.ctx.exec`) and merges results
/// back in grid order — the output is identical to the serial double
/// loop it replaced, under every policy and worker count.
pub fn sweep(config: &DseConfig, dpu_counts: &[usize]) -> Vec<DseResult> {
    let grid: Vec<(Strategy, usize)> = Strategy::ALL
        .iter()
        .flat_map(|&s| dpu_counts.iter().map(move |&n| (s, n)))
        .collect();
    pim_sim::parallel_indexed_with(grid.len(), config.ctx.exec, |i| {
        let (strategy, n) = grid[i];
        run_strategy(strategy, &config.clone().with_dpus(n))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::HostBatching;

    fn cfg(n: usize) -> DseConfig {
        DseConfig::default().with_dpus(n)
    }

    #[test]
    fn pim_meta_pim_exec_is_flat_in_dpu_count() {
        let one = run_strategy(Strategy::PimMetaPimExec, &cfg(1));
        let many = run_strategy(Strategy::PimMetaPimExec, &cfg(512));
        assert!(
            (many.total_secs / one.total_secs) < 1.01,
            "local execution must not scale with DPU count: {} vs {}",
            one.total_secs,
            many.total_secs
        );
    }

    #[test]
    fn metadata_moving_strategies_scale_worst() {
        // Figure 6(a): at 512 cores, the two metadata-moving designs
        // are the slowest, and everything is slower than P-M/P-E.
        let results: Vec<DseResult> = Strategy::ALL
            .iter()
            .map(|&s| run_strategy(s, &cfg(512)))
            .collect();
        let by = |s: Strategy| results.iter().find(|r| r.strategy == s).unwrap().total_secs;
        let best = by(Strategy::PimMetaPimExec);
        let gray = by(Strategy::HostMetaHostExec);
        let black = by(Strategy::HostMetaPimExec);
        let yellow = by(Strategy::PimMetaHostExec);
        assert!(best < gray && best < black && best < yellow);
        assert!(black > gray, "metadata push must dominate host compute");
        assert!(yellow > gray);
        // Seconds-scale at 512 cores for the worst designs, as in Fig 6.
        assert!(black > 1.0, "expected seconds-scale latency, got {black}");
    }

    #[test]
    fn host_executed_latency_grows_with_dpus() {
        let small = run_strategy(Strategy::HostMetaHostExec, &cfg(8));
        let large = run_strategy(Strategy::HostMetaHostExec, &cfg(512));
        assert!(large.total_secs > small.total_secs * 10.0);
    }

    #[test]
    fn transfer_dominates_metadata_moving_strategies() {
        // Figure 6(b): >75% of H-M/P-E and P-M/H-E latency is transfer.
        for s in [Strategy::HostMetaPimExec, Strategy::PimMetaHostExec] {
            let r = run_strategy(s, &cfg(512));
            assert!(
                r.transfer_fraction() > 0.75,
                "{s}: transfer fraction {}",
                r.transfer_fraction()
            );
        }
        // And compute dominates H-M/H-E.
        let r = run_strategy(Strategy::HostMetaHostExec, &cfg(512));
        assert!(r.transfer_fraction() < 0.5);
        // P-M/P-E performs no host↔PIM transfers at all.
        let r = run_strategy(Strategy::PimMetaPimExec, &cfg(512));
        assert_eq!(r.transfer_secs, 0.0);
    }

    #[test]
    fn sweep_covers_all_strategy_count_pairs() {
        let rows = sweep(&DseConfig::default(), &[1, 16, 512]);
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.total_secs > 0.0));
        assert!(
            (rows[0].transfer_fraction() - rows[0].transfer_secs / rows[0].total_secs).abs()
                < 1e-12
        );
    }

    #[test]
    fn sharded_batching_models_rank_not_dpu_call_overheads() {
        // The PR 3 acceptance sweep: at 256 DPUs a host-executed
        // strategy pays per-*rank* call overheads under sharded
        // batching (4 ranks × 128 rounds) and per-*DPU* overheads
        // without it (256 × 128) — strictly fewer calls, lower
        // transfer time, identical compute.
        let base = cfg(256);
        let per_dpu = run_strategy(
            Strategy::HostMetaHostExec,
            &DseConfig {
                ctx: base.ctx.with_batching(HostBatching::PerDpu),
                ..base.clone()
            },
        );
        let sharded = run_strategy(
            Strategy::HostMetaHostExec,
            &DseConfig {
                ctx: base.ctx.with_batching(HostBatching::Sharded),
                ..base
            },
        );
        let rounds = 128u64;
        assert_eq!(per_dpu.transfer_calls, rounds * 256);
        assert_eq!(sharded.transfer_calls, rounds * (256 / 64));
        assert!(sharded.transfer_calls < per_dpu.transfer_calls);
        assert!(
            sharded.transfer_secs < per_dpu.transfer_secs / 10.0,
            "batched {} vs per-DPU {}",
            sharded.transfer_secs,
            per_dpu.transfer_secs
        );
        assert_eq!(sharded.compute_secs, per_dpu.compute_secs);
        // The on-DPU design point is untouched by the policy.
        for batching in [HostBatching::PerDpu, HostBatching::Sharded] {
            let base = cfg(256);
            let r = run_strategy(
                Strategy::PimMetaPimExec,
                &DseConfig {
                    ctx: base.ctx.with_batching(batching),
                    ..base
                },
            );
            assert_eq!(r.transfer_calls, 0);
            assert_eq!(r.transfer_secs, 0.0);
        }
    }

    #[test]
    fn totals_are_consistent() {
        for s in Strategy::ALL {
            let r = run_strategy(s, &cfg(64));
            assert!(
                (r.total_secs - r.transfer_secs - r.compute_secs).abs() < 1e-12,
                "{s}"
            );
        }
    }
}
