//! Design-space exploration over size-class synthesis objectives.
//!
//! The `pim-profile` synthesizer collapses a whole geometry decision
//! into one [`SynthesisObjective`] — but the objective's weights are
//! themselves a design space: how dearly should scarce WRAM be priced
//! against MRAM fragmentation? This module sweeps a ladder of
//! objectives over one [`AllocProfile`] and reports the Pareto-style
//! frontier of (modeled fragmentation, WRAM footprint) points, fanned
//! across the host executor exactly like the Figure 6 strategy sweep.

use pim_profile::{synthesize_table, AllocProfile, SynthesisError, SynthesisObjective};
use pim_sim::SimContext;
use serde::{Deserialize, Serialize};

/// Configuration of an objective-weight sweep.
#[derive(Debug, Clone)]
pub struct GeometrySweepConfig {
    /// The objectives to synthesize under, one grid point each.
    pub objectives: Vec<SynthesisObjective>,
    /// Execution context placing grid points on the host executor;
    /// results are identical under every policy.
    pub ctx: SimContext,
}

impl Default for GeometrySweepConfig {
    /// A WRAM-weight ladder from "WRAM is free" to "WRAM is 256x
    /// dearer than fragmentation bytes", default constraints.
    fn default() -> Self {
        GeometrySweepConfig {
            objectives: [0.0, 1.0, 4.0, 16.0, 64.0, 256.0]
                .iter()
                .map(|&wram_weight| SynthesisObjective {
                    wram_weight,
                    ..SynthesisObjective::default()
                })
                .collect(),
            ctx: SimContext::sweep_default(),
        }
    }
}

/// One grid point of a geometry sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometryPoint {
    /// The objective's fragmentation weight.
    pub frag_weight: f64,
    /// The objective's WRAM weight.
    pub wram_weight: f64,
    /// Synthesized classes, ascending.
    pub classes: Vec<u32>,
    /// Modeled fragmentation of the synthesized table, bytes.
    pub modeled_frag_bytes: u64,
    /// Per-tasklet WRAM bitmap footprint, bytes.
    pub wram_bytes_per_tasklet: u32,
    /// Modeled fragmentation relative to the paper geometry.
    pub predicted_frag_ratio: f64,
}

/// Synthesizes a table per objective in `config`, in grid order, each
/// point placed on the host executor by `config.ctx.exec`. Results
/// are deterministic: grid order is preserved regardless of policy or
/// worker count.
pub fn sweep_objectives(
    profile: &AllocProfile,
    config: &GeometrySweepConfig,
) -> Vec<Result<GeometryPoint, SynthesisError>> {
    pim_sim::parallel_indexed_with(config.objectives.len(), config.ctx.exec, |i| {
        let objective = config.objectives[i];
        synthesize_table(profile, &objective).map(|s| GeometryPoint {
            frag_weight: objective.frag_weight,
            wram_weight: objective.wram_weight,
            classes: s.report.classes,
            modeled_frag_bytes: s.report.modeled_frag_bytes,
            wram_bytes_per_tasklet: s.report.wram_bytes_per_tasklet,
            predicted_frag_ratio: s.report.predicted_frag_ratio,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::ExecPolicy;

    fn profile() -> AllocProfile {
        let mut p = AllocProfile::new("sweep", 16);
        for (size, count) in [(24u32, 400u64), (136, 300), (700, 200), (2000, 100)] {
            for _ in 0..count {
                p.histogram.record(size);
            }
            p.mallocs += count;
        }
        p
    }

    #[test]
    fn ladder_trades_wram_for_fragmentation() {
        let p = profile();
        let points = sweep_objectives(&p, &GeometrySweepConfig::default());
        assert_eq!(points.len(), 6);
        let ok: Vec<&GeometryPoint> = points.iter().map(|r| r.as_ref().unwrap()).collect();
        // Monotone along the ladder: pricier WRAM never buys more
        // bitmap bytes, cheaper WRAM never models worse fragmentation.
        for w in ok.windows(2) {
            assert!(w[1].wram_bytes_per_tasklet <= w[0].wram_bytes_per_tasklet);
            assert!(w[1].modeled_frag_bytes >= w[0].modeled_frag_bytes);
        }
    }

    #[test]
    fn sweep_is_policy_invariant() {
        let p = profile();
        let base = GeometrySweepConfig::default();
        let serial = sweep_objectives(
            &p,
            &GeometrySweepConfig {
                ctx: SimContext::sweep_default().with_exec(ExecPolicy::Serial),
                ..base.clone()
            },
        );
        let parallel = sweep_objectives(&p, &base);
        assert_eq!(serial, parallel);
    }
}
