//! # pim-dse — design-space exploration of PIM memory allocators
//!
//! Reproduces §III-B of the PIM-malloc paper (Table I, Figure 6): the
//! four combinations of *where allocator metadata lives* (host DRAM vs
//! PIM banks) and *which processor executes the buddy algorithm* (host
//! CPU vs PIM cores), evaluated on the straw-man
//! `buddy_alloc_PIM_DRAM` workload — every PIM core issuing 128
//! identical 32 B allocations.
//!
//! PIM-side compute times come from running the *actual* straw-man
//! allocator on the [`pim_sim`] DPU model; host-side compute and all
//! host↔PIM transfers use the analytic [`pim_sim::HostSim`] model.
//!
//! ```
//! use pim_dse::{DseConfig, Strategy};
//!
//! let config = DseConfig::default().with_dpus(64);
//! let result = pim_dse::run_strategy(Strategy::PimMetaPimExec, &config);
//! assert!(result.total_secs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod runner;
mod strategy;

pub use geometry::{sweep_objectives, GeometryPoint, GeometrySweepConfig};
pub use runner::{run_strategy, sweep, DseConfig, DseResult};
pub use strategy::Strategy;
