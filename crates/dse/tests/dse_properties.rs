//! Property tests of the design-space model: scaling laws that must
//! hold for any configuration, not just the paper's.

use pim_dse::{run_strategy, DseConfig, Strategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Host-executed and metadata-moving strategies are monotone in the
    /// DPU count; PIM-local execution is exactly flat.
    #[test]
    fn latency_monotone_in_dpu_count(a in 1usize..256, b in 1usize..256) {
        let (small, large) = (a.min(b), a.max(b));
        prop_assume!(small < large);
        for strategy in [
            Strategy::HostMetaHostExec,
            Strategy::HostMetaPimExec,
            Strategy::PimMetaHostExec,
        ] {
            let s = run_strategy(strategy, &DseConfig::default().with_dpus(small));
            let l = run_strategy(strategy, &DseConfig::default().with_dpus(large));
            prop_assert!(
                l.total_secs >= s.total_secs,
                "{strategy}: {} DPUs {} vs {} DPUs {}",
                small, s.total_secs, large, l.total_secs
            );
        }
        let s = run_strategy(Strategy::PimMetaPimExec, &DseConfig::default().with_dpus(small));
        let l = run_strategy(Strategy::PimMetaPimExec, &DseConfig::default().with_dpus(large));
        prop_assert!((s.total_secs - l.total_secs).abs() < 1e-12);
    }

    /// Latency grows (weakly) with the number of allocations per DPU,
    /// and the transfer/compute split always sums to the total.
    #[test]
    fn latency_monotone_in_allocation_count(
        n_dpus in 1usize..128,
        rounds in 1usize..64,
    ) {
        for strategy in Strategy::ALL {
            let mut cfg = DseConfig::default().with_dpus(n_dpus);
            cfg.allocs_per_dpu = rounds;
            let r1 = run_strategy(strategy, &cfg);
            cfg.allocs_per_dpu = rounds * 2;
            let r2 = run_strategy(strategy, &cfg);
            prop_assert!(r2.total_secs >= r1.total_secs, "{strategy}");
            prop_assert!((r1.total_secs - r1.transfer_secs - r1.compute_secs).abs() < 1e-12);
            prop_assert!(r1.transfer_fraction() >= 0.0 && r1.transfer_fraction() <= 1.0);
        }
    }

    /// Metadata-moving strategies always cost at least as much as the
    /// corresponding no-movement strategy with the same executor.
    #[test]
    fn metadata_movement_never_helps(n_dpus in 1usize..512) {
        let cfg = DseConfig::default().with_dpus(n_dpus);
        let pim_local = run_strategy(Strategy::PimMetaPimExec, &cfg);
        let pim_moving = run_strategy(Strategy::HostMetaPimExec, &cfg);
        prop_assert!(pim_moving.total_secs >= pim_local.total_secs);
        let host_local = run_strategy(Strategy::HostMetaHostExec, &cfg);
        let host_moving = run_strategy(Strategy::PimMetaHostExec, &cfg);
        prop_assert!(host_moving.total_secs >= host_local.total_secs);
    }
}
