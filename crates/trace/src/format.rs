//! The canonical allocation-trace format.
//!
//! An [`AllocTrace`] is *data describing a workload's allocator
//! behaviour*: one event stream per tasklet, where each event either
//! allocates into a named slot, frees a slot (its own or another
//! tasklet's — the cross-tasklet free edges of producer–consumer
//! patterns), or burns a span of compute cycles between allocator
//! calls. Traces are versioned and round-trip losslessly through JSON,
//! so a workload captured once can be replayed deterministically
//! against every allocator design, shared as a file, and diffed.

use std::fmt;

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Version stamp written into every serialized trace and required on
/// parse; bump when the format changes incompatibly.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// The serialized `kind` tag distinguishing trace files from other
/// JSON artifacts.
const TRACE_KIND: &str = "alloc-trace";

/// One event in a tasklet's stream.
///
/// `slot` names an allocation within a tasklet's slot table so later
/// events can free it without knowing addresses up front — the same
/// indirection the workloads driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Allocate `size` bytes and remember the address in this
    /// tasklet's `slot`. Allocating into an occupied slot frees the
    /// shadowed address first (driver semantics).
    Malloc {
        /// Request size in bytes.
        size: u32,
        /// Slot index in the issuing tasklet's table.
        slot: u32,
    },
    /// Free the address in this tasklet's `slot` (no-op if empty).
    Free {
        /// Slot index to free.
        slot: u32,
    },
    /// Free the address in *another* tasklet's slot — a cross-tasklet
    /// free edge (producer–consumer). The replayer makes the issuing
    /// tasklet wait until the owner has filled the slot.
    RemoteFree {
        /// Tasklet owning the slot.
        tasklet: u32,
        /// Slot index in the owner's table.
        slot: u32,
    },
    /// Advance this tasklet's clock by `cycles` of non-allocator work.
    Compute {
        /// Cycles of compute between allocator calls.
        cycles: u64,
    },
}

/// A complete allocation trace: per-tasklet event streams plus the
/// heap the workload ran against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocTrace {
    /// Human-readable trace name (workload or generator family).
    pub name: String,
    /// Number of tasklets; `streams.len()` always equals this.
    pub n_tasklets: usize,
    /// Heap capacity the trace was recorded/generated against, bytes.
    pub heap_size: u32,
    /// One event stream per tasklet, indexed by tasklet id.
    pub streams: Vec<Vec<TraceOp>>,
}

/// Why a serialized trace failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The bytes are not valid JSON.
    Json(serde_json::ParseError),
    /// The JSON is valid but not a well-formed trace.
    Schema(String),
    /// The trace was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "{e}"),
            TraceError::Schema(msg) => write!(f, "malformed trace: {msg}"),
            TraceError::Version { found } => write!(
                f,
                "trace schema version {found} unsupported (expected {TRACE_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<serde_json::ParseError> for TraceError {
    fn from(e: serde_json::ParseError) -> Self {
        TraceError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError::Schema(msg.into()))
}

impl AllocTrace {
    /// An empty trace with `n_tasklets` empty streams.
    pub fn new(name: impl Into<String>, heap_size: u32, n_tasklets: usize) -> Self {
        AllocTrace {
            name: name.into(),
            n_tasklets,
            heap_size,
            streams: vec![Vec::new(); n_tasklets],
        }
    }

    /// Total events across all streams.
    pub fn op_count(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Total `Malloc` events across all streams.
    pub fn malloc_count(&self) -> usize {
        self.streams
            .iter()
            .flatten()
            .filter(|op| matches!(op, TraceOp::Malloc { .. }))
            .count()
    }

    /// Bytes a compact binary encoding of the trace would occupy —
    /// what the host moves when distributing the trace to DPUs (8 B
    /// per event plus a 64 B header), independent of the JSON text.
    pub fn wire_bytes(&self) -> u64 {
        64 + 8 * self.op_count() as u64
    }

    /// Checks structural invariants: stream count matches
    /// `n_tasklets`, sizes are non-zero, and every cross-tasklet free
    /// edge points at a real tasklet.
    ///
    /// # Errors
    ///
    /// [`TraceError::Schema`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.streams.len() != self.n_tasklets {
            return schema_err(format!(
                "{} streams for {} tasklets",
                self.streams.len(),
                self.n_tasklets
            ));
        }
        if self.n_tasklets == 0 {
            return schema_err("trace has no tasklets");
        }
        for (tid, stream) in self.streams.iter().enumerate() {
            for op in stream {
                match *op {
                    TraceOp::Malloc { size: 0, .. } => {
                        return schema_err(format!("tasklet {tid} allocates 0 bytes"));
                    }
                    TraceOp::RemoteFree { tasklet, .. } if tasklet as usize >= self.n_tasklets => {
                        return schema_err(format!(
                            "tasklet {tid} frees slot of nonexistent tasklet {tasklet}"
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Encodes the trace as a JSON value. Ops use compact array forms:
    /// `["m", size, slot]`, `["f", slot]`, `["r", tasklet, slot]`,
    /// `["c", cycles]`.
    pub fn to_json_value(&self) -> Value {
        use std::collections::BTreeMap;
        let streams: Vec<Value> = self
            .streams
            .iter()
            .map(|stream| Value::Array(stream.iter().map(op_to_json).collect()))
            .collect();
        let mut obj = BTreeMap::new();
        obj.insert(
            "schema_version".to_owned(),
            Value::from(TRACE_SCHEMA_VERSION),
        );
        obj.insert("kind".to_owned(), Value::from(TRACE_KIND));
        obj.insert("name".to_owned(), Value::from(self.name.as_str()));
        obj.insert("n_tasklets".to_owned(), Value::from(self.n_tasklets as u64));
        obj.insert(
            "heap_size".to_owned(),
            Value::from(u64::from(self.heap_size)),
        );
        obj.insert("streams".to_owned(), Value::Array(streams));
        Value::Object(obj)
    }

    /// Renders the trace as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a trace from a JSON value, checking version and
    /// structure.
    ///
    /// # Errors
    ///
    /// [`TraceError::Version`] on a version mismatch,
    /// [`TraceError::Schema`] on structural problems.
    pub fn from_json_value(v: &Value) -> Result<Self, TraceError> {
        let version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or(TraceError::Schema("missing schema_version".to_owned()))?;
        if version != TRACE_SCHEMA_VERSION {
            return Err(TraceError::Version { found: version });
        }
        match v.get("kind").and_then(Value::as_str) {
            Some(TRACE_KIND) => {}
            other => return schema_err(format!("kind {other:?} is not {TRACE_KIND:?}")),
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or(TraceError::Schema("missing name".to_owned()))?
            .to_owned();
        let n_tasklets =
            v.get("n_tasklets")
                .and_then(Value::as_u64)
                .ok_or(TraceError::Schema("missing n_tasklets".to_owned()))? as usize;
        let heap_size = v
            .get("heap_size")
            .and_then(Value::as_u64)
            .and_then(|b| u32::try_from(b).ok())
            .ok_or(TraceError::Schema(
                "missing or oversized heap_size".to_owned(),
            ))?;
        let streams = v
            .get("streams")
            .and_then(Value::as_array)
            .ok_or(TraceError::Schema("missing streams".to_owned()))?
            .iter()
            .map(|stream| {
                stream
                    .as_array()
                    .ok_or(TraceError::Schema("stream is not an array".to_owned()))?
                    .iter()
                    .map(op_from_json)
                    .collect::<Result<Vec<TraceOp>, TraceError>>()
            })
            .collect::<Result<Vec<Vec<TraceOp>>, TraceError>>()?;
        let trace = AllocTrace {
            name,
            n_tasklets,
            heap_size,
            streams,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Parses a trace from a JSON string.
    ///
    /// # Errors
    ///
    /// [`TraceError::Json`] on malformed JSON, otherwise as
    /// [`AllocTrace::from_json_value`].
    pub fn from_json(s: &str) -> Result<Self, TraceError> {
        Self::from_json_value(&serde_json::from_str(s)?)
    }
}

fn op_to_json(op: &TraceOp) -> Value {
    match *op {
        TraceOp::Malloc { size, slot } => Value::Array(vec![
            Value::from("m"),
            Value::from(u64::from(size)),
            Value::from(u64::from(slot)),
        ]),
        TraceOp::Free { slot } => {
            Value::Array(vec![Value::from("f"), Value::from(u64::from(slot))])
        }
        TraceOp::RemoteFree { tasklet, slot } => Value::Array(vec![
            Value::from("r"),
            Value::from(u64::from(tasklet)),
            Value::from(u64::from(slot)),
        ]),
        TraceOp::Compute { cycles } => Value::Array(vec![Value::from("c"), Value::from(cycles)]),
    }
}

fn op_from_json(v: &Value) -> Result<TraceOp, TraceError> {
    let parts = v
        .as_array()
        .ok_or(TraceError::Schema("op is not an array".to_owned()))?;
    let tag = parts
        .first()
        .and_then(Value::as_str)
        .ok_or(TraceError::Schema("op missing tag".to_owned()))?;
    let int = |idx: usize| -> Result<u64, TraceError> {
        parts
            .get(idx)
            .and_then(Value::as_u64)
            .ok_or(TraceError::Schema(format!("op `{tag}` operand {idx} bad")))
    };
    let u32_at = |idx: usize| -> Result<u32, TraceError> {
        u32::try_from(int(idx)?)
            .map_err(|_| TraceError::Schema(format!("op `{tag}` operand {idx} overflows u32")))
    };
    match (tag, parts.len()) {
        ("m", 3) => Ok(TraceOp::Malloc {
            size: u32_at(1)?,
            slot: u32_at(2)?,
        }),
        ("f", 2) => Ok(TraceOp::Free { slot: u32_at(1)? }),
        ("r", 3) => Ok(TraceOp::RemoteFree {
            tasklet: u32_at(1)?,
            slot: u32_at(2)?,
        }),
        ("c", 2) => Ok(TraceOp::Compute { cycles: int(1)? }),
        _ => schema_err(format!("unknown op tag `{tag}` with {} parts", parts.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AllocTrace {
        let mut t = AllocTrace::new("sample", 1 << 20, 2);
        t.streams[0] = vec![
            TraceOp::Compute { cycles: 100 },
            TraceOp::Malloc { size: 64, slot: 0 },
            TraceOp::Malloc { size: 128, slot: 1 },
            TraceOp::Free { slot: 0 },
        ];
        t.streams[1] = vec![
            TraceOp::Compute { cycles: 50 },
            TraceOp::RemoteFree {
                tasklet: 0,
                slot: 1,
            },
        ];
        t
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = sample();
        let json = t.to_json();
        assert_eq!(AllocTrace::from_json(&json).unwrap(), t);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let json = sample().to_json().replace(
            &format!("\"schema_version\":{TRACE_SCHEMA_VERSION}"),
            "\"schema_version\":99",
        );
        assert_eq!(
            AllocTrace::from_json(&json).unwrap_err(),
            TraceError::Version { found: 99 }
        );
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(matches!(
            AllocTrace::from_json("not json"),
            Err(TraceError::Json(_))
        ));
        assert!(matches!(
            AllocTrace::from_json("{}"),
            Err(TraceError::Schema(_))
        ));
        let wrong_kind = sample().to_json().replace(TRACE_KIND, "other");
        assert!(matches!(
            AllocTrace::from_json(&wrong_kind),
            Err(TraceError::Schema(_))
        ));
    }

    #[test]
    fn validate_catches_bad_edges() {
        let mut t = sample();
        t.streams[1].push(TraceOp::RemoteFree {
            tasklet: 9,
            slot: 0,
        });
        assert!(matches!(t.validate(), Err(TraceError::Schema(_))));
        let mut t = sample();
        t.streams.pop();
        assert!(t.validate().is_err());
        let mut t = sample();
        t.streams[0].push(TraceOp::Malloc { size: 0, slot: 3 });
        assert!(t.validate().is_err());
    }

    #[test]
    fn counters_count() {
        let t = sample();
        assert_eq!(t.op_count(), 6);
        assert_eq!(t.malloc_count(), 2);
        assert_eq!(t.wire_bytes(), 64 + 8 * 6);
    }
}
