//! Deterministic trace replay.
//!
//! [`replay`] drives one DPU's allocator with an [`AllocTrace`] under
//! the same virtual-time discipline as the workloads driver — in fact
//! the driver *is* this engine (it converts its request streams to
//! trace ops and delegates), so a trace recorded from a driver
//! workload replays to byte-identical latency results by construction.
//! [`replay_fleet`] scales one trace across a multi-DPU system: the
//! host first distributes the trace bytes under a [`HostBatching`]
//! policy, then every DPU replays it as a share-nothing simulation on
//! the parallel engine.

use pim_malloc::{AllocError, PimAllocator};
use pim_sim::{
    Cycles, DpuConfig, DpuSim, EpochReport, Executor, LatencyRecorder, SimContext,
    TransferDirection, TransferPlan, VirtualTimeQueue, XferEstimate,
};

use crate::format::{AllocTrace, TraceOp};

/// How many times a [`TraceOp::RemoteFree`] re-waits for its producer
/// before the edge is dropped as unsatisfiable (producer OOM'd or the
/// trace is malformed). Each retry strictly advances the consumer's
/// clock past the producer's, so replay always terminates.
const REMOTE_FREE_RETRY_LIMIT: u32 = 1000;

/// Outcome of replaying one trace on one DPU.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Latency of every `Malloc` event, in completion order.
    pub malloc_latencies: LatencyRecorder,
    /// `(completion time, latency)` of every `Malloc`, in completion
    /// order — the latency-over-time series of the paper's plots.
    pub timeline: Vec<(Cycles, Cycles)>,
    /// Per-tasklet total `pim_malloc` time.
    pub per_tasklet_malloc: Vec<Cycles>,
    /// `Malloc` events that failed with out-of-memory.
    pub oom_count: u64,
    /// Cross-tasklet free edges dropped because the producer never
    /// filled the slot (see [`REMOTE_FREE_RETRY_LIMIT`]).
    pub dropped_frees: u64,
    /// Virtual time when the last tasklet finished.
    pub finish: Cycles,
}

/// Replays `trace` against `alloc` on `dpu`.
///
/// Semantics per op: `Malloc` allocates and (driver-style) frees any
/// address shadowed in its slot; `Free` frees the tasklet's own slot
/// (no-op if empty); `RemoteFree` frees another tasklet's slot,
/// waiting (bounded) until the producer has filled it; `Compute`
/// advances the tasklet's clock. Out-of-memory is counted and the
/// stream continues; other allocator errors panic, since the replayer
/// only frees slots it has filled.
///
/// # Panics
///
/// Panics if the trace needs more tasklets than `dpu` has, or on a
/// non-OOM allocator error.
pub fn replay(dpu: &mut DpuSim, alloc: &mut dyn PimAllocator, trace: &AllocTrace) -> ReplayResult {
    replay_streams(dpu, alloc, &trace.streams)
}

/// [`replay`] over raw per-tasklet streams (no surrounding
/// [`AllocTrace`] header) — the entry point the workloads driver
/// delegates to.
///
/// # Panics
///
/// As [`replay`].
pub fn replay_streams(
    dpu: &mut DpuSim,
    alloc: &mut dyn PimAllocator,
    streams: &[Vec<TraceOp>],
) -> ReplayResult {
    assert!(
        streams.len() <= dpu.config().n_tasklets,
        "more streams ({}) than tasklets ({})",
        streams.len(),
        dpu.config().n_tasklets
    );
    let n = streams.len();
    let mut next_op = vec![0usize; n];
    let mut retries = vec![0u32; n];
    let mut slots: Vec<Vec<Option<u32>>> = streams
        .iter()
        .map(|s| {
            let max_slot = s
                .iter()
                .map(|op| match op {
                    TraceOp::Malloc { slot, .. } | TraceOp::Free { slot } => *slot as usize + 1,
                    TraceOp::RemoteFree { .. } | TraceOp::Compute { .. } => 0,
                })
                .max()
                .unwrap_or(0);
            vec![None; max_slot]
        })
        .collect();
    // Remote edges may name slots beyond any local Malloc/Free in the
    // owner's stream; grow owner tables up front so indexing is safe.
    for stream in streams {
        for op in stream {
            if let TraceOp::RemoteFree { tasklet, slot } = *op {
                let table = &mut slots[tasklet as usize];
                if table.len() <= slot as usize {
                    table.resize(slot as usize + 1, None);
                }
            }
        }
    }
    let mut result = ReplayResult {
        malloc_latencies: LatencyRecorder::new(),
        timeline: Vec::new(),
        per_tasklet_malloc: vec![Cycles::ZERO; n],
        oom_count: 0,
        dropped_frees: 0,
        finish: Cycles::ZERO,
    };

    // Always advance the unfinished tasklet with the smallest clock.
    let mut queue = VirtualTimeQueue::new(dpu, (0..n).filter(|&t| !streams[t].is_empty()));
    while let Some(tid) = queue.pop(dpu) {
        let op = streams[tid][next_op[tid]];
        let mut advanced = true;
        match op {
            TraceOp::Malloc { size, slot } => {
                let mut ctx = dpu.ctx(tid);
                let start = ctx.now();
                match alloc.pim_malloc(&mut ctx, size) {
                    Ok(addr) => {
                        let end = ctx.now();
                        let latency = end - start;
                        result.malloc_latencies.record(latency);
                        result.timeline.push((end, latency));
                        result.per_tasklet_malloc[tid] += latency;
                        if let Some(prev) = slots[tid][slot as usize].replace(addr) {
                            // Slot reuse frees the shadowed allocation
                            // to keep the heap from leaking.
                            let mut ctx = dpu.ctx(tid);
                            alloc.pim_free(&mut ctx, prev).expect("shadowed slot frees");
                        }
                    }
                    Err(AllocError::OutOfMemory { .. }) => result.oom_count += 1,
                    Err(e) => panic!("malloc failed: {e}"),
                }
            }
            TraceOp::Free { slot } => {
                if let Some(addr) = slots[tid][slot as usize].take() {
                    let mut ctx = dpu.ctx(tid);
                    alloc
                        .pim_free(&mut ctx, addr)
                        .expect("replayer frees live slots");
                }
            }
            TraceOp::RemoteFree { tasklet, slot } => {
                let owner = tasklet as usize;
                match slots[owner][slot as usize].take() {
                    Some(addr) => {
                        let mut ctx = dpu.ctx(tid);
                        ctx.mram_read(addr, 8); // load the shared pointer
                        alloc
                            .pim_free(&mut ctx, addr)
                            .expect("replayer frees live slots");
                    }
                    None => {
                        let owner_pending = owner != tid && next_op[owner] < streams[owner].len();
                        if owner_pending && retries[tid] < REMOTE_FREE_RETRY_LIMIT {
                            // Producer hasn't filled the slot yet: spin
                            // past its clock and retry this op. The
                            // queue pops smallest-clock first, so the
                            // producer runs before we come back.
                            retries[tid] += 1;
                            let wake = dpu.clock(owner).max(dpu.clock(tid)) + Cycles(1);
                            dpu.ctx(tid).wait_until(wake);
                            advanced = false;
                        } else {
                            result.dropped_frees += 1;
                        }
                    }
                }
            }
            TraceOp::Compute { cycles } => {
                let mut ctx = dpu.ctx(tid);
                let t = ctx.now() + Cycles(cycles);
                ctx.wait_until(t);
            }
        }
        if advanced {
            retries[tid] = 0;
            next_op[tid] += 1;
        }
        if next_op[tid] < streams[tid].len() {
            queue.push(dpu, tid);
        }
    }
    result.finish = dpu.max_clock();
    result
}

/// Multi-DPU replay configuration: fleet size plus the shared
/// execution context (how the host distributes the trace and how DPU
/// simulations are placed on the host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// DPUs replaying the trace (each runs the whole trace, SPMD).
    pub n_dpus: usize,
    /// Shared execution context: `ctx.batching` schedules the
    /// trace-distribution push, `ctx.transfer` prices it (and the
    /// executor's cross-node placement penalty), and `ctx.exec` fans
    /// DPU simulations over the topology-aware executor
    /// ([`pim_sim::ExecPolicy::Serial`] runs them inline) — simulated
    /// results are identical under every policy and worker count.
    pub ctx: SimContext,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_dpus: 16,
            ctx: SimContext::default(),
        }
    }
}

/// Outcome of a fleet replay.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-DPU replay outcomes, in DPU-index order.
    pub per_dpu: Vec<ReplayResult>,
    /// Modeled host cost of pushing the trace to every DPU.
    pub distribution: XferEstimate,
    /// Slowest DPU's finish time.
    pub kernel_finish: Cycles,
    /// The executor's placement accounting for this fleet epoch. A
    /// modeled host-side **diagnostic**: it reflects the trace-fleet
    /// executor's sticky ledger history (the first replay cold-starts
    /// every DPU), and concurrent fleet replays in one process
    /// interleave epochs on that shared ledger — per-DPU simulated
    /// results stay byte-identical regardless.
    pub placement: EpochReport,
    /// Modeled host seconds of NUMA placement cost for this epoch
    /// ([`EpochReport::placement_penalty_secs`] under the fleet
    /// context's transfer model). Reported separately from
    /// [`FleetResult::distribution`]; not folded into per-DPU results.
    pub placement_penalty_secs: f64,
}

impl FleetResult {
    /// Mean malloc latency across all DPUs, in cycles.
    pub fn mean_latency(&self) -> Cycles {
        let (sum, count) = self.per_dpu.iter().fold((0u64, 0u64), |(s, c), r| {
            (
                s + r
                    .malloc_latencies
                    .samples()
                    .iter()
                    .map(|l| l.0)
                    .sum::<u64>(),
                c + r.malloc_latencies.len() as u64,
            )
        });
        Cycles(sum.checked_div(count).unwrap_or(0))
    }

    /// Total out-of-memory events across the fleet.
    pub fn oom_count(&self) -> u64 {
        self.per_dpu.iter().map(|r| r.oom_count).sum()
    }
}

/// Replays `trace` on `cfg.n_dpus` share-nothing DPUs, each with an
/// allocator built by `build`, and prices the host's trace
/// distribution under `cfg.ctx.batching`.
///
/// Deterministic regardless of `cfg.ctx.exec` and the worker count: every
/// DPU's simulation is independent and results merge in DPU-index
/// order on the topology-aware executor.
///
/// # Panics
///
/// Panics if the trace is invalid, needs more than 24 tasklets, or
/// `cfg.n_dpus` is zero.
pub fn replay_fleet<B>(trace: &AllocTrace, cfg: &FleetConfig, build: B) -> FleetResult
where
    B: Fn(&mut DpuSim) -> Box<dyn PimAllocator> + Sync,
{
    trace.validate().expect("fleet replays validated traces");
    assert!(cfg.n_dpus > 0, "fleet needs at least one DPU");
    let plan = TransferPlan::uniform(TransferDirection::HostToPim, cfg.n_dpus, trace.wire_bytes());
    let distribution = cfg.ctx.planner().estimate(&plan);
    let run_one = |_idx: usize| -> ReplayResult {
        let mut dpu = DpuSim::new(DpuConfig::default().with_tasklets(trace.n_tasklets));
        let mut alloc = build(&mut dpu);
        replay(&mut dpu, alloc.as_mut(), trace)
    };
    let (per_dpu, placement) =
        Executor::for_domain("trace-fleet").run_report(cfg.n_dpus, cfg.ctx.exec, run_one);
    let kernel_finish = per_dpu
        .iter()
        .map(|r| r.finish)
        .max()
        .unwrap_or(Cycles::ZERO);
    let placement_penalty_secs = placement.placement_penalty_secs(&cfg.ctx.transfer);
    FleetResult {
        per_dpu,
        distribution,
        kernel_finish,
        placement,
        placement_penalty_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_malloc::{AllocGeometry, PimMalloc};
    use pim_sim::ExecPolicy;

    fn dpu(tasklets: usize) -> DpuSim {
        DpuSim::new(DpuConfig::default().with_tasklets(tasklets))
    }

    fn sw_alloc(dpu: &mut DpuSim, tasklets: usize, heap: u32) -> Box<dyn PimAllocator> {
        let cfg = AllocGeometry::sw(tasklets).with_heap_size(heap).build();
        Box::new(PimMalloc::init(dpu, cfg).expect("init"))
    }

    #[test]
    fn malloc_free_compute_replays() {
        let mut t = AllocTrace::new("t", 1 << 20, 1);
        t.streams[0] = vec![
            TraceOp::Compute { cycles: 500 },
            TraceOp::Malloc { size: 64, slot: 0 },
            TraceOp::Free { slot: 0 },
            TraceOp::Malloc { size: 64, slot: 0 },
        ];
        let mut d = dpu(1);
        let mut a = sw_alloc(&mut d, 1, 1 << 20);
        let r = replay(&mut d, a.as_mut(), &t);
        assert_eq!(r.malloc_latencies.len(), 2);
        assert_eq!(r.oom_count, 0);
        assert_eq!(r.dropped_frees, 0);
        assert!(r.finish >= Cycles(500));
    }

    #[test]
    fn remote_free_waits_for_producer() {
        // Producer (tasklet 0) computes a long time before filling
        // slot 0; consumer (tasklet 1) frees it remotely. The consumer
        // must wait for the producer rather than dropping the edge.
        let mut t = AllocTrace::new("pc", 1 << 20, 2);
        t.streams[0] = vec![
            TraceOp::Compute { cycles: 10_000 },
            TraceOp::Malloc { size: 256, slot: 0 },
        ];
        t.streams[1] = vec![TraceOp::RemoteFree {
            tasklet: 0,
            slot: 0,
        }];
        let mut d = dpu(2);
        let mut a = sw_alloc(&mut d, 2, 1 << 20);
        let r = replay(&mut d, a.as_mut(), &t);
        assert_eq!(r.dropped_frees, 0);
        assert_eq!(r.malloc_latencies.len(), 1);
        // Consumer finished after the producer's compute span.
        assert!(d.clock(1) > Cycles(10_000));
    }

    #[test]
    fn unsatisfiable_remote_free_is_dropped() {
        // The producer never fills the slot; the edge drops after
        // bounded retries instead of hanging.
        let mut t = AllocTrace::new("drop", 1 << 20, 2);
        t.streams[0] = vec![TraceOp::Compute { cycles: 1 }];
        t.streams[1] = vec![TraceOp::RemoteFree {
            tasklet: 0,
            slot: 5,
        }];
        let mut d = dpu(2);
        let mut a = sw_alloc(&mut d, 2, 1 << 20);
        let r = replay(&mut d, a.as_mut(), &t);
        assert_eq!(r.dropped_frees, 1);
    }

    #[test]
    fn mutual_remote_waits_terminate() {
        // Two tasklets each waiting on a slot the other never fills:
        // the retry budget breaks the cycle deterministically.
        let mut t = AllocTrace::new("cycle", 1 << 20, 2);
        t.streams[0] = vec![TraceOp::RemoteFree {
            tasklet: 1,
            slot: 0,
        }];
        t.streams[1] = vec![TraceOp::RemoteFree {
            tasklet: 0,
            slot: 0,
        }];
        let mut d = dpu(2);
        let mut a = sw_alloc(&mut d, 2, 1 << 20);
        let r = replay(&mut d, a.as_mut(), &t);
        assert_eq!(r.dropped_frees, 2);
    }

    #[test]
    fn shadowed_slot_is_freed_on_reuse() {
        let mut t = AllocTrace::new("shadow", 1 << 20, 1);
        t.streams[0] = (0..100)
            .map(|_| TraceOp::Malloc {
                size: 4096,
                slot: 0,
            })
            .collect();
        let mut d = dpu(1);
        let mut a = sw_alloc(&mut d, 1, 1 << 20);
        let r = replay(&mut d, a.as_mut(), &t);
        // 100 allocations through one slot never exhaust a 1 MB heap.
        assert_eq!(r.oom_count, 0);
        assert_eq!(r.malloc_latencies.len(), 100);
    }

    #[test]
    fn fleet_replay_is_deterministic_across_engines() {
        let mut t = AllocTrace::new("fleet", 1 << 20, 4);
        for tid in 0..4 {
            t.streams[tid] = (0..32)
                .map(|i| TraceOp::Malloc {
                    size: 32 + 8 * (i % 5),
                    slot: i,
                })
                .collect();
        }
        let build = |dpu: &mut DpuSim| -> Box<dyn PimAllocator> { sw_alloc(dpu, 4, 1 << 20) };
        let ser = replay_fleet(
            &t,
            &FleetConfig {
                ctx: SimContext::default().with_exec(ExecPolicy::Serial),
                ..FleetConfig::default()
            },
            build,
        );
        for exec in [
            ExecPolicy::Oblivious,
            ExecPolicy::Sticky,
            ExecPolicy::StickySteal,
        ] {
            let par = replay_fleet(
                &t,
                &FleetConfig {
                    ctx: SimContext::default().with_exec(exec),
                    ..FleetConfig::default()
                },
                build,
            );
            assert_eq!(par.per_dpu.len(), 16);
            for (p, s) in par.per_dpu.iter().zip(&ser.per_dpu) {
                assert_eq!(p.timeline, s.timeline);
            }
            assert_eq!(par.kernel_finish, ser.kernel_finish);
            assert_eq!(par.mean_latency(), ser.mean_latency());
            assert!(par.distribution.bytes > 0);
            assert!(par.placement_penalty_secs >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "more streams")]
    fn too_many_streams_rejected() {
        let t = AllocTrace::new("big", 1 << 20, 2);
        let mut d = dpu(1);
        let mut a = sw_alloc(&mut d, 1, 1 << 20);
        let mut streams = t.streams;
        streams[0].push(TraceOp::Compute { cycles: 1 });
        streams[1].push(TraceOp::Compute { cycles: 1 });
        replay_streams(&mut d, a.as_mut(), &streams);
    }
}
